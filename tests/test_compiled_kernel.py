"""Lockstep equivalence of the compiled and interpreted RTL kernels.

The compiled execution mode (:mod:`repro.rtl.compile`) must be
byte-identical to the reference interpreter on every design the IR can
express.  These tests drive both modes in lockstep and compare *every
signal, every cycle*:

* Hypothesis-generated random designs exercising the full expression
  and statement surface (slices, concats, shifts, reductions, muxes,
  cases, slice-assignments, array reads/writes);
* all three case-study IPs under randomized stimuli, including
  X-propagation (``init_unknown=True``) and back-annotated transport
  delay runs (the strict-commit path);
* targeted regressions for the satellite fixes (``force`` width
  check, ``bool_not`` OR-reduce semantics, ``peek_array`` fast paths)
  and the compile cache's invalidation on in-place IR rewrites.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ips import CASE_STUDIES, case_study
from repro.rtl import (
    Assign,
    ArrayWrite,
    Binop,
    Case,
    Const,
    If,
    Module,
    Mux,
    Signal,
    Simulation,
    SimulationError,
    SliceAssign,
    Slice,
    Concat,
    Unop,
    array_read,
    b_not,
    compile_process,
)
from repro.rtl.compile import clear_cache
from repro.rtl.types import LV

WIDTH = 8

_BINOPS = ["and", "or", "xor", "add", "sub", "mul", "shl", "shr", "sar"]
_UNOPS = ["not", "neg", "red_and", "red_or", "red_xor"]
_CMPS = ["eq", "ne", "lt", "le", "gt", "ge", "lt_s", "ge_s"]


def build_expr(draw, leaves, depth, width=WIDTH):
    """Random expression of the given width over the leaf signals."""
    if depth <= 0 or draw(st.integers(0, 4)) == 0:
        if draw(st.booleans()) and width == WIDTH:
            return leaves[draw(st.integers(0, len(leaves) - 1))]
        return Const(draw(st.integers(0, (1 << width) - 1)), width)
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return Binop(
            _BINOPS[draw(st.integers(0, len(_BINOPS) - 1))],
            build_expr(draw, leaves, depth - 1, width),
            build_expr(draw, leaves, depth - 1, width),
        )
    if kind == 1:
        inner = build_expr(draw, leaves, depth - 1, width)
        op = _UNOPS[draw(st.integers(0, len(_UNOPS) - 1))]
        expr = Unop(op, inner)
        if expr.width != width:  # reductions are 1-bit
            return Concat(Const(0, width - 1), expr)
        return expr
    if kind == 2:
        base = build_expr(draw, leaves, depth - 1, width)
        hi = draw(st.integers(0, width - 1))
        lo = draw(st.integers(0, hi))
        part = Slice(base, hi, lo)
        if part.width == width:
            return part
        return Concat(Const(0, width - part.width), part)
    if kind == 3 and width >= 2:
        lo_w = draw(st.integers(1, width - 1))
        return Concat(
            build_expr(draw, leaves, depth - 1, width - lo_w),
            build_expr(draw, leaves, depth - 1, lo_w),
        )
    cond = Binop(
        _CMPS[draw(st.integers(0, len(_CMPS) - 1))],
        build_expr(draw, leaves, depth - 1, width),
        build_expr(draw, leaves, depth - 1, width),
    )
    return Mux(
        cond,
        build_expr(draw, leaves, depth - 1, width),
        build_expr(draw, leaves, depth - 1, width),
    )


def build_body(draw, reg, leaves, mem):
    """Random statement list driving one register."""
    shape = draw(st.integers(0, 3))
    if shape == 0:
        return [Assign(reg, build_expr(draw, leaves, 2))]
    if shape == 1:
        hi = draw(st.integers(0, WIDTH - 1))
        lo = draw(st.integers(0, hi))
        return [
            Assign(reg, build_expr(draw, leaves, 1)),
            SliceAssign(
                reg, hi, lo, build_expr(draw, leaves, 1, hi - lo + 1)
            ),
        ]
    if shape == 2:
        sel = build_expr(draw, leaves, 1)
        arms = [
            (k, [Assign(reg, build_expr(draw, leaves, 1))])
            for k in range(draw(st.integers(1, 3)))
        ]
        default = [Assign(reg, build_expr(draw, leaves, 1))]
        return [Case(sel, arms, default)]
    idx = build_expr(draw, leaves, 1)
    body = [
        Assign(reg, array_read(mem, Slice(idx, 1, 0))),
        ArrayWrite(mem, Slice(idx, 1, 0), build_expr(draw, leaves, 1)),
    ]
    cond = Binop("ne", build_expr(draw, leaves, 1),
                 Const(draw(st.integers(0, 255)), WIDTH))
    return [If(cond, body, [Assign(reg, build_expr(draw, leaves, 1))])]


@st.composite
def random_design(draw):
    m = Module("rand_ip")
    clk = m.input("clk")
    inputs = [m.input(f"i{k}", WIDTH) for k in range(3)]
    regs = [m.signal(f"r{k}", WIDTH, init=draw(st.integers(0, 255)))
            for k in range(3)]
    mem = m.array("mem", 4, WIDTH, init=[draw(st.integers(0, 255))
                                         for _ in range(4)])
    leaves = inputs + regs
    for k, reg in enumerate(regs):
        m.sync(f"p_r{k}", clk, build_body(draw, reg, leaves, mem))
    out = m.output("out", WIDTH)
    m.comb("p_out", [Assign(out, build_expr(draw, leaves, 2))])
    stream = draw(
        st.lists(
            st.tuples(*[st.integers(0, 255)] * 3),
            min_size=3,
            max_size=10,
        )
    )
    return m, clk, inputs, stream


def _lockstep_sims(design_factory, cycles_inputs, **sim_kw):
    """Run interpreted and compiled sims in lockstep; assert equality
    of every signal and array word after every cycle."""
    sims = []
    for mode in ("interpreted", "compiled"):
        m, clk, inputs = design_factory()
        sim = Simulation(m, clk, exec_mode=mode, **sim_kw)
        sims.append((sim, m, inputs))
    names = [s.name for s in sims[0][1].all_signals()]
    for i, vec in enumerate(cycles_inputs):
        states = []
        for sim, m, inputs in sims:
            sim.cycle({inputs[k]: v for k, v in vec.items() if k in inputs})
            sig_state = tuple(str(sim.peek(s)) for s in m.all_signals())
            arr_state = tuple(
                str(w) for a in m.all_arrays() for w in sim.peek_array(a)
            )
            states.append((sig_state, arr_state))
        assert states[0] == states[1], (
            f"diverged at cycle {i}: "
            + str([
                n for n, a, b in
                zip(names, states[0][0], states[1][0]) if a != b
            ][:5])
        )


@given(random_design())
@settings(max_examples=30, deadline=None)
def test_prop_compiled_interpreted_lockstep(design):
    m, clk, inputs, stream = design
    sims = []
    for mode in ("interpreted", "compiled"):
        sims.append(Simulation(m, {clk: 1000}, exec_mode=mode))
    for cycle, values in enumerate(stream):
        for sim in sims:
            sim.cycle({sig: v for sig, v in zip(inputs, values)})
        for sig in m.all_signals():
            assert sims[0].peek(sig) == sims[1].peek(sig), (
                f"{sig.name} diverged at cycle {cycle}"
            )
        for arr in m.all_arrays():
            assert sims[0].peek_array(arr) == sims[1].peek_array(arr)


@given(random_design())
@settings(max_examples=10, deadline=None)
def test_prop_lockstep_with_x_init(design):
    m, clk, inputs, stream = design
    sims = [
        Simulation(m, {clk: 1000}, exec_mode=mode, init_unknown=True)
        for mode in ("interpreted", "compiled")
    ]
    for values in stream:
        for sim in sims:
            sim.cycle({sig: v for sig, v in zip(inputs, values)})
        for sig in m.all_signals():
            assert sims[0].peek(sig) == sims[1].peek(sig)


class TestIpLockstep:
    """All three case-study IPs, randomized stimuli, both kernels."""

    def _drive(self, name, cycles=32, **sim_kw):
        spec = case_study(name)
        base = spec.stimulus(cycles)
        rng = random.Random(1234)

        def factory():
            m, clk = spec.factory()
            inputs = {p.name: p for p in m.inputs()}
            return m, {clk: spec.clock_period_ps}, inputs

        vectors = []
        for i in range(cycles):
            vec = dict(base[i % len(base)])
            # Randomized perturbation on top of the shipped testbench.
            for key in vec:
                if rng.random() < 0.3:
                    vec[key] = rng.randrange(1 << 32) & 0xFFFFFFFF
            vectors.append(vec)
        _lockstep_sims(factory, vectors, **sim_kw)

    @pytest.mark.parametrize("ip", sorted(CASE_STUDIES))
    def test_lockstep(self, ip):
        self._drive(ip)

    @pytest.mark.parametrize("ip", sorted(CASE_STUDIES))
    def test_lockstep_x_init(self, ip):
        self._drive(ip, init_unknown=True)

    @pytest.mark.parametrize("ip", sorted(CASE_STUDIES))
    def test_lockstep_with_transport_delays(self, ip):
        """Back-annotated delays exercise the strict-commit path."""
        spec = case_study(ip)
        base = spec.stimulus(24)
        sims = []
        for mode in ("interpreted", "compiled"):
            m, clk = spec.factory()
            sim = Simulation(
                m, {clk: spec.clock_period_ps}, exec_mode=mode
            )
            internal = [s for s in m.all_signals() if s.direction is None]
            for pick in (2, 5):
                sim.set_transport_delay(
                    internal[pick % len(internal)],
                    spec.clock_period_ps + 500,
                )
            inputs = {p.name: p for p in m.inputs()}
            sims.append((sim, m, inputs))
        for i in range(24):
            vec = base[i % len(base)]
            states = []
            for sim, m, inputs in sims:
                sim.cycle({inputs[k]: v for k, v in vec.items()})
                states.append(
                    tuple(str(sim.peek(s)) for s in m.all_signals())
                )
            assert states[0] == states[1], f"{ip} diverged at cycle {i}"


class TestStrictCommitTransition:
    def test_delay_configured_mid_run(self):
        """Setting a transport delay after construction must flip the
        compiled commits to strict scheduling (runner rebuild)."""
        def build():
            m = Module("d")
            clk = m.input("clk")
            src = m.signal("src", 8)
            wire = m.signal("wire", 8)
            dst = m.output("dst", 8)
            m.sync("p_src", clk, [Assign(src, src + Const(1, 8))])
            m.comb("p_comb", [Assign(wire, src + Const(10, 8))])
            m.sync("p_dst", clk, [Assign(dst, wire)])
            return m, clk, wire, dst

        results = []
        for mode in ("interpreted", "compiled"):
            m, clk, wire, dst = build()
            sim = Simulation(m, {clk: 1000}, exec_mode=mode)
            sim.cycle()
            sim.set_transport_delay(wire, 1300)  # mid-life transition
            trace = []
            for _ in range(6):
                sim.cycle()
                trace.append(sim.peek_int(dst))
            sim.clear_injection()
            results.append(trace)
        assert results[0] == results[1]


class TestCompileCache:
    def test_cache_reuse_and_invalidation(self):
        m = Module("c")
        clk = m.input("clk")
        a = m.signal("a", 4)
        b = m.signal("b", 4)
        proc = m.sync("p", clk, [Assign(a, a + Const(1, 4))])
        first = compile_process(proc)
        assert compile_process(proc) is first  # memoised
        # In-place rewrite (saboteur-style retarget) must recompile.
        proc.stmts[0].target = b
        second = compile_process(proc)
        assert second is not first
        clear_cache()
        assert compile_process(proc) is not second

    def test_case_arm_rewrite_invalidates_cache(self):
        """Moving a statement between case arms (same labels, same
        flattened statement sequence) must not reuse the stale
        compilation."""
        def build():
            m = Module("cr")
            clk = m.input("clk")
            sel = m.input("sel", 2)
            r1 = m.signal("r1", 8)
            r2 = m.signal("r2", 8)
            a1 = Assign(r1, Const(5, 8))
            a2 = Assign(r2, Const(9, 8))
            proc = m.sync("p", clk, [Case(sel, [(0, [a1, a2])], [])])
            return m, clk, sel, r2, proc

        m, clk, sel, r2, proc = build()
        sim = Simulation(m, {clk: 1000})  # populates the compile cache
        del sim
        # In-place rewrite: second statement moves to the default arm.
        case = proc.stmts[0]
        moved = case.cases[0][1].pop()
        case.default.append(moved)
        results = []
        for mode in ("interpreted", "compiled"):
            sim = Simulation(m, {clk: 1000}, exec_mode=mode)
            sim.poke(sel, 1)  # takes the (new) default arm
            sim.cycle()
            results.append(sim.peek_int(r2))
        assert results[0] == results[1] == 9

    def test_compiled_source_is_kept(self):
        m = Module("s")
        clk = m.input("clk")
        a = m.signal("a", 4)
        proc = m.sync("p", clk, [Assign(a, a + Const(1, 4))])
        compiled = compile_process(proc)
        assert "def _fn(R, A, W, AW" in compiled.body_source


class TestSatelliteFixes:
    def test_force_rejects_width_mismatch(self):
        m = Module("f")
        clk = m.input("clk")
        s = m.signal("s", 4)
        sim = Simulation(m, {clk: 1000})
        with pytest.raises(SimulationError):
            sim.force(s, LV.from_int(8, 1))
        sim.force(s, LV.from_int(4, 9))  # exact width still fine
        assert sim.peek_int(s) == 9

    @pytest.mark.parametrize("mode", ["interpreted", "compiled"])
    def test_bool_not_is_truth_negation(self, mode):
        m = Module("bn")
        clk = m.input("clk")
        a = m.input("a", 1)
        y = m.output("y", 1)
        m.comb("p", [Assign(y, b_not(a))])
        sim = Simulation(m, {clk: 1000}, exec_mode=mode)
        sim.poke(a, 1)
        assert sim.peek_int(y) == 0
        sim.poke(a, 0)
        assert sim.peek_int(y) == 1
        sim.poke(a, LV.from_str("X"))
        assert str(sim.peek(y)) == "X"

    def test_peek_array_fast_paths(self):
        m = Module("pa")
        clk = m.input("clk")
        arr = m.array("mem", 4, 8, init=[1, 2, 3, 4])
        sim = Simulation(m, {clk: 1000})
        words = sim.peek_array(arr)
        assert isinstance(words, tuple)  # immutable snapshot
        assert [w.to_int() for w in words] == [1, 2, 3, 4]
        assert sim.peek_array_word(arr, 2).to_int() == 3

    def test_exec_mode_validated(self):
        m = Module("em")
        clk = m.input("clk")
        with pytest.raises(SimulationError):
            Simulation(m, {clk: 1000}, exec_mode="jit")
