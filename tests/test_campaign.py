"""Tests for the sharded campaign engine and the VCD/analysis fixes.

Covers the campaign determinism guarantee (serial report == parallel
report for any worker count), the once-per-campaign golden memoisation,
the compiled-class batching, the stall-budget timeout flag, and the
VCD writer lifecycle (close-then-run, changes_written accounting).
"""

import random

import pytest

from repro.abstraction import MutantSpec, generate_tlm
from repro.mutation import (
    compute_golden_trace,
    inject_mutants,
    run_campaign,
    run_mutation_analysis,
    shard_indices,
)
from repro.mutation.analysis import _run_razor_mutant
from repro.rtl import Assign, If, Module, Simulation, const
from repro.rtl.vcd import VcdWriter
from repro.sensors import insert_sensors
from repro.sta import analyze, bin_critical_paths
from repro.synth import synthesize

PERIOD = 1000


def build_ip():
    """Small datapath with two registers and observable outputs."""
    m = Module("camp_ip")
    clk = m.input("clk")
    din = m.input("din", 8)
    en = m.input("en")
    acc = m.signal("acc", 8)
    scaled = m.signal("scaled", 8)
    out_acc = m.output("out_acc", 8)
    out_scaled = m.output("out_scaled", 8)
    m.sync("p_acc", clk, [
        If(en.eq(1), [Assign(acc, acc + din)]),
    ])
    m.sync("p_scaled", clk, [Assign(scaled, acc * const(5, 8))])
    m.comb("p_oa", [Assign(out_acc, acc)])
    m.comb("p_os", [Assign(out_scaled, scaled)])
    return m, clk


def augment(sensor_type):
    m, clk = build_ip()
    report = analyze(synthesize(m), clock_period_ps=PERIOD)
    critical = bin_critical_paths(report, threshold_ps=1e9)
    return insert_sensors(m, clk, critical, sensor_type=sensor_type)


def golden_tlm(sensor_type):
    aug = augment(sensor_type)
    return generate_tlm(aug.module, variant="hdtlib", augmented=aug)


def stimulus(n=30, seed=2):
    rng = random.Random(seed)
    return [
        {"din": rng.randrange(1, 256), "en": 1}
        for _ in range(n)
    ]


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------

class TestSharding:
    def test_shards_cover_every_index_once_in_order(self):
        shards = shard_indices(17, workers=3)
        flat = [i for shard in shards for i in shard]
        assert flat == list(range(17))

    def test_explicit_shard_size(self):
        shards = shard_indices(10, workers=2, shard_size=4)
        assert [len(s) for s in shards] == [4, 4, 2]

    def test_empty_campaign(self):
        assert shard_indices(0, workers=4) == []

    def test_shard_size_clamped_to_one(self):
        assert shard_indices(3, workers=2, shard_size=0) == [
            (0,), (1,), (2,)
        ]


# ----------------------------------------------------------------------
# Determinism: serial report == parallel report
# ----------------------------------------------------------------------

class TestDeterminism:
    @pytest.mark.parametrize("sensor", ["razor", "counter"])
    def test_parallel_report_identical_to_serial(self, sensor):
        aug = augment(sensor)
        injected = inject_mutants(aug)
        golden = golden_tlm(sensor)
        stim = stimulus(30)
        serial = run_campaign(
            golden, injected, stim, sensor_type=sensor, workers=1
        )
        parallel = run_campaign(
            golden, injected, stim,
            sensor_type=sensor, workers=2, shard_size=1,
        )
        assert serial.outcomes == parallel.outcomes
        assert serial.killed_pct == parallel.killed_pct
        assert serial.risen_pct == parallel.risen_pct
        assert serial.corrected_pct == parallel.corrected_pct
        assert serial.cycles_per_run == parallel.cycles_per_run

    def test_wrapper_threads_workers_through(self):
        aug = augment("razor")
        injected = inject_mutants(aug)
        golden = golden_tlm("razor")
        stim = stimulus(20)
        serial = run_mutation_analysis(
            lambda: golden.instantiate(), injected, stim,
            sensor_type="razor",
        )
        parallel = run_mutation_analysis(
            lambda: golden.instantiate(), injected, stim,
            sensor_type="razor", workers=2,
        )
        assert serial.outcomes == parallel.outcomes

    def test_campaign_matches_paper_shape(self):
        """The engine preserves the Table-5 claims of the old loop."""
        aug = augment("razor")
        report = run_campaign(
            golden_tlm("razor"), inject_mutants(aug), stimulus(30),
            sensor_type="razor", workers=2,
        )
        assert report.killed_pct == 100.0
        assert report.risen_pct == 100.0
        assert report.corrected_pct == 100.0
        assert report.timed_out_count == 0


# ----------------------------------------------------------------------
# Golden memoisation + compiled-class batching
# ----------------------------------------------------------------------

class TestAmortisation:
    def test_golden_factory_called_once_per_campaign(self):
        aug = augment("razor")
        injected = inject_mutants(aug)
        golden = golden_tlm("razor")
        calls = []

        def factory():
            calls.append(1)
            return golden.instantiate()

        report = run_mutation_analysis(
            factory, injected, stimulus(20), sensor_type="razor"
        )
        assert report.total > 1       # several mutants ...
        assert len(calls) == 1        # ... one golden simulation

    def test_instantiate_reuses_compiled_class(self):
        gen = golden_tlm("razor")
        a, b = gen.instantiate(), gen.instantiate()
        assert type(a) is type(b)
        assert a is not b

    def test_fresh_instances_do_not_share_state(self):
        gen = golden_tlm("razor")
        a = gen.instantiate()
        a.b_transport({"din": 7, "en": 1, "razor_r": 0})
        b = gen.instantiate()
        assert b.outputs()["out_acc"] == 0


# ----------------------------------------------------------------------
# Stall-budget timeout (no longer conflated with a kill)
# ----------------------------------------------------------------------

class _ConstModel:
    """Fake TLM model with constant outputs; ``stall`` selects whether
    razor_stall is held high (forever, or for the first call only)."""

    PORTS_OUT = {"q": 8, "razor_err": 1, "razor_stall": 1}

    def __init__(self, stall="never"):
        self._stall = stall
        self._calls = 0

    def b_transport(self, inputs=None):
        self._calls += 1
        if self._stall == "always":
            stall = 1
        elif self._stall == "once":
            stall = 1 if self._calls == 1 else 0
        else:
            stall = 0
        return {"q": 0, "razor_err": 1, "razor_stall": stall}


SPEC = MutantSpec("min", "t", 0, "r")


class TestStallTimeout:
    def _golden(self, n):
        # The fake golden also drives stall=1 so a timed-out mutant's
        # compared prefix is byte-identical to the golden trace.
        return compute_golden_trace(
            _ConstModel(stall="always"), [{"d": i} for i in range(n)],
            sensor_type="razor", recovery=True,
        )

    def test_budget_exhaustion_sets_timed_out_not_killed(self):
        stimuli = [{"d": i} for i in range(4)]
        outcome = _run_razor_mutant(
            0, SPEC, _ConstModel(stall="always"), stimuli, True,
            self._golden(4),
        )
        assert outcome.timed_out
        # The truncated tail is a driver timeout, not an observation.
        assert not outcome.killed
        # Nor can a truncated run prove (or disprove) correction.
        assert outcome.corrected is None

    def test_single_stall_still_kills_by_length_mismatch(self):
        stimuli = [{"d": i} for i in range(4)]
        golden = compute_golden_trace(
            _ConstModel(stall="once"), stimuli,
            sensor_type="razor", recovery=True,
        )
        outcome = _run_razor_mutant(
            0, SPEC, _ConstModel(stall="once"), stimuli, True, golden
        )
        assert not outcome.timed_out
        assert outcome.killed   # one extra stall repeat is observable

    def test_stall_on_final_stimulus_is_re_presented(self):
        """A stall tripped by the last stimulus still gets its
        re-presentation, so working recovery is judged corrected."""

        class _LastStallMutant:
            PORTS_OUT = {"q": 8, "razor_err": 1, "razor_stall": 1}

            def __init__(self):
                self._stalled = False

            def b_transport(self, inputs):
                d = inputs["d"]
                if d == 3 and not self._stalled:
                    self._stalled = True
                    # Bubble on the stalled edge; recovered next call.
                    return {"q": 255, "razor_err": 1, "razor_stall": 1}
                return {"q": d, "razor_err": 0, "razor_stall": 0}

        class _EchoGolden:
            PORTS_OUT = {"q": 8, "razor_err": 1, "razor_stall": 1}

            def b_transport(self, inputs):
                return {"q": inputs["d"], "razor_err": 0,
                        "razor_stall": 0}

        stimuli = [{"d": i} for i in range(4)]
        golden = compute_golden_trace(
            _EchoGolden(), stimuli, sensor_type="razor", recovery=True
        )
        outcome = _run_razor_mutant(
            0, SPEC, _LastStallMutant(), stimuli, True, golden
        )
        assert outcome.killed          # the bubble diverges observably
        assert not outcome.timed_out
        assert outcome.corrected       # golden q=3 seen after re-present

    def test_perpetual_stall_on_final_stimulus_is_timeout(self):
        """Budget exhaustion during trailing re-presentation (all
        stimuli consumed, stall never released) is still a timeout."""

        class _TailStallMutant:
            PORTS_OUT = {"q": 8, "razor_err": 1, "razor_stall": 1}

            def b_transport(self, inputs):
                stall = 1 if inputs["d"] == 3 else 0
                return {"q": inputs["d"], "razor_err": stall,
                        "razor_stall": stall}

        class _EchoGolden:
            PORTS_OUT = {"q": 8, "razor_err": 1, "razor_stall": 1}

            def b_transport(self, inputs):
                return {"q": inputs["d"], "razor_err": 0,
                        "razor_stall": 0}

        stimuli = [{"d": i} for i in range(4)]
        golden = compute_golden_trace(
            _EchoGolden(), stimuli, sensor_type="razor", recovery=True
        )
        outcome = _run_razor_mutant(
            0, SPEC, _TailStallMutant(), stimuli, True, golden
        )
        assert outcome.timed_out
        assert outcome.corrected is None
        assert outcome.killed   # the raised flag diverged observably

    def test_no_stall_no_timeout(self):
        stimuli = [{"d": i} for i in range(4)]
        golden = compute_golden_trace(
            _ConstModel(), stimuli, sensor_type="razor", recovery=True
        )
        outcome = _run_razor_mutant(
            0, SPEC, _ConstModel(), stimuli, True, golden
        )
        assert not outcome.timed_out
        assert not outcome.killed


# ----------------------------------------------------------------------
# VCD writer lifecycle
# ----------------------------------------------------------------------

def vcd_module():
    m = Module("vcd_dut")
    clk = m.input("clk")
    q = m.output("q", 4)
    m.sync("p", clk, [Assign(q, q + const(1, 4))])
    return m, clk, q


class TestVcdLifecycle:
    def test_run_after_close_does_not_raise(self, tmp_path):
        m, clk, q = vcd_module()
        sim = Simulation(m, {clk: PERIOD})
        vcd = VcdWriter(sim, str(tmp_path / "w.vcd"), [clk, q])
        sim.run_cycles(2)
        vcd.close()
        sim.run_cycles(3)   # regression: raised "I/O on closed file"
        assert sim.peek_int(q) == 5

    def test_close_is_idempotent(self, tmp_path):
        m, clk, q = vcd_module()
        sim = Simulation(m, {clk: PERIOD})
        vcd = VcdWriter(sim, str(tmp_path / "w.vcd"), [q])
        vcd.close()
        vcd.close()
        assert sim._watchers == []

    def test_changes_written_excludes_initial_dump(self, tmp_path):
        m, clk, q = vcd_module()
        sim = Simulation(m, {clk: PERIOD})
        vcd = VcdWriter(sim, str(tmp_path / "w.vcd"), [clk, q])
        assert vcd.changes_written == 0
        sim.run_cycles(2)
        # 2 cycles: 4 clock toggles + 2 counter increments.
        assert vcd.changes_written == 6
        vcd.close()

    def test_unwatch_unknown_callback_is_noop(self):
        m, clk, q = vcd_module()
        sim = Simulation(m, {clk: PERIOD})
        sim.unwatch(lambda s, t: None)
