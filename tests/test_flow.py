"""End-to-end flow tests on the real case studies.

The filter IP (the smallest) goes through the complete methodology
with both sensor types; the DSP and Plasma get structural smoke tests
(their full campaigns run in the benchmarks).
"""

import pytest

from repro.flow import run_flow, speedup, time_rtl, time_tlm
from repro.ips import case_study
from repro.reporting import format_kv, format_table
from repro.stimuli import (
    TlmSensorMonitor,
    lfsr_vectors,
    mixed_vectors,
    random_vectors,
    ramp_vectors,
    walking_ones_vectors,
)


@pytest.fixture(scope="module")
def filter_razor():
    return run_flow(case_study("filter"), "razor")


@pytest.fixture(scope="module")
def filter_counter():
    return run_flow(case_study("filter"), "counter")


class TestFlowArtifacts:
    def test_critical_paths_found(self, filter_razor):
        assert filter_razor.sensors_inserted > 0
        assert filter_razor.critical.count == filter_razor.sensors_inserted

    def test_augmentation_grows_rtl(self, filter_razor):
        assert filter_razor.augmented_rtl_loc > filter_razor.original_rtl_loc

    def test_counter_version_larger_than_razor(
        self, filter_razor, filter_counter
    ):
        """Counter sensors need more RTL than Razor FFs (Table 2)."""
        assert (
            filter_counter.augmented_rtl_loc > filter_razor.augmented_rtl_loc
        )

    def test_tlm_variants_generated(self, filter_razor):
        assert filter_razor.tlm_standard.variant == "sctypes"
        assert filter_razor.tlm_optimized.variant == "hdtlib"
        assert filter_razor.tlm_standard.loc > 0
        assert filter_razor.injected.loc > filter_razor.tlm_optimized.loc

    def test_mutant_counts_match_table5_ratio(
        self, filter_razor, filter_counter
    ):
        n = filter_razor.sensors_inserted
        assert len(filter_razor.injected.mutants) == 2 * n
        m = filter_counter.sensors_inserted
        assert len(filter_counter.injected.mutants) == 3 * m


class TestFlowMutationOutcomes:
    def test_razor_kills_all(self, filter_razor):
        report = filter_razor.mutation
        assert report.killed_pct == 100.0, report.survivors()

    def test_razor_raises_all(self, filter_razor):
        assert filter_razor.mutation.risen_pct == 100.0

    def test_razor_corrects_all(self, filter_razor):
        assert filter_razor.mutation.corrected_pct == 100.0

    def test_counter_kills_all(self, filter_counter):
        report = filter_counter.mutation
        assert report.killed_pct == 100.0, report.survivors()

    def test_counter_risen_below_100(self, filter_counter):
        assert 0.0 < filter_counter.mutation.risen_pct < 100.0

    def test_counter_delta_measured(self, filter_counter):
        deltas = [
            o for o in filter_counter.mutation.outcomes if o.kind == "delta"
        ]
        assert deltas
        for outcome in deltas:
            assert outcome.meas_val == outcome.hf_tick


class TestFlowTiming:
    def test_tlm_faster_than_rtl(self, filter_razor):
        """The headline Table 3/4 shape on a small workload."""
        stimuli = filter_razor.spec.stimulus(120)
        rtl = time_rtl(filter_razor.augmented, stimuli)
        tlm_sc = time_tlm(filter_razor.tlm_standard, stimuli)
        tlm_hd = time_tlm(filter_razor.tlm_optimized, stimuli)
        assert speedup(rtl, tlm_sc) > 1.0
        assert speedup(rtl, tlm_hd) > speedup(rtl, tlm_sc)

    def test_injected_slower_than_plain_tlm(self, filter_razor):
        stimuli = filter_razor.spec.stimulus(120)
        plain = time_tlm(filter_razor.tlm_optimized, stimuli)
        injected = time_tlm(
            filter_razor.injected, stimuli, mutant_index=0
        )
        # Injection adds management overhead (Table 5 shows ~+43%);
        # at minimum it must not be faster by more than noise.
        assert injected.seconds > plain.seconds * 0.7


class TestRtlValidationInFlow:
    def test_filter_razor_validates_at_rtl(self):
        result = run_flow(
            case_study("filter"),
            "razor",
            run_mutation=False,
            run_rtl_validation=True,
        )
        assert result.rtl_validation is not None
        assert result.rtl_validation.risen_pct == 100.0


class TestStimuli:
    PORTS = {"a": 8, "b": 3}

    def test_random_in_range(self):
        for vec in random_vectors(self.PORTS, 50):
            assert 0 <= vec["a"] < 256
            assert 0 <= vec["b"] < 8

    def test_lfsr_deterministic_nonzero(self):
        a = lfsr_vectors(self.PORTS, 20)
        b = lfsr_vectors(self.PORTS, 20)
        assert a == b
        assert any(v["a"] for v in a)

    def test_lfsr_zero_seed_rejected(self):
        from repro.stimuli import Lfsr

        with pytest.raises(ValueError):
            Lfsr(0)

    def test_ramp_monotone_prefix(self):
        vecs = ramp_vectors(self.PORTS, 10)
        assert vecs[1]["a"] > vecs[0]["a"]

    def test_walking_ones_toggles_every_bit(self):
        vecs = walking_ones_vectors(self.PORTS, 16)
        seen_a = set(v["a"] for v in vecs)
        assert {1 << i for i in range(8)} <= seen_a

    def test_mixed_contains_walking(self):
        vecs = mixed_vectors(self.PORTS, 16)
        assert vecs[3]["a"] in {1 << i for i in range(8)}

    def test_monitor_counts_sensor_activity(self, filter_razor):
        model = filter_razor.injected.instantiate()
        model.activate_mutant(0)
        monitor = TlmSensorMonitor(model)
        cycles = filter_razor.spec.mutation_cycles
        for vec in filter_razor.spec.stimulus(cycles):
            monitor.cycle({**vec, "razor_r": 1})
        assert monitor.activity.cycles == cycles
        assert monitor.activity.saw_errors


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(
            ["IP", "value"],
            [["plasma", 1.5], ["dsp", 22.0]],
            title="Table X",
        )
        assert "Table X" in text
        assert "plasma" in text
        lines = text.splitlines()
        assert len(set(len(l) for l in lines[1:])) <= 2

    def test_format_kv(self):
        text = format_kv([("cycles", 100), ("speedup", 3.14159)])
        assert "cycles" in text and "3.14" in text

    def test_nan_renders_na(self):
        text = format_table(["x"], [[float("nan")]])
        assert "n.a." in text
