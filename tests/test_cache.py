"""Tests for the content-addressed campaign result cache.

The acceptance contract of :mod:`repro.mutation.cache`:

* a warm re-run of an identical campaign/suite replays every verdict
  (100% hits) and produces a report field-for-field identical to the
  cold (and to a cache-less) run;
* a changed mutant spec, stimulus sequence or model fingerprint
  invalidates exactly the affected entries -- nothing more;
* reordering the mutant table invalidates nothing (entries are keyed
  by spec content, not position);
* RTL validation shares the same store, both inline and on a
  multi-worker scheduler pool.
"""

import dataclasses
import random

import pytest

from repro.flow import run_flow
from repro.ips import case_study
from repro.mutation import (
    CampaignScheduler,
    ResultCache,
    inject_mutants,
    iter_campaign,
    prepare_campaign,
    run_benchmark_suite,
    run_campaign,
    validate_at_rtl,
)
from repro.mutation.cache import (
    golden_trace_hash,
    model_fingerprint,
    stimuli_hash,
)
from repro.rtl import Assign, If, Module, const
from repro.sensors import insert_sensors
from repro.sta import analyze, bin_critical_paths
from repro.synth import synthesize

PERIOD = 1000


def build_ip():
    """Small two-register datapath (mirrors tests/test_mutation.py)."""
    m = Module("cache_ip")
    clk = m.input("clk")
    din = m.input("din", 8)
    en = m.input("en")
    acc = m.signal("acc", 8)
    scaled = m.signal("scaled", 8)
    out_acc = m.output("out_acc", 8)
    out_scaled = m.output("out_scaled", 8)
    m.sync("p_acc", clk, [
        If(en.eq(1), [Assign(acc, acc + din)]),
    ])
    m.sync("p_scaled", clk, [Assign(scaled, acc * const(5, 8))])
    m.comb("p_oa", [Assign(out_acc, acc)])
    m.comb("p_os", [Assign(out_scaled, scaled)])
    return m, clk


def augment(sensor_type):
    m, clk = build_ip()
    report = analyze(synthesize(m), clock_period_ps=PERIOD)
    critical = bin_critical_paths(report, threshold_ps=1e9)
    return insert_sensors(m, clk, critical, sensor_type=sensor_type)


def stimulus(n=24, seed=2):
    rng = random.Random(seed)
    return [{"din": rng.randrange(1, 256), "en": 1} for _ in range(n)]


@pytest.fixture(scope="module")
def razor_campaign():
    """(golden factory, injected model, stimuli) for a razor campaign."""
    from repro.abstraction import generate_tlm

    aug = augment("razor")
    golden = generate_tlm(aug.module, variant="hdtlib", augmented=aug)
    injected = inject_mutants(aug)
    return golden, injected, stimulus()


def _campaign(golden, injected, stimuli, **kw):
    return run_campaign(
        golden, injected, stimuli,
        ip_name="cache_ip", sensor_type="razor", **kw,
    )


def _with_mutant_table(gen, mutants):
    """A copy of ``gen`` with a rewritten mutant table (both the spec
    list and the generated ``MUTANTS`` source literal)."""
    specs = [(m.kind, m.target, m.hf_tick, m.register) for m in mutants]
    lines = []
    for line in gen.source.splitlines():
        if line.lstrip().startswith("MUTANTS ="):
            indent = line[:len(line) - len(line.lstrip())]
            lines.append(f"{indent}MUTANTS = {specs!r}")
        else:
            lines.append(line)
    return dataclasses.replace(
        gen, source="\n".join(lines), mutants=list(mutants)
    )


class TestKeyComponents:
    def test_model_fingerprint_masks_mutant_table(self, razor_campaign):
        _, injected, _ = razor_campaign
        mutants = list(injected.mutants)
        tweaked = _with_mutant_table(injected, [
            dataclasses.replace(mutants[0], hf_tick=mutants[0].hf_tick + 3),
            *mutants[1:],
        ])
        assert tweaked.source != injected.source
        assert model_fingerprint(tweaked) == model_fingerprint(injected)

    def test_model_fingerprint_sees_structural_change(self, razor_campaign):
        _, injected, _ = razor_campaign
        tweaked = dataclasses.replace(
            injected, source=injected.source + "\n# structural change"
        )
        assert model_fingerprint(tweaked) != model_fingerprint(injected)

    def test_stimuli_hash_canonicalises_key_order(self):
        a = [{"din": 1, "en": 1}, {"din": 2, "en": 0}]
        b = [{"en": 1, "din": 1}, {"en": 0, "din": 2}]
        assert stimuli_hash(a) == stimuli_hash(b)
        assert stimuli_hash(a) != stimuli_hash(list(reversed(a)))

    def test_store_roundtrip_disk_and_memory(self, tmp_path):
        for cache in (ResultCache(None), ResultCache(tmp_path / "c")):
            assert cache.get("ab" * 32) is None
            cache.put("ab" * 32, {"x": 1})
            assert cache.get("ab" * 32) == {"x": 1}
            cache.put("ab" * 32, {"x": 2})  # overwrite is atomic
            assert cache.get("ab" * 32) == {"x": 2}
            assert len(cache) == 1
            assert (cache.hits, cache.misses) == (2, 1)

    def test_corrupt_entry_is_quarantined_not_fatal(self, tmp_path):
        """PR-7 regression: a truncated/garbled on-disk entry (torn
        write, disk error, fault injection) must read as a miss and be
        quarantined aside -- before the fix ``json.loads`` raised
        ``ValueError`` out of :meth:`ResultCache.get` and killed the
        campaign."""
        cache = ResultCache(tmp_path / "c")
        key = "ab" * 32
        cache.put(key, {"x": 1})
        path = cache._path(key)
        with open(path, "w") as fh:
            fh.write('{"x": 1')  # torn write: truncated JSON
        assert cache.get(key) is None  # a miss, not an exception
        # The bad bytes were moved aside for post-mortem, so a re-read
        # is an honest (cheap) miss rather than a re-parse failure ...
        import os as _os
        assert not _os.path.exists(path)
        assert _os.path.exists(path + ".corrupt")
        assert cache.stats()["corrupt_quarantined"] == 1
        # ... the quarantined file is invisible to housekeeping ...
        assert len(cache) == 0
        assert cache.stats()["entries"] == 0
        # ... and the slot is immediately rewritable.
        cache.put(key, {"x": 2})
        assert cache.get(key) == {"x": 2}


class TestCampaignCache:
    def test_cold_then_warm_replays_everything(self, razor_campaign,
                                               tmp_path):
        golden, injected, stimuli = razor_campaign
        cache = ResultCache(tmp_path / "cache")
        baseline = _campaign(golden, injected, stimuli)
        assert baseline.cache_hits is None and baseline.cache_misses is None

        cold = _campaign(golden, injected, stimuli, cache=cache)
        assert cold.cache_hits == 0
        assert cold.cache_misses == cold.total == len(injected.mutants)
        # One entry per mutant verdict, plus the memoised golden trace.
        assert len(cache) == cold.total + 1
        assert cold.golden_cache_hit is False

        warm = _campaign(golden, injected, stimuli, cache=cache)
        assert warm.cache_hits == warm.total
        assert warm.cache_misses == 0
        assert warm.golden_cache_hit is True
        # Field-for-field identical across uncached, cold and warm.
        assert baseline == cold == warm
        assert baseline.outcomes == warm.outcomes

    def test_warm_prepare_shards_nothing(self, razor_campaign):
        golden, injected, stimuli = razor_campaign
        cache = ResultCache(None)
        _campaign(golden, injected, stimuli, cache=cache)
        prepared = prepare_campaign(
            golden, injected, stimuli,
            ip_name="cache_ip", sensor_type="razor", cache=cache,
        )
        assert prepared.shards == ()
        assert len(prepared.cached_outcomes) == prepared.total
        # The replayed batch still counts as one (virtual) shard for
        # progress accounting.
        assert prepared.total_shards == 1

    def test_changed_stimuli_invalidates_everything(self, razor_campaign):
        golden, injected, stimuli = razor_campaign
        cache = ResultCache(None)
        _campaign(golden, injected, stimuli, cache=cache)
        changed = _campaign(
            golden, injected, stimulus(seed=99), cache=cache
        )
        assert changed.cache_hits == 0
        assert changed.cache_misses == changed.total

    def test_changed_mutant_invalidates_only_itself(self, razor_campaign):
        golden, injected, stimuli = razor_campaign
        cache = ResultCache(None)
        _campaign(golden, injected, stimuli, cache=cache)

        mutants = list(injected.mutants)
        mutants[1] = dataclasses.replace(
            mutants[1], hf_tick=mutants[1].hf_tick + 7
        )
        tweaked = _with_mutant_table(injected, mutants)
        report = _campaign(golden, tweaked, stimuli, cache=cache)
        assert report.cache_hits == report.total - 1
        assert report.cache_misses == 1
        executed = [
            o for o in report.outcomes if o.hf_tick == mutants[1].hf_tick
        ]
        assert [o.index for o in executed] == [1]

    def test_reordered_mutant_table_hits_fully(self, razor_campaign):
        golden, injected, stimuli = razor_campaign
        cache = ResultCache(None)
        baseline = _campaign(golden, injected, stimuli, cache=cache)

        mutants = list(injected.mutants)
        mutants[0], mutants[-1] = mutants[-1], mutants[0]
        reordered = _with_mutant_table(injected, mutants)
        report = _campaign(golden, reordered, stimuli, cache=cache)
        assert report.cache_hits == report.total
        # Replayed outcomes are re-indexed to the new table positions.
        assert report.outcomes[0].kind == baseline.outcomes[-1].kind
        assert [o.index for o in report.outcomes] == list(
            range(report.total)
        )

    def test_changed_model_invalidates_everything(self, razor_campaign):
        golden, injected, stimuli = razor_campaign
        cache = ResultCache(None)
        _campaign(golden, injected, stimuli, cache=cache)
        tweaked = dataclasses.replace(
            injected, source=injected.source + "\n# structural change"
        )
        report = _campaign(golden, tweaked, stimuli, cache=cache)
        assert report.cache_hits == 0
        assert report.cache_misses == report.total

    def test_iter_campaign_streams_cached_first(self, razor_campaign):
        golden, injected, stimuli = razor_campaign
        cache = ResultCache(None)
        cold = sorted(
            iter_campaign(
                golden, injected, stimuli,
                ip_name="cache_ip", sensor_type="razor", cache=cache,
            ),
            key=lambda o: o.index,
        )
        snapshots = []
        warm = list(iter_campaign(
            golden, injected, stimuli,
            ip_name="cache_ip", sensor_type="razor", cache=cache,
            progress=snapshots.append,
        ))
        # Warm stream yields every verdict in one replay batch, in
        # index order, before (and without) any shard submission.
        assert warm == cold
        assert len(snapshots) == 1
        assert snapshots[0].done == snapshots[0].total == len(warm)
        assert snapshots[0].shards_done == snapshots[0].shards_total == 1


class TestRtlValidationCache:
    def test_cold_then_warm_inline(self, tmp_path):
        aug = augment("razor")
        injected = inject_mutants(aug)
        stim = stimulus(15)
        cache = ResultCache(tmp_path / "rtl")
        baseline = validate_at_rtl(
            aug, injected.mutants, stimuli=stim, cycles=15
        )
        cold = validate_at_rtl(
            aug, injected.mutants, stimuli=stim, cycles=15, cache=cache
        )
        warm = validate_at_rtl(
            aug, injected.mutants, stimuli=stim, cycles=15, cache=cache
        )
        assert cold.cache_misses == len(injected.mutants)
        assert warm.cache_hits == len(injected.mutants)
        assert baseline == cold == warm
        assert baseline.risen_pct == 100.0

    def test_stimuli_path_matches_legacy_drive(self):
        aug = augment("counter")
        injected = inject_mutants(aug)
        stim = stimulus(15)
        din = next(p for p in aug.module.inputs() if p.name == "din")
        en = next(p for p in aug.module.inputs() if p.name == "en")

        def drive(sim, i):
            vec = stim[i % len(stim)]
            sim.cycle({din: vec["din"], en: vec["en"]})

        legacy = validate_at_rtl(aug, injected.mutants, drive, cycles=15)
        declarative = validate_at_rtl(
            aug, injected.mutants, stimuli=stim, cycles=15
        )
        assert legacy == declarative

    def test_cycle_count_is_part_of_the_key(self):
        aug = augment("razor")
        injected = inject_mutants(aug)
        stim = stimulus(15)
        cache = ResultCache(None)
        validate_at_rtl(
            aug, injected.mutants, stimuli=stim, cycles=15, cache=cache
        )
        other = validate_at_rtl(
            aug, injected.mutants, stimuli=stim, cycles=10, cache=cache
        )
        assert other.cache_hits == 0


class TestSharedPoolAndSuite:
    def test_flow_with_pool_and_rebuilt_rtl_shards(self, tmp_path):
        """workers=2 exercises the pickled rebuild recipe: RTL shards
        reconstruct the augmented design inside worker processes and
        their verdicts land in the same cache."""
        spec = case_study("dsp")
        cache = ResultCache(tmp_path / "pool")
        cold = run_flow(
            spec, "razor", mutation_cycles=24, run_rtl_validation=True,
            rtl_validation_cycles=12, workers=2, cache=cache,
        )
        warm = run_flow(
            spec, "razor", mutation_cycles=24, run_rtl_validation=True,
            rtl_validation_cycles=12, workers=2, cache=cache,
        )
        assert cold.mutation.cache_misses == cold.mutation.total
        assert warm.mutation.cache_hits == warm.mutation.total
        assert warm.rtl_validation.cache_hits == \
            len(cold.rtl_validation.outcomes)
        assert cold.mutation == warm.mutation
        assert cold.rtl_validation == warm.rtl_validation

    def test_suite_warm_rerun_hits_at_least_95_pct(self, tmp_path):
        cache_dir = tmp_path / "suite"
        specs = ["dsp"]

        def run(cache):
            with CampaignScheduler(workers=1) as sched:
                return run_benchmark_suite(
                    specs, ("razor", "counter"), mutation_cycles=16,
                    scheduler=sched, cache=cache,
                    rtl_validation=True, rtl_validation_cycles=8,
                )

        reference = run(None)
        cold = run(ResultCache(cache_dir))
        warm = run(ResultCache(cache_dir))
        lookups = warm.cache_hits + warm.cache_misses
        assert lookups > 0
        assert warm.cache_hits / lookups >= 0.95
        for key in reference.reports:
            assert reference.reports[key] == cold.reports[key]
            assert cold.reports[key] == warm.reports[key]
            assert cold.rtl_reports[key] == warm.rtl_reports[key]
        assert reference.cache_hits is None


class TestGoldenTraceCache:
    """PR-5 satellite: the golden trace is itself cached, keyed by
    (golden-model fingerprint, stimuli hash, sensor type, recovery),
    so a warm preparation skips the golden simulation entirely."""

    def test_warm_prepare_skips_golden_simulation(self, razor_campaign,
                                                  monkeypatch):
        from repro.mutation import campaign as campaign_mod

        golden, injected, stimuli = razor_campaign
        cache = ResultCache(None)
        cold = _campaign(golden, injected, stimuli, cache=cache)
        assert cold.golden_cache_hit is False

        simulated = []
        real = campaign_mod.compute_golden_trace

        def spy(*args, **kwargs):
            simulated.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(campaign_mod, "compute_golden_trace", spy)
        warm = prepare_campaign(
            golden, injected, stimuli,
            ip_name="cache_ip", sensor_type="razor", cache=cache,
        )
        assert warm.golden_cached is True
        assert simulated == []          # no golden simulation at all
        # ... and the replayed trace indexes the same mutant entries:
        # every verdict hits.
        assert warm.cache_hits == warm.total

    def test_replayed_trace_hashes_identically(self, razor_campaign):
        from repro.mutation.analysis import compute_golden_trace
        from repro.mutation.cache import (
            decode_golden_trace,
            encode_golden_trace,
        )

        golden, _, stimuli = razor_campaign
        trace = compute_golden_trace(
            golden.instantiate(), stimuli,
            sensor_type="razor", recovery=True,
        )
        replayed = decode_golden_trace(encode_golden_trace(trace))
        assert replayed == trace
        assert golden_trace_hash(replayed) == golden_trace_hash(trace)

    def test_factory_golden_bypasses_golden_cache(self, razor_campaign):
        # A bare factory callable has no structural fingerprint, so
        # golden caching stays off (mutant caching still works: the
        # trace content feeds the mutant keys either way).
        golden, injected, stimuli = razor_campaign
        cache = ResultCache(None)
        prepared = prepare_campaign(
            lambda: golden.instantiate(), injected, stimuli,
            ip_name="cache_ip", sensor_type="razor", cache=cache,
        )
        assert prepared.golden_cached is None
        assert prepared.cache_misses == prepared.total

    def test_recovery_bit_is_part_of_the_golden_key(self, razor_campaign):
        golden, injected, stimuli = razor_campaign
        cache = ResultCache(None)
        first = prepare_campaign(
            golden, injected, stimuli,
            ip_name="cache_ip", sensor_type="razor", recovery=True,
            cache=cache,
        )
        other = prepare_campaign(
            golden, injected, stimuli,
            ip_name="cache_ip", sensor_type="razor", recovery=False,
            cache=cache,
        )
        assert first.golden_cached is False
        assert other.golden_cached is False   # different key: no hit

    def test_summary_pairs_surface_the_golden_row(self, razor_campaign):
        from repro.reporting import mutation_summary_pairs

        golden, injected, stimuli = razor_campaign
        cache = ResultCache(None)
        cold = _campaign(golden, injected, stimuli, cache=cache)
        warm = _campaign(golden, injected, stimuli, cache=cache)
        uncached = _campaign(golden, injected, stimuli)
        assert dict(mutation_summary_pairs(cold))["golden trace"] == \
            "simulated (stored)"
        assert dict(mutation_summary_pairs(warm))["golden trace"] == \
            "replayed from cache"
        assert "golden trace" not in dict(mutation_summary_pairs(uncached))


class TestCacheHousekeeping:
    """PR-5 satellite: `ResultCache.stats()` / `prune()` behind the
    `repro cache` CLI and the service's /healthz."""

    def _seed(self, cache):
        cache.put("aa" * 32, {"ip": "dsp", "x": 1})
        cache.put("bb" * 32, {"ip": "dsp", "x": 2})
        cache.put("cc" * 32, {"ip": "plasma", "x": 3})
        cache.put("dd" * 32, {"x": 4})           # untagged (legacy)

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_stats_counts_entries_and_per_ip(self, backend, tmp_path):
        cache = ResultCache(None if backend == "memory"
                            else tmp_path / "c")
        self._seed(cache)
        stats = cache.stats()
        assert stats["backend"] == backend
        assert stats["entries"] == 4
        assert stats["bytes"] > 0
        assert stats["per_ip"]["dsp"]["entries"] == 2
        assert stats["per_ip"]["plasma"]["entries"] == 1
        assert stats["per_ip"]["(untagged)"]["entries"] == 1
        assert sum(b["bytes"] for b in stats["per_ip"].values()) == \
            stats["bytes"]

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_prune_max_bytes_evicts_oldest_first(self, backend,
                                                 tmp_path):
        import os
        import time as _time

        cache = ResultCache(None if backend == "memory"
                            else tmp_path / "c")
        self._seed(cache)
        # Make the write order unambiguous for both backends.
        for offset, key in enumerate(("aa", "bb", "cc", "dd")):
            full = key * 32
            when = 1_000_000 + offset
            if cache.root is None:
                cache._times[full] = when
            else:
                os.utime(cache._path(full), (when, when))
        stats = cache.stats()
        keep = stats["bytes"] - 1    # forces out exactly the oldest
        result = cache.prune(max_bytes=keep)
        assert result["removed_entries"] == 1
        assert cache.get("aa" * 32) is None      # oldest gone
        assert cache.get("dd" * 32) == {"x": 4}  # newest kept
        assert result["kept_bytes"] <= keep
        del _time

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_prune_older_than_removes_by_age(self, backend, tmp_path):
        import os
        import time as _time

        cache = ResultCache(None if backend == "memory"
                            else tmp_path / "c")
        self._seed(cache)
        ancient = _time.time() - 10_000
        for key in ("aa", "bb"):
            full = key * 32
            if cache.root is None:
                cache._times[full] = ancient
            else:
                os.utime(cache._path(full), (ancient, ancient))
        result = cache.prune(older_than_s=5_000)
        assert result["removed_entries"] == 2
        assert result["kept_entries"] == 2
        assert cache.get("cc" * 32) is not None
        assert cache.get("aa" * 32) is None

    def test_pruned_entry_is_a_plain_miss_and_restorable(self,
                                                         tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("ee" * 32, {"ip": "dsp", "x": 9})
        cache.prune(max_bytes=0)
        assert len(cache) == 0
        assert cache.get("ee" * 32) is None
        cache.put("ee" * 32, {"ip": "dsp", "x": 9})
        assert cache.get("ee" * 32) == {"ip": "dsp", "x": 9}


class TestPruneConcurrency:
    """PR-6 satellite: ``prune`` vs concurrent writers/pruners.  A
    prune scans, then deletes -- anything can happen in between: a
    live campaign re-writes an entry the scan aged out, another prune
    (or process) deletes a file first.  Neither may crash the prune,
    and no entry written at or after the scan start is ever deleted."""

    def _seed(self, cache):
        for key in ("aa", "bb", "cc", "dd"):
            cache.put(key * 32, {"ip": "dsp", "k": key})

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_never_deletes_entries_newer_than_scan_start(self, backend,
                                                         tmp_path):
        import os
        import time as _time

        cache = ResultCache(None if backend == "memory"
                            else tmp_path / "c")
        self._seed(cache)
        # Stamp one entry as written *after* the prune's scan start --
        # the deterministic stand-in for a campaign re-writing it in
        # the scan-to-delete window.
        fresh = "bb" * 32
        future = _time.time() + 3_600
        if cache.root is None:
            cache._times[fresh] = future
        else:
            os.utime(cache._path(fresh), (future, future))
        result = cache.prune(max_bytes=0)   # wants everything gone
        assert result["removed_entries"] == 3
        assert result["kept_entries"] == 1
        assert cache.get(fresh) == {"ip": "dsp", "k": "bb"}

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_tolerates_entries_vanishing_mid_scan(self, backend,
                                                  tmp_path):
        import os

        cache = ResultCache(None if backend == "memory"
                            else tmp_path / "c")
        self._seed(cache)
        # Freeze the scan, then yank one entry behind its back (a
        # concurrent pruner in another process got there first).
        scanned = list(cache._entries())
        victim_key, victim_path = scanned[0][0], scanned[0][1]
        if cache.root is None:
            del cache._mem[victim_key]
        else:
            os.unlink(victim_path)
        cache._entries = lambda: iter(scanned)   # stale scan data
        result = cache.prune(max_bytes=0)
        # No crash; the vanished entry is simply not double-counted.
        assert result["removed_entries"] == 3
        assert cache.get("dd" * 32) is None

    def test_two_concurrent_pruners_remove_each_entry_once(self,
                                                           tmp_path):
        import threading

        cache_a = ResultCache(tmp_path / "c")
        cache_b = ResultCache(tmp_path / "c")    # same store
        for i in range(40):
            cache_a.put(f"{i:064x}", {"ip": "dsp", "i": i})
        results = {}
        errors = []
        barrier = threading.Barrier(2)

        def pruner(name, cache):
            try:
                barrier.wait(timeout=10)
                results[name] = cache.prune(max_bytes=0)
            except BaseException as exc:      # surfaced below
                errors.append((name, exc))

        threads = [
            threading.Thread(target=pruner, args=(name, cache))
            for name, cache in (("a", cache_a), ("b", cache_b))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        removed = sum(r["removed_entries"] for r in results.values())
        assert removed == 40                  # each entry exactly once
        assert len(cache_a) == 0

    def test_prune_hammer_against_live_writer(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path / "c")
        stop = threading.Event()
        errors = []

        def writer():
            try:
                i = 0
                while not stop.is_set():
                    cache.put(f"{i % 64:064x}", {"ip": "dsp", "i": i})
                    i += 1
            except BaseException as exc:      # surfaced below
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(25):
                cache.prune(max_bytes=0, older_than_s=0.0)
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors, errors
        # The store is fully functional afterwards.
        cache.put("ff" * 32, {"ip": "dsp", "x": 1})
        assert cache.get("ff" * 32) == {"ip": "dsp", "x": 1}
