"""Streaming cross-IP scheduler suite + PR-3 regression tests.

Covers the streaming equivalence guarantee (every outcome yielded
exactly once; the merged report field-identical to the blocking
``run_campaign`` for several ``workers`` / ``shard_size`` combinations
on all three case-study IPs and both sensor types), persistent-pool
reuse across campaigns, cross-IP suite batching, early-abort policies
(submission stops), and regressions for the three accounting/monitor
bugfixes: timed-out runs excluded from the mutation score, the lazy
Counter tap-order probe, and per-lane ``meas_val`` histograms.
"""

import os
import signal

import pytest

from repro.abstraction import GeneratedTlm
from repro.flow import run_flow
from repro.ips import CASE_STUDIES, case_study
from repro.mutation import (
    AbortPolicy,
    CampaignScheduler,
    MutantOutcome,
    MutationReport,
    iter_campaign,
    prepare_campaign,
    run_benchmark_suite,
    run_campaign,
)
from repro.reporting import mutation_summary_pairs
from repro.stimuli import TlmSensorMonitor

#: Shortened testbench shared by the cross-IP streaming tests: long
#: enough to exercise every engine path, short enough that the suite
#: stays in tier-1 time budget.  Kill percentages at this length are
#: irrelevant here -- only blocking/streaming equivalence is.
REDUCED_CYCLES = 24


@pytest.fixture(scope="module")
def flows():
    """Memoised ``run_flow(..., run_mutation=False)`` per (ip, sensor)."""
    cache = {}

    def get(ip, sensor):
        key = (ip, sensor)
        if key not in cache:
            cache[key] = run_flow(case_study(ip), sensor,
                                  run_mutation=False)
        return cache[key]

    return get


def assert_reports_match(actual: MutationReport, expected: MutationReport):
    """Field-for-field equality, ``seconds`` (wall clock) aside."""
    assert actual.ip_name == expected.ip_name
    assert actual.sensor_type == expected.sensor_type
    assert actual.variant == expected.variant
    assert actual.cycles_per_run == expected.cycles_per_run
    assert actual.outcomes == expected.outcomes
    assert actual.total == expected.total
    assert actual.effective_total == expected.effective_total
    assert actual.timed_out_count == expected.timed_out_count
    assert actual.killed_pct == expected.killed_pct
    assert actual.detected_pct == expected.detected_pct
    assert actual.risen_pct == expected.risen_pct
    assert actual.corrected_pct == expected.corrected_pct
    assert actual.mutation_score == expected.mutation_score


class CountingScheduler(CampaignScheduler):
    """Scheduler that counts shard submissions (early-abort probes)."""

    def __init__(self, workers: int = 1):
        super().__init__(workers)
        self.submitted = 0

    def submit(self, shard):
        self.submitted += 1
        return super().submit(shard)


# ----------------------------------------------------------------------
# Streaming equivalence: iter_campaign == run_campaign, all IPs
# ----------------------------------------------------------------------

class TestStreamingEquivalence:
    @pytest.mark.parametrize("sensor", ["razor", "counter"])
    @pytest.mark.parametrize("ip", sorted(CASE_STUDIES))
    def test_stream_matches_blocking_report(self, flows, ip, sensor):
        spec = case_study(ip)
        flow = flows(ip, sensor)
        stim = spec.stimulus(REDUCED_CYCLES)
        baseline = run_campaign(
            flow.golden_factory(), flow.injected, stim,
            ip_name=ip, sensor_type=sensor, workers=1,
        )
        for workers, shard_size in [(1, None), (4, None), (4, 2)]:
            outcomes = list(iter_campaign(
                flow.golden_factory(), flow.injected, stim,
                ip_name=ip, sensor_type=sensor,
                workers=workers, shard_size=shard_size,
            ))
            # Every outcome exactly once, no duplicates, no gaps.
            assert sorted(o.index for o in outcomes) == \
                list(range(baseline.total))
            report = MutationReport(
                ip_name=ip,
                sensor_type=sensor,
                variant=flow.injected.variant,
                outcomes=sorted(outcomes, key=lambda o: o.index),
                cycles_per_run=len(stim),
            )
            assert_reports_match(report, baseline)

    def test_progress_callback_sees_every_shard(self, flows):
        spec = case_study("dsp")
        flow = flows("dsp", "razor")
        stim = spec.stimulus(REDUCED_CYCLES)
        snapshots = []
        outcomes = list(iter_campaign(
            flow.golden_factory(), flow.injected, stim,
            ip_name="dsp", sensor_type="razor",
            workers=1, shard_size=4, progress=snapshots.append,
        ))
        total = len(flow.injected.mutants)
        assert [s.shards_done for s in snapshots] == \
            list(range(1, len(snapshots) + 1))
        last = snapshots[-1]
        assert last.shards_done == last.shards_total
        assert last.done == last.total == total == len(outcomes)
        assert last.killed + last.survivors + last.timed_out == last.done
        assert not last.aborted


# ----------------------------------------------------------------------
# Persistent pool sharing
# ----------------------------------------------------------------------

class TestPersistentScheduler:
    def test_one_pool_serves_many_campaigns(self, flows):
        stim = {
            ip: case_study(ip).stimulus(REDUCED_CYCLES)
            for ip in ("plasma", "dsp")
        }
        with CampaignScheduler(workers=2) as scheduler:
            reports = {}
            pools = set()
            for ip in ("plasma", "dsp"):
                flow = flows(ip, "razor")
                reports[ip] = run_campaign(
                    flow.golden_factory(), flow.injected, stim[ip],
                    ip_name=ip, sensor_type="razor",
                    scheduler=scheduler,
                )
                pools.add(id(scheduler._pool))
            assert len(pools) == 1          # the pool was reused
            assert scheduler._pool is not None
        for ip in ("plasma", "dsp"):
            flow = flows(ip, "razor")
            baseline = run_campaign(
                flow.golden_factory(), flow.injected, stim[ip],
                ip_name=ip, sensor_type="razor", workers=1,
            )
            assert_reports_match(reports[ip], baseline)

    def test_shutdown_refuses_new_work(self):
        scheduler = CampaignScheduler(workers=2)
        scheduler.shutdown()
        with pytest.raises(RuntimeError):
            scheduler.pool()

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            CampaignScheduler(workers=0)

    def test_run_campaign_workers_zero_still_runs_inline(self, flows):
        # Historical behaviour: workers <= 1 meant "inline", it never
        # raised -- the ephemeral scheduler must clamp, not reject.
        flow = flows("plasma", "razor")
        stim = case_study("plasma").stimulus(REDUCED_CYCLES)
        report = run_campaign(
            flow.golden_factory(), flow.injected, stim,
            ip_name="plasma", sensor_type="razor", workers=0,
        )
        baseline = run_campaign(
            flow.golden_factory(), flow.injected, stim,
            ip_name="plasma", sensor_type="razor", workers=1,
        )
        assert_reports_match(report, baseline)

    def test_run_flow_threads_scheduler_through(self):
        spec = case_study("plasma")
        with CampaignScheduler(workers=2) as scheduler:
            shared = run_flow(
                spec, "razor", mutation_cycles=REDUCED_CYCLES,
                scheduler=scheduler,
            )
        baseline = run_flow(spec, "razor", mutation_cycles=REDUCED_CYCLES)
        assert_reports_match(shared.mutation, baseline.mutation)


# ----------------------------------------------------------------------
# Cross-IP suite batching
# ----------------------------------------------------------------------

class TestBenchmarkSuite:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_suite_reports_match_standalone_campaigns(self, flows,
                                                      workers):
        ips = sorted(CASE_STUDIES)
        prepared_flows = {(ip, "razor"): flows(ip, "razor") for ip in ips}
        suite = run_benchmark_suite(
            ips, ("razor",), workers=workers,
            mutation_cycles=REDUCED_CYCLES, flows=prepared_flows,
        )
        assert set(suite.reports) == {(ip, "razor") for ip in ips}
        for ip in ips:
            flow = prepared_flows[(ip, "razor")]
            stim = case_study(ip).stimulus(REDUCED_CYCLES)
            baseline = run_campaign(
                flow.golden_factory(), flow.injected, stim,
                ip_name=ip, sensor_type="razor", workers=1,
            )
            assert_reports_match(suite.reports[(ip, "razor")], baseline)
        assert suite.total_mutants == sum(
            r.total for r in suite.reports.values()
        )
        assert suite.workers == workers
        assert suite.campaign_seconds <= suite.seconds

    def test_suite_rejects_unknown_sensor_type(self):
        with pytest.raises(ValueError, match="unknown sensor type"):
            run_benchmark_suite(["plasma"], ("razr",), workers=1)

    def test_suite_deduplicates_repeated_campaigns(self, flows):
        prepared_flows = {("plasma", "razor"): flows("plasma", "razor")}
        suite = run_benchmark_suite(
            ["plasma", "plasma"], ("razor", "razor"), workers=1,
            mutation_cycles=REDUCED_CYCLES, flows=prepared_flows,
        )
        assert list(suite.reports) == [("plasma", "razor")]
        assert suite.total_mutants == len(
            prepared_flows[("plasma", "razor")].injected.mutants
        )

    def test_suite_progress_is_tagged_per_campaign(self, flows):
        ips = ["plasma", "dsp"]
        prepared_flows = {(ip, "razor"): flows(ip, "razor") for ip in ips}
        snapshots = []
        run_benchmark_suite(
            ips, ("razor",), workers=1,
            mutation_cycles=REDUCED_CYCLES, flows=prepared_flows,
            progress=snapshots.append,
        )
        seen = {(s.ip_name, s.sensor_type) for s in snapshots}
        assert seen == {(ip, "razor") for ip in ips}
        for ip in ips:
            finals = [s for s in snapshots if s.ip_name == ip]
            assert finals[-1].done == finals[-1].total


# ----------------------------------------------------------------------
# Early abort
# ----------------------------------------------------------------------

class TestEarlyAbort:
    def test_first_survivor_stops_submission(self, flows):
        # A very short testbench leaves the filter's decimated outputs
        # untouched, so mutants survive -- the first survivor must
        # stop shard submission.
        flow = flows("filter", "razor")
        stim = case_study("filter").stimulus(8)
        scheduler = CountingScheduler(workers=1)
        outcomes = list(iter_campaign(
            flow.golden_factory(), flow.injected, stim,
            ip_name="filter", sensor_type="razor",
            shard_size=1, scheduler=scheduler,
            abort=AbortPolicy(stop_on_survivor=True),
        ))
        total = len(flow.injected.mutants)
        survivor_positions = [
            i for i, o in enumerate(outcomes)
            if not o.killed and not o.timed_out
        ]
        assert survivor_positions, "expected surviving mutants"
        # Inline mode submits one shard at a time, so submission halts
        # right after the shard that produced the first survivor.
        assert scheduler.submitted == survivor_positions[0] + 1
        assert scheduler.submitted < total

    def test_score_threshold_stops_submission(self, flows):
        # The full-length DSP campaign kills every mutant, so the very
        # first kill reaches a 100% running score and aborts.
        spec = case_study("dsp")
        flow = flows("dsp", "razor")
        stim = spec.stimulus(spec.mutation_cycles)
        scheduler = CountingScheduler(workers=1)
        outcomes = list(iter_campaign(
            flow.golden_factory(), flow.injected, stim,
            ip_name="dsp", sensor_type="razor",
            shard_size=1, scheduler=scheduler,
            abort=AbortPolicy(score_threshold=100.0),
        ))
        assert outcomes[0].killed
        assert scheduler.submitted == 1
        assert len(outcomes) < len(flow.injected.mutants)

    def test_no_policy_never_aborts(self):
        policy = AbortPolicy()
        assert not policy.triggered(killed=5, survivors=5, judged=10)

    def test_threshold_ignores_unjudged_runs(self):
        policy = AbortPolicy(score_threshold=50.0)
        assert not policy.triggered(killed=0, survivors=0, judged=0)
        assert policy.triggered(killed=1, survivors=1, judged=2)

    def test_min_judged_defers_a_noisy_threshold(self):
        policy = AbortPolicy(score_threshold=90.0, min_judged=5)
        # 2/2 = 100% but the sample is below the guard.
        assert not policy.triggered(killed=2, survivors=0, judged=2)
        assert policy.triggered(killed=5, survivors=0, judged=5)

    def test_tracker_score_matches_report_accounting(self):
        # A kill observed before a timeout is unjudged for the running
        # abort score, exactly as it is for MutationReport -- it must
        # not trip a 100% threshold that the final report would refute.
        from repro.mutation import PreparedCampaign
        from repro.mutation.scheduler import _CampaignTracker

        prepared = PreparedCampaign(
            ip_name="ip", sensor_type="razor", variant="hdtlib",
            cycles_per_run=4, total=2, shards=(),
        )
        tracker = _CampaignTracker(
            prepared, AbortPolicy(score_threshold=100.0)
        )
        tracker.record(_outcome(0, killed=True, timed_out=True))
        assert not tracker.aborted        # no judged outcomes yet
        tracker.record(_outcome(1))       # a real survivor: score 0%
        snap = tracker.snapshot()
        assert (snap.killed, snap.survivors, snap.timed_out) == (0, 1, 1)
        assert snap.killed + snap.survivors + snap.timed_out == snap.done
        assert not tracker.aborted


# ----------------------------------------------------------------------
# Regression: raising callbacks / abandoned streams must not wedge the
# shared pool (PR 5)
# ----------------------------------------------------------------------

class TestCallbackHardening:
    def _baseline(self, flows, ip="dsp"):
        flow = flows(ip, "razor")
        stim = case_study(ip).stimulus(REDUCED_CYCLES)
        return flow, stim, run_campaign(
            flow.golden_factory(), flow.injected, stim,
            ip_name=ip, sensor_type="razor", workers=1,
        )

    def test_raising_progress_callback_does_not_wedge_pool(self, flows):
        flow, stim, baseline = self._baseline(flows)

        def boom(_snapshot):
            raise RuntimeError("user callback exploded")

        with CampaignScheduler(workers=2) as scheduler:
            with pytest.raises(RuntimeError, match="exploded"):
                run_campaign(
                    flow.golden_factory(), flow.injected, stim,
                    ip_name="dsp", sensor_type="razor",
                    scheduler=scheduler, shard_size=1, progress=boom,
                )
            # The abandoned campaign drained its in-flight shards, so
            # the same pool serves the next campaign deterministically.
            report = run_campaign(
                flow.golden_factory(), flow.injected, stim,
                ip_name="dsp", sensor_type="razor", scheduler=scheduler,
            )
            assert_reports_match(report, baseline)

    def test_raising_suite_progress_does_not_wedge_pool(self, flows):
        ips = ["plasma", "dsp"]
        prepared_flows = {(ip, "razor"): flows(ip, "razor") for ip in ips}

        def boom(_snapshot):
            raise RuntimeError("suite callback exploded")

        with CampaignScheduler(workers=2) as scheduler:
            with pytest.raises(RuntimeError, match="exploded"):
                run_benchmark_suite(
                    ips, ("razor",), mutation_cycles=REDUCED_CYCLES,
                    scheduler=scheduler, flows=prepared_flows,
                    shard_size=1, progress=boom,
                )
            suite = run_benchmark_suite(
                ips, ("razor",), mutation_cycles=REDUCED_CYCLES,
                scheduler=scheduler, flows=prepared_flows,
            )
            for ip in ips:
                flow = prepared_flows[(ip, "razor")]
                stim = case_study(ip).stimulus(REDUCED_CYCLES)
                baseline = run_campaign(
                    flow.golden_factory(), flow.injected, stim,
                    ip_name=ip, sensor_type="razor", workers=1,
                )
                assert_reports_match(suite.reports[(ip, "razor")],
                                     baseline)

    def test_abandoned_stream_drains_in_flight_shards(self, flows):
        # A service client dropping its /events connection closes the
        # consuming generator mid-stream; the drain-on-close contract
        # means the shared pool must come back clean.
        flow, stim, baseline = self._baseline(flows)
        with CampaignScheduler(workers=2) as scheduler:
            gen = iter_campaign(
                flow.golden_factory(), flow.injected, stim,
                ip_name="dsp", sensor_type="razor",
                scheduler=scheduler, shard_size=1,
            )
            next(gen)          # at least one shard in flight
            gen.close()        # consumer disappears
            report = run_campaign(
                flow.golden_factory(), flow.injected, stim,
                ip_name="dsp", sensor_type="razor", scheduler=scheduler,
            )
            assert_reports_match(report, baseline)


# ----------------------------------------------------------------------
# Regression: timed-out runs excluded from the score denominators
# ----------------------------------------------------------------------

def _outcome(index, *, killed=False, timed_out=False, detected=False,
             risen=False, corrected=None):
    return MutantOutcome(
        index=index, kind="delta", target="t", register="r", hf_tick=1,
        killed=killed, detected=detected, error_risen=risen,
        corrected=corrected, meas_val=None, first_divergence=None,
        timed_out=timed_out,
    )


class TestScoreAccounting:
    def test_timeouts_excluded_from_denominator(self):
        report = MutationReport("ip", "razor", "hdtlib", outcomes=[
            _outcome(0, killed=True, detected=True, risen=True),
            _outcome(1, killed=True, detected=True, risen=True),
            _outcome(2, killed=True, detected=True, risen=True),
            _outcome(3, timed_out=True),
        ])
        assert report.total == 4
        assert report.timed_out_count == 1
        assert report.effective_total == 3
        # Regression: these were 75% -- the timed-out run silently
        # deflated the score as a phantom survivor.
        assert report.killed_pct == 100.0
        assert report.mutation_score == 100.0
        assert report.detected_pct == 100.0
        assert report.risen_pct == 100.0
        assert report.survivors() == []

    def test_timed_out_kill_is_not_scored(self):
        # A divergence observed before the timeout stays on the
        # outcome, but the aggregate score only judges completed runs.
        report = MutationReport("ip", "razor", "hdtlib", outcomes=[
            _outcome(0, killed=True),
            _outcome(1, killed=True, timed_out=True),
        ])
        assert report.effective_total == 1
        assert report.killed_pct == 100.0

    def test_all_timed_out_scores_zero(self):
        report = MutationReport("ip", "razor", "hdtlib", outcomes=[
            _outcome(0, timed_out=True),
            _outcome(1, timed_out=True),
        ])
        assert report.effective_total == 0
        assert report.killed_pct == 0.0
        assert report.survivors() == []

    def test_real_survivor_still_counts(self):
        report = MutationReport("ip", "razor", "hdtlib", outcomes=[
            _outcome(0, killed=True),
            _outcome(1),
        ])
        assert report.killed_pct == 50.0
        assert len(report.survivors()) == 1

    def test_summary_surfaces_the_exclusion(self):
        report = MutationReport("ip", "razor", "hdtlib", outcomes=[
            _outcome(0, killed=True),
            _outcome(1, timed_out=True),
        ])
        pairs = dict(mutation_summary_pairs(report))
        assert pairs["mutants"] == "1 judged / 2 total"
        assert pairs["timed out (excluded from score)"] == "1 of 2"

    def test_summary_is_quiet_without_timeouts(self):
        report = MutationReport("ip", "razor", "hdtlib", outcomes=[
            _outcome(0, killed=True),
        ])
        pairs = dict(mutation_summary_pairs(report))
        assert pairs["mutants"] == 1
        assert "timed out (excluded from score)" not in pairs


# ----------------------------------------------------------------------
# Regression: lazy Counter tap-order resolution
# ----------------------------------------------------------------------

class TestLazyTapOrder:
    def test_razor_prepare_never_compiles_injected(self, flows,
                                                   monkeypatch):
        flow = flows("dsp", "razor")
        injected = flow.injected
        compiled = []
        orig = GeneratedTlm.compiled_class

        def spy(self):
            compiled.append(self)
            return orig(self)

        monkeypatch.setattr(GeneratedTlm, "compiled_class", spy)
        prepare_campaign(
            flow.golden_factory(), injected,
            case_study("dsp").stimulus(8), sensor_type="razor",
        )
        # The golden model must compile (it simulates); the injected
        # description must not -- its compile belongs to the workers.
        assert all(gen is not injected for gen in compiled)

    def test_razor_shards_carry_empty_tap_order(self, flows):
        flow = flows("dsp", "razor")
        prepared = prepare_campaign(
            flow.golden_factory(), flow.injected,
            case_study("dsp").stimulus(8), sensor_type="razor",
        )
        assert all(s.tap_order == () for s in prepared.shards)

    def test_counter_prepare_resolves_generated_tap_order(self, flows):
        flow = flows("dsp", "counter")
        prepared = prepare_campaign(
            flow.golden_factory(), flow.injected,
            case_study("dsp").stimulus(8), sensor_type="counter",
        )
        expected = tuple(getattr(
            flow.injected.compiled_class(), "COUNTER_TAP_ORDER", ()
        ))
        assert expected, "counter model must declare its tap order"
        assert all(s.tap_order == expected for s in prepared.shards)


# ----------------------------------------------------------------------
# Regression: per-lane meas_val histograms
# ----------------------------------------------------------------------

class _FakeCounterModel:
    """Three-sensor Counter model replaying a fixed meas_val stream."""

    PORTS_OUT = {"q": 8, "metric_ok": 1, "meas_val": 24}
    COUNTER_TAP_ORDER = ["r0", "r1", "r2"]

    def __init__(self, frames):
        self._frames = list(frames)

    def b_transport(self, inputs):
        return {"q": 0, "metric_ok": 1, "meas_val": self._frames.pop(0)}


class TestMonitorLanes:
    def test_zero_lane_below_nonzero_lane_keeps_identity(self):
        # Regression: `while meas_bus:` swallowed the zero low lane
        # and attributed lane 1's measurement to the wrong sensor.
        monitor = TlmSensorMonitor(_FakeCounterModel([5 << 8]))
        assert monitor.lanes == 3
        assert monitor.tap_order == ("r0", "r1", "r2")
        monitor.cycle({})
        assert monitor.activity.meas_histogram == {1: {5: 1}}

    def test_equal_values_on_distinct_lanes_not_conflated(self):
        monitor = TlmSensorMonitor(_FakeCounterModel([(7 << 16) | 7]))
        monitor.cycle({})
        assert monitor.activity.meas_histogram == {0: {7: 1}, 2: {7: 1}}

    def test_counts_accumulate_per_lane(self):
        monitor = TlmSensorMonitor(
            _FakeCounterModel([3 << 8, 3 << 8, (3 << 8) | 2])
        )
        for _ in range(3):
            monitor.cycle({})
        assert monitor.activity.meas_histogram == {0: {2: 1}, 1: {3: 3}}

    def test_lane_count_falls_back_to_port_width(self):
        class _NoTaps:
            PORTS_OUT = {"meas_val": 16}

            def b_transport(self, inputs):
                return {"meas_val": 1}

        monitor = TlmSensorMonitor(_NoTaps())
        assert monitor.lanes == 2

    def test_razor_model_has_no_lanes(self):
        class _Razor:
            PORTS_OUT = {"q": 8, "razor_err": 1}

            def b_transport(self, inputs):
                return {"q": 0, "razor_err": 1}

        monitor = TlmSensorMonitor(_Razor())
        assert monitor.lanes == 0
        monitor.cycle({})
        assert monitor.activity.meas_histogram == {}
        assert monitor.activity.error_pulses == 1

    def test_real_counter_model_keys_by_lane(self, flows):
        spec = case_study("dsp")
        flow = flows("dsp", "counter")
        model = flow.injected.instantiate()
        model.activate_mutant(0)
        monitor = TlmSensorMonitor(model)
        assert monitor.lanes == len(model.COUNTER_TAP_ORDER)
        for vec in spec.stimulus(spec.mutation_cycles):
            monitor.cycle(dict(vec))
        assert monitor.activity.meas_histogram, "mutant 0 must be measured"
        assert all(
            0 <= lane < monitor.lanes
            for lane in monitor.activity.meas_histogram
        )


# ----------------------------------------------------------------------
# Pool self-healing (PR 7, recovery layer 1)
# ----------------------------------------------------------------------

class _PoisonShard:
    """A shard whose *execution* kills its host process -- the organic
    poison-pill case (a mutant tickling a segfault in a C extension
    would look exactly like this to the pool)."""

    indices = (0,)
    inline_only = False

    def run(self):  # pragma: no cover - dies before returning
        os._exit(1)


class _HonestShard:
    """Control shard: runs fine anywhere."""

    indices = (1,)
    inline_only = False

    def run(self):
        return ["ok"]


class TestPoolSelfHealing:
    """Regressions for the PR-7 supervised pool: before the fix, a
    worker process dying mid-campaign surfaced as a raw
    ``BrokenProcessPool`` and the whole campaign was lost."""

    def test_sigkilled_worker_mid_campaign_heals(self, flows):
        spec = case_study("dsp")
        flow = flows("dsp", "razor")
        stim = spec.stimulus(REDUCED_CYCLES)
        baseline = run_campaign(
            flow.golden_factory(), flow.injected, stim,
            ip_name="dsp", sensor_type="razor", workers=1,
        )
        with CampaignScheduler(workers=2) as scheduler:
            killed = False
            outcomes = []
            for outcome in iter_campaign(
                flow.golden_factory(), flow.injected, stim,
                ip_name="dsp", sensor_type="razor",
                scheduler=scheduler, shard_size=1,
            ):
                outcomes.append(outcome)
                if not killed:
                    killed = True
                    # SIGKILL a real pool process while the remaining
                    # shards are still in flight on it.
                    pid = next(iter(scheduler._pool._processes))
                    os.kill(pid, signal.SIGKILL)
            assert sorted(o.index for o in outcomes) == \
                list(range(baseline.total))
            report = MutationReport(
                ip_name="dsp", sensor_type="razor",
                variant=flow.injected.variant,
                outcomes=sorted(outcomes, key=lambda o: o.index),
                cycles_per_run=len(stim),
            )
            assert_reports_match(report, baseline)
            assert scheduler.describe()["pool_rebuilds"] >= 1

    def test_poison_shard_is_quarantined_loudly(self):
        from repro.mutation import PoisonShardError

        with CampaignScheduler(workers=2) as scheduler:
            future = scheduler.submit(_PoisonShard())
            with pytest.raises(PoisonShardError) as excinfo:
                future.result(timeout=120)
            diag = excinfo.value.diagnostic
            assert diag["fault"] == "pool.poison_shard"
            assert diag["indices"] == [0]
            assert diag["pool_breaks"] == scheduler.pool_break_limit
            # The pool healed: an honest shard still runs afterwards.
            assert scheduler.submit(_HonestShard()).result(
                timeout=120) == ["ok"]
            assert scheduler.describe()["pool_rebuilds"] >= 2
