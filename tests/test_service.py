"""Campaign service tests: wire format, concurrency, cancellation,
restart recovery.

The service's acceptance contract (PR 5):

* a report streamed through ``repro serve`` decodes **field-for-field
  equal** to a direct :func:`~repro.mutation.run_campaign` of the same
  campaign -- for every IP x sensor type, under N simultaneous
  streaming clients on one shared scheduler pool;
* ``DELETE /jobs/<id>`` cancels shard-granularly mid-stream: the
  stream ends with an ``aborted`` terminal event carrying the partial
  report, and the pool keeps serving subsequent jobs;
* a restarted server (same ``--state-dir``) still serves every
  finished job's report; jobs interrupted *running* are re-queued and
  resumed warm through the shared result cache (PR 7), failing loudly
  only once the restart budget is exhausted -- never silently
  vanishing.
"""

import json
import threading

import pytest

from repro.flow import run_flow
from repro.ips import CASE_STUDIES, case_study
from repro.mutation import run_campaign
from repro.service import (
    CampaignService,
    JobRecord,
    JobSpec,
    JobStore,
    ServiceClient,
    ServiceServer,
    decode_report,
    encode_report,
)
from repro.service.client import ServiceError

#: Shortened testbench shared with tests/test_scheduler.py: equality
#: of the streamed and direct reports is what matters here, not the
#: kill percentages at this length.
REDUCED_CYCLES = 24

ALL_CAMPAIGNS = [
    (ip, sensor)
    for ip in sorted(CASE_STUDIES)
    for sensor in ("razor", "counter")
]


@pytest.fixture(scope="module")
def flows():
    """Memoised ``run_flow(..., run_mutation=False)`` per (ip, sensor),
    shared by the service (seeded flow cache) and the direct
    baselines."""
    built = {}

    def get(ip, sensor):
        key = (ip, sensor)
        if key not in built:
            built[key] = run_flow(case_study(ip), sensor,
                                  run_mutation=False)
        return built[key]

    return get


@pytest.fixture(scope="module")
def baselines(flows):
    """Direct ``run_campaign`` reports for every IP x sensor at the
    reduced testbench length -- the equality reference."""
    reports = {}
    for ip, sensor in ALL_CAMPAIGNS:
        flow = flows(ip, sensor)
        stim = case_study(ip).stimulus(REDUCED_CYCLES)
        reports[(ip, sensor)] = run_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name=ip, sensor_type=sensor, workers=1,
        )
    return reports


def _server(flows, *, seed_all=False, **kwargs):
    """A ServiceServer over a fresh CampaignService with the module's
    flow cache pre-seeded (so tests pay flow construction once)."""
    seeded = {
        key: flows(*key) for key in (ALL_CAMPAIGNS if seed_all else [])
    }
    kwargs.setdefault("workers", 1)
    service = CampaignService(flows=seeded, **kwargs)
    return ServiceServer(service)


def _client(server, **kw):
    host, port = server.address
    kw.setdefault("timeout", 60.0)
    kw.setdefault("stream_timeout", 120.0)
    return ServiceClient(host, port, **kw)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------

class TestJobSpec:
    def test_payload_roundtrip(self):
        spec = JobSpec(ip="dsp", sensor="counter", cycles=32,
                       shard_size=2, recovery=False,
                       stop_on_survivor=True, score_threshold=90.0,
                       min_judged=3)
        assert JobSpec.from_payload(spec.to_payload()) == spec

    def test_rejects_unknown_sensor(self):
        with pytest.raises(ValueError, match="unknown sensor"):
            JobSpec(ip="dsp", sensor="razr")

    def test_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown job spec field"):
            JobSpec.from_payload({"ip": "dsp", "sensor": "razor",
                                  "cycels": 9})

    def test_requires_ip_and_sensor(self):
        with pytest.raises(ValueError, match="at least"):
            JobSpec.from_payload({"ip": "dsp"})

    def test_abort_policy_mapping(self):
        assert JobSpec(ip="dsp", sensor="razor").abort_policy() is None
        policy = JobSpec(ip="dsp", sensor="razor",
                         stop_on_survivor=True).abort_policy()
        assert policy.triggered(killed=0, survivors=1, judged=1)


class TestReportWireFormat:
    def test_roundtrip_is_field_for_field_equal(self, baselines):
        for report in baselines.values():
            decoded = decode_report(
                json.loads(json.dumps(encode_report(report)))
            )
            assert decoded == report          # dataclass eq: scored fields
            assert decoded.outcomes == report.outcomes
            assert decoded.cycles_per_run == report.cycles_per_run
            assert decoded.seconds == report.seconds
            assert decoded.killed_pct == report.killed_pct
            assert decoded.corrected_pct == report.corrected_pct
            assert decoded.risen_pct == report.risen_pct


class TestJobStore:
    def test_save_and_load_roundtrip(self, tmp_path):
        store = JobStore(tmp_path / "state")
        record = JobRecord(
            id="abc123", spec=JobSpec(ip="dsp", sensor="razor"),
            status="done", created=5.0, started=6.0, finished=7.0,
            report={"ip_name": "dsp"},
        )
        store.save(record)
        loaded = JobStore(tmp_path / "state").load_all()
        assert [r.to_payload() for r in loaded] == [record.to_payload()]

    def test_corrupt_file_is_skipped(self, tmp_path):
        store = JobStore(tmp_path / "state")
        store.save(JobRecord(id="ok1", created=1.0,
                             spec=JobSpec(ip="dsp", sensor="razor")))
        (tmp_path / "state" / "jobs" / "bad.json").write_text("{torn")
        assert [r.id for r in store.load_all()] == ["ok1"]

    def test_memory_store_persists_nothing(self):
        store = JobStore(None)
        store.save(JobRecord(id="x", spec=JobSpec(ip="dsp",
                                                  sensor="razor")))
        assert store.load_all() == []


# ----------------------------------------------------------------------
# Round trips and concurrency over HTTP
# ----------------------------------------------------------------------

class TestServiceRoundTrip:
    def test_streamed_report_equals_direct_run(self, flows, baselines):
        with _server(flows) as server:
            client = _client(server)
            record = client.submit({"ip": "plasma", "sensor": "razor",
                                    "cycles": REDUCED_CYCLES})
            end = client.watch(record["id"])
            assert end["status"] == "done"
            assert decode_report(end["report"]) == \
                baselines[("plasma", "razor")]
            # GET /jobs/<id> serves the identical report.
            assert client.report(record["id"]) == \
                baselines[("plasma", "razor")]

    def test_event_stream_shape(self, flows, baselines):
        # max_jobs=1 plus a blocker job in front guarantees the
        # subscriber attaches *before* the observed job runs, so the
        # stream deterministically carries the complete live history.
        cycles = case_study("filter").mutation_cycles
        with _server(flows, max_jobs=1) as server:
            client = _client(server)
            blocker = client.submit({"ip": "filter", "sensor": "razor",
                                     "cycles": cycles, "shard_size": 1})
            record = client.submit({"ip": "dsp", "sensor": "razor",
                                    "cycles": REDUCED_CYCLES,
                                    "shard_size": 4})
            events = []
            collector = threading.Thread(
                target=lambda: events.extend(client.events(record["id"]))
            )
            collector.start()
            _client(server).cancel(blocker["id"])
            collector.join(timeout=120)
            assert not collector.is_alive()
            kinds = [e["type"] for e in events]
            assert kinds[0] == "status" and kinds[-1] == "end"
            assert all(e["job"] == record["id"] for e in events)
            shard_outcomes = sum(
                len(e["outcomes"]) for e in events if e["type"] == "shard"
            )
            total = baselines[("dsp", "razor")].total
            assert shard_outcomes == total
            dones = [e["done"] for e in events if e["type"] == "progress"]
            assert dones == sorted(dones) and dones[-1] == total

    def test_concurrent_clients_all_ips_both_sensors(self, flows,
                                                     baselines):
        """The acceptance bar: >= 4 simultaneous streaming clients
        (here 6: every IP x sensor type), each receiving a report
        field-for-field equal to the direct run."""
        with _server(flows, seed_all=True, max_jobs=6) as server:
            barrier = threading.Barrier(len(ALL_CAMPAIGNS))
            results = {}
            errors = []

            def one_client(ip, sensor):
                try:
                    client = _client(server)
                    barrier.wait(timeout=30)
                    record = client.submit({
                        "ip": ip, "sensor": sensor,
                        "cycles": REDUCED_CYCLES,
                    })
                    events = []
                    end = client.watch(record["id"], events.append)
                    results[(ip, sensor)] = (end, events)
                except BaseException as exc:   # surfaced below
                    errors.append((ip, sensor, exc))

            threads = [
                threading.Thread(target=one_client, args=key)
                for key in ALL_CAMPAIGNS
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            assert not errors, errors
            assert set(results) == set(ALL_CAMPAIGNS)
            for key, (end, events) in results.items():
                assert end["status"] == "done"
                assert decode_report(end["report"]) == baselines[key]
            # A watcher attaching after its (fast) job already ended
            # sees just the collapsed terminal event, so live progress
            # is asserted across the whole fleet, not per stream.
            assert any(
                e["type"] == "progress"
                for _, events in results.values() for e in events
            )
            health = _client(server).health()
            assert health["jobs"]["done"] == len(ALL_CAMPAIGNS)

    def test_late_subscriber_gets_the_terminal_event(self, flows,
                                                     baselines):
        with _server(flows) as server:
            client = _client(server)
            record = client.submit({"ip": "dsp", "sensor": "counter",
                                    "cycles": REDUCED_CYCLES})
            client.watch(record["id"])
            # The job is terminal: its retained history has collapsed
            # to the terminal event (the record carries the report),
            # so a fresh stream yields exactly that one line.
            replay = list(client.events(record["id"]))
            assert [e["type"] for e in replay] == ["end"]
            assert decode_report(replay[-1]["report"]) == \
                baselines[("dsp", "counter")]

    def test_multiworker_pool_serves_jobs(self, flows, baselines):
        # workers=2 exercises the real process pool under the service:
        # the scheduler uses a fork+exec start method (forkserver /
        # spawn) because job threads trigger the lazy pool creation.
        with _server(flows, workers=2) as server:
            assert server.service.scheduler.mp_context is not None
            client = _client(server)
            record = client.submit({"ip": "dsp", "sensor": "razor",
                                    "cycles": REDUCED_CYCLES,
                                    "shard_size": 4})
            end = client.watch(record["id"])
            assert end["status"] == "done"
            assert decode_report(end["report"]) == \
                baselines[("dsp", "razor")]

    def test_unknown_ip_is_400(self, flows):
        with _server(flows) as server:
            with pytest.raises(ServiceError) as err:
                _client(server).submit({"ip": "nope", "sensor": "razor"})
            assert err.value.status == 400

    def test_unknown_spec_field_is_400(self, flows):
        with _server(flows) as server:
            with pytest.raises(ServiceError) as err:
                _client(server).submit({"ip": "dsp", "sensor": "razor",
                                        "cycels": 3})
            assert err.value.status == 400

    def test_unknown_job_is_404(self, flows):
        with _server(flows) as server:
            client = _client(server)
            with pytest.raises(ServiceError) as err:
                client.job("doesnotexist")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                list(client.events("doesnotexist"))
            assert err.value.status == 404

    def test_healthz_reports_pool_queue_and_cache(self, flows, tmp_path):
        from repro.mutation import ResultCache

        cache = ResultCache(tmp_path / "cache")
        with _server(flows, cache=cache) as server:
            client = _client(server)
            record = client.submit({"ip": "dsp", "sensor": "razor",
                                    "cycles": REDUCED_CYCLES})
            client.watch(record["id"])
            health = client.health()
            assert health["status"] == "ok"
            assert health["pool"]["workers"] == 1
            assert health["jobs"]["total"] == 1
            assert health["jobs"]["done"] == 1
            # /healthz reuses ResultCache.stats(): the job's verdicts
            # and golden trace are accounted under its IP.
            assert health["cache"]["entries"] == len(cache)
            assert "dsp" in health["cache"]["per_ip"]


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------

class TestCancellation:
    def test_mid_stream_delete_aborts_shard_granularly(self, flows):
        # Full-length filter campaign, one mutant per shard: plenty of
        # shard boundaries for the cancellation to land on.
        cycles = case_study("filter").mutation_cycles
        with _server(flows) as server:
            client = _client(server)
            record = client.submit({"ip": "filter", "sensor": "razor",
                                    "cycles": cycles, "shard_size": 1})
            cancelled = threading.Event()

            def on_event(event):
                if event["type"] == "shard" and not cancelled.is_set():
                    cancelled.set()
                    _client(server).cancel(record["id"])

            end = client.watch(record["id"], on_event)
            assert cancelled.is_set()
            assert end["status"] == "aborted"
            partial = decode_report(end["report"])
            total = len(flows("filter", "razor").injected.mutants)
            assert 0 < partial.total < total
            assert client.job(record["id"])["status"] == "aborted"

            # The shared pool is not wedged: the next job completes.
            follow = client.submit({"ip": "dsp", "sensor": "razor",
                                    "cycles": REDUCED_CYCLES})
            assert client.watch(follow["id"])["status"] == "done"

    def test_report_less_abort_summary_does_not_crash(self):
        # A job cancelled before its first shard ends "aborted" with
        # report=None; the CLI summary must degrade gracefully, not
        # TypeError inside decode_report.
        from repro.cli import _print_end_event

        code = _print_end_event(
            {"job": "x1", "status": "aborted", "report": None}
        )
        assert code == 1

    def test_cancel_before_start_aborts_without_running(self, flows):
        # max_jobs=1 and a long job in front keeps the victim queued
        # long enough to cancel it before its thread picks it up.
        cycles = case_study("filter").mutation_cycles
        with _server(flows, max_jobs=1) as server:
            client = _client(server)
            blocker = client.submit({"ip": "filter", "sensor": "razor",
                                     "cycles": cycles, "shard_size": 1})
            victim = client.submit({"ip": "dsp", "sensor": "razor",
                                    "cycles": REDUCED_CYCLES})
            client.cancel(victim["id"])
            client.cancel(blocker["id"])
            end = client.watch(victim["id"])
            assert end["status"] == "aborted"
            assert client.watch(blocker["id"])["status"] == "aborted"


# ----------------------------------------------------------------------
# Restart recovery
# ----------------------------------------------------------------------

class TestRestartRecovery:
    def test_finished_job_survives_restart(self, flows, baselines,
                                           tmp_path):
        state = tmp_path / "state"
        with _server(flows, state_dir=state) as server:
            client = _client(server)
            record = client.submit({"ip": "plasma", "sensor": "counter",
                                    "cycles": REDUCED_CYCLES})
            client.watch(record["id"])
        # Same state dir, fresh process-equivalent server.
        with _server(flows, state_dir=state) as server:
            client = _client(server)
            recovered = client.job(record["id"])
            assert recovered["status"] == "done"
            assert decode_report(recovered["report"]) == \
                baselines[("plasma", "counter")]
            # The event stream of a recovered job replays its
            # terminal event.
            events = list(client.events(record["id"]))
            assert [e["type"] for e in events] == ["end"]
            assert decode_report(events[-1]["report"]) == \
                baselines[("plasma", "counter")]

    def test_job_caught_running_requeues_and_resumes_warm(
            self, flows, baselines, tmp_path):
        """The layer-3 recovery regression (fails pre-PR 7, when a
        crashed-running job was marked failed): a job the previous
        server died on mid-run is re-queued, resumed through the
        content-addressed cache, and finishes with the exact
        fault-free report."""
        from repro.ips import case_study as _case_study
        from repro.mutation import ResultCache

        state = tmp_path / "state"
        cache_dir = tmp_path / "cache"
        # The crashed server got through the whole campaign's shards
        # before dying (worst case for wasted work, best case for
        # observing the warm resume): the verdicts live in the cache.
        flow = flows("dsp", "razor")
        stim = _case_study("dsp").stimulus(REDUCED_CYCLES)
        run_campaign(
            flow.tlm_optimized, flow.injected, stim, ip_name="dsp",
            sensor_type="razor", workers=1,
            cache=ResultCache(cache_dir),
        )
        store = JobStore(state)
        store.save(JobRecord(
            id="deadbeef0000", created=1.0, status="running",
            spec=JobSpec(ip="dsp", sensor="razor",
                         cycles=REDUCED_CYCLES),
        ))
        service = CampaignService(
            flows={("dsp", "razor"): flow}, state_dir=state,
            cache=ResultCache(cache_dir),
        )
        with ServiceServer(service) as server:
            client = _client(server)
            record = client.job("deadbeef0000")
            assert record["status"] in ("queued", "running", "done")
            assert record["restarts"] == 1
            end = client.watch("deadbeef0000")
            assert end["status"] == "done"
            report = decode_report(end["report"])
            assert report == baselines[("dsp", "razor")]
            # Warm resume, not a cold re-run: every verdict replayed.
            assert report.cache_hits == report.total
            assert report.cache_misses == 0

    def test_restart_budget_exhausted_fails_loudly(self, tmp_path):
        state = tmp_path / "state"
        store = JobStore(state)
        store.save(JobRecord(
            id="deadbeef0001", created=1.0, status="running",
            restarts=CampaignService.max_restarts,
            spec=JobSpec(ip="dsp", sensor="razor"),
        ))
        service = CampaignService(state_dir=state)
        try:
            record = service.get("deadbeef0001")
            assert record.status == "failed"
            assert "restart budget" in record.error
            # ... and the failure is persisted, not just in memory.
            reloaded = JobStore(state).load_all()[0]
            assert reloaded.status == "failed"
        finally:
            service.close()


# ----------------------------------------------------------------------
# Idempotent submission
# ----------------------------------------------------------------------

class _LossyResponseClient(ServiceClient):
    """Drops the *response* of the first POST /jobs after the server
    processed it -- the failure mode that makes naive POST retries
    enqueue duplicates."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.dropped = 0
        self.sleeps = []

    def _sleep(self, seconds):
        self.sleeps.append(seconds)

    def _request(self, method, path, payload=None):
        data = super()._request(method, path, payload)
        if method == "POST" and path == "/jobs" and not self.dropped:
            self.dropped += 1
            raise ConnectionResetError("response lost after processing")
        return data


class TestSubmitIdempotency:
    def test_retried_submit_dedups_on_idempotency_key(self, flows):
        with _server(flows) as server:
            client = _LossyResponseClient(*server.address, timeout=60.0)
            record = client.submit({"ip": "dsp", "sensor": "razor",
                                    "cycles": REDUCED_CYCLES})
            assert client.dropped == 1  # the retry actually happened
            assert client.sleeps  # ... through the backoff path
            jobs = client.jobs()
            assert len(jobs) == 1  # deduped, not enqueued twice
            assert jobs[0]["id"] == record["id"]
            assert client.watch(record["id"])["status"] == "done"

    def test_distinct_keys_enqueue_distinct_jobs(self, flows):
        with _server(flows) as server:
            client = _client(server)
            spec = {"ip": "dsp", "sensor": "razor",
                    "cycles": REDUCED_CYCLES}
            first = client.submit(dict(spec))
            second = client.submit(dict(spec))
            assert first["id"] != second["id"]
            assert len(client.jobs()) == 2
            for record in (first, second):
                assert client.watch(record["id"])["status"] == "done"
