"""Tests for the event-driven RTL kernel: delta cycles, clocks,
delayed assignments, resets and the cycle-level testbench interface."""

import pytest

from repro.rtl import (
    Assign,
    Case,
    If,
    Module,
    Simulation,
    SimulationError,
    DeltaOverflowError,
    cat,
    const,
    mux,
)
from repro.rtl.types import LV


def make_counter(width=8):
    """An enabled, synchronously-cleared counter."""
    m = Module("counter")
    clk = m.input("clk")
    en = m.input("en")
    clear = m.input("clear")
    count = m.output("count", width)
    m.sync("count_p", clk, [
        If(clear.eq(1), [Assign(count, 0)], [
            If(en.eq(1), [Assign(count, count + const(1, width))]),
        ]),
    ])
    return m, clk, en, clear, count


class TestCounter:
    def test_counts_when_enabled(self):
        m, clk, en, clear, count = make_counter()
        sim = Simulation(m, {clk: 1000})
        sim.cycle({en: 1, clear: 0})
        sim.cycle()
        sim.cycle()
        assert sim.peek_int(count) == 3

    def test_holds_when_disabled(self):
        m, clk, en, clear, count = make_counter()
        sim = Simulation(m, {clk: 1000})
        sim.cycle({en: 1, clear: 0})
        sim.cycle({en: 0})
        sim.cycle()
        assert sim.peek_int(count) == 1

    def test_clear_dominates(self):
        m, clk, en, clear, count = make_counter()
        sim = Simulation(m, {clk: 1000})
        for _ in range(3):
            sim.cycle({en: 1, clear: 0})
        sim.cycle({clear: 1})
        assert sim.peek_int(count) == 0

    def test_wraps(self):
        m, clk, en, clear, count = make_counter(width=2)
        sim = Simulation(m, {clk: 1000})
        sim.cycle({en: 1, clear: 0})
        for _ in range(4):
            sim.cycle()
        assert sim.peek_int(count) == 1  # 5 mod 4


class TestCombinational:
    def test_comb_settles_immediately_on_poke(self):
        m = Module("comb")
        a = m.input("a", 4)
        b = m.input("b", 4)
        y = m.output("y", 4)
        m.comb("sum", [Assign(y, a + b)])
        sim = Simulation(m, {m.input("clk"): 1000})
        sim.poke(a, 3)
        sim.poke(b, 4)
        assert sim.peek_int(y) == 7

    def test_comb_chain_through_deltas(self):
        m = Module("chain")
        clk = m.input("clk")
        a = m.input("a", 4)
        s1 = m.signal("s1", 4)
        s2 = m.signal("s2", 4)
        y = m.output("y", 4)
        m.comb("p1", [Assign(s1, a + const(1, 4))])
        m.comb("p2", [Assign(s2, s1 + const(1, 4))])
        m.comb("p3", [Assign(y, s2 + const(1, 4))])
        sim = Simulation(m, {clk: 1000})
        sim.poke(a, 5)
        assert sim.peek_int(y) == 8

    def test_oscillating_loop_detected(self):
        m = Module("osc")
        clk = m.input("clk")
        a = m.signal("a")
        m.comb("inv", [Assign(a, ~a)])
        with pytest.raises(DeltaOverflowError):
            Simulation(m, {clk: 1000})

    def test_stable_feedback_is_fine(self):
        m = Module("latchish")
        clk = m.input("clk")
        a = m.signal("a")
        m.comb("keep", [Assign(a, a & a)])
        sim = Simulation(m, {clk: 1000})
        assert sim.peek_int(a) == 0


class TestSyncSemantics:
    def test_registers_read_pre_edge_values(self):
        """Classic two-register swap proves non-blocking semantics."""
        m = Module("swap")
        clk = m.input("clk")
        a = m.signal("a", 4, init=1)
        b = m.signal("b", 4, init=2)
        m.sync("pa", clk, [Assign(a, b)])
        m.sync("pb", clk, [Assign(b, a)])
        sim = Simulation(m, {clk: 1000})
        sim.cycle()
        assert sim.peek_int(a) == 2
        assert sim.peek_int(b) == 1
        sim.cycle()
        assert sim.peek_int(a) == 1
        assert sim.peek_int(b) == 2

    def test_shift_register_pipeline(self):
        m = Module("shift")
        clk = m.input("clk")
        d = m.input("d", 1)
        q1 = m.signal("q1")
        q2 = m.signal("q2")
        q3 = m.output("q3")
        m.sync("p", clk, [Assign(q1, d), Assign(q2, q1), Assign(q3, q2)])
        sim = Simulation(m, {clk: 1000})
        seen = []
        pattern = [1, 0, 1, 1, 0, 0, 1, 0]
        for bit in pattern:
            sim.cycle({d: bit})
            seen.append(sim.peek_int(q3))
        # Sampling happens after the consuming edge, so q3 shows the
        # input with a two-sample lag through the three registers.
        assert seen == [0, 0, 1, 0, 1, 1, 0, 0]

    def test_falling_edge_process(self):
        m = Module("fall")
        clk = m.input("clk")
        count = m.output("count", 4)
        m.sync("p", clk, [Assign(count, count + const(1, 4))], edge="fall")
        sim = Simulation(m, {clk: 1000})
        sim.cycle()
        assert sim.peek_int(count) == 1

    def test_async_reset(self):
        m = Module("rst")
        clk = m.input("clk")
        rst = m.input("rst")
        count = m.output("count", 4)
        m.sync(
            "p", clk,
            [Assign(count, count + const(1, 4))],
            reset=rst, reset_level=1,
            reset_stmts=[Assign(count, 0)],
        )
        sim = Simulation(m, {clk: 1000})
        sim.cycle({rst: 0})
        sim.cycle()
        assert sim.peek_int(count) == 2
        sim.poke(rst, 1)  # asynchronous: takes effect without a clock edge
        assert sim.peek_int(count) == 0
        sim.cycle()  # reset still asserted: stays cleared
        assert sim.peek_int(count) == 0
        sim.cycle({rst: 0})
        assert sim.peek_int(count) == 1

    def test_last_assignment_wins_within_process(self):
        m = Module("lastwins")
        clk = m.input("clk")
        q = m.output("q", 4)
        m.sync("p", clk, [Assign(q, 1), Assign(q, 2)])
        sim = Simulation(m, {clk: 1000})
        sim.cycle()
        assert sim.peek_int(q) == 2


class TestMultiClock:
    def test_hf_clock_ratio(self):
        """An HF-clock counter advances ratio× per main-clock cycle."""
        m = Module("hf")
        clk = m.input("clk")
        hf_clk = m.input("hf_clk")
        count = m.output("count", 8)
        m.sync("p", hf_clk, [Assign(count, count + const(1, 8))])
        sim = Simulation(m, {clk: 1000, hf_clk: 100})
        sim.cycle()
        first = sim.peek_int(count)
        sim.cycle()
        assert sim.peek_int(count) - first == 10

    def test_odd_period_rejected(self):
        m = Module("odd")
        clk = m.input("clk")
        with pytest.raises(SimulationError):
            Simulation(m, {clk: 999})

    def test_no_clock_rejected(self):
        with pytest.raises(SimulationError):
            Simulation(Module("empty"), {})


class TestTransportDelay:
    def make_delay_path(self):
        """reg -> comb(+1) -> wire -> reg, with delay on the wire."""
        m = Module("path")
        clk = m.input("clk")
        src = m.signal("src", 8)
        wire = m.signal("wire", 8)
        dst = m.output("dst", 8)
        m.sync("p_src", clk, [Assign(src, src + const(1, 8))])
        m.comb("p_comb", [Assign(wire, src + const(10, 8))])
        m.sync("p_dst", clk, [Assign(dst, wire)])
        return m, clk, src, wire, dst

    def test_no_delay_baseline(self):
        m, clk, src, wire, dst = self.make_delay_path()
        sim = Simulation(m, {clk: 1000})
        sim.cycle()  # src=1, dst sampled old wire (10)
        sim.cycle()  # dst samples wire computed from src=1 -> 11
        assert sim.peek_int(dst) == 11

    def test_short_delay_still_meets_setup(self):
        m, clk, src, wire, dst = self.make_delay_path()
        sim = Simulation(m, {clk: 1000})
        sim.set_transport_delay(wire, 800)  # arrives before next edge
        sim.cycle()
        sim.cycle()
        assert sim.peek_int(dst) == 11

    def test_long_delay_misses_setup(self):
        """Delay > period: destination register samples stale data."""
        m, clk, src, wire, dst = self.make_delay_path()
        sim = Simulation(m, {clk: 1000})
        sim.set_transport_delay(wire, 1300)  # violates setup at next edge
        sim.cycle()
        sim.cycle()
        assert sim.peek_int(dst) == 10  # stale: missed the new value

    def test_injected_delay_adds_to_nominal(self):
        m, clk, src, wire, dst = self.make_delay_path()
        sim = Simulation(m, {clk: 1000})
        sim.set_transport_delay(wire, 800)
        sim.inject_extra_delay(wire, 500)  # total 1300 > period
        sim.cycle()
        sim.cycle()
        assert sim.peek_int(dst) == 10

    def test_clear_injection_restores(self):
        m, clk, src, wire, dst = self.make_delay_path()
        sim = Simulation(m, {clk: 1000})
        sim.set_transport_delay(wire, 800)
        sim.inject_extra_delay(wire, 500)
        sim.clear_injection(wire)
        sim.cycle()
        sim.cycle()
        assert sim.peek_int(dst) == 11


class TestPokeRules:
    def test_poke_rejects_non_input(self):
        m = Module("p")
        clk = m.input("clk")
        s = m.signal("s", 4)
        sim = Simulation(m, {clk: 1000})
        with pytest.raises(SimulationError):
            sim.poke(s, 1)

    def test_poke_width_check(self):
        m = Module("p")
        clk = m.input("clk")
        a = m.input("a", 4)
        sim = Simulation(m, {clk: 1000})
        with pytest.raises(SimulationError):
            sim.poke(a, LV.from_int(8, 0))

    def test_force_drives_internal_signal(self):
        m = Module("p")
        clk = m.input("clk")
        s = m.signal("s", 4)
        y = m.output("y", 4)
        m.comb("c", [Assign(y, s + const(1, 4))])
        sim = Simulation(m, {clk: 1000})
        sim.force(s, 7)
        assert sim.peek_int(y) == 8


class TestHierarchy:
    def test_submodule_processes_simulate(self):
        parent = Module("top")
        clk = parent.input("clk")
        a = parent.input("a", 4)
        y = parent.output("y", 4)
        inner = parent.signal("inner", 4)

        child = Module("child")
        child.comb("double", [Assign(inner, a + a)])
        parent.add_submodule("u_child", child)
        parent.sync("reg", clk, [Assign(y, inner)])

        sim = Simulation(parent, {clk: 1000})
        sim.cycle({a: 3})
        sim.cycle()
        assert sim.peek_int(y) == 6

    def test_stats_accumulate(self):
        m, clk, en, clear, count = make_counter()
        sim = Simulation(m, {clk: 1000})
        sim.cycle({en: 1, clear: 0})
        sim.cycle()
        assert sim.stats["cycles"] == 2
        assert sim.stats["process_activations"] > 0


class TestCaseStatement:
    def test_case_selects_arm(self):
        m = Module("case")
        clk = m.input("clk")
        sel = m.input("sel", 2)
        y = m.output("y", 4)
        m.comb("c", [Case(sel, [
            (0, [Assign(y, 1)]),
            (1, [Assign(y, 2)]),
            (2, [Assign(y, 4)]),
        ], default=[Assign(y, 15)])])
        sim = Simulation(m, {clk: 1000})
        for sel_val, expect in [(0, 1), (1, 2), (2, 4), (3, 15)]:
            sim.poke(sel, sel_val)
            assert sim.peek_int(y) == expect


class TestXPropagation:
    def test_unknown_init_contaminates_until_reset(self):
        m = Module("xprop")
        clk = m.input("clk")
        rst = m.input("rst")
        q = m.output("q", 4)
        y = m.output("y", 4)
        m.sync("p", clk, [Assign(q, q + const(1, 4))],
               reset=rst, reset_stmts=[Assign(q, 0)])
        m.comb("c", [Assign(y, q + const(1, 4))])
        sim = Simulation(m, {clk: 1000}, init_unknown=True)
        # q starts all-X as an un-reset register would.
        sim.poke(rst, 0)
        sim.cycle()
        assert not sim.peek(y).is_fully_defined
        sim.poke(rst, 1)
        sim.cycle({rst: 0})
        assert sim.peek(y).is_fully_defined
