"""Execution-equivalence suite for batched multi-mutant sweeps.

The batched execution mode (:mod:`repro.mutation.batched`) runs K
mutants per simulation sweep -- attached mutants ride one base
simulation, fork on their first divergence, and Razor forks stop early
once their verdict is settled.  Its contract is *field identity*: for
any batch size, worker count, shard size, cache state and fault plan,
the merged :class:`~repro.mutation.MutationReport` is equal on every
scored field to the serial one -- same ``first_divergence``, same
``timed_out``, same cache write-back keys.

This module locks that contract down:

* field identity across all three case-study IPs x both sensor types
  x batch sizes {1, 3, all} x workers {1, 2} x cold/warm cache;
* randomized-design lockstep (Hypothesis-built datapaths, in the
  style of ``tests/test_compiled_kernel.py``);
* early-kill semantics at the :func:`_drive_razor` level -- identical
  verdict fields, and never a ``timed_out`` misreport when the stall
  budget would only have been exhausted in skipped tail cycles;
* fork isolation -- the shared :class:`~repro.mutation.GoldenTrace`
  is bit-identical before and after a batched sweep;
* interplay with lint-pruning (deferred duplicate clones) and with a
  seeded worker-crash fault plan;
* the kernel-level :meth:`~repro.rtl.Simulation.snapshot_state` /
  ``restore_state`` pair the fork machinery builds on.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.abstraction import MutantSpec, generate_tlm
from repro.faults import FaultPlan, active_plan
from repro.flow import run_flow
from repro.ips import CASE_STUDIES, case_study
from repro.mutation import (
    GoldenTrace,
    ResultCache,
    CampaignScheduler,
    compute_golden_trace,
    inject_mutants,
    run_campaign,
)
from repro.mutation.analysis import (
    RazorMutantJudge,
    _drive_razor,
    _run_counter_mutant,
    _run_razor_mutant,
)
from repro.mutation.batched import run_batched_shard
from repro.mutation.cache import encode_golden_trace
from repro.mutation.campaign import prepare_campaign
from repro.rtl import Assign, If, Simulation, Module, const
from repro.sensors import insert_sensors
from repro.sta import analyze, bin_critical_paths
from repro.synth import synthesize

#: Reduced testbench lengths: long enough to exercise forks and
#: re-joins on every IP, short enough for the full matrix.
REDUCED = {"plasma": 40, "dsp": 48, "filter": 96}

IPS = sorted(CASE_STUDIES)
SENSORS = ("razor", "counter")

_case_cache: dict = {}


def case_campaign(ip, sensor):
    """(flow, stimuli, serial baseline report) for one IP x sensor,
    computed once per test session."""
    key = (ip, sensor)
    if key not in _case_cache:
        spec = case_study(ip)
        flow = run_flow(spec, sensor, run_mutation=False)
        stim = spec.stimulus(REDUCED[ip])
        baseline = run_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name=ip, sensor_type=sensor, workers=1,
        )
        _case_cache[key] = (flow, stim, baseline)
    return _case_cache[key]


def assert_reports_identical(report, baseline):
    """Field identity on the scored report plus outcome-by-outcome
    equality (covers ``first_divergence`` / ``timed_out`` / every
    verdict field of every mutant)."""
    assert report == baseline
    assert report.outcomes == baseline.outcomes
    assert report.cycles_per_run == baseline.cycles_per_run


@pytest.fixture(scope="module")
def sched2():
    """One persistent 2-worker pool shared by every workers=2 case."""
    with CampaignScheduler(workers=2) as scheduler:
        yield scheduler


# ----------------------------------------------------------------------
# Synthetic IP (fast fixtures for the judge/fork-level tests)
# ----------------------------------------------------------------------

def build_ip():
    m = Module("batch_ip")
    clk = m.input("clk")
    din = m.input("din", 8)
    en = m.input("en")
    acc = m.signal("acc", 8)
    scaled = m.signal("scaled", 8)
    out_acc = m.output("out_acc", 8)
    out_scaled = m.output("out_scaled", 8)
    m.sync("p_acc", clk, [If(en.eq(1), [Assign(acc, acc + din)])])
    m.sync("p_scaled", clk, [Assign(scaled, acc * const(5, 8))])
    m.comb("p_oa", [Assign(out_acc, acc)])
    m.comb("p_os", [Assign(out_scaled, scaled)])
    return m, clk


def augment(module_factory, sensor_type):
    m, clk = module_factory()
    report = analyze(synthesize(m), clock_period_ps=1000)
    critical = bin_critical_paths(report, threshold_ps=1e9)
    return insert_sensors(m, clk, critical, sensor_type=sensor_type)


def stimulus(n=24, seed=2):
    rng = random.Random(seed)
    return [{"din": rng.randrange(1, 256), "en": 1} for _ in range(n)]


def synthetic_campaign(sensor, module_factory=build_ip, stim=None):
    """(golden GeneratedTlm, injected GeneratedTlm, stimuli)."""
    aug = augment(module_factory, sensor)
    golden = generate_tlm(aug.module, variant="hdtlib", augmented=aug)
    injected = inject_mutants(aug, variant="hdtlib")
    return golden, injected, stim if stim is not None else stimulus()


# ----------------------------------------------------------------------
# Field identity: IPs x sensors x batch x workers x cache state
# ----------------------------------------------------------------------

class TestFieldIdentity:
    @pytest.mark.parametrize("ip", IPS)
    @pytest.mark.parametrize("sensor", SENSORS)
    @pytest.mark.parametrize("batch", [1, 3, "all"])
    def test_cold_then_warm_cache(self, ip, sensor, batch):
        flow, stim, baseline = case_campaign(ip, sensor)
        batch_k = baseline.total if batch == "all" else batch
        cache = ResultCache(None)
        cold = run_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name=ip, sensor_type=sensor,
            batch_size=batch_k, cache=cache,
        )
        assert_reports_identical(cold, baseline)
        assert cold.cache_misses == baseline.total
        warm = run_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name=ip, sensor_type=sensor,
            batch_size=batch_k, cache=cache,
        )
        assert_reports_identical(warm, baseline)
        # Batched write-back produced the exact keys a warm serial (or
        # batched) rerun replays from: everything hits.
        assert warm.cache_hits == baseline.total

    @pytest.mark.parametrize("ip", IPS)
    @pytest.mark.parametrize("sensor", SENSORS)
    @pytest.mark.parametrize("batch", [1, 3, "all"])
    def test_two_workers(self, ip, sensor, batch, sched2):
        flow, stim, baseline = case_campaign(ip, sensor)
        batch_k = baseline.total if batch == "all" else batch
        report = run_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name=ip, sensor_type=sensor,
            shard_size=2, batch_size=batch_k, scheduler=sched2,
        )
        assert_reports_identical(report, baseline)

    @pytest.mark.parametrize("sensor", SENSORS)
    def test_partial_cache_mixes_replay_and_batch(self, sensor):
        """A cache warmed by a *subset* shard leaves non-contiguous
        miss indices; batched sweeps over them stay identical."""
        flow, stim, baseline = case_campaign("dsp", sensor)
        # Seed every other mutant's verdict from a fully-warm serial
        # cache, leaving a non-contiguous miss set for the batched run.
        cache = ResultCache(None)
        full_cache = ResultCache(None)
        run_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name="dsp", sensor_type=sensor, cache=full_cache,
        )
        with_keys = prepare_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name="dsp", sensor_type=sensor, cache=full_cache,
        )
        assert with_keys.cache_keys is not None
        for i, key in enumerate(with_keys.cache_keys):
            if i % 2 == 0:
                payload = full_cache.get(key)
                assert payload is not None
                cache.put(key, payload)
        report = run_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name="dsp", sensor_type=sensor,
            cache=cache, batch_size=4,
        )
        assert_reports_identical(report, baseline)
        assert report.cache_hits == (baseline.total + 1) // 2

    @pytest.mark.parametrize("sensor", SENSORS)
    def test_synthetic_ip_every_batch_size(self, sensor):
        """Exhaustive batch-size scan on the fast synthetic IP."""
        golden, injected, stim = synthetic_campaign(sensor)
        baseline = run_campaign(
            golden, injected, stim, sensor_type=sensor
        )
        for batch in range(1, len(injected.mutants) + 2):
            report = run_campaign(
                golden, injected, stim,
                sensor_type=sensor, batch_size=batch,
            )
            assert_reports_identical(report, baseline)


# ----------------------------------------------------------------------
# Randomized-design lockstep (test_compiled_kernel style)
# ----------------------------------------------------------------------

def _random_module_factory(shape, inits, consts):
    def factory():
        m = Module("rand_batch_ip")
        clk = m.input("clk")
        din = m.input("din", 8)
        en = m.input("en")
        regs = [
            m.signal(f"r{k}", 8, init=inits[k])
            for k in range(len(inits))
        ]
        for k, reg in enumerate(regs):
            src = regs[k - 1] if k else din
            kind = shape[k]
            if kind == 0:
                body = [Assign(reg, reg + src)]
            elif kind == 1:
                body = [Assign(reg, reg ^ (src + const(consts[k], 8)))]
            elif kind == 2:
                body = [If(en.eq(1), [Assign(reg, src * const(consts[k], 8))])]
            else:
                body = [
                    If(src.eq(0), [Assign(reg, const(consts[k], 8))],
                       [Assign(reg, reg + const(1, 8))]),
                ]
            m.sync(f"p_r{k}", clk, body)
        for k, reg in enumerate(regs):
            out = m.output(f"o{k}", 8)
            m.comb(f"p_o{k}", [Assign(out, reg)])
        return m, clk
    return factory


@given(st.data())
@settings(max_examples=8, deadline=None)
def test_prop_random_design_batched_equals_serial(data):
    nregs = data.draw(st.integers(2, 3), label="nregs")
    shape = [data.draw(st.integers(0, 3), label=f"shape{k}")
             for k in range(nregs)]
    inits = [data.draw(st.integers(0, 255), label=f"init{k}")
             for k in range(nregs)]
    consts = [data.draw(st.integers(1, 255), label=f"const{k}")
              for k in range(nregs)]
    sensor = data.draw(st.sampled_from(SENSORS), label="sensor")
    stim = [
        {"din": data.draw(st.integers(0, 255), label=f"din{i}"),
         "en": data.draw(st.integers(0, 1), label=f"en{i}")}
        for i in range(data.draw(st.integers(6, 14), label="cycles"))
    ]
    factory = _random_module_factory(shape, inits, consts)
    golden, injected, stim = synthetic_campaign(
        sensor, module_factory=factory, stim=stim
    )
    baseline = run_campaign(golden, injected, stim, sensor_type=sensor)
    for batch in (2, len(injected.mutants)):
        report = run_campaign(
            golden, injected, stim, sensor_type=sensor, batch_size=batch
        )
        assert_reports_identical(report, baseline)


# ----------------------------------------------------------------------
# Early-kill semantics
# ----------------------------------------------------------------------

class _ScriptModel:
    """Fake TLM model emitting a scripted output per call; the script's
    last entry repeats forever."""

    PORTS_OUT = {"q": 8, "razor_err": 1, "razor_stall": 1}

    def __init__(self, script):
        self._script = script
        self._calls = 0

    def b_transport(self, inputs=None):
        out = self._script[min(self._calls, len(self._script) - 1)]
        self._calls += 1
        return dict(out)


SPEC = MutantSpec("min", "t", 0, "r")


def _drive_both(model_factory, stimuli, golden):
    """(serial outcome + calls, early-kill outcome + calls)."""
    results = []
    for early in (False, True):
        model = model_factory()
        judge = RazorMutantJudge(0, SPEC, golden, True)
        timed_out = _drive_razor(
            model, stimuli, 1, judge, early_kill=early
        )
        results.append((judge.finish(timed_out), model._calls))
    return results


class TestEarlyKill:
    def test_generated_mutants_identical_with_fewer_calls(self):
        """Seeded fixture: every generated Razor mutant produces the
        exact serial verdict under early-kill -- any changed field
        fails here."""
        golden_gen, injected, stim = synthetic_campaign("razor")
        golden = compute_golden_trace(
            golden_gen.instantiate(), stim,
            sensor_type="razor", recovery=True,
        )
        cut_calls = total_calls = 0
        for index, spec in enumerate(injected.mutants):
            calls = []
            outcomes = []
            for early in (False, True):
                judge = RazorMutantJudge(index, spec, golden, True)
                timed_out = _drive_razor(
                    _instantiate(injected, index), stim, 1, judge,
                    early_kill=early,
                )
                outcomes.append(judge.finish(timed_out))
                calls.append(judge.calls)
            assert outcomes[1] == outcomes[0]
            total_calls += calls[0]
            cut_calls += calls[1]
        assert cut_calls <= total_calls

    def test_tail_only_budget_exhaustion_not_misreported(self):
        """A mutant whose stall budget would be exhausted only in
        cycles the early-kill skipped must not be reported
        ``timed_out``: the verdict was already settled."""
        n = 4
        stimuli = [{"d": i} for i in range(n)]
        golden = compute_golden_trace(
            _ScriptModel([{"q": 0, "razor_err": 0, "razor_stall": 0}]),
            stimuli, sensor_type="razor", recovery=True,
        )
        # Functional output matches the golden stream every call (so
        # recovery completes), the error flag diverges immediately, and
        # the stall never releases -- the serial drive burns its whole
        # budget re-presenting the first vector.
        factory = lambda: _ScriptModel(
            [{"q": 0, "razor_err": 1, "razor_stall": 1}]
        )
        (serial, serial_calls), (early, early_calls) = _drive_both(
            factory, stimuli, golden
        )
        assert serial.timed_out            # the skipped tail did time out
        assert not early.timed_out         # ... but the verdict was settled
        assert early.killed and serial.killed
        assert early.first_divergence == serial.first_divergence == 0
        assert early.detected and early.error_risen
        assert early_calls == n            # recovery needed n matches
        assert serial_calls == 3 * n + 8   # full budget burned

    def test_no_settle_without_error_flag(self):
        """A divergence without a risen error never settles the judge:
        early-kill must drive the full stream (fields identical)."""
        stimuli = [{"d": i} for i in range(5)]
        golden = compute_golden_trace(
            _ScriptModel([{"q": 0, "razor_err": 0, "razor_stall": 0}]),
            stimuli, sensor_type="razor", recovery=True,
        )
        factory = lambda: _ScriptModel(
            [{"q": 9, "razor_err": 0, "razor_stall": 0}]
        )
        (serial, serial_calls), (early, early_calls) = _drive_both(
            factory, stimuli, golden
        )
        assert early == serial
        assert early_calls == serial_calls == len(stimuli)

    def test_settled_run_cut_short_keeps_all_fields(self):
        """Diverge + error + instant recovery: early-kill stops as soon
        as the golden stream is recovered, with identical fields."""
        stimuli = [{"d": i} for i in range(6)]
        golden = compute_golden_trace(
            _ScriptModel([{"q": 0, "razor_err": 0, "razor_stall": 0}]),
            stimuli, sensor_type="razor", recovery=True,
        )
        factory = lambda: _ScriptModel(
            [{"q": 0, "razor_err": 1, "razor_stall": 1}]
            + [{"q": 0, "razor_err": 0, "razor_stall": 0}] * 20
        )
        (serial, serial_calls), (early, early_calls) = _drive_both(
            factory, stimuli, golden
        )
        assert early == serial
        assert not early.timed_out
        assert early_calls <= serial_calls


def _instantiate(injected, index):
    mutant = injected.instantiate()
    mutant.activate_mutant(index)
    return mutant


# ----------------------------------------------------------------------
# Fork isolation
# ----------------------------------------------------------------------

class TestForkIsolation:
    @pytest.mark.parametrize("sensor", SENSORS)
    def test_golden_trace_bit_identical_after_sweep(self, sensor):
        golden, injected, stim = synthetic_campaign(sensor)
        prepared = prepare_campaign(
            golden, injected, stim,
            sensor_type=sensor, batch_size=len(injected.mutants),
        )
        (shard,) = prepared.shards
        before = json.dumps(
            encode_golden_trace(shard.golden), sort_keys=True
        )
        stim_before = tuple(dict(v) for v in shard.stimuli)
        outcomes = shard.run()
        after = json.dumps(
            encode_golden_trace(shard.golden), sort_keys=True
        )
        assert before == after
        assert tuple(dict(v) for v in shard.stimuli) == stim_before
        assert len(outcomes) == len(shard.indices)

    def test_sweep_outputs_do_not_alias_golden_dicts(self):
        """The full-output dicts the judges observe are the model's
        own; mutating an outcome path never writes into the trace."""
        golden, injected, stim = synthetic_campaign("razor")
        trace = compute_golden_trace(
            golden.instantiate(), stim,
            sensor_type="razor", recovery=True,
        )
        snapshot = [dict(o) for o in trace.full]
        prepared = prepare_campaign(
            golden, injected, stim, sensor_type="razor", batch_size=3
        )
        for shard in prepared.shards:
            shard.run()
        assert [dict(o) for o in trace.full] == snapshot


# ----------------------------------------------------------------------
# Interplay: lint-prune and fault plans
# ----------------------------------------------------------------------

class TestInterplay:
    @pytest.mark.parametrize("sensor", SENSORS)
    def test_batch_composed_with_lint_prune(self, sensor):
        from repro.lint import plan_pruning

        flow, stim, baseline = case_campaign("dsp", sensor)
        # Module-aware plan, exactly as run_flow builds it -- this is
        # the variant that actually defers duplicate clones.
        plan = plan_pruning(
            flow.injected, sensor, module=flow.augmented.module
        )
        report = run_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name="dsp", sensor_type=sensor,
            batch_size=4, lint_prune=True, prune_plan=plan,
        )
        assert_reports_identical(report, baseline)
        # Prune accounting is present either way; when the analyzer
        # found duplicates, their clones expanded off *batched* shard
        # results without changing a field.
        assert report.pruned_equivalent is not None
        assert report.pruned_duplicate is not None

    def test_batch_with_deferred_duplicate_clones(self):
        """An hf_ratio=2 Counter build collides max/delta mutants onto
        one HF tick, so the pruner defers duplicate clones until the
        representative's shard lands -- here, a *batched* shard."""
        from repro.lint import plan_pruning

        spec = case_study("dsp")
        module, clk = spec.factory()
        critical = bin_critical_paths(
            analyze(synthesize(module), clock_period_ps=spec.clock_period_ps),
            spec.slack_threshold_ps,
        )
        aug = insert_sensors(
            module, clk, critical, sensor_type="counter", hf_ratio=2,
            calibration_stimuli=spec.stimulus(
                min(spec.mutation_cycles, 128)
            ),
        )
        golden = generate_tlm(module, variant="hdtlib", augmented=aug)
        injected = inject_mutants(aug, variant="hdtlib")
        stim = spec.stimulus(spec.mutation_cycles)
        plan = plan_pruning(injected, "counter", module=module)
        assert plan.duplicate_of  # the fixture must actually defer

        baseline = run_campaign(
            golden, injected, stim, sensor_type="counter"
        )
        report = run_campaign(
            golden, injected, stim, sensor_type="counter",
            batch_size=4, lint_prune=True, prune_plan=plan,
        )
        assert_reports_identical(report, baseline)
        assert report.pruned_duplicate == len(plan.duplicate_of)

    def test_batch_under_seeded_worker_crashes(self, sched2):
        """Self-healing re-dispatch of batched shards: a seeded
        worker-crash plan leaves the report field-identical."""
        flow, stim, baseline = case_campaign("dsp", "razor")
        plan = FaultPlan.from_spec("seed=11;pool.break_worker=p0.3x2")
        with active_plan(plan):
            with CampaignScheduler(workers=2) as scheduler:
                report = run_campaign(
                    flow.tlm_optimized, flow.injected, stim,
                    ip_name="dsp", sensor_type="razor",
                    shard_size=1, batch_size=3, scheduler=scheduler,
                )
        assert_reports_identical(report, baseline)

    def test_shard_codec_round_trips_batching_fields(self):
        from repro.service.api import decode_shard, encode_shard

        golden, injected, stim = synthetic_campaign("razor")
        prepared = prepare_campaign(
            golden, injected, stim, sensor_type="razor", batch_size=2
        )
        (shard, *_) = prepared.shards
        decoded = decode_shard(encode_shard(shard))
        assert decoded.exec_strategy == "batched"
        assert decoded.batch_size == 2
        assert decoded.run() == shard.run()

    def test_decode_shard_defaults_to_serial(self):
        """Payloads from pre-batching coordinators decode serial."""
        from repro.service.api import decode_shard, encode_shard

        golden, injected, stim = synthetic_campaign("razor")
        prepared = prepare_campaign(
            golden, injected, stim, sensor_type="razor"
        )
        payload = encode_shard(prepared.shards[0])
        del payload["exec_strategy"], payload["batch_size"]
        decoded = decode_shard(payload)
        assert decoded.exec_strategy == "serial"
        assert decoded.batch_size is None


# ----------------------------------------------------------------------
# BATCH_SAFE_TARGETS emission
# ----------------------------------------------------------------------

class TestSafeTargets:
    def test_emitted_only_on_injected_models(self):
        golden, injected, stim = synthetic_campaign("razor")
        assert not hasattr(golden.compiled_class(), "BATCH_SAFE_TARGETS")
        safe = injected.compiled_class().BATCH_SAFE_TARGETS
        assert isinstance(safe, dict) and safe

    @pytest.mark.parametrize("ip", IPS)
    @pytest.mark.parametrize("sensor", SENSORS)
    def test_safe_map_names_real_attributes(self, ip, sensor):
        flow, _, _ = case_campaign(ip, sensor)
        cls = flow.injected.compiled_class()
        safe = getattr(cls, "BATCH_SAFE_TARGETS", {})
        instance = flow.injected.instantiate()
        targets = {spec.target for spec in flow.injected.mutants}
        for name, attr in safe.items():
            assert name in targets
            assert hasattr(instance, attr)


# ----------------------------------------------------------------------
# Kernel snapshot / restore (the RTL fork primitive)
# ----------------------------------------------------------------------

class TestKernelSnapshot:
    def _sim(self, ip="dsp"):
        spec = case_study(ip)
        module, clk = spec.factory()
        sim = Simulation(module, {clk: spec.clock_period_ps})
        names = {s.name: s for s in module.all_signals()
                 if s.direction == "in"}
        outs = [s for s in module.all_signals() if s.direction == "out"]
        stim = spec.stimulus(24)

        def drive(n, start):
            observed = []
            for vec in stim[start:start + n]:
                sim.cycle({
                    names[k]: v for k, v in vec.items() if k in names
                })
                observed.append(
                    tuple(sim.peek_int(o) for o in outs)
                )
            return observed

        return sim, drive

    def test_restore_replays_identically(self):
        sim, drive = self._sim()
        drive(8, 0)
        snap = sim.snapshot_state()
        first = drive(8, 8)
        sim.restore_state(snap)
        assert drive(8, 8) == first

    def test_restore_rebinds_nothing(self):
        """Compiled runner closures capture the value stores by
        identity; restore must mutate them in place."""
        sim, drive = self._sim()
        values, arrays = sim._values, sim._arrays
        snap = sim.snapshot_state()
        drive(4, 0)
        sim.restore_state(snap)
        assert sim._values is values
        assert sim._arrays is arrays
        for arr, words in arrays.items():
            assert sim._arrays[arr] is words

    def test_snapshot_isolated_from_further_simulation(self):
        sim, drive = self._sim()
        drive(4, 0)
        snap = sim.snapshot_state()
        frozen = json.dumps(
            sorted((s.name, str(v)) for s, v in snap["values"].items())
        )
        drive(8, 4)
        assert json.dumps(
            sorted((s.name, str(v)) for s, v in snap["values"].items())
        ) == frozen

    def test_restore_twice_from_one_snapshot(self):
        sim, drive = self._sim()
        drive(6, 0)
        snap = sim.snapshot_state()
        a = drive(6, 6)
        sim.restore_state(snap)
        b = drive(6, 6)
        sim.restore_state(snap)
        c = drive(6, 6)
        assert a == b == c
