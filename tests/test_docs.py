"""Doc-sync tests: the documentation cannot silently rot.

Two invariants, enforced in CI by the docs job:

* every ``repro`` CLI subcommand and every long option flag exposed by
  :func:`repro.cli.build_parser` appears in the CLI reference prose of
  ``README.md`` / ``docs/*.md`` (add a flag -> document it);
* every intra-repo markdown link in ``README.md`` / ``docs/*.md``
  resolves to an existing file (move a file -> fix the links).
"""

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent


def _doc_files():
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def _doc_text():
    return "\n".join(f.read_text() for f in _doc_files())


def _subparsers(parser):
    """``{subcommand name: sub-parser}`` of the one subparsers group."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    raise AssertionError("repro parser has no subcommands")


class TestDocsExist:
    def test_readme_and_docs_present(self):
        assert (REPO / "README.md").exists(), "README.md is missing"
        for name in ("architecture.md", "benchmarks.md"):
            assert (REPO / "docs" / name).exists(), f"docs/{name} missing"

    def test_readme_names_the_tier1_test_command(self):
        text = (REPO / "README.md").read_text()
        assert "python -m pytest" in text


class TestCliReferenceSync:
    def test_every_subcommand_is_documented(self):
        text = _doc_text()
        for name in _subparsers(build_parser()):
            assert re.search(rf"\brepro {name}\b", text), (
                f"CLI subcommand {name!r} is not documented in "
                "README.md/docs/*.md"
            )

    def test_every_flag_is_documented(self):
        text = _doc_text()
        for name, sub in _subparsers(build_parser()).items():
            for action in sub._actions:
                for opt in action.option_strings:
                    if not opt.startswith("--"):
                        continue  # -h and short aliases
                    if opt == "--help":
                        continue
                    assert f"`{opt}" in text or f"{opt} " in text or \
                        f"{opt}`" in text, (
                        f"flag {opt!r} of `repro {name}` is not "
                        "documented in README.md/docs/*.md"
                    )


_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


class TestIntraRepoLinks:
    @pytest.mark.parametrize(
        "doc", _doc_files(), ids=lambda p: p.name
    )
    def test_relative_links_resolve(self, doc):
        broken = []
        for target in _LINK.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            if not (doc.parent / path).exists():
                broken.append(target)
        assert not broken, (
            f"{doc.relative_to(REPO)} has broken intra-repo links: "
            f"{broken}"
        )
