"""Tests for ADAM injection, TLM mutation analysis and RTL validation.

These exercise the paper's headline claims end to end on a small IP:
all mutants killed; Razor raises and corrects 100% of the injected
errors; Counter measures delta mutants exactly and raises errors only
above the LUT threshold; RTL validation agrees with TLM.
"""

import random

import pytest

from repro.abstraction import generate_tlm
from repro.mutation import (
    delta_tick_plan,
    inject_mutants,
    run_mutation_analysis,
    validate_at_rtl,
)
from repro.rtl import Assign, If, Module, const
from repro.sensors import insert_sensors
from repro.sta import analyze, bin_critical_paths
from repro.synth import synthesize

PERIOD = 1000


def build_ip():
    """Small datapath with two registers and observable outputs."""
    m = Module("mut_ip")
    clk = m.input("clk")
    din = m.input("din", 8)
    en = m.input("en")
    acc = m.signal("acc", 8)
    scaled = m.signal("scaled", 8)
    out_acc = m.output("out_acc", 8)
    out_scaled = m.output("out_scaled", 8)
    m.sync("p_acc", clk, [
        If(en.eq(1), [Assign(acc, acc + din)]),
    ])
    m.sync("p_scaled", clk, [Assign(scaled, acc * const(5, 8))])
    m.comb("p_oa", [Assign(out_acc, acc)])
    m.comb("p_os", [Assign(out_scaled, scaled)])
    return m, clk


def augment(sensor_type):
    m, clk = build_ip()
    report = analyze(synthesize(m), clock_period_ps=PERIOD)
    critical = bin_critical_paths(report, threshold_ps=1e9)
    return insert_sensors(m, clk, critical, sensor_type=sensor_type)


def golden_factory_for(sensor_type, variant="hdtlib"):
    aug = augment(sensor_type)
    gen = generate_tlm(aug.module, variant=variant, augmented=aug)
    return lambda: gen.instantiate()


def stimulus(n=30, seed=2):
    rng = random.Random(seed)
    return [
        {"din": rng.randrange(1, 256), "en": 1}
        for _ in range(n)
    ]


class TestAdam:
    def test_razor_mutant_count_is_two_per_sensor(self):
        aug = augment("razor")
        gen = inject_mutants(aug)
        assert len(gen.mutants) == 2 * aug.sensor_count
        kinds = {m.kind for m in gen.mutants}
        assert kinds == {"min", "max"}

    def test_counter_mutant_count_is_three_per_sensor(self):
        aug = augment("counter")
        gen = inject_mutants(aug)
        assert len(gen.mutants) == 3 * aug.sensor_count
        kinds = [m.kind for m in gen.mutants]
        assert kinds.count("delta") == aug.sensor_count

    def test_delta_ticks_above_nominal(self):
        aug = augment("counter")
        plan = delta_tick_plan(aug)
        hf = aug.hf_period_ps()
        for path in aug.monitored:
            endpoint = aug.endpoint_of[path.endpoint]
            nominal_hf = -(-aug.nominal_delay_of[endpoint] // hf)
            assert plan[path.endpoint.name] > nominal_hf

    def test_injected_model_with_no_active_mutant_is_clean(self):
        """Switched-off mutants leave behaviour identical to the
        non-injected abstraction."""
        aug = augment("razor")
        injected = inject_mutants(aug).instantiate()
        golden = golden_factory_for("razor")()
        for inputs in stimulus(25):
            a = golden.b_transport({**inputs, "razor_r": 0})
            b = injected.b_transport({**inputs, "razor_r": 0})
            assert a == b

    def test_injection_requires_augmented_ip(self):
        m, clk = build_ip()
        with pytest.raises(ValueError):
            generate_tlm(m, inject_mutants=True)


class TestRazorCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        aug = augment("razor")
        injected = inject_mutants(aug)
        return run_mutation_analysis(
            golden_factory_for("razor"),
            injected,
            stimulus(30),
            ip_name="mut_ip",
            sensor_type="razor",
            recovery=True,
        )

    def test_all_mutants_killed(self, report):
        assert report.killed_pct == 100.0, report.survivors()

    def test_all_errors_risen(self, report):
        assert report.risen_pct == 100.0

    def test_all_corrected(self, report):
        assert report.corrected_pct == 100.0

    def test_mutation_score(self, report):
        assert report.mutation_score == 100.0

    def test_outcome_metadata(self, report):
        assert report.total == 4  # 2 sensors x 2 mutant classes
        assert {o.kind for o in report.outcomes} == {"min", "max"}

    def test_detection_only_mode_kills_without_correcting(self):
        aug = augment("razor")
        injected = inject_mutants(aug)
        report = run_mutation_analysis(
            golden_factory_for("razor"),
            injected,
            stimulus(30),
            sensor_type="razor",
            recovery=False,
        )
        assert report.killed_pct == 100.0
        assert report.risen_pct == 100.0
        assert report.corrected_pct is None


class TestCounterCampaign:
    @pytest.fixture(scope="class")
    def results(self):
        aug = augment("counter")
        injected = inject_mutants(aug)
        report = run_mutation_analysis(
            golden_factory_for("counter"),
            injected,
            stimulus(30),
            ip_name="mut_ip",
            sensor_type="counter",
        )
        return aug, injected, report

    def test_all_mutants_killed(self, results):
        aug, injected, report = results
        assert report.killed_pct == 100.0, report.survivors()

    def test_delta_mutants_measured_exactly(self, results):
        aug, injected, report = results
        for outcome in report.outcomes:
            if outcome.kind == "delta":
                assert outcome.meas_val == outcome.hf_tick

    def test_risen_only_above_threshold(self, results):
        aug, injected, report = results
        for outcome in report.outcomes:
            expected = outcome.hf_tick > 8
            assert outcome.error_risen == expected, outcome

    def test_risen_pct_below_100(self, results):
        """Sub-threshold delays are tolerable by design (Table 5)."""
        aug, injected, report = results
        assert 0.0 < report.risen_pct < 100.0

    def test_no_correction_for_counter(self, results):
        aug, injected, report = results
        assert report.corrected_pct is None


class TestRtlValidation:
    def test_razor_rtl_matches_tlm_risen(self):
        """Every razor mutant reproduced at RTL raises its error."""
        aug = augment("razor")
        injected = inject_mutants(aug)
        stim = stimulus(30)
        din = next(p for p in aug.module.inputs() if p.name == "din")
        en = next(p for p in aug.module.inputs() if p.name == "en")
        rec = aug.bank.recovery

        def drive(sim, i):
            vec = stim[i % len(stim)]
            sim.cycle({din: vec["din"], en: vec["en"], rec: 0})

        report = validate_at_rtl(aug, injected.mutants, drive, cycles=15)
        assert report.risen_pct == 100.0

    def test_counter_rtl_measures_same_ticks(self):
        """RTL delayed assignments land in the same HF period as the
        TLM delta mutants: identical MEAS_VAL, identical risen."""
        aug = augment("counter")
        injected = inject_mutants(aug)
        stim = stimulus(30)
        din = next(p for p in aug.module.inputs() if p.name == "din")
        en = next(p for p in aug.module.inputs() if p.name == "en")

        def drive(sim, i):
            vec = stim[i % len(stim)]
            sim.cycle({din: vec["din"], en: vec["en"]})

        report = validate_at_rtl(aug, injected.mutants, drive, cycles=15)
        by_spec = {
            (o.spec.kind, o.spec.register): o for o in report.outcomes
        }
        for spec in injected.mutants:
            outcome = by_spec[(spec.kind, spec.register)]
            assert outcome.meas_val == spec.hf_tick, spec
            assert outcome.error_risen == (spec.hf_tick > 8), spec
