"""Fleet service tests: the coordinator/worker daemons end-to-end,
the shared remote cache, the fleet health detail, and the client's
retry/reconnect policy.

Complements ``tests/test_placement.py`` (which proves the placement
layer and the determinism property): here the same machinery runs
through the *service* -- jobs submitted to a coordinator partition
across registered worker daemons, ``/healthz`` exposes per-placement
detail alongside the pre-fleet fields, ``/cache/<key>`` serves one
content-addressed store to the whole fleet, and ``ServiceClient``
survives connection resets on idempotent calls.
"""

import http.client
import json
import threading

import pytest

from repro.flow import run_flow
from repro.ips import case_study
from repro.mutation import ResultCache, run_campaign
from repro.service import (
    CampaignService,
    RemoteResultCache,
    ServiceClient,
    ServiceError,
    ServiceServer,
    decode_report,
)

REDUCED_CYCLES = 24


@pytest.fixture(scope="module")
def flows():
    built = {}

    def get(ip, sensor):
        key = (ip, sensor)
        if key not in built:
            built[key] = run_flow(case_study(ip), sensor,
                                  run_mutation=False)
        return built[key]

    return get


@pytest.fixture(scope="module")
def dsp_razor_baseline(flows):
    flow = flows("dsp", "razor")
    stim = case_study("dsp").stimulus(REDUCED_CYCLES)
    return run_campaign(
        flow.tlm_optimized, flow.injected, stim,
        ip_name="dsp", sensor_type="razor", workers=1,
    )


def _server(flows=None, *, role="standalone", **kwargs):
    seeded = kwargs.pop("seed", None) or []
    kwargs.setdefault("workers", 1)
    service = CampaignService(
        flows={key: flows(*key) for key in seeded} if flows else None,
        role=role,
        **kwargs,
    )
    return ServiceServer(service)


def _client(server, **kw):
    host, port = server.address
    kw.setdefault("timeout", 60.0)
    kw.setdefault("stream_timeout", 120.0)
    return ServiceClient(host, port, **kw)


def _raw(server, method, path, payload=None):
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = json.dumps(payload).encode() if payload is not None \
            else None
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"null")
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator + worker daemons end-to-end
# ----------------------------------------------------------------------

class TestCoordinatorFleet:
    def test_job_partitions_across_registered_workers(
            self, flows, dsp_razor_baseline):
        with _server(flows, role="coordinator",
                     seed=[("dsp", "razor")]) as coordinator, \
                _server(role="worker") as worker_a, \
                _server(role="worker") as worker_b:
            client = _client(coordinator)
            for worker in (worker_a, worker_b):
                detail = client.register_worker(*worker.address)
                assert detail["kind"] == "remote"
                assert detail["alive"] is True
            assert len(client.workers()) == 2
            record = client.submit({"ip": "dsp", "sensor": "razor",
                                    "cycles": REDUCED_CYCLES,
                                    "shard_size": 1})
            end = client.watch(record["id"])
            assert end["status"] == "done"
            assert decode_report(end["report"]) == dsp_razor_baseline
            received = [
                w.service.worker.describe()["shards_received"]
                for w in (worker_a, worker_b)
            ]
            # The fleet really partitioned the stream: with one mutant
            # per shard and least-loaded dispatch, both daemons worked.
            assert all(count > 0 for count in received), received

    def test_healthz_keeps_old_fields_and_adds_placements(self, flows):
        with _server(flows, role="coordinator") as coordinator, \
                _server(role="worker", workers=1) as worker:
            client = _client(coordinator)
            client.register_worker(*worker.address)
            health = client.health()
            # Pre-fleet fields, untouched (older clients keep working).
            assert health["status"] == "ok"
            assert health["pool"]["workers"] == 1
            assert health["pool"]["max_jobs"] == 4
            assert health["jobs"]["total"] == 0
            assert "flows_cached" in health
            assert "state_dir" in health
            assert "cache" in health
            # The fleet tier on top.
            assert health["role"] == "coordinator"
            kinds = [p["kind"] for p in health["placements"]]
            assert kinds == ["local", "remote"]
            local, remote = health["placements"]
            assert local["identity"].startswith("local/")
            for placement in health["placements"]:
                for field in ("identity", "workers", "alive",
                              "in_flight", "queued", "shards_done"):
                    assert field in placement, (placement, field)
            assert health["fleet"]["members"] == 1
            assert health["fleet"]["workers"] == 2
            assert health["worker"]["identity"]

    def test_registering_unreachable_worker_is_502(self, flows):
        with _server(flows) as coordinator:
            client = _client(coordinator)
            with pytest.raises(ServiceError) as err:
                client.register_worker("127.0.0.1", 9)  # discard port
            assert err.value.status == 502

    def test_malformed_worker_registration_is_400(self, flows):
        with _server(flows) as coordinator:
            status, data = _raw(coordinator, "POST", "/workers",
                                {"host": "127.0.0.1"})
            assert status == 400
            assert "port" in data["error"]

    def test_bogus_shard_payload_is_400(self):
        with _server(role="worker") as worker:
            status, data = _raw(worker, "POST", "/shards",
                                {"kind": "bogus"})
            assert status == 400
            assert "bogus" in data["error"]


# ----------------------------------------------------------------------
# The shared remote cache
# ----------------------------------------------------------------------

class TestRemoteResultCache:
    def test_roundtrip_through_the_cache_routes(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        with _server(cache=store) as server:
            remote = RemoteResultCache(*server.address)
            assert remote.get("0" * 64) is None
            assert remote.misses == 1
            remote.put("0" * 64, {"verdict": "killed", "ip": "dsp"})
            assert remote.get("0" * 64) == {"verdict": "killed",
                                            "ip": "dsp"}
            assert remote.hits == 1
            # The write really landed in the server-side store.
            assert store.get("0" * 64) == {"verdict": "killed",
                                           "ip": "dsp"}
            stats = remote.stats()
            assert stats["backend"] == "remote"
            assert stats["entries"] == 1
            assert stats["client_hits"] == 1
            assert stats["client_misses"] == 1
            assert len(remote) == 1

    def test_transport_failure_degrades_to_miss(self):
        with _server() as server:
            host, port = server.address
        # Daemon gone: gets are misses, puts are dropped, both count.
        remote = RemoteResultCache(host, port, timeout=2.0)
        assert remote.get("f" * 64) is None
        remote.put("f" * 64, {"verdict": "killed"})
        assert remote.errors >= 2
        stats = remote.stats()
        assert stats["backend"] == "remote"
        assert stats["entries"] is None

    def test_prune_is_refused(self):
        remote = RemoteResultCache("127.0.0.1", 9)
        with pytest.raises(RuntimeError, match="prune"):
            remote.prune(max_bytes=1)

    def test_cache_routes_404_without_a_cache(self, flows):
        with _server(flows) as server:
            status, data = _raw(server, "GET", "/cache/" + "a" * 64)
            assert status == 404
            assert "no cache" in data["error"]
            status, _data = _raw(server, "GET", "/cache/stats")
            assert status == 404

    def test_bad_cache_key_is_400(self, tmp_path):
        with _server(cache=ResultCache(tmp_path / "c")) as server:
            status, _data = _raw(server, "GET", "/cache/a/../b")
            assert status == 400


# ----------------------------------------------------------------------
# Client retry / reconnect policy
# ----------------------------------------------------------------------

class _FlakyClient(ServiceClient):
    """A client whose first N requests die with a connection reset;
    sleeps are recorded instead of slept."""

    def __init__(self, *args, fail_first=0, **kwargs):
        super().__init__(*args, **kwargs)
        self.fail_first = fail_first
        self.attempts = 0
        self.slept = []

    def _sleep(self, seconds):
        self.slept.append(seconds)

    def _request(self, method, path, payload=None):
        self.attempts += 1
        if self.attempts <= self.fail_first:
            raise ConnectionResetError("scripted reset")
        return super()._request(method, path, payload)


class TestClientRetries:
    def test_idempotent_get_retries_with_capped_backoff(self, flows):
        with _server(flows) as server:
            host, port = server.address
            client = _FlakyClient(host, port, fail_first=3,
                                  retries=4, backoff=0.05,
                                  backoff_cap=0.08)
            health = client.health()
            assert health["status"] == "ok"
            assert client.attempts == 4
            # Exponential, then capped: 0.05, 0.08, 0.08.
            assert client.slept == [0.05, 0.08, 0.08]

    def test_get_gives_up_after_the_retry_budget(self):
        client = _FlakyClient("127.0.0.1", 9, fail_first=99, retries=2)
        with pytest.raises(ConnectionResetError):
            client.health()
        assert client.attempts == 3
        assert len(client.slept) == 2

    def test_submit_retries_behind_idempotency_key(self, flows):
        # PR 7: submit joined the retry policy -- safe because the
        # payload carries a client-generated idempotency key the
        # server dedups on (dedup itself is pinned in
        # tests/test_service.py::TestSubmitIdempotency).
        with _server(flows) as server:
            host, port = server.address
            client = _FlakyClient(host, port, fail_first=1, retries=4,
                                  timeout=60.0)
            record = client.submit({"ip": "dsp", "sensor": "razor",
                                    "cycles": REDUCED_CYCLES})
            assert client.attempts == 2
            assert len(client.slept) == 1
            assert client.watch(record["id"])["status"] == "done"

    def test_service_error_is_never_retried(self, flows):
        with _server(flows) as server:
            host, port = server.address
            client = _FlakyClient(host, port, retries=4)
            with pytest.raises(ServiceError):
                client.job("doesnotexist")
            assert client.attempts == 1

    def test_event_stream_reconnects_without_duplicates(self, flows,
                                                        dsp_razor_baseline):
        """The stream drops after every event; the client reconnects,
        the server replays history, and the dedup yields each event
        exactly once, terminal included."""
        with _server(flows, seed=[("dsp", "razor")]) as server:
            client = _client(server, retries=8)
            client.slept = []
            client._sleep = client.slept.append
            record = client.submit({"ip": "dsp", "sensor": "razor",
                                    "cycles": REDUCED_CYCLES,
                                    "shard_size": 4})
            # Run the job to completion first so the reference stream
            # is stable (a terminal job replays deterministically).
            reference = [
                e for e in _client(server).events(record["id"])
            ]
            assert reference[-1]["type"] == "end"

            real_stream_once = client._stream_once

            def dropping_stream(job_id, skip, state=None):
                # Yield exactly one event per connection, then die.
                for event in real_stream_once(job_id, skip, state):
                    yield event
                    if event.get("type") != "end":
                        raise ConnectionResetError("scripted drop")

            client._stream_once = dropping_stream
            events = list(client.events(record["id"]))
            assert events[-1]["type"] == "end"
            assert decode_report(events[-1]["report"]) == \
                dsp_razor_baseline

    def test_live_stream_survives_mid_job_drops(self, flows,
                                                dsp_razor_baseline):
        """Reconnect against a *running* job: each connection dies
        after two events; the reassembled stream still carries every
        shard outcome exactly once."""
        with _server(flows, seed=[("dsp", "razor")],
                     max_jobs=1) as server:
            client = _client(server, retries=10)
            client._sleep = lambda seconds: None
            cycles = case_study("filter").mutation_cycles
            blocker = client.submit({"ip": "filter", "sensor": "razor",
                                     "cycles": cycles, "shard_size": 1})
            record = client.submit({"ip": "dsp", "sensor": "razor",
                                    "cycles": REDUCED_CYCLES,
                                    "shard_size": 2})

            real_stream_once = client._stream_once

            def dropping_stream(job_id, skip, state=None):
                for position, event in enumerate(
                    real_stream_once(job_id, skip, state)
                ):
                    yield event
                    if event.get("type") != "end" and position >= 1:
                        raise ConnectionResetError("scripted drop")

            client._stream_once = dropping_stream
            events = []
            collector = threading.Thread(
                target=lambda: events.extend(
                    client.events(record["id"])
                )
            )
            collector.start()
            _client(server).cancel(blocker["id"])
            collector.join(timeout=120)
            assert not collector.is_alive()
            assert events[-1]["type"] == "end"
            shard_outcomes = sum(
                len(e["outcomes"]) for e in events
                if e["type"] == "shard"
            )
            assert shard_outcomes == dsp_razor_baseline.total
            assert decode_report(events[-1]["report"]) == \
                dsp_razor_baseline

    def test_stream_gives_up_after_consecutive_dead_connections(self):
        client = ServiceClient("127.0.0.1", 9, retries=2)
        client._sleep = lambda seconds: None
        with pytest.raises(ServiceError, match="without 'end'"):
            list(client.events("whatever"))


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestStatusServerCli:
    def test_status_server_renders_fleet_detail(self, flows, capsys):
        from repro.cli import main

        with _server(flows, role="coordinator") as coordinator, \
                _server(role="worker") as worker:
            _client(coordinator).register_worker(*worker.address)
            host, port = coordinator.address
            code = main(["status", "--server",
                         "--host", host, "--port", str(port)])
            out = capsys.readouterr().out
            assert code == 0
            assert "coordinator" in out
            assert "Shard placements" in out
            assert "local/" in out
            assert "remote" in out

    def test_parse_hostport(self):
        from repro.cli import _parse_hostport

        assert _parse_hostport("127.0.0.1:8731") == ("127.0.0.1", 8731)
        with pytest.raises(ValueError):
            _parse_hostport("8731")
        with pytest.raises(ValueError):
            _parse_hostport("host:port")
