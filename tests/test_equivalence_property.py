"""Property-based cross-level equivalence on randomly generated IPs.

The strongest correctness property in the repository: for *any*
synthesisable design expressible in the IR, the RTL kernel and both
generated TLM variants must agree cycle by cycle.  Hypothesis builds
random small modules (random expression trees, register/comb mixes)
and random input streams, then runs all three levels in lockstep.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.abstraction import generate_tlm
from repro.rtl import (
    Assign,
    Binop,
    Const,
    If,
    Module,
    Mux,
    Signal,
    Simulation,
    Unop,
)

WIDTH = 8
N_INPUTS = 3
N_REGS = 3

_BINOPS = ["and", "or", "xor", "add", "sub", "mul"]
_UNOPS = ["not", "neg"]
_CMPS = ["eq", "ne", "lt", "ge", "lt_s", "ge_s"]


def build_expr(draw, leaves, depth):
    """Random width-8 expression over the given leaf signals."""
    if depth <= 0 or draw(st.integers(0, 3)) == 0:
        if draw(st.booleans()):
            return leaves[draw(st.integers(0, len(leaves) - 1))]
        return Const(draw(st.integers(0, 255)), WIDTH)
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return Binop(
            _BINOPS[draw(st.integers(0, len(_BINOPS) - 1))],
            build_expr(draw, leaves, depth - 1),
            build_expr(draw, leaves, depth - 1),
        )
    if kind == 1:
        return Unop(
            _UNOPS[draw(st.integers(0, len(_UNOPS) - 1))],
            build_expr(draw, leaves, depth - 1),
        )
    cond = Binop(
        _CMPS[draw(st.integers(0, len(_CMPS) - 1))],
        build_expr(draw, leaves, depth - 1),
        build_expr(draw, leaves, depth - 1),
    )
    return Mux(
        cond,
        build_expr(draw, leaves, depth - 1),
        build_expr(draw, leaves, depth - 1),
    )


@st.composite
def random_design(draw):
    """A random module: N inputs, N registers, comb outputs."""
    m = Module("rand_ip")
    clk = m.input("clk")
    inputs = [m.input(f"i{k}", WIDTH) for k in range(N_INPUTS)]
    regs = [m.signal(f"r{k}", WIDTH, init=draw(st.integers(0, 255)))
            for k in range(N_REGS)]
    leaves = inputs + regs
    for k, reg in enumerate(regs):
        body = [Assign(reg, build_expr(draw, leaves, 3))]
        if draw(st.booleans()):
            cond = Binop("ne", leaves[draw(st.integers(0, len(leaves) - 1))],
                         Const(draw(st.integers(0, 255)), WIDTH))
            body = [If(cond, body,
                       [Assign(reg, build_expr(draw, leaves, 2))])]
        m.sync(f"p_r{k}", clk, body)
    out = m.output("out", WIDTH)
    m.comb("p_out", [Assign(out, build_expr(draw, leaves, 3))])
    stream = draw(
        st.lists(
            st.tuples(*[st.integers(0, 255)] * N_INPUTS),
            min_size=4,
            max_size=12,
        )
    )
    return m, clk, inputs, out, stream


@given(random_design())
@settings(max_examples=40, deadline=None)
def test_prop_rtl_tlm_equivalence(design):
    """RTL kernel == generated hdtlib TLM == generated sctypes TLM."""
    m, clk, inputs, out, stream = design
    sim = Simulation(m, {clk: 1000}, input_launch_at_edge=True)
    hd = generate_tlm(m, variant="hdtlib").instantiate()
    sc = generate_tlm(m, variant="sctypes").instantiate()
    for cycle, values in enumerate(stream):
        vec = {f"i{k}": v for k, v in enumerate(values)}
        sim.cycle({sig: v for sig, v in zip(inputs, values)})
        out_hd = hd.b_transport(vec)["out"]
        out_sc = sc.b_transport(vec)["out"]
        out_rtl = sim.peek_int(out)
        assert out_hd == out_rtl, f"hdtlib diverged at cycle {cycle}"
        assert out_sc == out_rtl, f"sctypes diverged at cycle {cycle}"


@given(random_design())
@settings(max_examples=15, deadline=None)
def test_prop_generated_source_compiles_cleanly(design):
    m, *_ = design
    gen = generate_tlm(m, variant="hdtlib")
    compile(gen.source, "<prop>", "exec")
    assert gen.loc > 20
