"""Tests for the two data-type libraries (sctypes and hdtlib) and the
cross-library equivalence properties that justify the data-type
abstraction step (paper Section 5.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.hdtlib import (
    BitVec2,
    LogicVal,
    LogicVec4,
    SInt,
    UInt,
    bitvec_from_lv,
    int_from_lv,
    logicvec_from_lv,
    lv_from_logicvec,
    ops,
)
from repro.rtl.types import LV
from repro.sctypes import ScBitVector, ScInt, ScLogicVector, ScUInt


# ----------------------------------------------------------------------
# sctypes
# ----------------------------------------------------------------------

class TestScLogicVector:
    def test_roundtrip_str(self):
        assert str(ScLogicVector.from_str("10XZ")) == "10XZ"

    def test_from_to_lv(self):
        lv = LV.from_str("1X0Z")
        assert ScLogicVector.from_lv(lv).to_lv() == lv

    def test_and_matches_lv(self):
        a, b = "110X", "1010"
        got = ScLogicVector.from_str(a) & ScLogicVector.from_str(b)
        assert str(got) == str(LV.from_str(a) & LV.from_str(b))

    def test_arith_contaminates(self):
        a = ScLogicVector.from_str("1X")
        b = ScLogicVector.from_int(2, 1)
        assert str(a + b) == "XX"

    def test_shifts(self):
        v = ScLogicVector.from_int(8, 0b1001)
        assert (v.shl(2)).to_int() == 0b100100
        assert (v.shr(3)).to_int() == 0b1
        s = ScLogicVector.from_int(4, 0b1000)
        assert s.sar(2).to_int() == 0b1110

    def test_compare(self):
        a = ScLogicVector.from_int(4, 0xF)
        b = ScLogicVector.from_int(4, 1)
        assert a.gt(b) == 1
        assert a.lt(b, signed=True) == 1

    def test_slice_concat(self):
        v = ScLogicVector.from_int(8, 0xA5)
        assert v.slice(7, 4).to_int() == 0xA
        assert v.slice(7, 4).concat(v.slice(3, 0)).to_int() == 0xA5

    def test_reductions(self):
        assert ScLogicVector.from_int(3, 0b111).reduce_and() == 1
        assert ScLogicVector.from_int(3, 0b000).reduce_or() == 0
        assert ScLogicVector.from_int(3, 0b101).reduce_xor() == 0

    def test_resize(self):
        v = ScLogicVector.from_int(4, 0b1000)
        assert v.resize(8, signed=True).to_int() == 0xF8
        assert v.resize(8).to_int() == 0x08
        assert v.resize(2).to_int() == 0b00

    def test_to_int_or(self):
        assert ScLogicVector.from_str("1X").to_int_or(0) == 0b10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ScLogicVector([])


class TestScBitVector:
    def test_fold_from_logic(self):
        lv = ScLogicVector.from_str("1XZ0")
        assert ScBitVector.from_logic_vector(lv).to_int() == 0b1000

    def test_ops(self):
        a = ScBitVector.from_int(4, 0b1100)
        b = ScBitVector.from_int(4, 0b1010)
        assert (a & b).to_int() == 0b1000
        assert (a | b).to_int() == 0b1110
        assert (a ^ b).to_int() == 0b0110
        assert (~a).to_int() == 0b0011
        assert (a + b).to_int() == (0b1100 + 0b1010) & 0xF

    def test_validation(self):
        with pytest.raises(ValueError):
            ScBitVector([0, 2])


class TestScIntegers:
    def test_wrap(self):
        assert (ScUInt(8, 200) + 100).value == 44

    def test_signed_view(self):
        assert ScInt(4, 0xF).signed_value == -1
        assert int(ScInt(4, 0x7)) == 7

    def test_signed_ordering(self):
        assert ScInt(4, 0xF) < ScInt(4, 1)
        assert not ScUInt(4, 0xF) < ScUInt(4, 1)

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            ScUInt(4, 1) + ScUInt(8, 1)


# ----------------------------------------------------------------------
# hdtlib
# ----------------------------------------------------------------------

class TestOps:
    def test_mask(self):
        assert ops.mask(8) == 0xFF

    def test_arith(self):
        assert ops.add(250, 10, 8) == 4
        assert ops.sub(0, 1, 8) == 255
        assert ops.mul(16, 16, 8) == 0

    def test_signed(self):
        assert ops.to_signed(0xFF, 8) == -1
        assert ops.lt_s(0xFF, 1, 8) == 1
        assert ops.ge_s(1, 0xFF, 8) == 1

    def test_shifts(self):
        assert ops.shl(1, 10, 8) == 0
        assert ops.sar(0x80, 4, 8) == 0xF8
        assert ops.sar(0x80, 100, 8) == 0xFF

    def test_reductions(self):
        assert ops.red_and(0xFF, 8) == 1
        assert ops.red_and(0xFE, 8) == 0
        assert ops.red_or(0, 8) == 0
        assert ops.red_xor(0b1011, 4) == 1

    def test_structure(self):
        assert ops.slice_(0xA5, 7, 4) == 0xA
        assert ops.concat([(0xA, 4), (0x5, 4)]) == 0xA5
        assert ops.replace_slice(0x00, 5, 2, 0xF) == 0b00111100
        assert ops.mux(1, 5, 9) == 5
        assert ops.mux(0, 5, 9) == 9


class TestBitVec2:
    def test_immutable(self):
        v = BitVec2(4, 5)
        with pytest.raises(AttributeError):
            v.value = 2

    def test_ops(self):
        a, b = BitVec2(8, 0xF0), BitVec2(8, 0x0F)
        assert (a | b).to_int() == 0xFF
        assert (a & b).to_int() == 0
        assert (a + b).to_int() == 0xFF
        assert (~a).to_int() == 0x0F

    def test_signed(self):
        assert BitVec2(4, 0xF).to_int_signed() == -1

    def test_slice_concat_resize(self):
        v = BitVec2(8, 0xA5)
        assert v.slice(7, 4).to_int() == 0xA
        assert v.slice(7, 4).concat(v.slice(3, 0)).to_int() == 0xA5
        assert BitVec2(4, 0x8).resize(8, signed=True).to_int() == 0xF8


class TestLogicVec4:
    def test_z_normalised_to_x(self):
        assert str(LogicVec4.from_str("Z1")) == "X1"

    def test_planes_disjoint(self):
        v = LogicVec4(4, 0b1111, 0b0011)
        assert v.value & v.unk == 0

    def test_to_int_folds(self):
        assert LogicVec4.from_str("1X").to_int() == 0b10

    def test_karnaugh_and(self):
        a = LogicVec4.from_str("0X1X")
        b = LogicVec4.from_str("XX11")
        assert str(a & b) == "0X1X"

    def test_karnaugh_or(self):
        a = LogicVec4.from_str("1X0X")
        b = LogicVec4.from_str("XX00")
        assert str(a | b) == "1X0X"

    def test_logicval(self):
        assert str(LogicVal("Z")) == "X"
        assert LogicVal("1") == 1
        assert not LogicVal("X").is_known


class TestHdtIntegers:
    def test_uint_wraps(self):
        assert int(UInt(8, 255) + 1) == 0

    def test_sint_signed(self):
        assert int(SInt(8, 0xFF)) == -1
        assert SInt(8, 0xFF) < SInt(8, 0)


# ----------------------------------------------------------------------
# Cross-library equivalence properties
# ----------------------------------------------------------------------

logic_text = st.text(alphabet="01XZ", min_size=1, max_size=24)


@given(logic_text, logic_text)
def test_prop_sctypes_matches_lv_bitwise(a, b):
    """ScLogicVector (table-driven) == LV (plane-driven) on all ops."""
    if len(a) != len(b):
        b = (b * len(a))[: len(a)]
    la, lb = LV.from_str(a), LV.from_str(b)
    sa, sb = ScLogicVector.from_str(a), ScLogicVector.from_str(b)
    assert str(sa & sb) == str(la & lb)
    assert str(sa | sb) == str(la | lb)
    assert str(sa ^ sb) == str(la ^ lb)
    assert str(~sa) == str(~la)


@given(logic_text)
def test_prop_hdtlib_matches_lv_unary(text):
    """LogicVec4 matches LV modulo the Z->X fold."""
    lv = LV.from_str(text)
    hv = logicvec_from_lv(lv)
    assert str(hv) == str(lv).replace("Z", "X")
    assert str(~hv) == str(~lv)


@given(logic_text, logic_text)
def test_prop_hdtlib_matches_lv_bitwise(a, b):
    if len(a) != len(b):
        b = (b * len(a))[: len(a)]
    la, lb = LV.from_str(a), LV.from_str(b)
    ha, hb = logicvec_from_lv(la), logicvec_from_lv(lb)
    assert lv_from_logicvec(ha & hb) == (la & lb)
    assert lv_from_logicvec(ha | hb) == (la | lb)
    assert lv_from_logicvec(ha ^ hb) == (la ^ lb)


@given(logic_text)
def test_prop_xz_fold_is_stable(text):
    """Folding X/Z->0 then reinterpreting defined bits is idempotent
    and agrees across all three libraries."""
    lv = LV.from_str(text)
    as_int = int_from_lv(lv)
    assert as_int == lv.to_int_or(0)
    assert bitvec_from_lv(lv).to_int() == as_int
    assert logicvec_from_lv(lv).to_int() == as_int
    assert ScLogicVector.from_lv(lv).to_int_or(0) == as_int


@given(st.integers(1, 48), st.data())
def test_prop_defined_vectors_agree_everywhere(width, data):
    """On fully-defined data, LV, ScLogicVector, BitVec2 and raw ops
    all compute identical arithmetic."""
    a = data.draw(st.integers(0, (1 << width) - 1))
    b = data.draw(st.integers(0, (1 << width) - 1))
    expected = (a + b) & ((1 << width) - 1)
    assert (LV.from_int(width, a) + LV.from_int(width, b)).to_int() == expected
    assert (
        ScLogicVector.from_int(width, a) + ScLogicVector.from_int(width, b)
    ).to_int() == expected
    assert (BitVec2(width, a) + BitVec2(width, b)).to_int() == expected
    assert ops.add(a, b, width) == expected


@given(st.integers(1, 48), st.data())
def test_prop_shift_agreement(width, data):
    value = data.draw(st.integers(0, (1 << width) - 1))
    n = data.draw(st.integers(0, width + 4))
    assert BitVec2(width, value).shl(n).to_int() == \
        LV.from_int(width, value).shl(n).to_int()
    assert BitVec2(width, value).sar(n).to_int() == \
        LV.from_int(width, value).sar(n).to_int()
