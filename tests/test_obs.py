"""Observability tests (PR 10): tracer, metrics, service endpoints.

Acceptance contract:

* the span tracer is inert when disabled and records coordinator
  spans, instants, thread-local context attributes and absorbed
  worker-shard captures when enabled; its Chrome-trace export passes
  :func:`repro.obs.validate_chrome_trace`;
* tracing changes **nothing** about campaign results: reports run
  with the tracer on compare field-for-field equal to reports run
  with it off (the full IP x sensor x workers x batch sweep is gated
  in ``benchmarks/bench_obs.py``; a smoke slice runs here);
* :class:`repro.obs.CompletionStamps` rejects late
  ``add_done_callback`` stamps after ``close()`` -- the scheduler
  drain-loop fix;
* the metrics registry renders valid Prometheus text with at least
  10 well-known series, and ``GET /metrics`` serves it raw;
* ``GET /healthz`` carries the compact metrics snapshot (per-worker
  shards/sec, in-flight, cache hit ratio) behind
  ``repro status --server`` / ``repro top``;
* ``/events`` progress events stay monotonic under the batched
  executor and every mutant -- early-killed included -- is counted
  exactly once;
* ``GET /jobs/<id>/trace`` 404s while tracing is off and exports a
  valid, job-filtered Chrome trace when the server runs with
  ``--trace``.
"""

import http.client
import json
import threading
from concurrent.futures import Future

import pytest

from repro.flow import run_flow
from repro.ips import case_study
from repro.mutation import run_campaign
from repro.obs import (
    REGISTRY,
    TRACER,
    CompletionStamps,
    MetricsRegistry,
    ShardCapture,
    absorb_shard_counters,
    shard_capture,
    shard_count,
    shard_span,
    trace_span,
    validate_chrome_trace,
)
from repro.obs.tracer import _WORKER_PID_BASE
from repro.service import (
    CampaignService,
    ServiceClient,
    ServiceServer,
    decode_report,
)

REDUCED_CYCLES = 24


@pytest.fixture(autouse=True)
def _clean_obs():
    """Obs state is process-global; leave every test a blank slate."""
    TRACER.disable()
    TRACER.clear()
    REGISTRY.reset()
    yield
    TRACER.disable()
    TRACER.clear()
    REGISTRY.reset()


@pytest.fixture(scope="module")
def flow():
    """One memoised flow build (filter/razor) for the whole module."""
    return run_flow(case_study("filter"), "razor", run_mutation=False)


def _campaign(flow, **kwargs):
    stim = case_study("filter").stimulus(REDUCED_CYCLES)
    return run_campaign(
        flow.tlm_optimized, flow.injected, stim,
        ip_name="filter", sensor_type="razor", **kwargs,
    )


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------

class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        with trace_span("quiet", ip="filter"):
            TRACER.instant("ping")
        assert len(TRACER) == 0
        # Disabled spans share one nullcontext -- no per-call object.
        assert trace_span("a") is trace_span("b")

    def test_enabled_span_and_instant_are_recorded(self):
        TRACER.enable()
        with trace_span("work", ip="filter"):
            TRACER.instant("ping", n=3)
        assert len(TRACER) == 2
        events = TRACER.chrome_trace()["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert spans[0]["name"] == "work"
        assert spans[0]["args"]["ip"] == "filter"
        assert spans[0]["dur"] >= 0
        assert instants[0]["name"] == "ping"
        assert instants[0]["args"]["n"] == 3

    def test_context_attrs_flow_into_spans_and_filter_exports(self):
        TRACER.enable()
        with TRACER.context(job="j1"):
            with trace_span("inner"):
                pass
        with TRACER.context(job="j2"):
            TRACER.instant("other")
        j1 = TRACER.chrome_trace(job="j1")["traceEvents"]
        assert [e["name"] for e in j1 if e["ph"] != "M"] == ["inner"]
        assert all(e["args"]["job"] == "j1"
                   for e in j1 if e["ph"] != "M")
        everything = TRACER.chrome_trace()["traceEvents"]
        assert {e["name"] for e in everything} >= {"inner", "other"}

    def test_absorb_shard_re_anchors_on_a_worker_track(self):
        TRACER.enable()
        capture = ShardCapture(spans_enabled=True)
        with capture.span("mutant", index=7):
            pass
        payload = capture.payload()
        payload["worker"] = "worker-a:1234"
        TRACER.absorb_shard(payload)
        events = TRACER.chrome_trace()["traceEvents"]
        mutant = [e for e in events if e["name"] == "mutant"]
        assert mutant and mutant[0]["pid"] > _WORKER_PID_BASE
        # The worker identity becomes a named track.
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "repro worker worker-a:1234" in names
        assert validate_chrome_trace(TRACER.chrome_trace()) == []

    def test_enable_resets_the_timeline(self):
        TRACER.enable()
        with trace_span("old"):
            pass
        TRACER.enable()
        assert len(TRACER) == 0


class TestShardCapture:
    def test_helpers_are_noops_outside_a_capture(self):
        shard_count("mutants", 5)
        with shard_span("mutant"):
            pass  # must not raise

    def test_counters_always_spans_only_when_enabled(self):
        with shard_capture(spans_enabled=False) as capture:
            shard_count("mutants", 2)
            with shard_span("mutant"):
                pass
        payload = capture.payload()
        assert payload["counters"] == {"mutants": 2}
        assert payload["spans"] == []
        assert payload["elapsed_s"] >= 0
        with shard_capture(spans_enabled=True) as capture:
            with shard_span("mutant", index=1):
                pass
        spans = capture.payload()["spans"]
        assert [s["name"] for s in spans] == ["mutant"]
        assert spans[0]["start_s"] >= 0 and spans[0]["dur_s"] >= 0


class TestValidateChromeTrace:
    def test_accepts_a_well_formed_trace(self):
        payload = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 5,
             "pid": 1, "tid": 1},
            {"name": "b", "ph": "i", "ts": 2, "pid": 1, "tid": 1},
            {"name": "process_name", "ph": "M", "ts": 0,
             "pid": 1, "tid": 0, "args": {"name": "p"}},
        ]}
        assert validate_chrome_trace(payload) == []

    def test_rejects_malformed_traces(self):
        assert validate_chrome_trace([]) == ["payload is not an object"]
        assert validate_chrome_trace({}) == ["traceEvents is not a list"]
        bad = {"traceEvents": [
            {"name": "", "ph": "X", "ts": 0, "dur": -1,
             "pid": 1, "tid": 1},
            {"name": "x", "ph": "?", "ts": 0, "pid": 1, "tid": 1},
            {"name": "open", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
        ]}
        problems = validate_chrome_trace(bad)
        text = "\n".join(problems)
        assert "missing name" in text
        assert "bad dur" in text
        assert "unknown phase" in text
        assert "unclosed B" in text


# ----------------------------------------------------------------------
# CompletionStamps (the scheduler drain-loop fix)
# ----------------------------------------------------------------------

class TestCompletionStamps:
    def test_stamp_and_pop(self):
        stamps = CompletionStamps()
        assert stamps.stamp("k") is True
        first = stamps.pop("k")
        assert isinstance(first, float)
        assert stamps.pop("k") is None

    def test_first_stamp_wins(self):
        stamps = CompletionStamps()
        stamps.stamp("k")
        stamps.stamp("k")
        assert len(stamps) == 1

    def test_late_callback_after_close_is_a_noop(self):
        # The regression: an executor may fire add_done_callback after
        # the drain loop exited; the old bare dict kept accepting and
        # leaking those entries.
        stamps = CompletionStamps()
        done = Future()
        done.add_done_callback(stamps.stamp)
        done.set_result(None)
        assert len(stamps) == 1
        stamps.close()
        assert stamps.closed and len(stamps) == 0
        late = Future()
        late.add_done_callback(stamps.stamp)
        late.set_result(None)  # fires stamps.stamp(late) -- post-close
        assert stamps.stamp("direct") is False
        assert len(stamps) == 0


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

class TestMetricsRegistry:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("repro_cache_hits_total", 3)
        reg.set_gauge("repro_inflight_shards", 2)
        reg.observe("repro_shard_seconds", 0.2)
        snap = reg.snapshot()
        assert snap["counters"] == {"repro_cache_hits_total": 3.0}
        assert snap["gauges"] == {"repro_inflight_shards": 2.0}
        assert snap["histograms"]["repro_shard_seconds"]["count"] == 1

    def test_labels_render_prometheus_style(self):
        reg = MetricsRegistry()
        reg.inc("repro_jobs_total", status="done")
        reg.inc("repro_jobs_total", status="failed")
        text = reg.render()
        assert '# TYPE repro_jobs_total counter' in text
        assert 'repro_jobs_total{status="done"} 1' in text
        assert 'repro_jobs_total{status="failed"} 1' in text

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        reg.observe("repro_shard_seconds", 0.03)
        reg.observe("repro_shard_seconds", 5.0)
        text = reg.render()
        assert 'repro_shard_seconds_bucket{le="0.05"} 1' in text
        assert 'repro_shard_seconds_bucket{le="10"} 2' in text
        assert 'repro_shard_seconds_bucket{le="+Inf"} 2' in text
        assert 'repro_shard_seconds_count 2' in text

    def test_at_least_ten_series_have_help_text(self):
        # The acceptance bar: >= 10 named series on GET /metrics.
        from repro.obs.metrics import _HELP

        reg = MetricsRegistry()
        for name in _HELP:
            if name == "repro_shard_seconds":
                reg.observe(name, 0.1)
            elif name.endswith("_total"):
                reg.inc(name)
            else:
                reg.set_gauge(name, 1.0)
        text = reg.render()
        typed = [ln for ln in text.splitlines()
                 if ln.startswith("# TYPE ")]
        assert len(typed) >= 10
        for name in _HELP:
            assert f"# HELP {name} " in text

    def test_absorb_shard_counters_maps_to_series(self):
        reg = MetricsRegistry()
        raw = absorb_shard_counters(
            {"counters": {"shards": 1, "mutants": 4, "batch_forks": 2},
             "elapsed_s": 0.5},
            registry=reg,
        )
        assert raw == {"shards": 1, "mutants": 4, "batch_forks": 2}
        assert reg.counter_value("repro_shards_executed_total") == 1
        assert reg.counter_value("repro_mutants_executed_total") == 4
        assert reg.counter_value("repro_batch_forks_total") == 2
        snap = reg.snapshot()
        assert snap["histograms"]["repro_shard_seconds"]["count"] == 1
        assert absorb_shard_counters(None, registry=reg) == {}


# ----------------------------------------------------------------------
# Tracing never changes results
# ----------------------------------------------------------------------

class TestTracingFieldIdentity:
    @pytest.mark.parametrize("batch_size", [None, 3])
    def test_report_identical_with_tracing_on(self, flow, batch_size):
        baseline = _campaign(flow, workers=1, batch_size=batch_size)
        TRACER.enable()
        traced = _campaign(flow, workers=1, batch_size=batch_size)
        TRACER.disable()
        assert traced == baseline            # dataclass eq: scored fields
        assert traced.outcomes == baseline.outcomes
        # The traced run actually recorded campaign + shard spans.
        names = {e["name"]
                 for e in TRACER.chrome_trace()["traceEvents"]}
        assert {"campaign.run", "shard.execute"} <= names

    def test_campaign_report_carries_obs_counters(self, flow):
        report = _campaign(flow, workers=1)
        assert report.obs is not None
        counters = report.obs["counters"]
        assert counters["mutants"] == report.total
        assert counters["shards"] >= 1


# ----------------------------------------------------------------------
# Service endpoints
# ----------------------------------------------------------------------

def _server(flow, **kwargs):
    kwargs.setdefault("workers", 1)
    service = CampaignService(
        flows={("filter", "razor"): flow}, **kwargs
    )
    return ServiceServer(service)


def _client(server):
    host, port = server.address
    return ServiceClient(host, port, timeout=60.0,
                         stream_timeout=120.0)


def _http_get(server, path):
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.getheader("Content-Type"), \
            response.read().decode()
    finally:
        conn.close()


SPEC = {"ip": "filter", "sensor": "razor", "cycles": REDUCED_CYCLES}


class TestServiceMetricsEndpoints:
    def test_metrics_endpoint_serves_prometheus_text(self, flow):
        with _server(flow) as server:
            client = _client(server)
            record = client.submit(dict(SPEC))
            end = client.watch(record["id"])
            assert end["status"] == "done"
            status, ctype, body = _http_get(server, "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            assert "version=0.0.4" in ctype
            assert 'repro_jobs_total{status="done"} 1' in body
            assert "repro_shards_executed_total" in body
            assert "repro_mutants_executed_total" in body
            assert "# TYPE repro_uptime_seconds gauge" in body
            assert "# TYPE repro_inflight_shards gauge" in body

    def test_healthz_carries_the_metrics_snapshot(self, flow):
        with _server(flow) as server:
            client = _client(server)
            record = client.submit(dict(SPEC))
            client.watch(record["id"])
            health = client.health()
            metrics = health["metrics"]
            assert metrics["tracing"] is False
            counters = metrics["local"]["counters"]
            assert counters["repro_shards_executed_total"] >= 1
            # Per-worker rows: the local pool row is always present.
            workers = metrics["workers"]
            assert workers and workers[0]["kind"] == "local"
            row = workers[0]
            assert set(row) >= {"identity", "alive", "in_flight",
                                "shards_done", "shards_per_s",
                                "cache_hit_ratio"}


class TestBatchedProgressEvents:
    def test_progress_monotonic_and_each_mutant_counted_once(self, flow):
        """Satellite: /events under the batched executor.  Submit with
        batch_size=3 (forks + early-kills happen at this testbench
        length), attach before the job runs, and check the stream's
        accounting."""
        cycles = case_study("filter").mutation_cycles
        with _server(flow, max_jobs=1) as server:
            client = _client(server)
            blocker = client.submit({"ip": "filter", "sensor": "razor",
                                     "cycles": cycles, "shard_size": 1})
            record = client.submit({**SPEC, "shard_size": 4,
                                    "batch_size": 3})
            events = []
            collector = threading.Thread(
                target=lambda: events.extend(
                    client.events(record["id"])
                )
            )
            collector.start()
            _client(server).cancel(blocker["id"])
            collector.join(timeout=120)
            assert not collector.is_alive()
            end = events[-1]
            assert end["type"] == "end" and end["status"] == "done"
            report = decode_report(end["report"])
            total = report.total
            # Monotonic executed counts, finishing exactly at total.
            dones = [e["done"] for e in events
                     if e["type"] == "progress"]
            assert dones == sorted(dones)
            assert dones[-1] == total
            # Every mutant -- early-killed included -- exactly once.
            indices = sorted(
                o["index"]
                for e in events if e["type"] == "shard"
                for o in e["outcomes"]
            )
            assert indices == list(range(total))
            # And batched equals serial through the service.
            serial = client.submit(dict(SPEC))
            serial_end = client.watch(serial["id"])
            assert decode_report(serial_end["report"]) == report


class TestTraceEndpoint:
    def test_trace_404s_when_tracing_is_disabled(self, flow):
        with _server(flow) as server:
            client = _client(server)
            record = client.submit(dict(SPEC))
            client.watch(record["id"])
            status, _ctype, body = _http_get(
                server, f"/jobs/{record['id']}/trace"
            )
            assert status == 404
            assert "tracing is disabled" in body
            status, _ctype, _body = _http_get(
                server, "/jobs/nope/trace"
            )
            assert status == 404

    def test_traced_server_exports_a_valid_job_trace(self, flow):
        with _server(flow, trace=True) as server:
            client = _client(server)
            first = client.submit(dict(SPEC))
            client.watch(first["id"])
            second = client.submit({**SPEC, "batch_size": 3})
            second_end = client.watch(second["id"])
            payload = client.trace(second["id"])
            assert validate_chrome_trace(payload) == []
            events = payload["traceEvents"]
            names = {e["name"] for e in events}
            assert {"job.run", "campaign.prepare",
                    "shard.execute"} <= names
            # Job filtering: nothing from the first job leaks in.
            assert all(e["args"]["job"] == second["id"]
                       for e in events if e["ph"] != "M")
            # Tracing did not perturb the batched report either.
            assert decode_report(second_end["report"]).total > 0
