"""Tests for the VCD exporter, saboteurs and the CLI."""

import os

import pytest

from repro.cli import main as cli_main
from repro.mutation.saboteurs import Saboteur, insert_saboteur
from repro.rtl import Assign, Module, Simulation, const
from repro.rtl.vcd import VcdWriter


def counter_module():
    m = Module("vcd_dut")
    clk = m.input("clk")
    q = m.output("q", 4)
    m.sync("p", clk, [Assign(q, q + const(1, 4))])
    return m, clk, q


class TestVcd:
    def test_writes_valid_header_and_changes(self, tmp_path):
        m, clk, q = counter_module()
        sim = Simulation(m, {clk: 1000})
        path = str(tmp_path / "wave.vcd")
        with VcdWriter(sim, path, [clk, q]) as vcd:
            sim.run_cycles(5)
        text = open(path).read()
        assert "$timescale 1ps $end" in text
        assert "$var reg 4" in text and " q $end" in text
        assert "$dumpvars" in text
        assert "#1000" in text  # first rising edge timestamp
        assert vcd.changes_written > 10  # clock toggles + counter

    def test_multibit_values_binary(self, tmp_path):
        m, clk, q = counter_module()
        sim = Simulation(m, {clk: 1000})
        path = str(tmp_path / "wave.vcd")
        with VcdWriter(sim, path, [q]):
            sim.run_cycles(3)
        lines = [l for l in open(path) if l.startswith("b")]
        assert any(l.startswith("b0011 ") for l in lines)  # q == 3

    def test_x_states_rendered(self, tmp_path):
        m = Module("xdut")
        clk = m.input("clk")
        q = m.output("q", 2)
        m.sync("p", clk, [Assign(q, q + const(1, 2))])
        sim = Simulation(m, {clk: 1000}, init_unknown=True)
        path = str(tmp_path / "x.vcd")
        with VcdWriter(sim, path, [q]):
            sim.run_cycles(1)
        assert "bxx" in open(path).read()


class TestSaboteurs:
    def build(self):
        m = Module("sab_dut")
        clk = m.input("clk")
        d = m.input("d", 8)
        s = m.signal("s", 8)
        q = m.output("q", 8)
        m.comb("p_s", [Assign(s, d + const(1, 8))])
        m.sync("p_q", clk, [Assign(q, s)])
        return m, clk, d, s, q

    def test_transparent_when_inactive(self):
        m, clk, d, s, q = self.build()
        sab = insert_saboteur(m, s, mode="invert")
        sim = Simulation(m, {clk: 1000})
        sim.cycle({d: 10, sab.control: 0})
        sim.cycle()
        assert sim.peek_int(q) == 11

    def test_invert_mode_corrupts(self):
        m, clk, d, s, q = self.build()
        sab = insert_saboteur(m, s, mode="invert")
        sim = Simulation(m, {clk: 1000})
        sim.cycle({d: 10, sab.control: 1})
        sim.cycle()
        assert sim.peek_int(q) == (~11) & 0xFF

    def test_stuck_x_mode(self):
        m, clk, d, s, q = self.build()
        sab = insert_saboteur(m, s, mode="stuck_x")
        sim = Simulation(m, {clk: 1000})
        sim.cycle({d: 10, sab.control: 1})
        sim.cycle()
        assert not sim.peek(q).is_fully_defined

    def test_delay_mode_forwards_previous(self):
        m, clk, d, s, q = self.build()
        sab = insert_saboteur(m, s, mode="delay")
        sim = Simulation(m, {clk: 1000})
        sim.cycle({d: 10, sab.control: 0})
        sim.cycle({d: 20, sab.control: 1})
        sim.cycle({sab.control: 0})
        # While engaged, the consumer saw a stale value at some point;
        # after release the pipeline recovers.
        sim.cycle()
        assert sim.peek_int(q) == 21

    def test_unknown_mode_rejected(self):
        m, clk, d, s, q = self.build()
        with pytest.raises(ValueError):
            insert_saboteur(m, s, mode="gremlin")

    def test_undriven_signal_rejected(self):
        m, clk, d, s, q = self.build()
        ghost = m.signal("ghost", 4)
        with pytest.raises(ValueError):
            insert_saboteur(m, ghost)

    def test_saboteur_needs_control_wiring(self):
        """The structural cost the paper attributes to saboteurs: a new
        top-level control port per instance."""
        m, clk, d, s, q = self.build()
        before = len(m.inputs())
        insert_saboteur(m, s)
        assert len(m.inputs()) == before + 1


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "plasma" in out and "filter" in out

    def test_emit_vhdl(self, capsys):
        assert cli_main(["emit", "filter", "vhdl"]) == 0
        out = capsys.readouterr().out
        assert "entity filter_ip is" in out

    def test_emit_tlm_with_sensor(self, capsys):
        assert cli_main(
            ["emit", "dsp", "tlm", "--sensor", "razor"]
        ) == 0
        out = capsys.readouterr().out
        assert "def scheduler(self):" in out
        assert "Razor bank" in out

    def test_bad_ip_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["flow", "nonexistent", "razor"])
