"""Chaos suite: deterministic fault injection + the soak property.

Two halves:

* unit coverage of :mod:`repro.faults` -- the spec grammar, the
  seeded ``(seed, site, hit)`` decision function, ambient activation;
* the **chaos soak property** (PR 7's standing invariant): under any
  seeded fault schedule, a campaign either completes with a report
  field-identical to the fault-free baseline (the recovery layers
  healed every injected fault) or fails *loudly* with a structured
  diagnostic naming the injected fault -- never a silent truncation.

The soak tests here run in-process (``allow_exit=False`` plans);
``benchmarks/chaos_soak.py`` drives the same property against a real
coordinator + worker-daemon fleet for the CI ``chaos`` job.
"""

import os

import pytest

from repro import faults
from repro.faults import (
    FaultInjectionError,
    FaultPlan,
    FaultRule,
    KNOWN_SITES,
    active_plan,
    fault_point,
)
from repro.flow import run_flow
from repro.ips import case_study
from repro.mutation import (
    CampaignScheduler,
    ResultCache,
    run_campaign,
)
from repro.mutation.campaign import prepare_campaign
from repro.mutation.scheduler import stream_shard_batches
from repro.service import (
    CampaignService,
    FleetPlacement,
    RemoteWorkerPlacement,
    ServiceClient,
    ServiceServer,
)

REDUCED_CYCLES = 24


@pytest.fixture(scope="module")
def dsp_flow():
    return run_flow(case_study("dsp"), "razor", run_mutation=False)


@pytest.fixture(scope="module")
def dsp_baseline(dsp_flow):
    """The fault-free reference report every soak must reproduce."""
    stim = case_study("dsp").stimulus(REDUCED_CYCLES)
    return run_campaign(
        dsp_flow.tlm_optimized, dsp_flow.injected, stim,
        ip_name="dsp", sensor_type="razor", workers=1,
    )


def _campaign_with(plan, flow, *, workers=2, shard_size=1, cache=None):
    """One dsp/razor campaign under *plan* (installed ambiently)."""
    stim = case_study("dsp").stimulus(REDUCED_CYCLES)
    with active_plan(plan):
        return run_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name="dsp", sensor_type="razor",
            workers=workers, shard_size=shard_size, cache=cache,
        )


# ----------------------------------------------------------------------
# The fault plan itself
# ----------------------------------------------------------------------

class TestFaultRuleGrammar:
    def test_parse_forms(self):
        assert FaultRule.parse("always").always
        assert FaultRule.parse("*").always
        assert FaultRule.parse("p0.25").rate == 0.25
        assert FaultRule.parse("2").hits == frozenset({2})
        assert FaultRule.parse("1+3").hits == frozenset({1, 3})
        assert FaultRule.parse("2-4").hits == frozenset({2, 3, 4})
        capped = FaultRule.parse("p0.5x3")
        assert capped.rate == 0.5 and capped.max_fires == 3

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultRule.parse("p1.5")  # rate out of [0, 1]
        with pytest.raises(ValueError):
            FaultRule.parse("0")  # hits are 1-based
        with pytest.raises(ValueError):
            FaultRule.parse("banana")

    def test_describe_parse_round_trip(self):
        for text in ("always", "p0.25", "2", "1+3", "2-4x1"):
            rule = FaultRule.parse(text)
            assert FaultRule.parse(rule.describe()) == rule

    def test_plan_spec_round_trip(self):
        spec = ("seed=7;cache.corrupt_entry=p0.5;"
                "pool.break_worker=1;hang=0.25")
        plan = FaultPlan.from_spec(spec)
        assert plan.seed == 7
        assert plan.hang_seconds == 0.25
        again = FaultPlan.from_spec(plan.describe())
        assert again.describe() == plan.describe()

    def test_spec_rejects_missing_equals(self):
        with pytest.raises(ValueError, match="needs '='"):
            FaultPlan.from_spec("seed=1;bogus")


class TestFaultPlanDecisions:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(7, {"s": FaultRule.parse("p0.5")})
        b = FaultPlan(7, {"s": FaultRule.parse("p0.5")})
        fires_a = [a.should_fire("s") for _ in range(64)]
        fires_b = [b.should_fire("s") for _ in range(64)]
        assert fires_a == fires_b
        assert any(fires_a) and not all(fires_a)

    def test_different_seed_different_schedule(self):
        a = FaultPlan(1, {"s": FaultRule.parse("p0.5")})
        b = FaultPlan(2, {"s": FaultRule.parse("p0.5")})
        assert [a.should_fire("s") for _ in range(64)] != \
            [b.should_fire("s") for _ in range(64)]

    def test_explicit_hits_fire_exactly_there(self):
        plan = FaultPlan(0, {"s": FaultRule.parse("2+4")})
        assert [plan.should_fire("s") for _ in range(5)] == \
            [False, True, False, True, False]

    def test_max_fires_caps_a_rate_rule(self):
        plan = FaultPlan(3, {"s": FaultRule.parse("alwaysx2")})
        fires = [plan.should_fire("s") for _ in range(10)]
        assert fires == [True, True] + [False] * 8

    def test_unruled_site_counts_hits_but_never_fires(self):
        plan = FaultPlan(0, {"other": FaultRule.parse("always")})
        assert not plan.should_fire("s")
        assert plan.stats()["sites"]["s"] == \
            {"rule": None, "hits": 1, "fires": 0}

    def test_error_carries_structured_diagnostic(self):
        plan = FaultPlan(9, {"s": FaultRule.parse("always")})
        assert plan.should_fire("s")
        err = plan.error("s", "boom")
        assert err.diagnostic == \
            {"fault": "s", "seed": 9, "hit": 1, "detail": "boom"}
        assert "injected fault 's'" in str(err)

    def test_known_sites_is_the_documented_set(self):
        assert set(KNOWN_SITES) == {
            "pool.break_worker", "net.drop.post_shards",
            "worker.hang", "cache.corrupt_entry",
            "server.crash.mid_job",
        }


class TestAmbientActivation:
    def test_fault_point_is_none_without_a_plan(self):
        with active_plan(None):
            assert fault_point("pool.break_worker") is None

    def test_active_plan_scopes_and_restores(self):
        plan = FaultPlan(0, {"s": FaultRule.parse("always")})
        with active_plan(plan) as installed:
            assert installed is plan
            assert fault_point("s") is plan
        assert faults.get_fault_plan() is not plan

    def test_env_var_installs_a_plan_lazily(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           "seed=5;worker.hang=1;hang=0.1")
        previous = faults.set_fault_plan(None)
        faults._env_checked = False  # simulate a fresh process
        try:
            plan = faults.get_fault_plan()
            assert plan is not None
            assert plan.seed == 5
            assert plan.allow_exit  # daemon plans may os._exit
            assert plan.hang_seconds == 0.1
        finally:
            faults.set_fault_plan(previous)


# ----------------------------------------------------------------------
# The soak property
# ----------------------------------------------------------------------

class TestChaosSoak:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_pool_breaks_heal_to_identical_report(
            self, dsp_flow, dsp_baseline, seed):
        plan = FaultPlan.from_spec(
            f"seed={seed};pool.break_worker=p0.3x2"
        )
        report = _campaign_with(plan, dsp_flow)
        assert report == dsp_baseline
        assert report.outcomes == dsp_baseline.outcomes

    def test_corrupted_cache_entries_heal_to_identical_report(
            self, dsp_flow, dsp_baseline, tmp_path):
        cache = ResultCache(tmp_path / "c")
        plan = FaultPlan.from_spec("seed=11;cache.corrupt_entry=p0.5")
        cold = _campaign_with(plan, dsp_flow, workers=1, cache=cache)
        assert cold == dsp_baseline
        assert plan.stats()["sites"]["cache.corrupt_entry"]["fires"] > 0
        # The warm re-run survives the poisoned store: corrupt entries
        # quarantine to misses and re-execute; good ones replay.
        warm = _campaign_with(None, dsp_flow, workers=1, cache=cache)
        assert warm == dsp_baseline
        assert warm.outcomes == dsp_baseline.outcomes
        assert cache.stats()["corrupt_quarantined"] > 0

    def test_fleet_drops_heal_to_identical_report(
            self, dsp_flow, dsp_baseline):
        """net.drop.post_shards against a coordinator fleet (one
        worker daemon + the local pool): the dropped POST marks the
        member lost and the shard re-dispatches to a survivor."""
        plan = FaultPlan.from_spec("seed=4;net.drop.post_shards=1")
        service = CampaignService(workers=1, role="worker")
        with ServiceServer(service) as worker:
            host, port = worker.address
            with CampaignScheduler(workers=1) as local:
                fleet = FleetPlacement(
                    [RemoteWorkerPlacement(host, port)], local=local,
                )
                try:
                    stim = case_study("dsp").stimulus(REDUCED_CYCLES)
                    with active_plan(plan):
                        prepared = prepare_campaign(
                            dsp_flow.tlm_optimized, dsp_flow.injected,
                            stim, ip_name="dsp", sensor_type="razor",
                            workers=fleet.workers, shard_size=1,
                        )
                        outcomes = []
                        for batch, _snap in stream_shard_batches(
                                fleet, prepared):
                            outcomes.extend(batch)
                    report = prepared.build_report(outcomes)
                    assert report == dsp_baseline
                    assert report.outcomes == dsp_baseline.outcomes
                    # The drop really happened and was healed by
                    # re-dispatch, not silently skipped.
                    stats = plan.stats()["sites"]
                    assert stats["net.drop.post_shards"]["fires"] == 1
                    assert fleet.stats()["redispatches"] >= 1
                finally:
                    fleet.shutdown()

    def test_server_crash_in_process_fails_loudly(self, dsp_flow):
        """The OR branch of the property: an unhealable injected fault
        (the job runner itself dies) must fail the job loudly, naming
        the fault -- never truncate the report."""
        plan = FaultPlan.from_spec("seed=1;server.crash.mid_job=1")
        service = CampaignService(
            flows={("dsp", "razor"): dsp_flow}
        )
        with ServiceServer(service) as server:
            host, port = server.address
            client = ServiceClient(host, port, timeout=60.0)
            with active_plan(plan):
                record = client.submit({
                    "ip": "dsp", "sensor": "razor",
                    "cycles": REDUCED_CYCLES,
                })
                end = client.watch(record["id"])
            assert end["status"] == "failed"
            error = client.job(record["id"])["error"]
            assert "injected fault 'server.crash.mid_job'" in error

    def test_worker_hang_detected_by_stall_supervision(self, dsp_flow,
                                                       dsp_baseline):
        """A hung worker answers /healthz but sits on its shard: the
        opt-in stall detector evicts it and the local pool finishes
        the campaign with the identical report."""
        plan = FaultPlan.from_spec("seed=2;worker.hang=1;hang=30")
        service = CampaignService(workers=1, role="worker")
        with ServiceServer(service) as worker:
            host, port = worker.address
            with CampaignScheduler(workers=1) as local:
                fleet = FleetPlacement(
                    [RemoteWorkerPlacement(host, port)], local=local,
                    heartbeat_interval=0.05, stall_timeout=0.3,
                )
                try:
                    stim = case_study("dsp").stimulus(REDUCED_CYCLES)
                    with active_plan(plan):
                        prepared = prepare_campaign(
                            dsp_flow.tlm_optimized, dsp_flow.injected,
                            stim, ip_name="dsp", sensor_type="razor",
                            workers=fleet.workers, shard_size=1,
                        )
                        outcomes = []
                        for batch, _snap in stream_shard_batches(
                                fleet, prepared):
                            outcomes.extend(batch)
                        # Release the hung worker thread before the
                        # daemon shuts down (close() does this too;
                        # doing it here keeps teardown instant).
                        service.worker.hang_release.set()
                    report = prepared.build_report(outcomes)
                    assert report == dsp_baseline
                    assert fleet.stats()["evictions"] >= 1
                finally:
                    fleet.shutdown()
