"""Tests for the VHDL backend, waveform tracer and next-state pass."""

import pytest

from repro.rtl import (
    Assign,
    Case,
    Const,
    If,
    Module,
    Mux,
    Simulation,
    SliceAssign,
    WaveRecorder,
    cat,
    const,
    count_loc,
    emit_vhdl,
    module_next_state,
    mux,
    next_state_exprs,
)
from repro.rtl.ir import ArrayWrite, Signal
from repro.rtl.nextstate import drop_assignments_to


def small_module():
    m = Module("unit")
    clk = m.input("clk")
    rst = m.input("rst")
    a = m.input("a", 8)
    q = m.output("q", 8)
    s = m.signal("s", 8)
    mem = m.array("mem", 4, 8)
    m.sync("p_q", clk, [
        If(a.gt(const(4, 8)), [
            Assign(q, a + s),
            ArrayWrite(mem, a[1:0], s),
        ], [
            Assign(q, a - s),
        ]),
    ], reset=rst, reset_stmts=[Assign(q, 0)])
    m.comb("p_s", [
        Case(a[1:0], [
            (0, [Assign(s, a)]),
            (1, [Assign(s, ~a)]),
        ], default=[Assign(s, a ^ const(0xFF, 8))]),
    ])
    return m, clk, rst, a, q, s


class TestVhdlBackend:
    def test_emits_entity_and_architecture(self):
        m, *_ = small_module()
        text = emit_vhdl(m)
        assert "entity unit is" in text
        assert "architecture rtl of unit is" in text
        assert "end architecture" in text

    def test_ports_declared_with_direction(self):
        m, *_ = small_module()
        text = emit_vhdl(m)
        assert "a : in  std_logic_vector(7 downto 0)" in text
        assert "q : out std_logic_vector(7 downto 0)" in text

    def test_processes_emitted(self):
        m, *_ = small_module()
        text = emit_vhdl(m)
        assert "rising_edge(clk)" in text
        assert "case" in text and "when" in text

    def test_reset_branch(self):
        m, *_ = small_module()
        text = emit_vhdl(m)
        assert "if rst = '1' then" in text

    def test_array_type_declared(self):
        m, *_ = small_module()
        text = emit_vhdl(m)
        assert "type mem_t is array (0 to 3)" in text

    def test_submodule_instantiated(self):
        parent = Module("top")
        clk = parent.input("clk")
        child = Module("leaf")
        x = parent.signal("x", 4)
        child.comb("p", [Assign(x, const(3, 4))])
        parent.add_submodule("u0", child)
        text = emit_vhdl(parent)
        assert "entity leaf is" in text
        assert "u0 : entity work.leaf;" in text

    def test_count_loc_skips_blank(self):
        assert count_loc("a\n\n  \nb\n") == 2

    def test_slice_assign_emitted(self):
        m = Module("sa")
        clk = m.input("clk")
        q = m.output("q", 8)
        m.sync("p", clk, [SliceAssign(q, 7, 4, const(0xA, 4))])
        text = emit_vhdl(m)
        assert "q(7 downto 4) <=" in text

    def test_operators_use_numeric_std(self):
        m = Module("ops")
        clk = m.input("clk")
        a = m.input("a", 8)
        b = m.input("b", 8)
        y = m.output("y", 8)
        m.comb("p", [Assign(y, (a + b) & (a ^ b))])
        text = emit_vhdl(m)
        assert "unsigned(" in text

    def test_mux_and_compare_helpers(self):
        m = Module("hlp")
        clk = m.input("clk")
        a = m.input("a", 4)
        y = m.output("y", 4)
        m.comb("p", [Assign(y, mux(a.eq(3), const(1, 4), const(2, 4)))])
        text = emit_vhdl(m)
        assert "mux2(" in text
        assert "b2sl(" in text


class TestNextState:
    def test_simple_assignment(self):
        m = Module("ns")
        clk = m.input("clk")
        a = m.input("a", 4)
        q = m.signal("q", 4)
        proc = m.sync("p", clk, [Assign(q, a)])
        exprs = next_state_exprs(proc)
        assert exprs[q] is proc.stmts[0].expr

    def test_conditional_keeps_old_value(self):
        m = Module("ns")
        clk = m.input("clk")
        en = m.input("en")
        a = m.input("a", 4)
        q = m.signal("q", 4)
        proc = m.sync("p", clk, [If(en.eq(1), [Assign(q, a)])])
        expr = next_state_exprs(proc)[q]
        assert isinstance(expr, Mux)
        assert expr.b is q  # else-arm: hold

    def test_case_builds_mux_chain(self):
        m = Module("ns")
        clk = m.input("clk")
        sel = m.input("sel", 2)
        q = m.signal("q", 4)
        proc = m.sync("p", clk, [Case(sel, [
            (0, [Assign(q, 1)]),
            (1, [Assign(q, 2)]),
        ])])
        expr = next_state_exprs(proc)[q]
        assert isinstance(expr, Mux)

    def test_next_state_equivalence_by_simulation(self):
        """Register rewritten through its extracted next-state function
        behaves identically (the core augmentation guarantee)."""
        m1, clk1, rst1, a1, q1, s1 = small_module()
        m2, clk2, rst2, a2, q2, s2 = small_module()
        # Rewrite m2's q through an explicit next-state signal.
        proc = next(p for _, p in m2.all_processes() if p.name == "p_q")
        expr = next_state_exprs(proc)[q2]
        nxt = m2.adopt(Signal("q_next", 8))
        m2.comb("p_qn", [Assign(nxt, expr)])
        proc.stmts = drop_assignments_to(proc.stmts, q2) + [Assign(q2, nxt)]

        sim1 = Simulation(m1, {clk1: 1000})
        sim2 = Simulation(m2, {clk2: 1000})
        for i in range(40):
            sim1.cycle({a1: (i * 7 + 2) % 256, rst1: 1 if i == 0 else 0})
            sim2.cycle({a2: (i * 7 + 2) % 256, rst2: 1 if i == 0 else 0})
            assert sim1.peek(q1) == sim2.peek(q2), f"cycle {i}"

    def test_module_next_state_covers_all_registers(self):
        m, *_ = small_module()
        table = module_next_state(m)
        names = {sig.name for sig in table}
        assert "q" in names

    def test_slice_assign_next_state(self):
        m = Module("ns")
        clk = m.input("clk")
        a = m.input("a", 4)
        q = m.signal("q", 8)
        proc = m.sync("p", clk, [SliceAssign(q, 7, 4, a)])
        expr = next_state_exprs(proc)[q]
        assert expr.width == 8


class TestWaveRecorder:
    def make_sim(self):
        m = Module("wave")
        clk = m.input("clk")
        d = m.input("d")
        q = m.output("q")
        m.sync("p", clk, [Assign(q, d)])
        sim = Simulation(m, {clk: 1000})
        return sim, clk, d, q

    def test_records_changes(self):
        sim, clk, d, q = self.make_sim()
        rec = WaveRecorder(sim, [q])
        sim.cycle({d: 1})
        sim.cycle({d: 0})
        sim.cycle()
        changes = rec.changes(q)
        assert len(changes) >= 3  # init, rise, fall

    def test_value_at_interpolates(self):
        sim, clk, d, q = self.make_sim()
        rec = WaveRecorder(sim, [q])
        sim.cycle({d: 1})
        t_mid = sim.time - 100
        assert rec.value_at(q, t_mid).to_int() == 1
        assert rec.value_at(q, 0).to_int() == 0

    def test_render_produces_rails(self):
        sim, clk, d, q = self.make_sim()
        rec = WaveRecorder(sim, [clk, q])
        for i in range(4):
            sim.cycle({d: i % 2})
        text = rec.render(0, sim.time, 100)
        assert "clk" in text and "q" in text
        assert "#" in text and "_" in text
