"""Functional tests for the three case-study IPs."""

import pytest

from repro.ips import CASE_STUDIES, case_study
from repro.ips.dsp import BEAT_PERIOD_SAMPLES, build_dsp, flow_stimulus
from repro.ips.filter import build_filter, pdm_stimulus
from repro.ips.plasma import (
    CHECKSUM_EXPECTED,
    FIB_EXPECTED,
    SORT_EXPECTED,
    AsmError,
    assemble,
    build_plasma,
    checksum_program,
    fibonacci_program,
    sort_program,
)
from repro.rtl import Simulation


def run_plasma(program, max_cycles=400):
    m, clk = build_plasma(program)
    sim = Simulation(m, {clk: 5000})
    debug = m.find_signal("debug_out")
    halted = m.find_signal("halted_o")
    for _ in range(max_cycles):
        sim.cycle()
        if sim.peek_int(halted):
            break
    return sim.peek_int(debug), sim.peek_int(halted), sim


class TestAssembler:
    def test_nop_encodes_zero(self):
        assert assemble("nop") == [0]

    def test_rtype_encoding(self):
        # addu $t4, $t0, $t1 -> rs=8 rt=9 rd=12 funct=0x21
        word = assemble("addu $t4, $t0, $t1")[0]
        assert word == (8 << 21) | (9 << 16) | (12 << 11) | 0x21

    def test_itype_encoding(self):
        word = assemble("addiu $t0, $zero, -1")[0]
        assert word == (0x09 << 26) | (8 << 16) | 0xFFFF

    def test_branch_offset_is_relative(self):
        words = assemble("""
        start:
            beq $zero, $zero, start
        """)
        assert words[0] & 0xFFFF == 0xFFFF  # -1 word

    def test_labels_forward_and_back(self):
        words = assemble("""
            j end
        mid:
            nop
        end:
            j mid
        """)
        assert words[0] & 0x3FFFFFF == 2  # word address of 'end'
        assert words[2] & 0x3FFFFFF == 1

    def test_li_small_and_large(self):
        small = assemble("li $t0, 42")
        assert len(small) == 1
        large = assemble("li $t0, 0x12345678")
        assert len(large) == 2  # lui + ori

    def test_memory_operand(self):
        word = assemble("lw $t1, 8($t0)")[0]
        assert word >> 26 == 0x23
        assert word & 0xFFFF == 8

    def test_bad_register_rejected(self):
        with pytest.raises(AsmError):
            assemble("addu $t0, $bogus, $t1")

    def test_bad_mnemonic_rejected(self):
        with pytest.raises(AsmError):
            assemble("frobnicate $t0, $t1, $t2")

    def test_immediate_range_checked(self):
        with pytest.raises(AsmError):
            assemble("addiu $t0, $zero, 70000")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            assemble("x: nop\nx: nop")


class TestPlasma:
    def test_fibonacci(self):
        result, halted, _ = run_plasma(fibonacci_program(12))
        assert halted == 1
        assert result == FIB_EXPECTED  # fib(12) == 144

    def test_checksum(self):
        result, halted, _ = run_plasma(checksum_program())
        assert halted == 1
        assert result == CHECKSUM_EXPECTED

    def test_bubble_sort(self):
        result, halted, _ = run_plasma(sort_program(), max_cycles=800)
        assert halted == 1
        assert result == SORT_EXPECTED

    def test_halt_stops_pc(self):
        _, _, sim = run_plasma(fibonacci_program(5))
        m = sim.top
        pc_before = sim.peek_int(m.find_signal("pc_out"))
        sim.cycle()
        sim.cycle()
        assert sim.peek_int(m.find_signal("pc_out")) == pc_before

    def test_instret_counts(self):
        _, _, sim = run_plasma(fibonacci_program(3))
        assert sim.peek_int(sim.top.find_signal("instret_o")) > 10

    def test_register_zero_stays_zero(self):
        program = assemble("""
            addiu $zero, $zero, 5
            addiu $t0, $zero, 7
            li $t1, 0x400
            sw $t0, 0($t1)
            sw $zero, 4($t1)
        hang:
            j hang
        """)
        result, halted, _ = run_plasma(program, max_cycles=30)
        assert halted == 1
        assert result == 7  # the write to $zero was discarded

    def test_program_too_large_rejected(self):
        with pytest.raises(ValueError):
            build_plasma([0] * 1000)


class TestDsp:
    @pytest.fixture(scope="class")
    def run(self):
        m, clk = build_dsp()
        sim = Simulation(m, {clk: 500})
        beat = m.find_signal("beat")
        rate = m.find_signal("rate")
        energy = m.find_signal("energy")
        sample_in = m.find_signal("sample_in")
        sample_valid = m.find_signal("sample_valid")
        beats = []
        energies = []
        for vec in flow_stimulus(6 * BEAT_PERIOD_SAMPLES):
            sim.cycle({sample_in: vec["sample_in"],
                       sample_valid: vec["sample_valid"]})
            beats.append(sim.peek_int(beat))
            energies.append(sim.peek_int(energy))
        return beats, energies, sim.peek_int(rate)

    def test_beats_detected(self, run):
        beats, _, _ = run
        assert sum(beats) >= 3

    def test_beat_spacing_near_pulse_period(self, run):
        beats, _, _ = run
        times = [i for i, b in enumerate(beats) if b]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps, "need at least two beats"
        for gap in gaps:
            assert BEAT_PERIOD_SAMPLES * 0.5 <= gap <= BEAT_PERIOD_SAMPLES * 2

    def test_rate_register_converges(self, run):
        _, _, rate = run
        assert BEAT_PERIOD_SAMPLES * 0.5 <= rate <= BEAT_PERIOD_SAMPLES * 2

    def test_energy_pulsates(self, run):
        _, energies, _ = run
        assert max(energies) > 4 * (min(energies) + 1)

    def test_invalid_samples_freeze_pipeline(self):
        m, clk = build_dsp()
        sim = Simulation(m, {clk: 500})
        sample_in = m.find_signal("sample_in")
        sample_valid = m.find_signal("sample_valid")
        energy = m.find_signal("energy")
        for vec in flow_stimulus(30):
            sim.cycle({sample_in: vec["sample_in"], sample_valid: 1})
        frozen = sim.peek_int(energy)
        for _ in range(10):
            sim.cycle({sample_in: 0, sample_valid: 0})
        assert sim.peek_int(energy) == frozen


class TestFilter:
    @pytest.fixture(scope="class")
    def run(self):
        m, clk = build_filter()
        sim = Simulation(m, {clk: 1000})
        pdm_in = m.find_signal("pdm_in")
        pcm_out = m.find_signal("pcm_out")
        pcm_valid = m.find_signal("pcm_valid")
        outs = []
        for vec in pdm_stimulus(2048):
            sim.cycle({pdm_in: vec["pdm_in"]})
            if sim.peek_int(pcm_valid):
                value = sim.peek_int(pcm_out)
                outs.append(value - 65536 if value >= 32768 else value)
        return outs

    def test_decimation_ratio(self, run):
        # 2048 PDM bits / 32 = 64 PCM samples (minus pipeline fill).
        assert 40 <= len(run) <= 64

    def test_output_is_oscillatory(self, run):
        # The sine input must come through: both polarities present.
        assert max(run) > 0
        assert min(run) < 0

    def test_output_amplitude_sane(self, run):
        assert max(abs(v) for v in run) < 32768

    def test_dc_balanced(self, run):
        mean = sum(run) / len(run)
        assert abs(mean) < max(abs(v) for v in run) * 0.5


class TestRegistry:
    def test_all_case_studies_present(self):
        assert set(CASE_STUDIES) == {"plasma", "dsp", "filter"}

    def test_factories_build_fresh_instances(self):
        for spec in CASE_STUDIES.values():
            m1, _ = spec.factory()
            m2, _ = spec.factory()
            assert m1 is not m2

    def test_stimuli_match_input_ports(self):
        for spec in CASE_STUDIES.values():
            m, clk = spec.factory()
            port_names = {p.name for p in m.inputs()}
            for vec in spec.stimulus(3):
                assert set(vec) <= port_names

    def test_periods_hf_compatible(self):
        for spec in CASE_STUDIES.values():
            assert spec.clock_period_ps % 10 == 0
            assert (spec.clock_period_ps // 10) % 2 == 0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            case_study("nonexistent")
