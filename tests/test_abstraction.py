"""Tests for RTL-to-TLM code generation and the TLM runtime.

The load-bearing property is *cycle equivalence*: for any input
stream, the generated TLM model's outputs must match the RTL kernel's
outputs cycle by cycle (Fig. 6 equivalence).  Sensor measurement
ports are excluded for augmented IPs in nominal conditions, because
the abstraction deliberately drops physical delays (that is the whole
premise of the mutation step).
"""

import random

import pytest

from repro.abstraction import generate_tlm
from repro.rtl import (
    Assign,
    Case,
    If,
    Module,
    Simulation,
    cat,
    const,
    mux,
    resize,
)
from repro.sensors import insert_sensors
from repro.sta import analyze, bin_critical_paths
from repro.synth import synthesize
from repro.tlm import (
    ApproximatelyTimedDriver,
    CycleTarget,
    GenericPayload,
    LooselyTimedDriver,
    TlmCommand,
)

PERIOD = 1000


def build_alu_ip():
    """A small multi-process IP exercising most IR constructs:
    registered ALU with a case-based opcode, an accumulator with
    enable, a comb output stage, and a memory."""
    m = Module("alu_ip")
    clk = m.input("clk")
    op = m.input("op", 2)
    a = m.input("a", 8)
    b = m.input("b", 8)
    wen = m.input("wen")
    addr = m.input("addr", 3)
    result = m.signal("result", 8)
    acc = m.signal("acc", 8)
    mem = m.array("mem", 8, 8)
    dout = m.output("dout", 8)
    flags = m.output("flags", 2)

    from repro.rtl.ir import ArrayWrite
    from repro.rtl.build import array_read

    m.sync("p_alu", clk, [
        Case(op, [
            (0, [Assign(result, a + b)]),
            (1, [Assign(result, a - b)]),
            (2, [Assign(result, a & b)]),
        ], default=[Assign(result, a ^ b)]),
    ])
    m.sync("p_acc", clk, [
        If(wen.eq(1), [
            Assign(acc, acc + result),
            ArrayWrite(mem, addr, result),
        ]),
    ])
    m.comb("p_out", [Assign(dout, acc ^ array_read(mem, addr))])
    m.comb("p_flags", [
        Assign(flags, cat(result.eq(0), acc[7])),
    ])
    return m, clk, (op, a, b, wen, addr), (dout, flags)


def random_stream(n, seed=7):
    rng = random.Random(seed)
    return [
        {
            "op": rng.randrange(4),
            "a": rng.randrange(256),
            "b": rng.randrange(256),
            "wen": rng.randrange(2),
            "addr": rng.randrange(8),
        }
        for _ in range(n)
    ]


def run_rtl(stream):
    """Run the RTL reference with edge-launched inputs (the TLM models
    apply inputs after the rising edge with the same upstream-register
    convention, so this is the apples-to-apples comparison)."""
    m, clk, (op, a, b, wen, addr), (dout, flags) = build_alu_ip()
    sim = Simulation(m, {clk: PERIOD}, input_launch_at_edge=True)
    name_to_sig = {"op": op, "a": a, "b": b, "wen": wen, "addr": addr}
    outs = []
    for inputs in stream:
        sim.cycle({name_to_sig[k]: v for k, v in inputs.items()})
        outs.append(
            {"dout": sim.peek_int(dout), "flags": sim.peek_int(flags)}
        )
    return outs


class TestPlainEquivalence:
    @pytest.mark.parametrize("variant", ["sctypes", "hdtlib"])
    def test_generated_matches_rtl(self, variant):
        stream = random_stream(120)
        golden = run_rtl(stream)
        m, *_ = build_alu_ip()
        gen = generate_tlm(m, variant=variant)
        model = gen.instantiate()
        for i, inputs in enumerate(stream):
            outs = model.b_transport(inputs)
            assert outs == golden[i], f"cycle {i} mismatch ({variant})"

    def test_variants_match_each_other(self):
        stream = random_stream(60, seed=123)
        m1, *_ = build_alu_ip()
        m2, *_ = build_alu_ip()
        sc = generate_tlm(m1, variant="sctypes").instantiate()
        hd = generate_tlm(m2, variant="hdtlib").instantiate()
        for inputs in stream:
            assert sc.b_transport(inputs) == hd.b_transport(inputs)

    def test_generated_source_is_real_python(self):
        m, *_ = build_alu_ip()
        gen = generate_tlm(m, variant="hdtlib")
        assert gen.loc > 50
        assert "def scheduler(self):" in gen.source
        compile(gen.source, "<check>", "exec")

    def test_ports_metadata(self):
        m, *_ = build_alu_ip()
        model = generate_tlm(m, variant="hdtlib").instantiate()
        assert model.PORTS_IN == {
            "op": 2, "a": 8, "b": 8, "wen": 1, "addr": 3
        }
        assert model.PORTS_OUT == {"dout": 8, "flags": 2}
        assert model.SCHEDULER == "single"

    def test_unknown_variant_rejected(self):
        m, *_ = build_alu_ip()
        with pytest.raises(ValueError):
            generate_tlm(m, variant="verilated")


def build_and_augment(sensor_type):
    m, clk, ins, outs = build_alu_ip()
    report = analyze(synthesize(m), clock_period_ps=PERIOD)
    critical = bin_critical_paths(report, threshold_ps=1e9)
    aug = insert_sensors(m, clk, critical, sensor_type=sensor_type)
    return aug, ins, outs


IP_OUTPUTS = ("dout", "flags")


class TestAugmentedEquivalence:
    @pytest.mark.parametrize("sensor", ["razor", "counter"])
    @pytest.mark.parametrize("variant", ["sctypes", "hdtlib"])
    def test_augmented_tlm_matches_augmented_rtl(self, sensor, variant):
        """Functional outputs of the augmented RTL (with nominal
        delays) and its TLM abstraction agree cycle by cycle."""
        stream = random_stream(60, seed=5)

        aug, ins, outs = build_and_augment(sensor)
        sim = aug.make_simulation(input_launch_at_edge=True)
        by_name = {s.name: s for s in ins}
        extra = {}
        if sensor == "razor":
            extra = {aug.bank.recovery: 0}
        rtl_outs = []
        for inputs in stream:
            pokes = {by_name[k]: v for k, v in inputs.items()}
            pokes.update(extra)
            sim.cycle(pokes)
            rtl_outs.append(
                {name: sim.peek_int(aug.module.find_signal(name))
                 for name in IP_OUTPUTS}
            )

        aug2, _, _ = build_and_augment(sensor)
        gen = generate_tlm(aug2.module, variant=variant, augmented=aug2)
        model = gen.instantiate()
        for i, inputs in enumerate(stream):
            feed = dict(inputs)
            if sensor == "razor":
                feed["razor_r"] = 0
            got = model.b_transport(feed)
            functional = {k: got[k] for k in IP_OUTPUTS}
            assert functional == rtl_outs[i], f"cycle {i} ({sensor}/{variant})"

    def test_razor_tlm_raises_no_nominal_errors(self):
        aug, ins, outs = build_and_augment("razor")
        gen = generate_tlm(aug.module, variant="hdtlib", augmented=aug)
        model = gen.instantiate()
        for inputs in random_stream(40, seed=9):
            got = model.b_transport({**inputs, "razor_r": 1})
            assert got["metric_ok"] == 1

    def test_counter_tlm_uses_dual_scheduler(self):
        aug, *_ = build_and_augment("counter")
        gen = generate_tlm(aug.module, variant="hdtlib", augmented=aug)
        assert gen.scheduler_kind == "dual"
        model = gen.instantiate()
        assert model.HF_RATIO == aug.hf_ratio
        for inputs in random_stream(20, seed=11):
            got = model.b_transport(inputs)
            assert got["metric_ok"] == 1  # no delays exist at TLM


class TestTlmRuntime:
    def make_target(self):
        m, *_ = build_alu_ip()
        model = generate_tlm(m, variant="hdtlib").instantiate()
        return CycleTarget(model, clock_period_ps=PERIOD)

    def test_lt_driver_runs_stream(self):
        target = self.make_target()
        driver = LooselyTimedDriver(quantum_cycles=10)
        driver.socket.bind(target.socket)
        outs = driver.run(random_stream(25, seed=3))
        assert len(outs) == 25
        assert driver.stats.transactions == 25
        assert driver.stats.syncs == 2  # 25 cycles / quantum 10
        assert driver.stats.local_time_ps == 25 * PERIOD

    def test_at_driver_matches_lt(self):
        stream = random_stream(30, seed=4)
        t1, t2 = self.make_target(), self.make_target()
        lt = LooselyTimedDriver(quantum_cycles=8)
        at = ApproximatelyTimedDriver()
        lt.socket.bind(t1.socket)
        at.socket.bind(t2.socket)
        assert lt.run(stream) == at.run(stream)
        assert at.stats.syncs == 30  # AT synchronises every transaction

    def test_unknown_port_is_address_error(self):
        target = self.make_target()
        payload = GenericPayload(
            command=TlmCommand.WRITE, data={"nonexistent": 1}
        )
        target.b_transport(payload, 0)
        assert not payload.is_ok

    def test_unbound_socket_raises(self):
        driver = LooselyTimedDriver()
        with pytest.raises(RuntimeError):
            driver.cycle({})

    def test_bad_quantum_rejected(self):
        with pytest.raises(ValueError):
            LooselyTimedDriver(quantum_cycles=0)
