"""Unit and property tests for four-valued logic scalars and vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl.types import L0, L1, LX, LZ, LV, Logic, resolve


# ----------------------------------------------------------------------
# Logic scalars
# ----------------------------------------------------------------------

class TestLogic:
    def test_interning(self):
        assert Logic(0, 0, "0") is L0
        assert Logic(1, 0, "1") is L1
        assert Logic(0, 1, "X") is LX
        assert Logic(1, 1, "Z") is LZ

    def test_from_char(self):
        assert Logic.from_char("0") is L0
        assert Logic.from_char("1") is L1
        assert Logic.from_char("x") is LX
        assert Logic.from_char("Z") is LZ

    def test_from_char_rejects_garbage(self):
        with pytest.raises(ValueError):
            Logic.from_char("q")

    def test_is_known(self):
        assert L0.is_known and L1.is_known
        assert not LX.is_known and not LZ.is_known

    def test_immutable(self):
        with pytest.raises(AttributeError):
            L0.value = 1

    def test_str(self):
        assert str(L0) == "0"
        assert str(LZ) == "Z"


class TestResolve:
    def test_z_yields(self):
        assert resolve(LZ, L1) is L1
        assert resolve(L0, LZ) is L0
        assert resolve(LZ, LZ) is LZ

    def test_agreement(self):
        assert resolve(L0, L0) is L0
        assert resolve(L1, L1) is L1

    def test_conflict_is_x(self):
        assert resolve(L0, L1) is LX
        assert resolve(L1, L0) is LX

    def test_x_dominates(self):
        assert resolve(LX, L1) is LX
        assert resolve(L0, LX) is LX

    def test_commutative(self):
        for a in (L0, L1, LX, LZ):
            for b in (L0, L1, LX, LZ):
                assert resolve(a, b) is resolve(b, a)


# ----------------------------------------------------------------------
# Vector construction
# ----------------------------------------------------------------------

class TestLVConstruction:
    def test_from_int(self):
        v = LV.from_int(8, 0xA5)
        assert v.to_int() == 0xA5
        assert v.is_fully_defined

    def test_from_int_wraps_negative(self):
        assert LV.from_int(8, -1).to_int() == 0xFF

    def test_from_int_masks(self):
        assert LV.from_int(4, 0x1F).to_int() == 0xF

    def test_from_str(self):
        v = LV.from_str("10XZ")
        assert v.width == 4
        assert str(v) == "10XZ"

    def test_from_str_empty_rejected(self):
        with pytest.raises(ValueError):
            LV.from_str("")

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            LV(0)

    def test_all_x(self):
        v = LV.all_x(4)
        assert str(v) == "XXXX"
        assert not v.is_fully_defined

    def test_all_z(self):
        assert str(LV.all_z(3)) == "ZZZ"

    def test_zeros_ones(self):
        assert LV.zeros(4).to_int() == 0
        assert LV.ones(4).to_int() == 0xF

    def test_immutable(self):
        v = LV.from_int(4, 3)
        with pytest.raises(AttributeError):
            v.value = 5

    def test_to_int_raises_on_unknown(self):
        with pytest.raises(ValueError):
            LV.from_str("1X").to_int()

    def test_to_int_or_folds_unknowns(self):
        assert LV.from_str("1X0Z").to_int_or(0) == 0b1000
        assert LV.from_str("1X0Z").to_int_or(0b1111) == 0b1101

    def test_to_int_signed(self):
        assert LV.from_int(4, 0b1111).to_int_signed() == -1
        assert LV.from_int(4, 0b0111).to_int_signed() == 7

    def test_bit(self):
        v = LV.from_str("1X0Z")
        assert v.bit(0) is LZ
        assert v.bit(1) is L0
        assert v.bit(2) is LX
        assert v.bit(3) is L1

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            LV.from_int(4, 0).bit(4)

    def test_eq_with_int(self):
        assert LV.from_int(8, 5) == 5
        assert LV.from_str("0X") != 1

    def test_hashable(self):
        assert len({LV.from_int(4, 1), LV.from_int(4, 1)}) == 1


# ----------------------------------------------------------------------
# Bitwise plane equations
# ----------------------------------------------------------------------

class TestBitwise:
    def test_and_known(self):
        a, b = LV.from_int(4, 0b1100), LV.from_int(4, 0b1010)
        assert (a & b).to_int() == 0b1000

    def test_and_zero_dominates_x(self):
        assert str(LV.from_str("0X") & LV.from_str("XX")) == "0X"

    def test_or_one_dominates_x(self):
        assert str(LV.from_str("1X") | LV.from_str("XX")) == "1X"

    def test_xor_contaminates_per_bit(self):
        assert str(LV.from_str("1X10") ^ LV.from_str("1111")) == "0X01"

    def test_z_behaves_as_x_in_ops(self):
        assert str(LV.from_str("Z") & LV.from_str("1")) == "X"
        assert str(LV.from_str("Z") & LV.from_str("0")) == "0"

    def test_invert(self):
        assert str(~LV.from_str("10XZ")) == "01XX"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LV.from_int(4, 0) & LV.from_int(5, 0)


class TestReductions:
    def test_reduce_and(self):
        assert LV.from_int(3, 0b111).reduce_and() == 1
        assert LV.from_int(3, 0b101).reduce_and() == 0
        assert str(LV.from_str("1X1").reduce_and()) == "X"
        assert LV.from_str("0X1").reduce_and() == 0  # hard zero dominates

    def test_reduce_or(self):
        assert LV.from_int(3, 0).reduce_or() == 0
        assert LV.from_int(3, 0b010).reduce_or() == 1
        assert str(LV.from_str("0X0").reduce_or()) == "X"
        assert LV.from_str("1X0").reduce_or() == 1  # hard one dominates

    def test_reduce_xor(self):
        assert LV.from_int(4, 0b1011).reduce_xor() == 1
        assert LV.from_int(4, 0b1001).reduce_xor() == 0
        assert str(LV.from_str("1X").reduce_xor()) == "X"


class TestArithmetic:
    def test_add(self):
        assert (LV.from_int(8, 200) + LV.from_int(8, 100)).to_int() == 44

    def test_sub_wraps(self):
        assert (LV.from_int(8, 5) - LV.from_int(8, 10)).to_int() == 251

    def test_mul_masks(self):
        assert (LV.from_int(4, 9) * LV.from_int(4, 9)).to_int() == 81 & 0xF

    def test_unknown_contaminates(self):
        assert str(LV.from_str("1X") + LV.from_int(2, 1)) == "XX"

    def test_neg(self):
        assert LV.from_int(4, 3).neg().to_int() == 13
        assert str(LV.from_str("0X0Z").neg()) == "XXXX"


class TestShifts:
    def test_shl(self):
        assert LV.from_int(8, 0b11).shl(2).to_int() == 0b1100

    def test_shl_overflow_drops(self):
        assert LV.from_int(4, 0b1001).shl(1).to_int() == 0b0010

    def test_shr(self):
        assert LV.from_int(8, 0b1100).shr(2).to_int() == 0b11

    def test_sar_negative(self):
        assert LV.from_int(4, 0b1000).sar(1).to_int() == 0b1100
        assert LV.from_int(4, 0b1000).sar(5).to_int() == 0b1111

    def test_sar_positive(self):
        assert LV.from_int(4, 0b0100).sar(2).to_int() == 0b0001

    def test_shift_by_lv(self):
        assert LV.from_int(8, 1).shl(LV.from_int(3, 3)).to_int() == 8

    def test_unknown_amount_contaminates(self):
        assert str(LV.from_int(2, 1).shl(LV.from_str("X"))) == "XX"

    def test_huge_shift_clears(self):
        assert LV.from_int(8, 0xFF).shr(100).to_int() == 0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            LV.from_int(4, 1).shl(-1)

    def test_shift_preserves_x_positions(self):
        assert str(LV.from_str("0X01").shl(1)) == "X010"


class TestComparisons:
    def test_eq_ne(self):
        a = LV.from_int(4, 5)
        assert a.eq(LV.from_int(4, 5)) == 1
        assert a.ne(LV.from_int(4, 5)) == 0
        assert a.eq(LV.from_int(4, 6)) == 0

    def test_unsigned_ordering(self):
        a, b = LV.from_int(4, 0xF), LV.from_int(4, 1)
        assert a.gt(b) == 1
        assert a.lt(b) == 0

    def test_signed_ordering(self):
        a, b = LV.from_int(4, 0xF), LV.from_int(4, 1)  # -1 vs 1
        assert a.lt(b, signed=True) == 1
        assert a.ge(b, signed=True) == 0

    def test_unknown_compare_is_x(self):
        assert str(LV.from_str("1X").eq(LV.from_int(2, 2))) == "X"


class TestStructure:
    def test_slice(self):
        v = LV.from_int(8, 0b10110100)
        assert v.slice(5, 2).to_int() == 0b1101

    def test_slice_bounds(self):
        with pytest.raises(IndexError):
            LV.from_int(4, 0).slice(4, 0)

    def test_concat(self):
        v = LV.from_int(4, 0xA).concat(LV.from_int(4, 0x5))
        assert v.width == 8
        assert v.to_int() == 0xA5

    def test_concat_preserves_unknowns(self):
        assert str(LV.from_str("1X").concat(LV.from_str("Z0"))) == "1XZ0"

    def test_resize_zero_extend(self):
        assert LV.from_int(4, 0xF).resize(8).to_int() == 0x0F

    def test_resize_sign_extend(self):
        assert LV.from_int(4, 0x8).resize(8, signed=True).to_int() == 0xF8
        assert LV.from_int(4, 0x7).resize(8, signed=True).to_int() == 0x07

    def test_resize_truncate(self):
        assert LV.from_int(8, 0xAB).resize(4).to_int() == 0xB

    def test_replaced_slice(self):
        v = LV.from_int(8, 0).replaced_slice(5, 2, LV.from_int(4, 0xF))
        assert v.to_int() == 0b00111100

    def test_replaced_slice_width_check(self):
        with pytest.raises(ValueError):
            LV.from_int(8, 0).replaced_slice(5, 2, LV.from_int(3, 0))

    def test_resolve_with(self):
        a = LV.from_str("01ZZ")
        b = LV.from_str("ZZ0Z")
        assert str(a.resolve_with(b)) == "010Z"


# ----------------------------------------------------------------------
# Property-based tests: fully-defined LV ops must match Python ints
# ----------------------------------------------------------------------

widths = st.integers(min_value=1, max_value=64)


@st.composite
def lv_pair(draw):
    w = draw(widths)
    a = draw(st.integers(min_value=0, max_value=(1 << w) - 1))
    b = draw(st.integers(min_value=0, max_value=(1 << w) - 1))
    return w, a, b


@given(lv_pair())
def test_prop_add_matches_int(pair):
    w, a, b = pair
    assert (LV.from_int(w, a) + LV.from_int(w, b)).to_int() == (a + b) % (1 << w)


@given(lv_pair())
def test_prop_sub_matches_int(pair):
    w, a, b = pair
    assert (LV.from_int(w, a) - LV.from_int(w, b)).to_int() == (a - b) % (1 << w)


@given(lv_pair())
def test_prop_mul_matches_int(pair):
    w, a, b = pair
    assert (LV.from_int(w, a) * LV.from_int(w, b)).to_int() == (a * b) % (1 << w)


@given(lv_pair())
def test_prop_bitwise_matches_int(pair):
    w, a, b = pair
    va, vb = LV.from_int(w, a), LV.from_int(w, b)
    assert (va & vb).to_int() == a & b
    assert (va | vb).to_int() == a | b
    assert (va ^ vb).to_int() == a ^ b
    assert (~va).to_int() == a ^ ((1 << w) - 1)


@given(lv_pair())
def test_prop_compare_matches_int(pair):
    w, a, b = pair
    va, vb = LV.from_int(w, a), LV.from_int(w, b)
    assert va.lt(vb).to_int() == int(a < b)
    assert va.le(vb).to_int() == int(a <= b)
    assert va.eq(vb).to_int() == int(a == b)


@given(lv_pair(), st.integers(min_value=0, max_value=70))
def test_prop_shifts_match_int(pair, n):
    w, a, _ = pair
    mask = (1 << w) - 1
    assert LV.from_int(w, a).shl(n).to_int() == (a << n) & mask
    assert LV.from_int(w, a).shr(n).to_int() == a >> n


@given(st.text(alphabet="01XZ", min_size=1, max_size=32))
def test_prop_str_roundtrip(text):
    assert str(LV.from_str(text)) == text


@given(st.text(alphabet="01XZ", min_size=1, max_size=32))
def test_prop_double_invert_maps_z_to_x(text):
    v = LV.from_str(text)
    expected = text.replace("Z", "X")
    assert str(~~v) == expected


@given(st.text(alphabet="01XZ", min_size=1, max_size=16),
       st.text(alphabet="01XZ", min_size=1, max_size=16))
def test_prop_concat_width(a, b):
    va, vb = LV.from_str(a), LV.from_str(b)
    assert va.concat(vb).width == va.width + vb.width
    assert str(va.concat(vb)) == (a + b).replace("z", "Z")


@given(lv_pair())
def test_prop_and_intersection_bound(pair):
    """a & b has no one-bit outside a's or b's one-bits (4-value safe)."""
    w, a, b = pair
    va, vb = LV.from_int(w, a), LV.from_int(w, b)
    result = va & vb
    assert result.value & ~(a & b) == 0
