"""Tests for the Razor and Counter-based sensors at RTL.

These tests exercise the full physical story of the paper's Section 4:
nominal (back-annotated) path delays meet timing and raise no errors;
injected extra delays that push arrivals past the consuming clock edge
are detected by the Razor shadow latch (and corrected when recovery is
on) and are measured in HF-clock periods by the Counter monitor.
"""

import pytest

from repro.rtl import Assign, Module, Simulation, const
from repro.sensors import (
    AugmentedIP,
    InsertionError,
    extract_endpoint_signals,
    insert_sensors,
)
from repro.sta import analyze, bin_critical_paths
from repro.synth import synthesize

PERIOD = 1000  # ps


def build_dut():
    """A small datapath: an accumulating register feeding a register.

    acc <= acc + din;  res <= acc * 3 (the critical path).
    """
    m = Module("dut")
    clk = m.input("clk")
    din = m.input("din", 8)
    acc = m.signal("acc", 8)
    res = m.output("res", 8)
    m.sync("p_acc", clk, [Assign(acc, acc + din)])
    m.sync("p_res", clk, [Assign(res, acc * const(3, 8))])
    return m, clk, din, acc, res


def augment(sensor_type, threshold_ps=1e9, **kw):
    m, clk, din, acc, res = build_dut()
    report = analyze(synthesize(m), clock_period_ps=PERIOD)
    critical = bin_critical_paths(report, threshold_ps)
    aug = insert_sensors(m, clk, critical, sensor_type=sensor_type, **kw)
    return aug, din


class TestEndpointExtraction:
    def test_creates_endpoint_signals(self):
        m, clk, din, acc, res = build_dut()
        endpoint_of = extract_endpoint_signals(m, [acc, res])
        assert endpoint_of[acc].name == "acc__d"
        assert endpoint_of[res].name == "res__d"

    def test_behaviour_preserved(self):
        """The rewritten module computes the same values."""
        m1, clk1, din1, acc1, res1 = build_dut()
        m2, clk2, din2, acc2, res2 = build_dut()
        extract_endpoint_signals(m2, [acc2, res2])
        s1 = Simulation(m1, {clk1: PERIOD})
        s2 = Simulation(m2, {clk2: PERIOD})
        for value in [3, 7, 1, 9, 250, 4]:
            s1.cycle({din1: value})
            s2.cycle({din2: value})
            assert s1.peek(res1) == s2.peek(res2)

    def test_unknown_register_rejected(self):
        m, clk, din, acc, res = build_dut()
        ghost = Module("other").signal("ghost", 8)
        with pytest.raises(InsertionError):
            extract_endpoint_signals(m, [ghost])


class TestInsertionStructure:
    def test_razor_ports_added(self):
        aug, _ = augment("razor")
        names = {p.name for p in aug.module.ports}
        assert {"razor_r", "razor_err", "metric_ok"} <= names
        assert aug.sensor_count == 2

    def test_counter_ports_added(self):
        aug, _ = augment("counter")
        names = {p.name for p in aug.module.ports}
        assert {"hf_clk", "meas_val", "metric_ok"} <= names

    def test_razor_nominal_in_window(self):
        aug, _ = augment("razor")
        for delay in aug.nominal_delay_of.values():
            assert PERIOD * 0.6 < delay < PERIOD

    def test_counter_nominal_inside_obs_window(self):
        aug, _ = augment("counter")
        for delay in aug.nominal_delay_of.values():
            assert PERIOD * 0.3 <= delay <= PERIOD * 0.7

    def test_bad_sensor_type(self):
        m, clk, *_ = build_dut()
        report = analyze(synthesize(m), PERIOD)
        with pytest.raises(InsertionError):
            insert_sensors(m, clk, bin_critical_paths(report, 1e9),
                           sensor_type="thermometer")

    def test_counter_ratio_must_divide(self):
        m, clk, *_ = build_dut()
        report = analyze(synthesize(m), PERIOD)
        with pytest.raises(InsertionError):
            insert_sensors(m, clk, bin_critical_paths(report, 1e9),
                           sensor_type="counter", hf_ratio=7)


class TestRazorAtSpeed:
    def run_cycles(self, aug, din, sim, n, value_seq=None):
        for i in range(n):
            value = value_seq[i % len(value_seq)] if value_seq else (i * 7 + 3) % 256
            sim.cycle({din: value, aug.bank.recovery: sim._razor_r})

    def make_sim(self, aug, recovery):
        sim = aug.make_simulation()
        sim._razor_r = 1 if recovery else 0  # test-local convenience
        return sim

    def test_nominal_timing_raises_no_error(self):
        """Back-annotated nominal delays meet setup: E stays 0."""
        aug, din = augment("razor")
        sim = self.make_sim(aug, recovery=False)
        metric_ok = aug.module.find_signal("metric_ok")
        for i in range(20):
            sim.cycle({din: (i * 13 + 1) % 256})
            if i >= 2:  # allow start-up settling
                assert sim.peek_int(metric_ok) == 1, f"false alarm at cycle {i}"

    def test_delay_in_window_detected(self):
        """Extra delay pushing arrival past the edge (but inside the
        Razor window) raises E."""
        aug, din = augment("razor")
        sim = self.make_sim(aug, recovery=False)
        res_ep = aug.endpoint_for("res")
        nominal = aug.nominal_delay_of[res_ep]
        # Push arrival to 1.2 T after launch: miss edge, hit shadow.
        sim.inject_extra_delay(res_ep, int(1.2 * PERIOD) - nominal)
        tap = next(t for t in aug.bank.taps if t.register.name == "res")
        errors = []
        for i in range(12):
            sim.cycle({din: (i * 13 + 1) % 256})
            errors.append(sim.peek_int(tap.error))
        assert any(errors), "Razor never flagged the in-window delay"

    def test_detection_only_corrupts_output(self):
        """With R=0 the error is flagged but not corrected: the
        injected run diverges from a golden run."""
        aug, din = augment("razor")
        golden_m, gclk, gdin, _, gres = build_dut()
        golden = Simulation(golden_m, {gclk: PERIOD})
        sim = self.make_sim(aug, recovery=False)
        res_ep = aug.endpoint_for("res")
        sim.inject_extra_delay(
            res_ep, int(1.2 * PERIOD) - aug.nominal_delay_of[res_ep]
        )
        res = aug.module.find_signal("res")
        diverged = False
        for i in range(12):
            value = (i * 13 + 1) % 256
            golden.cycle({gdin: value})
            sim.cycle({din: value})
            if sim.peek(res) != golden.peek(gres):
                diverged = True
        assert diverged

    def run_with_transient_fault(self, recovery):
        """Drive the accumulator with a one-cycle late arrival on its
        own feedback path (a transient variability event) and return
        ``(final_acc, golden_final, errors_seen)``.

        Both simulations launch inputs at the clock edge (upstream-
        register convention), which keeps input consumption aligned
        between the zero-delay golden model and the delay-annotated
        augmented model."""
        aug, din = augment("razor")
        golden_m, gclk, gdin, gacc, gres = build_dut()
        golden = Simulation(golden_m, {gclk: PERIOD}, input_launch_at_edge=True)
        sim = aug.make_simulation(input_launch_at_edge=True)
        acc_ep = aug.endpoint_for("acc")
        extra = int(1.2 * PERIOD) - aug.nominal_delay_of[acc_ep]
        acc = aug.module.find_signal("acc")
        stall = aug.bank.stall
        tap = next(t for t in aug.bank.taps if t.register.name == "acc")

        inputs = [(i * 13 + 1) % 256 for i in range(10)]
        for value in inputs:
            golden.cycle({gdin: value})
        golden.cycle({gdin: 0})  # flush: edge-launched inputs lag a cycle

        # Edge-launch protocol: the input poked in call k is consumed
        # by the edge of call k+1.  When that edge is stalled (stall
        # observed after call k), the in-flight input must be
        # re-presented, because the relaunch during the stall cycle
        # carries whatever the testbench is driving then.
        errors = 0
        fault_index = 4
        p = 0
        prev = None
        guard = 0
        while p < len(inputs) and guard < 50:
            guard += 1
            if sim.peek_int(stall) == 1 and prev is not None:
                value = prev
            else:
                value = inputs[p]
                if p == fault_index:
                    sim.inject_extra_delay(acc_ep, extra)
                p += 1
            sim.cycle({din: value, aug.bank.recovery: recovery})
            sim.clear_injection(acc_ep)  # transient: one launch affected
            errors += sim.peek_int(tap.error)
            prev = value
        # Flush the final in-flight input (plus a possible stall).
        for _ in range(3):
            if sim.peek_int(stall) == 1 and prev is not None:
                sim.cycle({din: prev, aug.bank.recovery: recovery})
            else:
                sim.cycle({din: 0, aug.bank.recovery: recovery})
                break
        return sim.peek_int(acc), golden.peek_int(gacc), errors

    def test_recovery_corrects_state(self):
        """With R=1 a transient in-window delay is detected, the state
        restored from the shadow latch, and the final architectural
        state matches the golden run exactly."""
        final, golden_final, errors = self.run_with_transient_fault(1)
        assert errors >= 1, "error never flagged"
        assert final == golden_final

    def test_detection_only_loses_state(self):
        """With R=0 the same transient fault permanently corrupts the
        accumulated state (the missed update is never recovered)."""
        final, golden_final, errors = self.run_with_transient_fault(0)
        assert errors >= 1
        assert final != golden_final

    def test_delay_beyond_window_missed(self):
        """Arrivals later than T/2 after the edge also miss the shadow
        latch: no detection (the sensor's documented limit)."""
        aug, din = augment("razor")
        sim = self.make_sim(aug, recovery=False)
        res_ep = aug.endpoint_for("res")
        nominal = aug.nominal_delay_of[res_ep]
        sim.inject_extra_delay(res_ep, int(1.8 * PERIOD) - nominal)
        tap = next(t for t in aug.bank.taps if t.register.name == "res")
        errors = []
        for i in range(12):
            sim.cycle({din: (i * 13 + 1) % 256})
            errors.append(sim.peek_int(tap.error))
        assert not any(errors)


class TestCounterAtSpeed:
    def test_nominal_measurement(self):
        """MEAS_VAL equals the nominal arrival in HF periods."""
        aug, din = augment("counter")
        sim = aug.make_simulation()
        tap = aug.bank.tap_for("res")
        expected = -(-aug.nominal_delay_of[tap.endpoint] // aug.hf_period_ps())
        seen = set()
        for i in range(12):
            sim.cycle({din: (i * 13 + 1) % 256})
            seen.add(sim.peek_int(tap.meas_val))
        assert expected in seen

    def test_nominal_is_ok(self):
        """Nominal delays stay at or below the LUT threshold."""
        aug, din = augment("counter")
        sim = aug.make_simulation()
        metric_ok = aug.module.find_signal("metric_ok")
        for i in range(12):
            sim.cycle({din: (i * 13 + 1) % 256})
            assert sim.peek_int(metric_ok) == 1

    def test_injected_delay_measured_in_hf_periods(self):
        """An absolute delay of k HF periods is measured as k."""
        aug, din = augment("counter")
        sim = aug.make_simulation()
        tap = aug.bank.tap_for("res")
        k = 9
        # Replace the nominal delay with an absolute k-HF-period delay.
        sim.set_transport_delay(tap.endpoint, k * aug.hf_period_ps())
        seen = set()
        for i in range(12):
            sim.cycle({din: (i * 13 + 1) % 256})
            seen.add(sim.peek_int(tap.meas_val))
        assert k in seen

    def test_above_threshold_flags_error(self):
        aug, din = augment("counter")
        sim = aug.make_simulation()
        tap = aug.bank.tap_for("res")
        sim.set_transport_delay(tap.endpoint, 9 * aug.hf_period_ps())
        oks = []
        for i in range(12):
            sim.cycle({din: (i * 13 + 1) % 256})
            oks.append(sim.peek_int(tap.out_ok))
        assert 0 in oks, "delay above the 8-period LUT threshold not flagged"

    def test_below_threshold_tolerated(self):
        aug, din = augment("counter")
        sim = aug.make_simulation()
        tap = aug.bank.tap_for("res")
        sim.set_transport_delay(tap.endpoint, 4 * aug.hf_period_ps())
        for i in range(12):
            sim.cycle({din: (i * 13 + 1) % 256})
            assert sim.peek_int(tap.out_ok) == 1

    def test_measurement_latency(self):
        """MEAS_VAL for the first stimulated window appears only after
        the documented three-cycle latency."""
        aug, din = augment("counter")
        sim = aug.make_simulation()
        tap = aug.bank.tap_for("res")
        values = []
        for i in range(6):
            sim.cycle({din: (i * 13 + 1) % 256})
            values.append(sim.peek_int(tap.meas_val))
        assert values[0] == 0  # nothing measured yet
        assert any(v > 0 for v in values[2:]), values
