"""Shard-placement tests: the interface split, the fleet dispatch
policy, and the PR's determinism property.

The acceptance contract (PR 6):

* ``CampaignScheduler`` *is* a :class:`LocalPoolPlacement` -- the
  historical single-host behaviour is the base case of the placement
  interface, bit-identically;
* a :class:`~repro.service.FleetPlacement` over two ``repro serve``
  worker daemons produces **field-for-field identical** reports to the
  local pool -- for every IP x sensor type, and across a mid-campaign
  worker kill with re-dispatch to the survivor;
* dispatch policy invariants (least-loaded steal, at-most-once per
  placement per shard, loud exhaustion, local routing of
  non-remotable shards, dispatch-time cache strip) hold on scripted
  placements, independent of any real campaign.
"""

import threading
import time
from concurrent.futures import Future, wait
from types import SimpleNamespace

import pytest

from repro.flow import run_flow
from repro.ips import CASE_STUDIES, case_study
from repro.mutation import (
    CampaignScheduler,
    LocalPoolPlacement,
    PlacementLostError,
    ResultCache,
    ShardPlacement,
    SupervisedFuture,
    run_campaign,
)
from repro.mutation.cache import encode_outcome, shard_entry_keys
from repro.mutation.campaign import prepare_campaign
from repro.mutation.scheduler import stream_shard_batches
from repro.service import (
    CampaignService,
    FleetPlacement,
    RemoteWorkerPlacement,
    ServiceServer,
)
from repro.service.fleet import run_shard_inline

REDUCED_CYCLES = 24

ALL_CAMPAIGNS = [
    (ip, sensor)
    for ip in sorted(CASE_STUDIES)
    for sensor in ("razor", "counter")
]


@pytest.fixture(scope="module")
def flows():
    built = {}

    def get(ip, sensor):
        key = (ip, sensor)
        if key not in built:
            built[key] = run_flow(case_study(ip), sensor,
                                  run_mutation=False)
        return built[key]

    return get


@pytest.fixture(scope="module")
def baselines(flows):
    """Local single-worker reports: the byte-identity reference every
    placement must reproduce."""
    reports = {}
    for ip, sensor in ALL_CAMPAIGNS:
        flow = flows(ip, sensor)
        stim = case_study(ip).stimulus(REDUCED_CYCLES)
        reports[(ip, sensor)] = run_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name=ip, sensor_type=sensor, workers=1,
        )
    return reports


def _worker_server(**kwargs):
    """One in-process worker daemon (the stand-in for ``repro serve
    --role worker``)."""
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("role", "worker")
    service = CampaignService(**kwargs)
    return ServiceServer(service)


def _remote(server, **kw):
    host, port = server.address
    return RemoteWorkerPlacement(host, port, **kw)


def _run_on(placement, flow, ip, sensor, *, shard_size=None, cache=None):
    """Prepare + stream one campaign on ``placement`` and build its
    report -- the placement-agnostic path the service job runner
    uses."""
    stim = case_study(ip).stimulus(REDUCED_CYCLES)
    prepared = prepare_campaign(
        flow.tlm_optimized, flow.injected, stim,
        ip_name=ip, sensor_type=sensor,
        workers=placement.workers, shard_size=shard_size, cache=cache,
    )
    outcomes = []
    for batch, _snapshot in stream_shard_batches(
        placement, prepared, cache=cache
    ):
        outcomes.extend(batch)
    return prepared.build_report(outcomes)


# ----------------------------------------------------------------------
# The interface split
# ----------------------------------------------------------------------

class TestLocalPoolPlacement:
    def test_scheduler_is_a_local_placement(self):
        with CampaignScheduler(workers=1) as scheduler:
            assert isinstance(scheduler, LocalPoolPlacement)
            assert isinstance(scheduler, ShardPlacement)
            assert scheduler.kind == "local"
            assert scheduler.alive

    def test_describe_reports_identity_and_counters(self, flows):
        flow = flows("dsp", "razor")
        stim = case_study("dsp").stimulus(REDUCED_CYCLES)
        prepared = prepare_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name="dsp", sensor_type="razor", shard_size=4,
        )
        with CampaignScheduler(workers=1) as scheduler:
            before = scheduler.describe()
            assert before["kind"] == "local"
            assert before["identity"].startswith("local/")
            assert before["shards_done"] == 0
            for shard in prepared.shards:
                scheduler.submit(shard).result()
            after = scheduler.describe()
            assert after["shards_done"] == len(prepared.shards)
            assert after["in_flight"] == 0
            assert after["alive"] is True
        assert not scheduler.alive


# ----------------------------------------------------------------------
# Fleet dispatch policy on scripted placements
# ----------------------------------------------------------------------

class ScriptedPlacement(ShardPlacement):
    """A placement with a scripted failure budget: the first
    ``fail_times`` submissions die with PlacementLostError (and mark
    it dead), the rest resolve to ``result``."""

    kind = "scripted"

    def __init__(self, name, *, workers=1, fail_times=0,
                 in_flight=0, result=()):
        self.identity = name
        self.workers = workers
        self.submitted = []
        self.result = list(result)
        self._fail_times = fail_times
        self._in_flight = in_flight
        self._alive = True

    @property
    def alive(self):
        return self._alive

    def submit(self, shard):
        self.submitted.append(shard)
        future = Future()
        if self._fail_times > 0:
            self._fail_times -= 1
            self._alive = False
            future.set_exception(
                PlacementLostError(f"{self.identity} scripted loss")
            )
        else:
            future.set_result(list(self.result))
        return future

    def shutdown(self, wait=True):
        self._alive = False

    def describe(self):
        return {
            "kind": self.kind,
            "identity": self.identity,
            "workers": self.workers,
            "alive": self.alive,
            "in_flight": self._in_flight,
        }


def _wire_shard(**over):
    """A stand-in shard for dispatch-policy tests (never executed)."""
    shard = SimpleNamespace(remote_ok=True, inline_only=False)
    for name, value in over.items():
        setattr(shard, name, value)
    return shard


class TestFleetDispatch:
    def test_least_loaded_placement_steals_the_shard(self):
        busy = ScriptedPlacement("busy", workers=2, in_flight=4)
        idle = ScriptedPlacement("idle", workers=2, in_flight=0)
        fleet = FleetPlacement([busy, idle])
        assert fleet.submit(_wire_shard()).result() == []
        assert idle.submitted and not busy.submitted

    def test_lost_placement_redispatches_to_survivor(self):
        flaky = ScriptedPlacement("flaky", fail_times=1, in_flight=0)
        backup = ScriptedPlacement("backup", in_flight=9,
                                   result=["ok"])
        fleet = FleetPlacement([flaky, backup])
        assert fleet.submit(_wire_shard()).result() == ["ok"]
        # The loss marked the placement dead and was re-dispatched.
        assert not flaky.alive
        assert len(backup.submitted) == 1
        assert fleet.stats()["redispatches"] == 1
        # Capacity follows liveness: only the survivor counts now.
        assert fleet.workers == backup.workers

    def test_exhausted_fleet_fails_the_shard_loudly(self):
        a = ScriptedPlacement("a", fail_times=1)
        b = ScriptedPlacement("b", fail_times=1)
        fleet = FleetPlacement([a, b])
        future = fleet.submit(_wire_shard())
        with pytest.raises(PlacementLostError, match="no live"):
            future.result(timeout=5)

    def test_each_placement_tried_at_most_once_per_shard(self):
        # Placement "a" has a two-failure budget, but the shard that
        # hits it must try it exactly once before settling on "b" --
        # a re-dispatch never returns to a placement it already tried.
        a = ScriptedPlacement("a", fail_times=2)
        b = ScriptedPlacement("b", result=["ok"])
        fleet = FleetPlacement([a, b])
        results = [
            fleet.submit(_wire_shard()).result(timeout=5)
            for _ in range(2)
        ]
        assert results == [["ok"], ["ok"]]
        assert len(a.submitted) == 1

    def test_non_remotable_shard_runs_on_the_local_placement(self):
        local = ScriptedPlacement("local", result=["local"])
        remote = ScriptedPlacement("remote", result=["remote"])
        fleet = FleetPlacement([remote], local=local)
        pinned = _wire_shard(remote_ok=False)
        assert fleet.submit(pinned).result() == ["local"]
        assert not remote.submitted
        inline = _wire_shard(inline_only=True)
        assert fleet.submit(inline).result() == ["local"]
        assert not remote.submitted

    def test_non_remotable_shard_without_local_fails(self):
        fleet = FleetPlacement([ScriptedPlacement("remote")])
        with pytest.raises(PlacementLostError, match="local"):
            fleet.submit(_wire_shard(remote_ok=False))

    def test_empty_fleet_with_local_degrades_to_it(self):
        local = ScriptedPlacement("local", workers=3, result=["x"])
        fleet = FleetPlacement(local=local)
        assert fleet.workers == 3
        assert fleet.submit(_wire_shard()).result() == ["x"]

    def test_add_replaces_member_by_address(self):
        old = ScriptedPlacement("old")
        old.host, old.port = "127.0.0.1", 9001
        new = ScriptedPlacement("new", result=["new"])
        new.host, new.port = "127.0.0.1", 9001
        fleet = FleetPlacement([old])
        fleet.add(new)
        assert fleet.members == [new]
        assert not old.alive  # replaced proxies are shut down

    def test_dispatch_time_cache_strip_skips_known_mutants(self, flows):
        # Pre-prove every mutant of one real shard into a shared
        # cache: dispatching it through the fleet must not touch any
        # remote member at all (a fully-known shard never leaves the
        # coordinator), and the replayed outcomes must equal the
        # executed ones.
        flow = flows("dsp", "razor")
        stim = case_study("dsp").stimulus(REDUCED_CYCLES)
        prepared = prepare_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name="dsp", sensor_type="razor",
        )
        shard = prepared.shards[0]
        executed = run_shard_inline(shard)
        cache = ResultCache(None)
        keys = shard_entry_keys(shard)
        for outcome in executed:
            cache.put(keys[outcome.index], encode_outcome(outcome))
        remote = ScriptedPlacement("remote")
        fleet = FleetPlacement([remote], cache=cache)
        outcomes = fleet.submit(shard).result(timeout=30)
        assert not remote.submitted
        assert sorted(o.index for o in outcomes) == list(shard.indices)
        assert outcomes == sorted(executed, key=lambda o: o.index)
        assert fleet.stats()["cache_strip_hits"] == len(shard.indices)

    @staticmethod
    def _half_cached_shard(flows):
        """One real shard with every other mutant pre-proved into a
        cache: ``(shard, executed, known, missing, cache)``."""
        flow = flows("dsp", "razor")
        stim = case_study("dsp").stimulus(REDUCED_CYCLES)
        prepared = prepare_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name="dsp", sensor_type="razor",
        )
        shard = prepared.shards[0]
        assert len(shard.indices) >= 2
        executed = sorted(run_shard_inline(shard),
                          key=lambda o: o.index)
        known, missing = executed[::2], executed[1::2]
        cache = ResultCache(None)
        keys = shard_entry_keys(shard)
        for outcome in known:
            cache.put(keys[outcome.index], encode_outcome(outcome))
        return shard, executed, known, missing, cache

    def test_redispatch_preserves_cache_stripped_outcomes(self, flows):
        # The ragged case the strip and the re-dispatch share: the
        # dispatch-time cache probe narrows the shard, then the chosen
        # worker dies mid-flight.  The retry runs only the narrowed
        # remainder, so the stripped outcomes must ride along to the
        # final result -- dropping them silently truncates the report.
        shard, executed, known, missing, cache = \
            self._half_cached_shard(flows)
        flaky = ScriptedPlacement("flaky", fail_times=1, in_flight=0)
        backup = ScriptedPlacement("backup", in_flight=9,
                                   result=missing)
        fleet = FleetPlacement([flaky, backup], cache=cache)
        outcomes = fleet.submit(shard).result(timeout=30)
        assert fleet.stats()["redispatches"] == 1
        assert sorted(o.index for o in outcomes) == list(shard.indices)
        assert sorted(outcomes, key=lambda o: o.index) == executed
        # The survivor saw only the narrowed remainder (the strip
        # itself held across the retry), and the strip counted once.
        assert [list(s.indices) for s in backup.submitted] == \
            [[o.index for o in missing]]
        assert fleet.stats()["cache_strip_hits"] == len(known)

    def test_sync_retry_preserves_cache_stripped_outcomes(self, flows):
        # Same property on the synchronous retry path: the placement
        # dies between _choose and submit (submit *raises* instead of
        # failing its future).
        class RaisesOnSubmit(ScriptedPlacement):
            def submit(self, shard):
                self.submitted.append(shard)
                self._alive = False
                raise PlacementLostError(
                    f"{self.identity} shut down"
                )

        shard, executed, known, missing, cache = \
            self._half_cached_shard(flows)
        flaky = RaisesOnSubmit("flaky", in_flight=0)
        backup = ScriptedPlacement("backup", in_flight=9,
                                   result=missing)
        fleet = FleetPlacement([flaky, backup], cache=cache)
        outcomes = fleet.submit(shard).result(timeout=30)
        assert flaky.submitted
        assert sorted(outcomes, key=lambda o: o.index) == executed


# ----------------------------------------------------------------------
# The equivalence property: local pool vs remote worker fleet
# ----------------------------------------------------------------------

class TestPlacementEquivalence:
    def test_two_worker_fleet_reports_equal_local_all_campaigns(
            self, flows, baselines):
        """The PR's determinism invariant: a 2-worker remote fleet
        produces field-for-field identical reports to the local pool
        for every IP x sensor type."""
        with _worker_server() as worker_a, _worker_server() as worker_b:
            fleet = FleetPlacement([
                _remote(worker_a), _remote(worker_b),
            ])
            try:
                assert fleet.workers == 2
                for (ip, sensor), baseline in baselines.items():
                    flow = flows(ip, sensor)
                    report = _run_on(fleet, flow, ip, sensor)
                    assert report == baseline, (ip, sensor)
                    assert report.outcomes == baseline.outcomes
            finally:
                fleet.shutdown()
            # Both daemons actually executed shards (the fleet really
            # distributed, it didn't funnel everything to one member).
            received = [
                server.service.worker.describe()["shards_received"]
                for server in (worker_a, worker_b)
            ]
            assert all(count > 0 for count in received), received

    def test_killed_worker_redispatches_to_survivor(self, flows,
                                                    baselines):
        """Deterministic re-dispatch: one of the two daemons is dead
        before streaming starts (connection refused on first POST), so
        every shard it is offered re-dispatches to the survivor -- and
        the report still equals the local baseline."""
        with _worker_server() as survivor:
            doomed = _worker_server()
            doomed.start()
            fleet = FleetPlacement([
                _remote(doomed), _remote(survivor),
            ])
            try:
                doomed.kill()       # SIGKILL stand-in: RST, no drain
                doomed.stop()       # reap the execution core
                flow = flows("dsp", "razor")
                report = _run_on(fleet, flow, "dsp", "razor",
                                 shard_size=1)
                assert report == baselines[("dsp", "razor")]
                assert fleet.stats()["redispatches"] > 0
                dead, alive = fleet.describe()
                assert dead["alive"] is False
                assert alive["alive"] is True
                assert alive["shards_done"] > 0
            finally:
                fleet.shutdown()

    def test_mid_campaign_kill_still_matches_baseline(self, flows,
                                                      baselines):
        """The ragged case: the kill lands *while* shards are in
        flight on the doomed daemon (its in-flight POSTs get reset),
        and the campaign still completes with the identical report."""
        with _worker_server() as survivor:
            doomed = _worker_server()
            doomed.start()
            fleet = FleetPlacement([
                _remote(doomed), _remote(survivor),
            ])
            try:
                flow = flows("filter", "razor")
                stim = case_study("filter").stimulus(REDUCED_CYCLES)
                prepared = prepare_campaign(
                    flow.tlm_optimized, flow.injected, stim,
                    ip_name="filter", sensor_type="razor",
                    workers=fleet.workers, shard_size=1,
                )
                killed = threading.Event()
                outcomes = []
                for batch, _snapshot in stream_shard_batches(
                    fleet, prepared
                ):
                    outcomes.extend(batch)
                    if not killed.is_set():
                        killed.set()
                        doomed.kill()
                report = prepared.build_report(outcomes)
                assert killed.is_set()
                assert report == baselines[("filter", "razor")]
                assert report.outcomes == \
                    baselines[("filter", "razor")].outcomes
            finally:
                fleet.shutdown()
                doomed.stop()

    def test_fleet_shares_one_cache_across_workers(self, flows,
                                                   baselines):
        """Cross-worker dedup: a campaign run against worker A warms
        the shared cache; the same campaign against worker B replays
        entirely from it (worker B's scheduler never executes)."""
        cache = ResultCache(None)
        with _worker_server(cache=cache) as worker_a, \
                _worker_server(cache=cache) as worker_b:
            flow = flows("dsp", "counter")
            fleet_a = FleetPlacement([_remote(worker_a)])
            try:
                first = _run_on(fleet_a, flow, "dsp", "counter")
            finally:
                fleet_a.shutdown()
            assert first == baselines[("dsp", "counter")]
            fleet_b = FleetPlacement([_remote(worker_b)])
            try:
                second = _run_on(fleet_b, flow, "dsp", "counter")
            finally:
                fleet_b.shutdown()
            assert second == first
            b_core = worker_b.service.worker.describe()
            assert b_core["cache_replays"] == first.total


# ----------------------------------------------------------------------
# Remote placement plumbing
# ----------------------------------------------------------------------

class TestRemoteWorkerPlacement:
    def test_probes_capacity_and_identity_from_healthz(self):
        with _worker_server(workers=2) as server:
            placement = _remote(server)
            try:
                assert placement.workers == 2
                assert placement.alive
                core = server.service.worker.identity
                assert placement.identity.startswith(core)
                detail = placement.describe()
                assert detail["kind"] == "remote"
                assert detail["queued"] == 0
            finally:
                placement.shutdown()

    def test_unreachable_daemon_raises_placement_lost(self):
        with _worker_server() as server:
            host, port = server.address
        # Server is down now; the construction probe must fail loudly.
        with pytest.raises(PlacementLostError, match="unreachable"):
            RemoteWorkerPlacement(host, port)

    def test_ping_revives_a_placement_marked_dead(self):
        with _worker_server() as server:
            placement = _remote(server)
            try:
                placement._alive = False
                assert not placement.alive
                assert placement.ping()
                assert placement.alive
            finally:
                placement.shutdown()

    def test_worker_5xx_is_placement_loss_not_poison(self, flows,
                                                     monkeypatch):
        # HTTP 5xx means the worker's *machinery* broke (e.g. its
        # local process pool died): the shard would succeed on a
        # survivor, so the placement must be marked lost (triggering
        # fleet re-dispatch) instead of the job failing outright.
        flow = flows("dsp", "razor")
        stim = case_study("dsp").stimulus(REDUCED_CYCLES)
        prepared = prepare_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name="dsp", sensor_type="razor",
        )
        with _worker_server() as server:
            placement = _remote(server)
            try:
                def broken_pool(payload):
                    raise RuntimeError("process pool is broken")

                monkeypatch.setattr(server.service.worker,
                                    "run_shard_payload", broken_pool)
                future = placement.submit(prepared.shards[0])
                with pytest.raises(PlacementLostError,
                                   match="failed shard-side"):
                    future.result(timeout=30)
                assert not placement.alive
            finally:
                placement.shutdown()

    def test_rejected_shard_propagates_not_redispatches(self):
        # A worker that coherently rejects the shard (HTTP 4xx): the
        # *shard* is the problem, so the fleet must fail it rather
        # than poison the survivor with a re-dispatch.  (5xx means the
        # worker's machinery broke and *does* re-dispatch -- see
        # TestRemoteWorkerPlacement.)
        class Rejecting(ScriptedPlacement):
            def submit(self, shard):
                self.submitted.append(shard)
                future = Future()
                future.set_exception(
                    RuntimeError("worker rejected shard: HTTP 400")
                )
                return future

        rejecting = Rejecting("rejecting", in_flight=0)
        healthy = ScriptedPlacement("healthy", result=["ok"],
                                    in_flight=5)
        fleet = FleetPlacement([rejecting, healthy])
        future = fleet.submit(_wire_shard())
        with pytest.raises(RuntimeError, match="HTTP 400"):
            future.result(timeout=5)
        assert not healthy.submitted
        assert fleet.stats()["redispatches"] == 0


# ----------------------------------------------------------------------
# Heartbeat supervision (PR 7, recovery layer 2)
# ----------------------------------------------------------------------

class _BlackHolePlacement(ScriptedPlacement):
    """Accepts shards and never resolves them -- a worker whose host
    dropped off the network mid-shard.  ``ping`` is scripted so tests
    steer the supervisor; a successful ping revives the member (like
    :meth:`RemoteWorkerPlacement.ping`)."""

    def __init__(self, name, *, pings=False, **kw):
        super().__init__(name, **kw)
        self.pings = pings
        self.mark_dead_calls = 0
        self.futures = []

    def submit(self, shard):
        self.submitted.append(shard)
        future = Future()
        self.futures.append(future)
        return future

    def ping(self):
        if self.pings:
            self._alive = True
            return True
        return False

    def mark_dead(self):
        self.mark_dead_calls += 1
        self._alive = False


class TestHeartbeatSupervision:
    """Regressions for the PR-7 fleet supervisor: before the fix, a
    shard on a silently-dead worker sat in flight until the 600s HTTP
    timeout expired -- the campaign stalled for minutes per lost
    worker instead of re-dispatching within a couple of heartbeats."""

    def _fleet(self, *members, **kw):
        kw.setdefault("heartbeat_interval", 0.05)
        return FleetPlacement(list(members), **kw)

    def test_silent_member_evicted_and_shard_redispatched(self):
        hole = _BlackHolePlacement("hole", workers=4)
        good = ScriptedPlacement("good", in_flight=9, result=["ok"])
        fleet = self._fleet(hole, good, heartbeat_misses=2)
        try:
            future = fleet.submit(_wire_shard())
            assert len(hole.submitted) == 1  # dispatched to the hole
            # Resolved well before the shard timeout: the supervisor
            # evicted the silent member and re-dispatched.
            assert future.result(timeout=10) == ["ok"]
            stats = fleet.stats()
            assert stats["evictions"] == 1
            assert stats["redispatches"] == 1
            assert hole.mark_dead_calls >= 1
            assert not hole.alive
        finally:
            fleet.shutdown()

    def test_straggler_completion_after_eviction_is_discarded(self):
        hole = _BlackHolePlacement("hole", workers=4)
        good = ScriptedPlacement("good", in_flight=9, result=["ok"])
        fleet = self._fleet(hole, good, heartbeat_misses=2)
        try:
            future = fleet.submit(_wire_shard())
            assert future.result(timeout=10) == ["ok"]
            # The evicted member finally answers (e.g. the HTTP
            # response crawls in): exactly-once claim tokens discard
            # it rather than double-resolving the outer future.
            hole.futures[0].set_result(["stale"])
            assert future.result(timeout=1) == ["ok"]
            assert fleet.stats()["redispatches"] == 1
        finally:
            fleet.shutdown()

    def test_recovered_member_rejoins_on_successful_ping(self):
        hole = _BlackHolePlacement("hole", workers=4)
        good = ScriptedPlacement("good", in_flight=9, result=["ok"])
        fleet = self._fleet(hole, good, heartbeat_misses=2)
        try:
            fleet.submit(_wire_shard()).result(timeout=10)
            assert not hole.alive
            hole.pings = True  # the worker came back
            deadline = time.monotonic() + 10
            while not hole.alive and time.monotonic() < deadline:
                time.sleep(0.02)
            assert hole.alive  # revived by the supervisor's ping
            assert hole in fleet._candidates()
        finally:
            fleet.shutdown()

    def test_stall_timeout_evicts_a_responsive_but_stuck_member(self):
        # The worker.hang shape: /healthz answers, the shard never
        # does.  Ping-based supervision can't see it; the opt-in
        # stall detector can.
        hole = _BlackHolePlacement("hole", workers=4, pings=True)
        good = ScriptedPlacement("good", in_flight=9, result=["ok"])
        fleet = self._fleet(hole, good, stall_timeout=0.15)
        try:
            future = fleet.submit(_wire_shard())
            assert future.result(timeout=10) == ["ok"]
            assert fleet.stats()["evictions"] >= 1
            assert fleet.stats()["redispatches"] == 1
        finally:
            fleet.shutdown()


# ----------------------------------------------------------------------
# self-acknowledging cancellation of supervised futures (PR 7)
# ----------------------------------------------------------------------

class TestSupervisedFuture:
    def test_cancelled_future_is_done_for_wait(self):
        # A plain Future cancelled without an executor stays CANCELLED
        # (never CANCELLED_AND_NOTIFIED), so wait() would block
        # forever on it: exactly the cancel-then-drain wedge that hung
        # run_benchmark_suite's abandon path.  SupervisedFuture
        # acknowledges its own cancellation.
        future = SupervisedFuture()
        assert future.cancel()
        done, not_done = wait({future}, timeout=1)
        assert done == {future}
        assert not not_done
        assert future.cancelled()

    def test_double_cancel_is_idempotent(self):
        future = SupervisedFuture()
        assert future.cancel()
        assert future.cancel()
        done, _ = wait({future}, timeout=1)
        assert done == {future}

    def test_settled_future_refuses_cancel(self):
        future = SupervisedFuture()
        future.set_result(["ok"])
        assert not future.cancel()
        assert future.result() == ["ok"]

    def test_scheduler_outer_futures_drain_after_cancel(self, flows):
        # End-to-end shape of the wedge: cancel every in-flight outer
        # future, then wait() on them -- must return promptly whether
        # each cancel won or lost the race with shard completion.
        flow = flows("dsp", "razor")
        stim = case_study("dsp").stimulus(REDUCED_CYCLES)
        prepared = prepare_campaign(
            flow.tlm_optimized, flow.injected, stim,
            ip_name="dsp", sensor_type="razor",
            workers=2, shard_size=1,
        )
        with CampaignScheduler(workers=2) as scheduler:
            futures = [scheduler.submit(s) for s in prepared.shards[:4]]
            for future in futures:
                future.cancel()
            done, not_done = wait(set(futures), timeout=60)
            assert not not_done
            assert done == set(futures)
