"""Tests for static mutant pruning (:mod:`repro.lint.mutants`).

The contract under test is the ISSUE acceptance bar: with
``lint_prune=True`` every report stays **field-identical** to the
unpruned run -- pruned mutants are counted and judged, never dropped
-- while the executed-mutant set measurably shrinks.  Coverage:

* plan-level classification (``hf-first-tick`` is exactly one third
  of every Counter table; Razor tables have no equivalents at the
  default HF ratio);
* prune on/off report equality for all three IPs x both sensors,
  including the full outcome lists;
* shard accounting: pruned mutants leave the executable set;
* cache interplay in both directions (cold-pruned seeds a warm
  unpruned replay and vice versa) with identical prune counters on
  cold and warm runs;
* the deferred-duplicate clone path (representative executes, clones
  attach at shard completion) via an ``hf_ratio=2`` Counter build that
  actually produces fingerprint collisions;
* multi-worker / shared-pool runs (:func:`run_benchmark_suite`) with
  pruning on.
"""

import pytest

from repro.flow import build_augmented, run_flow
from repro.ips import CASE_STUDIES, case_study
from repro.lint import plan_pruning
from repro.lint.mutants import frozen_signal_names
from repro.mutation import (
    CampaignScheduler,
    ResultCache,
    inject_mutants,
    prepare_campaign,
    run_benchmark_suite,
    run_campaign,
)
from repro.abstraction import generate_tlm

IPS = sorted(CASE_STUDIES)
SENSORS = ("razor", "counter")


def _flow(ip, sensor, **kw):
    return run_flow(case_study(ip), sensor, **kw)


def _campaign_inputs(flow):
    stimuli = flow.spec.stimulus(flow.spec.mutation_cycles)
    return flow.tlm_optimized, flow.injected, stimuli


class TestPlan:
    @pytest.mark.parametrize("ip", IPS)
    def test_counter_equivalents_are_one_third(self, ip):
        flow = _flow(ip, "counter", run_mutation=False)
        plan = plan_pruning(
            flow.injected, "counter", module=flow.augmented.module
        )
        total = len(flow.injected.mutants)
        assert plan.total == total
        assert plan.equivalent_count == total // 3
        assert set(plan.equivalent.values()) == {"hf-first-tick"}
        assert all(
            flow.injected.mutants[i].hf_tick == 1 for i in plan.equivalent
        )
        # Default HF ratio leaves every (target, hf_tick, register)
        # fingerprint distinct.
        assert plan.duplicate_of == {}

    @pytest.mark.parametrize("ip", IPS)
    def test_razor_tables_have_no_equivalents(self, ip):
        flow = _flow(ip, "razor", run_mutation=False)
        plan = plan_pruning(
            flow.injected, "razor", module=flow.augmented.module
        )
        assert plan.equivalent == {}
        assert plan.duplicate_of == {}

    def test_plan_to_dict_round_trip_shape(self):
        flow = _flow("dsp", "counter", run_mutation=False)
        plan = plan_pruning(flow.injected, "counter")
        d = plan.to_dict()
        assert d["total"] == 27
        assert d["prunable"] == plan.prunable == 9
        assert all(isinstance(k, str) for k in d["equivalent"])

    def test_frozen_signal_analysis_on_live_design(self):
        # Every mutated target of a live IP toggles, so the fold
        # analysis must not claim any of them frozen.
        flow = _flow("dsp", "counter", run_mutation=False)
        targets = {s.target for s in flow.injected.mutants}
        assert frozen_signal_names(flow.augmented.module, targets) == set()


class TestReportEquality:
    @pytest.mark.parametrize("ip", IPS)
    @pytest.mark.parametrize("sensor", SENSORS)
    def test_prune_on_off_field_identical(self, ip, sensor):
        off = _flow(ip, sensor).mutation
        on = _flow(ip, sensor, lint_prune=True).mutation
        assert on == off
        assert on.outcomes == off.outcomes
        assert [o.index for o in on.outcomes] == list(range(off.total))
        # Accounting: off-run carries no counters, on-run carries the
        # plan-level ones.
        assert off.pruned_equivalent is None
        assert off.pruned_duplicate is None
        expected = off.total // 3 if sensor == "counter" else 0
        assert on.pruned_equivalent == expected
        assert on.pruned_duplicate == 0

    def test_pruned_mutants_leave_the_executable_set(self):
        flow = _flow("filter", "counter", run_mutation=False)
        golden, injected, stimuli = _campaign_inputs(flow)
        plan = plan_pruning(
            injected, "counter", module=flow.augmented.module
        )
        prepared = prepare_campaign(
            golden, injected, stimuli,
            ip_name="filter", sensor_type="counter",
            lint_prune=True, prune_plan=plan,
        )
        total = len(injected.mutants)
        executed = sum(len(s.indices) for s in prepared.shards)
        assert len(prepared.pruned_outcomes) == total // 3
        assert executed == total - total // 3
        # The replayed batch counts as a shard of the campaign.
        assert prepared.total_shards == len(prepared.shards) + 1

    @pytest.mark.parametrize("sensor", SENSORS)
    def test_multi_worker_pruned_run_identical(self, sensor):
        off = _flow("dsp", sensor).mutation
        on = _flow("dsp", sensor, lint_prune=True, workers=2,
                   shard_size=5).mutation
        assert on == off


class TestCacheInterplay:
    def test_cold_pruned_seeds_warm_unpruned(self):
        cache = ResultCache(None)
        cold = _flow("dsp", "counter", lint_prune=True,
                     cache=cache).mutation
        warm = _flow("dsp", "counter", cache=cache).mutation
        assert warm == cold
        # Synthesised and cloned verdicts were written back, so the
        # unpruned replay never simulates anything.
        assert warm.cache_hits == warm.total
        assert warm.cache_misses == 0

    def test_cold_unpruned_seeds_warm_pruned(self):
        cache = ResultCache(None)
        cold = _flow("dsp", "counter", cache=cache).mutation
        warm = _flow("dsp", "counter", lint_prune=True,
                     cache=cache).mutation
        assert warm == cold
        assert warm.cache_hits == warm.total
        # Plan-level counters: a fully-warm run still reports the
        # whole-table prune statistics, identical to a cold one.
        assert warm.pruned_equivalent == cold.total // 3
        assert warm.pruned_duplicate == 0


def _build_counter_hf2(ip="dsp"):
    """An off-registry Counter build at ``hf_ratio=2``: the coarser HF
    clock makes distinct delay mutants land on the same HF tick, which
    is the only way to get genuine duplicate fingerprints out of the
    shipped IPs."""
    from repro.sensors import insert_sensors
    from repro.sta import analyze, bin_critical_paths
    from repro.synth import synthesize

    spec = case_study(ip)
    module, clk = spec.factory()
    synth = synthesize(module)
    sta = analyze(synth, clock_period_ps=spec.clock_period_ps)
    critical = bin_critical_paths(sta, spec.slack_threshold_ps)
    augmented = insert_sensors(
        module, clk, critical, sensor_type="counter", hf_ratio=2,
        calibration_stimuli=spec.stimulus(
            min(spec.mutation_cycles, 128)
        ),
    )
    golden = generate_tlm(module, variant="hdtlib", augmented=augmented)
    injected = inject_mutants(augmented, variant="hdtlib")
    stimuli = spec.stimulus(spec.mutation_cycles)
    return module, golden, injected, stimuli


class TestDeferredDuplicates:
    def test_hf2_build_has_duplicates(self):
        module, _golden, injected, _stimuli = _build_counter_hf2()
        plan = plan_pruning(injected, "counter", module=module)
        assert plan.equivalent_count == 9
        # Three mutants per target now span only hf_tick in {1, 2, 2}:
        # the max- and delta-tick entries collide pairwise.
        assert plan.duplicate_of == {
            2: 1, 5: 4, 8: 7, 11: 10, 14: 13, 17: 16, 20: 19, 23: 22,
            26: 25,
        }

    @pytest.mark.parametrize("workers,shard_size", [(1, None), (2, 3)])
    def test_duplicate_clones_match_execution(self, workers, shard_size):
        module, golden, injected, stimuli = _build_counter_hf2()
        plan = plan_pruning(injected, "counter", module=module)

        def run(**kw):
            return run_campaign(
                golden, injected, stimuli,
                ip_name="dsp-hf2", sensor_type="counter",
                workers=workers, shard_size=shard_size, **kw
            )

        off = run()
        on = run(lint_prune=True, prune_plan=plan)
        assert on == off
        assert on.outcomes == off.outcomes
        assert on.pruned_equivalent == 9
        assert on.pruned_duplicate == 9

    def test_deferred_clones_earn_cache_entries(self):
        module, golden, injected, stimuli = _build_counter_hf2()
        plan = plan_pruning(injected, "counter", module=module)
        cache = ResultCache(None)
        cold = run_campaign(
            golden, injected, stimuli,
            ip_name="dsp-hf2", sensor_type="counter",
            cache=cache, lint_prune=True, prune_plan=plan,
        )
        # 27 mutants, 9 equivalents + 9 duplicate clones pruned: only
        # 9 representatives executed.
        assert cold.cache_misses == 27  # probe ran before pruning
        warm = run_campaign(
            golden, injected, stimuli,
            ip_name="dsp-hf2", sensor_type="counter", cache=cache,
        )
        assert warm == cold
        assert warm.cache_hits == 27


class TestSuite:
    def test_benchmark_suite_prune_identical(self):
        with CampaignScheduler(workers=2) as scheduler:
            off = run_benchmark_suite(
                IPS, SENSORS, scheduler=scheduler
            )
            on = run_benchmark_suite(
                IPS, SENSORS, scheduler=scheduler, lint_prune=True
            )
        assert set(on.reports) == set(off.reports)
        for key, report in off.reports.items():
            assert on.reports[key] == report
            assert on.reports[key].outcomes == report.outcomes
            expected = (
                report.total // 3 if key[1] == "counter" else 0
            )
            assert on.reports[key].pruned_equivalent == expected

    def test_suite_prune_with_warm_cache(self):
        cache = ResultCache(None)
        with CampaignScheduler(workers=2) as scheduler:
            cold = run_benchmark_suite(
                ["dsp"], SENSORS, scheduler=scheduler, cache=cache,
                lint_prune=True,
            )
            warm = run_benchmark_suite(
                ["dsp"], SENSORS, scheduler=scheduler, cache=cache,
                lint_prune=True,
            )
        for key, report in cold.reports.items():
            assert warm.reports[key] == report
            assert warm.reports[key].cache_hits == report.total
            # Cold and warm prune accounting is identical (plan-level).
            assert (
                warm.reports[key].pruned_equivalent
                == report.pruned_equivalent
            )


class TestSummaryRow:
    def test_summary_pairs_show_prune_row_when_counted(self):
        from repro.reporting import mutation_summary_pairs

        report = _flow("dsp", "counter", lint_prune=True).mutation
        pairs = dict(mutation_summary_pairs(report))
        assert pairs["static prune"] == (
            "9 equivalent / 0 duplicate (not simulated)"
        )

    def test_summary_pairs_silent_without_pruning(self):
        from repro.reporting import mutation_summary_pairs

        report = _flow("dsp", "counter").mutation
        assert "static prune" not in dict(mutation_summary_pairs(report))
