"""Tests for the static IR linter (:mod:`repro.lint`).

Acceptance contract:

* every seeded structural defect (combinational loop, double driver,
  post-construction width corruption, inferred latch, connectivity
  holes, X-source array reads) is detected with the right check id,
  severity and signal path;
* the three shipped case studies lint clean of unwaived findings
  (the one intentional base-IP finding -- plasma's ``alu_trace`` tap
  register -- is covered by its shipped waiver file);
* waiver mechanics: pattern matching, report splitting, file-format
  validation;
* the pre-campaign lint gate in :func:`repro.flow.run_flow` attaches
  the (waived) report to the flow result and raises
  :class:`repro.lint.LintGateError` on error findings;
* the determinism lint tool (``tools/lint_determinism.py``) flags the
  forbidden constructs, honours its pragma, and reports the shipped
  worker-side modules clean.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.flow import run_flow
from repro.ips import CASE_STUDIES, case_study
from repro.lint import (
    CHECKS,
    LintFinding,
    LintGateError,
    Waiver,
    apply_waivers,
    lint_module,
    load_waiver_file,
    waivers_for_ip,
)
from repro.rtl import (
    Assign,
    If,
    Module,
    NativeProcess,
    Signal,
    WidthError,
    const,
)
from repro.rtl.ir import Array, ArrayRead

REPO_ROOT = Path(__file__).resolve().parent.parent


def _findings(report, check):
    return [f for f in report.findings if f.check == check]


class TestSeededDefects:
    def test_comb_loop_detected(self):
        m = Module("loopy")
        a = m.signal("a", 4)
        b = m.signal("b", 4)
        m.comb("c1", [Assign(a, b)])
        m.comb("c2", [Assign(b, a)])
        found = _findings(lint_module(m), "comb-loop")
        assert len(found) == 1
        f = found[0]
        assert f.severity == "error"
        assert "loopy.a" in f.signal and "loopy.b" in f.signal
        assert "c1" in f.process and "c2" in f.process

    def test_comb_self_loop_detected(self):
        m = Module("selfloop")
        a = m.signal("a", 4)
        m.comb("c", [Assign(a, a + const(1, 4))])
        found = _findings(lint_module(m), "comb-loop")
        assert len(found) == 1
        assert found[0].signal == "selfloop.a"

    def test_sync_feedback_is_not_a_loop(self):
        # A register feeding itself through a clock edge is the normal
        # shape of sequential logic, not a combinational cycle.
        m = Module("reg")
        clk = m.input("clk")
        q = m.signal("q", 4)
        m.sync("p", clk, [Assign(q, q + const(1, 4))])
        assert not _findings(lint_module(m), "comb-loop")

    def test_double_driver_detected(self):
        m = Module("dd")
        clk = m.input("clk")
        q = m.output("q", 4)
        m.sync("p1", clk, [Assign(q, const(1, 4))])
        m.sync("p2", clk, [Assign(q, const(2, 4))])
        found = _findings(lint_module(m), "multi-driver")
        assert len(found) == 1
        f = found[0]
        assert f.severity == "error"
        assert f.signal == "dd.q"
        assert "p1" in f.process and "p2" in f.process

    def test_sensor_restore_multi_driver_is_info(self):
        # The Razor recovery path intentionally re-drives a monitored
        # register from its native bank: reported, but not an error.
        m = Module("razorish")
        clk = m.input("clk")
        q = m.signal("q", 4)
        m.sync("p", clk, [Assign(q, const(1, 4))])
        m.native(NativeProcess(
            "bank", "sync", lambda ctx: None,
            clock=clk, reads=[q], writes=[q],
            meta={"sensor": "razor"},
        ))
        found = _findings(lint_module(m), "multi-driver")
        assert len(found) == 1
        assert found[0].severity == "info"
        assert "sensor recovery" in found[0].message

    def test_width_mismatch_detected(self):
        # Constructors validate widths, so corruption only enters via
        # post-construction rewrites -- exactly what a buggy
        # retargeting pass would do.
        m = Module("wm")
        clk = m.input("clk")
        wide = m.signal("wide", 8)
        narrow = m.signal("narrow", 4)
        stmt = Assign(wide, const(0, 8))
        m.sync("p", clk, [stmt])
        stmt.target = narrow  # simulate the broken rewrite
        found = _findings(lint_module(m), "width-mismatch")
        assert len(found) == 1
        f = found[0]
        assert f.severity == "error"
        assert f.signal == "wm.narrow"
        assert f.process == "p"

    def test_inferred_latch_detected(self):
        m = Module("latchy")
        sel = m.input("sel")
        q = m.signal("q", 4)
        m.comb("c", [If(sel, [Assign(q, const(1, 4))])])
        found = _findings(lint_module(m), "inferred-latch")
        assert len(found) == 1
        assert found[0].severity == "warning"
        assert found[0].signal == "latchy.q"

    def test_complete_if_else_is_not_a_latch(self):
        m = Module("mux")
        sel = m.input("sel")
        q = m.signal("q", 4)
        m.comb("c", [If(
            sel, [Assign(q, const(1, 4))], [Assign(q, const(2, 4))]
        )])
        assert not _findings(lint_module(m), "inferred-latch")

    def test_never_written_detected(self):
        m = Module("floaty")
        clk = m.input("clk")
        ghost = m.signal("ghost", 4)
        q = m.output("q", 4)
        m.sync("p", clk, [Assign(q, ghost)])
        found = _findings(lint_module(m), "never-written")
        assert len(found) == 1
        assert found[0].severity == "warning"
        assert found[0].signal == "floaty.ghost"

    def test_never_read_detected(self):
        m = Module("dead")
        clk = m.input("clk")
        q = m.signal("q", 4)
        m.sync("p", clk, [Assign(q, const(1, 4))])
        found = _findings(lint_module(m), "never-read")
        assert len(found) == 1
        assert found[0].severity == "info"
        assert found[0].signal == "dead.q"

    def test_x_source_detected(self):
        m = Module("xs")
        clk = m.input("clk")
        arr = m.array("mem", 6, 8)     # depth 6, 3-bit index spans 8
        idx = m.signal("idx", 3)
        q = m.output("q", 8)
        m.sync("p", clk, [Assign(q, ArrayRead(arr, idx))])
        found = _findings(lint_module(m), "x-source")
        assert len(found) == 1
        assert found[0].severity == "warning"
        assert found[0].signal == "xs.mem"

    def test_power_of_two_array_is_clean(self):
        m = Module("p2")
        clk = m.input("clk")
        arr = m.array("mem", 8, 8)
        idx = m.signal("idx", 3)
        q = m.output("q", 8)
        m.sync("p", clk, [Assign(q, ArrayRead(arr, idx))])
        assert not _findings(lint_module(m), "x-source")

    def test_check_catalog_is_exact(self):
        assert set(CHECKS) == {
            "comb-loop", "multi-driver", "width-mismatch",
            "inferred-latch", "never-written", "never-read", "x-source",
        }


class TestShippedIpsClean:
    @pytest.mark.parametrize("ip", sorted(CASE_STUDIES))
    def test_base_ip_lints_clean_after_waivers(self, ip):
        spec = case_study(ip)
        module, _clk = spec.factory()
        report = apply_waivers(lint_module(module), waivers_for_ip(ip))
        assert report.ok
        assert not report.findings, [
            f.one_line() for f in report.findings
        ]

    def test_plasma_alu_trace_waiver_pinned(self):
        # The one genuine base-IP finding: plasma's alu_trace is a
        # sensor tap register with no functional reader, waived with a
        # reason in the shipped waiver file.  This pin ensures neither
        # the finding nor its waiver silently disappears.
        spec = case_study("plasma")
        module, _clk = spec.factory()
        raw = lint_module(module)
        assert [f.signal for f in raw.findings] == ["plasma_ip.alu_trace"]
        waived = apply_waivers(raw, waivers_for_ip("plasma"))
        assert not waived.findings
        (finding, waiver), = waived.waived
        assert finding.check == "never-read"
        assert waiver.reason

    @pytest.mark.parametrize("sensor", ["razor", "counter"])
    def test_augmented_plasma_has_no_errors(self, sensor):
        from repro.flow import build_augmented

        module = build_augmented(
            case_study("plasma"), sensor
        ).augmented.module
        report = lint_module(module)
        assert report.ok, [f.one_line() for f in report.errors()]


class TestWaivers:
    def test_waiver_pattern_matching(self):
        f = LintFinding("never-read", "info", "dead", signal="m.q",
                        process="m.p")
        assert Waiver(check="never-read").matches(f)
        assert Waiver(signal="m.*").matches(f)
        assert not Waiver(check="comb-loop").matches(f)
        assert not Waiver(signal="other.*").matches(f)

    def test_apply_waivers_splits_report(self):
        m = Module("dead")
        clk = m.input("clk")
        q = m.signal("q", 4)
        m.sync("p", clk, [Assign(q, const(1, 4))])
        raw = lint_module(m)
        waived = apply_waivers(
            raw, [Waiver(check="never-read", reason="test")]
        )
        assert not waived.findings
        assert len(waived.waived) == 1
        # The input report is untouched.
        assert len(raw.findings) == 1

    def test_waiver_file_rejects_unknown_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"check": "x", "bogus": 1}]))
        with pytest.raises(ValueError, match="unknown keys"):
            load_waiver_file(path)

    def test_waiver_file_must_be_a_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"check": "x"}))
        with pytest.raises(ValueError, match="JSON list"):
            load_waiver_file(path)

    def test_unknown_ip_has_no_waivers(self):
        assert waivers_for_ip("no-such-ip") == []

    def test_severity_validated(self):
        with pytest.raises(ValueError):
            LintFinding("x", "fatal", "boom")


class TestFlowGate:
    def test_flow_attaches_waived_lint_report(self):
        result = run_flow(
            case_study("dsp"), "razor", run_mutation=False
        )
        assert result.lint_report is not None
        assert result.lint_report.ok

    def test_flow_lint_opt_out(self):
        result = run_flow(
            case_study("dsp"), "razor", run_mutation=False, lint=False
        )
        assert result.lint_report is None

    def test_gate_error_carries_report(self):
        m = Module("dd")
        clk = m.input("clk")
        q = m.output("q", 4)
        m.sync("p1", clk, [Assign(q, const(1, 4))])
        m.sync("p2", clk, [Assign(q, const(2, 4))])
        report = lint_module(m)
        with pytest.raises(LintGateError) as excinfo:
            raise LintGateError(report)
        assert excinfo.value.report is report
        assert "multi-driver" in str(excinfo.value)


class TestSaboteurWidthGuard:
    def test_retarget_rejects_width_change(self):
        # Pinned regression: the retargeting pass must refuse to
        # introduce exactly the post-construction width corruption the
        # width-mismatch check hunts.
        from repro.mutation.saboteurs import _retarget_stmts

        wide = Signal("wide", 8)
        narrow = Signal("narrow", 4)
        stmts = [Assign(wide, const(0, 8))]
        with pytest.raises(WidthError):
            _retarget_stmts(stmts, wide, narrow)


def _load_det_lint():
    path = REPO_ROOT / "tools" / "lint_determinism.py"
    spec = importlib.util.spec_from_file_location(
        "lint_determinism", path
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestDeterminismLint:
    def test_forbidden_constructs_flagged(self):
        det = _load_det_lint()
        source = (
            "import time, random, os, uuid\n"
            "stamp = time.time()\n"
            "pick = random.choice([1, 2])\n"
            "key = uuid.uuid4()\n"
            "salt = os.urandom(8)\n"
            "for item in {1, 2, 3}:\n"
            "    print(item)\n"
            "order = [x for x in set([3, 1])]\n"
        )
        problems = {
            f["line"]: f["problem"]
            for f in det.scan_source(source, "bad.py")
        }
        assert set(problems) == {2, 3, 4, 5, 6, 8}
        assert "time.time" in problems[2]
        assert "random.choice" in problems[3]
        assert "set" in problems[6]

    def test_pragma_suppresses(self):
        det = _load_det_lint()
        source = (
            "import time\n"
            "stamp = time.time()  # det-lint: allow metadata only\n"
        )
        assert det.scan_source(source, "ok.py") == []

    def test_seeded_random_and_perf_counter_allowed(self):
        det = _load_det_lint()
        source = (
            "import random, time\n"
            "rng = random.Random(7)\n"
            "v = rng.random()\n"
            "t0 = time.perf_counter()\n"
            "for x in sorted({1, 2}):\n"
            "    print(x)\n"
        )
        assert det.scan_source(source, "ok.py") == []

    def test_shipped_worker_modules_are_clean(self):
        det = _load_det_lint()
        targets = [REPO_ROOT / t for t in det.DEFAULT_TARGETS]
        assert det.scan_paths(targets) == []

    def test_wall_clock_boundary_waives_only_wall_clock(self):
        # A module whose header declares the boundary may read
        # time.time / time.time_ns without per-line pragmas ...
        det = _load_det_lint()
        source = (
            '"""Sanctioned boundary.\n'
            "\n"
            "det-lint: wall-clock-boundary\n"
            '"""\n'
            "import time, uuid\n"
            "stamp = time.time()\n"
            "stamp_ns = time.time_ns()\n"
            "key = uuid.uuid4()\n"
        )
        problems = det.scan_source(source, "boundary.py")
        # ... but every other rule still applies.
        assert [f["line"] for f in problems] == [8]
        assert "uuid" in problems[0]["problem"]

    def test_boundary_declaration_must_be_in_the_header(self):
        det = _load_det_lint()
        filler = "x = 1\n" * det.BOUNDARY_HEADER_LINES
        source = (
            filler +
            "# det-lint: wall-clock-boundary\n"
            "import time\n"
            "stamp = time.time()\n"
        )
        problems = det.scan_source(source, "late.py")
        assert len(problems) == 1
        assert "time.time" in problems[0]["problem"]

    def test_obs_clock_is_the_only_boundary_and_no_pragmas_remain(self):
        # The PR-10 audit: the two historical `det-lint: allow`
        # pragmas (result-cache timestamps) were replaced by the
        # repro.obs.clock boundary -- shipped worker-side code should
        # carry no blanket pragmas at all now.
        det = _load_det_lint()
        boundaries = []
        pragma_lines = []
        for target in det.DEFAULT_TARGETS:
            root = REPO_ROOT / target
            files = sorted(root.rglob("*.py")) if root.is_dir() \
                else [root]
            for path in files:
                lines = path.read_text().splitlines()
                header = lines[:det.BOUNDARY_HEADER_LINES]
                if any(det.WALL_CLOCK_BOUNDARY in ln for ln in header):
                    boundaries.append(path.relative_to(REPO_ROOT))
                pragma_lines += [
                    f"{path.relative_to(REPO_ROOT)}:{i}"
                    for i, ln in enumerate(lines, 1)
                    if det.PRAGMA in ln
                ]
        assert [str(p) for p in boundaries] == \
            ["src/repro/obs/clock.py"]
        assert pragma_lines == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        det = _load_det_lint()
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n")
        assert det.main([str(bad)]) == 1
        capsys.readouterr()
        assert det.main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload and payload[0]["line"] == 2
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert det.main([str(good)]) == 0
        assert det.main([str(tmp_path / "missing.py")]) == 2
