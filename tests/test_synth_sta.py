"""Tests for the synthesis and STA substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl import Assign, If, Module, const, mux
from repro.sta import (
    FF_CORNER,
    SS,
    TT,
    WORST_CASE,
    Corner,
    DeratingModel,
    StaError,
    TimingGraph,
    analyze,
    bin_critical_paths,
)
from repro.synth import LIB45, TechLibrary, expr_area, expr_arrival, synthesize


def make_pipeline(width=16):
    """in -> (+k) -> r1 -> (* r1) -> r2 -> out : two sync stages with a
    cheap first stage and an expensive multiplier stage."""
    m = Module("pipe")
    clk = m.input("clk")
    din = m.input("din", width)
    r1 = m.signal("r1", width)
    r2 = m.signal("r2", width)
    dout = m.output("dout", width)
    m.sync("s1", clk, [Assign(r1, din + const(3, width))])
    m.sync("s2", clk, [Assign(r2, r1 * r1)])
    m.comb("drive_out", [Assign(dout, r2)])
    return m, clk, r1, r2


class TestExprModels:
    def test_signal_has_zero_delay(self):
        m = Module("t")
        a = m.input("a", 8)
        delays, const_d = expr_arrival(a, LIB45)
        assert delays == {a: 0.0}
        assert const_d == 0.0

    def test_add_slower_than_and(self):
        m = Module("t")
        a = m.input("a", 32)
        b = m.input("b", 32)
        d_and, _ = expr_arrival(a & b, LIB45)
        d_add, _ = expr_arrival(a + b, LIB45)
        assert d_add[a] > d_and[a]

    def test_mul_slower_than_add(self):
        m = Module("t")
        a = m.input("a", 32)
        b = m.input("b", 32)
        d_add, _ = expr_arrival(a + b, LIB45)
        d_mul, _ = expr_arrival(a * b, LIB45)
        assert d_mul[a] > d_add[a]

    def test_chained_ops_accumulate(self):
        m = Module("t")
        a = m.input("a", 8)
        one_op, _ = expr_arrival(a + const(1, 8), LIB45)
        two_op, _ = expr_arrival((a + const(1, 8)) + const(2, 8), LIB45)
        assert two_op[a] == pytest.approx(2 * one_op[a])

    def test_slice_concat_free(self):
        m = Module("t")
        a = m.input("a", 8)
        delays, _ = expr_arrival(a[7:4], LIB45)
        assert delays[a] == 0.0

    def test_area_scales_with_width(self):
        m = Module("t")
        a8, b8 = m.input("a8", 8), m.input("b8", 8)
        a32, b32 = m.input("a32", 32), m.input("b32", 32)
        assert expr_area(a32 + b32, LIB45, {}) > expr_area(a8 + b8, LIB45, {})

    def test_area_histogram(self):
        m = Module("t")
        a = m.input("a", 8)
        b = m.input("b", 8)
        hist = {}
        expr_area((a + b) & (a ^ b), LIB45, hist)
        assert hist == {"add": 1, "and": 1, "xor": 1}

    def test_unknown_op_delay_raises(self):
        with pytest.raises(KeyError):
            LIB45.delay_ps("frobnicate", 8)


class TestSynthesize:
    def test_ff_bits_counted(self):
        m, clk, r1, r2 = make_pipeline(width=16)
        result = synthesize(m)
        assert result.ff_bits == 32  # two 16-bit registers

    def test_area_positive_and_decomposed(self):
        m, *_ = make_pipeline()
        result = synthesize(m)
        assert result.area_nand2 > 0
        assert result.area_nand2 == pytest.approx(
            result.combinational_area
            + result.sequential_area
            + result.array_area
        )

    def test_arcs_present_for_both_stages(self):
        m, clk, r1, r2 = make_pipeline()
        result = synthesize(m)
        dsts = {arc.dst for arc in result.arcs}
        assert r1 in dsts and r2 in dsts

    def test_array_area_counted(self):
        m = Module("mem")
        clk = m.input("clk")
        m.array("regfile", 32, 32)
        result = synthesize(m)
        assert result.array_area > 32 * 32 * 5  # at least FF storage


class TestCorners:
    def test_tt_factor_is_unity(self):
        assert TT.delay_factor() == pytest.approx(1.0)

    def test_ss_slower_ff_faster(self):
        assert SS.delay_factor() > 1.2
        assert FF_CORNER.delay_factor() < 0.9

    def test_low_vdd_slows(self):
        low = Corner("lv", vdd=0.9)
        assert low.delay_factor() > 1.1

    def test_hot_slows(self):
        hot = Corner("hot", temp_c=125.0)
        assert hot.delay_factor() > 1.0

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            Corner("bad", process="zz").delay_factor()

    def test_derating_stacks(self):
        d = DeratingModel(ocv_late=1.1, aging_years=10, aging_pct_per_year=1.0)
        assert d.total_factor(TT) == pytest.approx(1.1 * 1.1)


class TestAnalyze:
    def test_slack_ordering_between_stages(self):
        """The multiplier stage must have less slack than the adder."""
        m, clk, r1, r2 = make_pipeline()
        report = analyze(synthesize(m), clock_period_ps=2000)
        slack_r1 = report.by_name("r1").slack_ps
        slack_r2 = report.by_name("r2").slack_ps
        assert slack_r2 < slack_r1

    def test_arrival_includes_clk_to_q(self):
        m, clk, r1, r2 = make_pipeline()
        report = analyze(synthesize(m), clock_period_ps=2000)
        # r2's path launches from register r1: arrival > clk-to-q
        assert report.by_name("r2").arrival_ps > LIB45.ff_clk_to_q_ps

    def test_derated_corner_reduces_slack(self):
        m, *_ = make_pipeline()
        synth = synthesize(m)
        nominal = analyze(synth, 2000, corner=TT)
        worst = analyze(synth, 2000, corner=SS)
        assert worst.by_name("r2").slack_ps < nominal.by_name("r2").slack_ps

    def test_path_reconstruction_ends_at_endpoint(self):
        m, clk, r1, r2 = make_pipeline()
        report = analyze(synthesize(m), 2000)
        timing = report.by_name("r2")
        assert timing.path[-1] is r2
        assert timing.startpoint is r1

    def test_comb_chain_propagates(self):
        """Arrival accumulates across separate comb processes."""
        m = Module("chain")
        clk = m.input("clk")
        a = m.input("a", 8)
        s1 = m.signal("s1", 8)
        s2 = m.signal("s2", 8)
        q = m.signal("q", 8)
        m.comb("c1", [Assign(s1, a + const(1, 8))])
        m.comb("c2", [Assign(s2, s1 + const(1, 8))])
        m.sync("s", clk, [Assign(q, s2)])
        report = analyze(synthesize(m), 2000)
        one_add = LIB45.delay_ps("add", 8) * report.derate_factor
        assert report.by_name("q").arrival_ps == pytest.approx(2 * one_add)

    def test_primary_output_endpoint_reported(self):
        m, *_ = make_pipeline()
        report = analyze(synthesize(m), 2000)
        kinds = {e.kind for e in report.endpoints}
        assert "output" in kinds

    def test_worst_endpoint(self):
        m, *_ = make_pipeline()
        report = analyze(synthesize(m), 2000)
        worst = report.worst
        assert worst is not None
        assert all(worst.slack_ps <= e.slack_ps for e in report.endpoints)

    def test_combinational_cycle_detected(self):
        m = Module("loop")
        clk = m.input("clk")
        a = m.signal("a", 4)
        b = m.signal("b", 4)
        m.comb("c1", [Assign(a, b + const(1, 4))])
        m.comb("c2", [Assign(b, a + const(1, 4))])
        with pytest.raises(StaError):
            analyze(synthesize(m), 2000)

    def test_analysis_time_recorded(self):
        m, *_ = make_pipeline()
        report = analyze(synthesize(m), 2000)
        assert report.analysis_seconds >= 0.0


class TestCriticalBinning:
    def test_threshold_separates_stages(self):
        m, clk, r1, r2 = make_pipeline()
        synth = synthesize(m)
        report = analyze(synth, clock_period_ps=2000)
        slack_r1 = report.by_name("r1").slack_ps
        slack_r2 = report.by_name("r2").slack_ps
        threshold = (slack_r1 + slack_r2) / 2
        binned = bin_critical_paths(report, threshold)
        assert binned.names() == ["r2"]

    def test_zero_threshold_with_relaxed_clock(self):
        m, *_ = make_pipeline()
        report = analyze(synthesize(m), clock_period_ps=100_000)
        binned = bin_critical_paths(report, threshold_ps=0.0)
        assert binned.count == 0

    def test_huge_threshold_catches_all(self):
        m, *_ = make_pipeline()
        report = analyze(synthesize(m), clock_period_ps=2000)
        binned = bin_critical_paths(report, threshold_ps=1e9)
        assert binned.count == binned.total_register_endpoints == 2
        assert binned.coverage == 1.0

    def test_nominal_delay_respects_razor_window(self):
        """Back-annotated delays sit in (0.6 T, T) so the shadow latch
        short-path constraint holds."""
        m, *_ = make_pipeline()
        report = analyze(synthesize(m), clock_period_ps=2000)
        binned = bin_critical_paths(report, threshold_ps=1e9)
        for path in binned.monitored:
            assert 0.6 * 2000 < path.nominal_delay_ps < 2000

    def test_monitored_sorted_by_slack(self):
        m, *_ = make_pipeline()
        report = analyze(synthesize(m), clock_period_ps=2000)
        binned = bin_critical_paths(report, threshold_ps=1e9)
        slacks = [p.slack_ps for p in binned.monitored]
        assert slacks == sorted(slacks)

    @given(st.floats(min_value=-1000, max_value=1e7))
    def test_prop_binning_monotone_in_threshold(self, threshold):
        """Larger thresholds can only add monitored paths."""
        m, *_ = make_pipeline()
        report = analyze(synthesize(m), clock_period_ps=2000)
        a = bin_critical_paths(report, threshold)
        b = bin_critical_paths(report, threshold + 500.0)
        assert set(a.names()) <= set(b.names())


class TestTimingGraph:
    def test_startpoint_classification(self):
        m, clk, r1, r2 = make_pipeline()
        graph = TimingGraph.from_synthesis(synthesize(m))
        assert graph.startpoint_kind(r1) == "register"
        din = next(p for p in m.inputs() if p.name == "din")
        assert graph.startpoint_kind(din) == "input"
        assert clk not in graph.primary_inputs  # clocks excluded


class TestMultiCorner:
    def test_merged_is_worst_of(self):
        from repro.sta import analyze_corners

        m, *_ = make_pipeline()
        synth = synthesize(m)
        merged, per_corner = analyze_corners(synth, clock_period_ps=2000)
        assert set(per_corner) == {
            "tt_1.05v_25c", "ss_0.95v_125c", "ff_1.15v_m40c"
        }
        for timing in merged.endpoints:
            for report in per_corner.values():
                try:
                    other = report.by_name(timing.endpoint.name)
                except KeyError:
                    continue
                assert timing.slack_ps <= other.slack_ps + 1e-9

    def test_merged_matches_ss_for_uniform_derate(self):
        """With purely multiplicative derating the slow corner wins
        every endpoint."""
        from repro.sta import analyze_corners

        m, *_ = make_pipeline()
        merged, per_corner = analyze_corners(
            synthesize(m), clock_period_ps=2000
        )
        ss = per_corner["ss_0.95v_125c"]
        for timing in merged.endpoints:
            if timing.kind != "register":
                continue
            assert timing.slack_ps == pytest.approx(
                ss.by_name(timing.endpoint.name).slack_ps
            )

    def test_binning_on_merged_view(self):
        from repro.sta import analyze_corners

        m, *_ = make_pipeline()
        merged, _ = analyze_corners(synthesize(m), clock_period_ps=2000)
        binned = bin_critical_paths(merged, threshold_ps=1e9)
        assert binned.count == 2
