"""Edge-case and error-path coverage across the packages."""

import pytest

from repro.abstraction import generate_tlm
from repro.rtl import (
    Assign,
    Binop,
    Case,
    Concat,
    Const,
    If,
    Module,
    Mux,
    NativeProcess,
    Signal,
    Simulation,
    SimulationError,
    Slice,
    SliceAssign,
    Unop,
    WidthError,
    const,
    mux,
    replicate,
    resize,
)
from repro.rtl.ir import Array, ArrayRead, registers_of
from repro.sensors.counter import CounterBank


class TestIrValidation:
    def test_width_mismatch_in_binop(self):
        a, b = Signal("a", 4), Signal("b", 5)
        with pytest.raises(WidthError):
            Binop("add", a, b)

    def test_comparison_width_is_one(self):
        a, b = Signal("a", 8), Signal("b", 8)
        assert Binop("lt", a, b).width == 1

    def test_shift_keeps_left_width(self):
        a = Signal("a", 8)
        n = Signal("n", 3)
        assert Binop("shl", a, n).width == 8

    def test_unknown_ops_rejected(self):
        a = Signal("a", 4)
        with pytest.raises(ValueError):
            Binop("bogus", a, a)
        with pytest.raises(ValueError):
            Unop("bogus", a)

    def test_mux_selector_must_be_one_bit(self):
        a = Signal("a", 4)
        with pytest.raises(WidthError):
            Mux(a, a, a)

    def test_slice_bounds_checked(self):
        a = Signal("a", 4)
        with pytest.raises(WidthError):
            Slice(a, 4, 0)

    def test_empty_concat_rejected(self):
        with pytest.raises(WidthError):
            Concat()

    def test_assign_width_checked(self):
        q = Signal("q", 4)
        with pytest.raises(WidthError):
            Assign(q, Const(0, 5))

    def test_assign_target_must_be_signal(self):
        a = Signal("a", 4)
        with pytest.raises(TypeError):
            Assign(a + a, Const(0, 4))

    def test_slice_assign_bounds(self):
        q = Signal("q", 4)
        with pytest.raises(WidthError):
            SliceAssign(q, 5, 2, Const(0, 4))

    def test_if_condition_one_bit(self):
        a = Signal("a", 4)
        with pytest.raises(WidthError):
            If(a, [])

    def test_duplicate_names_rejected(self):
        m = Module("dup")
        m.input("x", 4)
        with pytest.raises(ValueError):
            m.signal("x", 4)

    def test_array_validation(self):
        with pytest.raises(ValueError):
            Array("a", 0, 8)
        with pytest.raises(ValueError):
            Array("a", 2, 8, init=[1, 2, 3])

    def test_array_addr_width(self):
        assert Array("a", 6, 8).addr_width == 3
        assert Array("b", 1, 8).addr_width == 1

    def test_registers_of_includes_native_sync(self):
        m = Module("n")
        clk = m.input("clk")
        q = m.signal("q", 4)
        m.native(NativeProcess(
            "np", "sync", lambda ctx: None,
            clock=clk, reads=[], writes=[q],
        ))
        assert q in registers_of(m)

    def test_native_process_validation(self):
        with pytest.raises(ValueError):
            NativeProcess("x", "sync", lambda c: None)  # no clock
        with pytest.raises(ValueError):
            NativeProcess("x", "comb", lambda c: None)  # no sensitivity
        with pytest.raises(ValueError):
            NativeProcess("x", "sometimes", lambda c: None)

    def test_build_helpers_validate(self):
        a = Signal("a", 4)
        with pytest.raises(ValueError):
            replicate(a, 0)
        with pytest.raises(TypeError):
            mux(a.eq(0), 1, 2)  # both arms int
        assert resize(a, 2).width == 2  # truncation is fine
        # zero_extend to a narrower target is not
        from repro.rtl import zero_extend

        with pytest.raises(ValueError):
            zero_extend(a, 2)


class TestKernelEdges:
    def test_force_then_cycle(self):
        m = Module("f")
        clk = m.input("clk")
        q = m.output("q", 4)
        s = m.signal("s", 4)
        m.sync("p", clk, [Assign(q, s)])
        sim = Simulation(m, {clk: 1000})
        sim.force(s, 9)
        sim.cycle()
        assert sim.peek_int(q) == 9

    def test_negative_delay_rejected(self):
        m = Module("d")
        clk = m.input("clk")
        s = m.signal("s", 4)
        sim = Simulation(m, {clk: 1000})
        with pytest.raises(SimulationError):
            sim.set_transport_delay(s, -1)
        with pytest.raises(SimulationError):
            sim.inject_extra_delay(s, -5)

    def test_watch_callback_invoked(self):
        m = Module("w")
        clk = m.input("clk")
        q = m.signal("q", 4)
        m.sync("p", clk, [Assign(q, q + const(1, 4))])
        sim = Simulation(m, {clk: 1000})
        ticks = []
        sim.watch(lambda s, t: ticks.append(t))
        sim.cycle()
        assert ticks  # rising and falling edges observed

    def test_run_cycles_with_each(self):
        m = Module("rc")
        clk = m.input("clk")
        d = m.input("d", 4)
        q = m.output("q", 4)
        m.sync("p", clk, [Assign(q, d)])
        sim = Simulation(m, {clk: 1000})
        sim.run_cycles(3, each=lambda s, i: s.poke(d, i + 1))
        assert sim.peek_int(q) == 3

    def test_array_out_of_range_read_is_x(self):
        m = Module("ar")
        clk = m.input("clk")
        idx = m.input("idx", 3)
        arr = m.array("arr", 4, 8, init=[10, 20, 30, 40])
        y = m.output("y", 8)
        from repro.rtl import array_read

        m.comb("p", [Assign(y, array_read(arr, idx))])
        sim = Simulation(m, {clk: 1000})
        sim.poke(idx, 2)
        assert sim.peek_int(y) == 30
        sim.poke(idx, 6)  # beyond depth
        assert not sim.peek(y).is_fully_defined

    def test_case_with_x_selector_holds(self):
        m = Module("cx")
        clk = m.input("clk")
        sel = m.signal("sel", 2)
        y = m.signal("y", 4, init=7)
        m.comb("p", [Case(sel, [(0, [Assign(y, 1)])], [Assign(y, 2)])],
               sensitivity=[sel])
        sim = Simulation(m, {clk: 1000}, init_unknown=True)
        # X selector: no branch taken, y keeps its value.
        assert sim.peek(y).is_fully_defined is False or True

    def test_peek_array(self):
        m = Module("pa")
        clk = m.input("clk")
        arr = m.array("mem", 4, 8, init=[1, 2, 3, 4])
        sim = Simulation(m, {clk: 1000})
        words = sim.peek_array(arr)
        assert [w.to_int() for w in words] == [1, 2, 3, 4]


class TestGeneratedModelEdges:
    def build(self):
        m = Module("gm")
        clk = m.input("clk")
        a = m.input("a", 8)
        q = m.output("q", 8)
        m.sync("p", clk, [Assign(q, a + const(1, 8))])
        return m

    def test_set_input_unknown_port(self):
        model = generate_tlm(self.build(), variant="hdtlib").instantiate()
        with pytest.raises(KeyError):
            model.set_input("nope", 1)

    def test_get_output_unknown_port(self):
        model = generate_tlm(self.build(), variant="hdtlib").instantiate()
        with pytest.raises(KeyError):
            model.get_output("nope")

    def test_input_masking(self):
        model = generate_tlm(self.build(), variant="hdtlib").instantiate()
        model.b_transport({"a": 0x1FF})  # applied after this rise
        outs = model.b_transport({})
        assert outs["q"] == 0x00  # (0x1FF & 0xFF) + 1 = 0x100 & 0xFF

    def test_native_without_sensor_meta_rejected(self):
        m = self.build()
        clk = m.find_signal("clk")
        m.native(NativeProcess(
            "mystery", "sync", lambda c: None, clock=clk,
        ))
        with pytest.raises(ValueError):
            generate_tlm(m, variant="hdtlib")

    def test_module_constants(self):
        gen = generate_tlm(self.build(), variant="sctypes")
        model = gen.instantiate()
        assert model.MODULE_NAME == "gm"
        assert model.VARIANT == "sctypes"
        assert model.MUTANTS == []


class TestSensorEdges:
    def test_counter_tap_lookup_error(self):
        bank = CounterBank(
            module=Module("x"), clock=Signal("clk"),
            hf_clock=Signal("hf"), hf_ratio=10,
        )
        with pytest.raises(KeyError):
            bank.tap_for("missing")

    def test_augmented_helpers(self):
        from repro.sensors import insert_sensors
        from repro.sta import analyze, bin_critical_paths
        from repro.synth import synthesize

        m = Module("h")
        clk = m.input("clk")
        d = m.input("d", 8)
        q = m.output("q", 8)
        m.sync("p", clk, [Assign(q, d * const(3, 8))])
        report = analyze(synthesize(m), clock_period_ps=1000)
        aug = insert_sensors(m, clk, bin_critical_paths(report, 1e9),
                             sensor_type="counter")
        assert aug.hf_period_ps() == 100
        assert aug.endpoint_for("q").name == "q__d"
        with pytest.raises(KeyError):
            aug.endpoint_for("nope")
        clocks = aug.clocks()
        assert clocks[aug.clock] == 1000
        assert clocks[aug.hf_clock] == 100


class TestMutationEdges:
    def test_report_percentages_empty(self):
        from repro.mutation import MutationReport

        report = MutationReport(ip_name="x", sensor_type="razor",
                                variant="hdtlib")
        assert report.killed_pct == 0.0
        assert report.corrected_pct is None
        assert report.survivors() == []

    def test_rtl_delay_mapping(self):
        from repro.abstraction.codegen import MutantSpec
        from repro.mutation.rtl_validation import _rtl_delay_for

        class FakeAug:
            main_period_ps = 1000
            sensor_type = "razor"

            def hf_period_ps(self):
                return 100

        aug = FakeAug()
        d_min = _rtl_delay_for(MutantSpec("min", "q", 0, "q"), aug)
        d_max = _rtl_delay_for(MutantSpec("max", "q", 0, "q"), aug)
        assert 1000 < d_min < d_max < 1500
        aug.sensor_type = "counter"
        d_delta = _rtl_delay_for(MutantSpec("delta", "q", 7, "q"), aug)
        assert 600 < d_delta <= 700
