#!/usr/bin/env python3
"""Case study 3: MEMS-microphone decimation filter.

Feeds a sigma-delta PDM stream through the CIC + FIR decimation chain,
prints the recovered PCM waveform, then runs the cross-level flow with
both sensor types and compares their footprints -- the Razor-vs-
Counter trade-off of the paper's Table 2.

Run:  python examples/decimation_filter.py
"""

from repro.flow import run_flow
from repro.ips import case_study
from repro.ips.filter import build_filter, pdm_stimulus
from repro.reporting import format_kv, format_table
from repro.rtl import Simulation


def pcm_chart(samples, width=64, height=9):
    """ASCII chart of signed PCM samples."""
    if not samples:
        return "  (no samples)"
    peak = max(abs(s) for s in samples) or 1
    indices = range(min(width, len(samples)))
    rows = []
    for level in range(height, -height - 1, -2):
        threshold = peak * level / height
        row = []
        for i in indices:
            value = samples[i]
            row.append("*" if abs(value - threshold) <= peak / height
                       else ("-" if level == 0 else " "))
        rows.append("  " + "".join(row))
    return "\n".join(rows)


def main() -> None:
    print("PDM -> PCM decimation (CIC/16 + compensation FIR + halfband/2)")
    print("=" * 68)
    module, clk = build_filter()
    sim = Simulation(module, {clk: 1000})
    pdm_in = module.find_signal("pdm_in")
    pcm_out = module.find_signal("pcm_out")
    pcm_valid = module.find_signal("pcm_valid")
    samples = []
    for vec in pdm_stimulus(2048):
        sim.cycle({pdm_in: vec["pdm_in"]})
        if sim.peek_int(pcm_valid):
            raw = sim.peek_int(pcm_out)
            samples.append(raw - 65536 if raw >= 32768 else raw)
    print(pcm_chart(samples))
    print(format_kv([
        ("PDM bits in", 2048),
        ("PCM samples out", len(samples)),
        ("decimation", "32x"),
        ("peak amplitude", max(abs(s) for s in samples)),
    ]))

    print("\nSensor trade-off: Razor vs Counter (paper Table 2 shape)")
    print("=" * 68)
    razor = run_flow(case_study("filter"), "razor")
    counter = run_flow(case_study("filter"), "counter")
    print(format_table(
        ["metric", "Razor version", "Counter version"],
        [
            ["sensors inserted", razor.sensors_inserted,
             counter.sensors_inserted],
            ["augmented RTL (VHDL loc)", razor.augmented_rtl_loc,
             counter.augmented_rtl_loc],
            ["TLM scheduler", razor.tlm_optimized.scheduler_kind,
             counter.tlm_optimized.scheduler_kind],
            ["injected TLM (loc)", razor.injected.loc,
             counter.injected.loc],
            ["mutants", razor.mutation.total, counter.mutation.total],
            ["killed (%)", f"{razor.mutation.killed_pct:.1f}",
             f"{counter.mutation.killed_pct:.1f}"],
            ["corrected (%)",
             f"{razor.mutation.corrected_pct:.1f}", "n.a."],
            ["errors risen (%)", f"{razor.mutation.risen_pct:.1f}",
             f"{counter.mutation.risen_pct:.1f}"],
        ],
    ))
    print("\nRazor gives detection+correction with small area; the "
          "Counter version costs more RTL\nbut reports quantitative "
          "delay measurements and tolerates sub-threshold delays.")


if __name__ == "__main__":
    main()
