#!/usr/bin/env python3
"""Regenerate the Counter-sensor timing behaviour of the paper's
Fig. 5.b and the dual-clock transaction mapping of Fig. 8.

Sweeps the arrival time of a monitored transition across the
observability window and prints the MEAS_VAL staircase (the paper's
"6 7 8 9 10" sequence), the OUT_OK threshold crossing, and the HF
clock wrapped inside main-clock transactions.

Run:  python examples/counter_waveforms.py
"""

from repro.rtl import Assign, Module, WaveRecorder, const
from repro.sensors import insert_sensors
from repro.sta import analyze, bin_critical_paths
from repro.synth import synthesize

PERIOD = 1000


def build():
    m = Module("fig5")
    clk = m.input("clk")
    din = m.input("din", 8)
    data = m.signal("data", 8)
    dout = m.output("dout", 8)
    m.sync("p_data", clk, [Assign(data, data + din)])
    m.comb("p_out", [Assign(dout, data)])
    report = analyze(synthesize(m), clock_period_ps=PERIOD)
    aug = insert_sensors(m, clk, bin_critical_paths(report, 1e9),
                         sensor_type="counter")
    return m, clk, din, aug


def main() -> None:
    m, clk, din, aug = build()
    tap = aug.bank.taps[0]
    hf = aug.hf_period_ps()
    print(f"monitored path: {tap.register.name}   HF clock: {hf} ps "
          f"({aug.hf_ratio} per main cycle)   LUT threshold: "
          f"{tap.lut_threshold} HF periods")
    print()
    print("MEAS_VAL staircase (Fig. 5.b):")
    print("  arrival tick | MEAS_VAL | OUT_OK")
    print("  -------------+----------+-------------------")
    for tick in (6, 7, 8, 9, 10):
        sim = aug.make_simulation()
        sim.set_transport_delay(tap.endpoint, tick * hf - 2)
        meas, ok = 0, 1
        for i in range(8):
            sim.cycle({din: 1 + i})
            if sim.peek_int(tap.meas_val) == tick:
                meas = tick
                ok = sim.peek_int(tap.out_ok)
        verdict = "ok (tolerated)" if ok else "ERROR RISEN"
        print(f"  {tick:12d} | {meas:8d} | {verdict}")

    print()
    print("HF clock wrapped into main-clock transactions (Fig. 8):")
    m2, clk2, din2, aug2 = build()
    sim = aug2.make_simulation()
    hf_clk = aug2.hf_clock
    recorder = WaveRecorder(sim, [clk2, hf_clk])
    for i in range(3):
        sim.cycle({din2: 5})
    print(recorder.render(0, 3 * PERIOD, hf // 2))
    print("\n  one main-clock period == one TLM transaction; the ten "
          "HF cycles inside it\n  become the inner loop of the "
          "dual-clock scheduler (Fig. 8.b).")


if __name__ == "__main__":
    main()
