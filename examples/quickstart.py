#!/usr/bin/env python3
"""Quickstart: the cross-level verification flow on a toy IP.

Walks the paper's four methodology steps end to end on a small
accumulator datapath, printing what happens at each stage:

1. synthesis + STA locate the critical path endpoints;
2. Razor sensors are inserted at those endpoints;
3. the augmented RTL is abstracted to a TLM model (generated Python);
4. delay mutants are injected and the mutation analysis verifies that
   the sensors detect and correct every injected timing failure.

Run:  python examples/quickstart.py
"""

from repro.abstraction import generate_tlm
from repro.mutation import inject_mutants, run_mutation_analysis
from repro.reporting import format_kv, format_table
from repro.rtl import Assign, If, Module, const
from repro.sensors import insert_sensors
from repro.sta import analyze, bin_critical_paths
from repro.synth import synthesize

PERIOD_PS = 1000  # 1 GHz


def build_ip():
    """A small IP: accumulator + scaler, two register endpoints."""
    m = Module("quickstart_ip")
    clk = m.input("clk")
    din = m.input("din", 8)
    en = m.input("en")
    acc = m.signal("acc", 8)
    scaled = m.signal("scaled", 8)
    out = m.output("out", 8)
    m.sync("p_acc", clk, [If(en.eq(1), [Assign(acc, acc + din)])])
    m.sync("p_scaled", clk, [Assign(scaled, acc * const(3, 8))])
    m.comb("p_out", [Assign(out, scaled)])
    return m, clk


def main() -> None:
    print("=" * 64)
    print("Step 1: insertion of delay monitors (synthesis + STA)")
    print("=" * 64)
    module, clk = build_ip()
    synth = synthesize(module)
    sta = analyze(synth, clock_period_ps=PERIOD_PS)
    critical = bin_critical_paths(sta, threshold_ps=0.9 * PERIOD_PS)
    print(format_kv([
        ("gates (NAND2-eq)", synth.gate_count),
        ("flip-flops", synth.ff_bits),
        ("register endpoints", len(sta.register_endpoints())),
        ("critical paths (slack < 0.9T)", critical.count),
    ]))
    for path in critical.monitored:
        print(f"    monitored: {path.endpoint.name:8s}"
              f" slack={path.slack_ps:8.1f} ps"
              f" nominal delay={path.nominal_delay_ps} ps")

    augmented = insert_sensors(module, clk, critical, sensor_type="razor")
    print(f"\n  -> {augmented.sensor_count} Razor sensors inserted; new "
          f"ports: razor_r (recovery enable), razor_err, razor_stall, "
          f"metric_ok")

    print()
    print("=" * 64)
    print("Step 2: RTL-to-TLM abstraction")
    print("=" * 64)
    tlm = generate_tlm(module, variant="hdtlib", augmented=augmented)
    print(format_kv([
        ("generated TLM class", tlm.class_name),
        ("data types", tlm.variant),
        ("scheduler", tlm.scheduler_kind + "-clock"),
        ("lines of code", tlm.loc),
    ]))
    first_lines = "\n".join(tlm.source.splitlines()[:9])
    print("\n  generated model header:\n")
    for line in first_lines.splitlines():
        print("   |", line)

    print()
    print("=" * 64)
    print("Step 3: injection of delay mutants (ADAM)")
    print("=" * 64)
    injected = inject_mutants(augmented)
    rows = [[i, m.kind, m.register] for i, m in enumerate(injected.mutants)]
    print(format_table(["#", "class", "monitored register"], rows))

    print()
    print("=" * 64)
    print("Step 4: mutation analysis")
    print("=" * 64)
    stimuli = [{"din": (i * 13 + 1) % 256, "en": 1} for i in range(30)]
    report = run_mutation_analysis(
        lambda: tlm.instantiate(),
        injected,
        stimuli,
        ip_name="quickstart_ip",
        sensor_type="razor",
        recovery=True,
    )
    print(format_kv([
        ("mutants", report.total),
        ("killed", f"{report.killed_pct:.1f}%"),
        ("errors risen (E)", f"{report.risen_pct:.1f}%"),
        ("corrected by recovery", f"{report.corrected_pct:.1f}%"),
        ("mutation score", f"{report.mutation_score:.1f}%"),
    ]))
    assert report.killed_pct == 100.0
    print("\nAll injected timing failures were detected and corrected "
          "by the Razor sensors -- verified entirely at TLM.")


if __name__ == "__main__":
    main()
