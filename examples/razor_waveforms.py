#!/usr/bin/env python3
"""Regenerate the Razor timing diagram of the paper's Fig. 4.b.

Three phases on a live RTL simulation of a monitored path:
cycle with correct timing (E=0), detected timing failure (E=1, R=0),
and detection + correction (E=1, R=1, pipeline stalled one cycle).

Run:  python examples/razor_waveforms.py
"""

from repro.rtl import Assign, Module, WaveRecorder, const
from repro.sensors import insert_sensors
from repro.sta import analyze, bin_critical_paths
from repro.synth import synthesize

PERIOD = 1000


def main() -> None:
    m = Module("fig4")
    clk = m.input("clk")
    din = m.input("din", 8)
    data = m.signal("data", 8)
    dout = m.output("dout", 8)
    m.sync("p_data", clk, [Assign(data, din + const(1, 8))])
    m.comb("p_out", [Assign(dout, data)])

    report = analyze(synthesize(m), clock_period_ps=PERIOD)
    aug = insert_sensors(m, clk, bin_critical_paths(report, 1e9),
                         sensor_type="razor")
    tap = aug.bank.taps[0]
    sim = aug.make_simulation(input_launch_at_edge=True)
    recorder = WaveRecorder(sim, [
        clk, tap.endpoint, tap.register, tap.error, aug.bank.stall,
    ])

    nominal = aug.nominal_delay_of[tap.endpoint]
    print(f"monitored path: {tap.register.name}  nominal delay "
          f"{nominal} ps (clock {PERIOD} ps)")
    print()
    annotations = []
    for cycle in range(9):
        recovery = 1 if cycle >= 5 else 0
        if cycle in (3, 6):
            # Late arrival inside the Razor window (cycle 2 / cycle 3
            # of the paper's diagram).
            sim.inject_extra_delay(tap.endpoint, int(1.2 * PERIOD) - nominal)
        sim.cycle({din: 16 + 8 * cycle, aug.bank.recovery: recovery})
        sim.clear_injection(tap.endpoint)
        e = sim.peek_int(tap.error)
        s = sim.peek_int(aug.bank.stall)
        label = "correct timing"
        if e and not recovery:
            label = "timing failure DETECTED (R=0)"
        elif e and recovery:
            label = "timing failure DETECTED + CORRECTED (R=1, stall)"
        annotations.append(f"cycle {cycle}:  E={e} stall={s}  {label}")

    print(recorder.render(0, 10 * PERIOD, PERIOD // 10))
    print()
    for line in annotations:
        print(" ", line)
    print("\nLegend: '#' high, '_' low; multi-bit signals show their "
          "value at each change ('|xx').")
    print("Each main-clock period corresponds to one TLM transaction "
          "(Fig. 7).")


if __name__ == "__main__":
    main()
