#!/usr/bin/env python3
"""Case study 2: heart-rate DSP -- detection quality and sensor flow.

Shows the DSP detecting pulses in a synthetic blood-flow waveform (an
ASCII strip chart of energy vs detected beats), then verifies its
Counter-based delay monitors through the cross-level flow, printing
the per-path measurements the sensor reports for each delta mutant.

Run:  python examples/dsp_heart_rate.py
"""

from repro.flow import run_flow
from repro.ips import case_study
from repro.ips.dsp import BEAT_PERIOD_SAMPLES, build_dsp, flow_stimulus
from repro.reporting import format_kv, format_table
from repro.rtl import Simulation


def strip_chart(values, beats, width=64, height=8):
    """Render an ASCII strip chart of the energy with beat markers."""
    if len(values) > width:
        step = len(values) / width
        indices = [int(i * step) for i in range(width)]
    else:
        indices = list(range(len(values)))
    vmax = max(values) or 1
    rows = []
    for level in range(height, 0, -1):
        threshold = vmax * level / height
        row = "".join(
            "#" if values[i] >= threshold else " " for i in indices
        )
        rows.append(f"  {row}")
    marker = "".join("^" if beats[i] else " " for i in indices)
    rows.append(f"  {marker}  (^ = detected beat)")
    return "\n".join(rows)


def main() -> None:
    print("Heart-rate detection on a synthetic blood-flow waveform")
    print("=" * 68)
    module, clk = build_dsp()
    sim = Simulation(module, {clk: 500})
    sample_in = module.find_signal("sample_in")
    sample_valid = module.find_signal("sample_valid")
    beat = module.find_signal("beat")
    energy = module.find_signal("energy")
    rate = module.find_signal("rate")

    energies, beats = [], []
    for vec in flow_stimulus(6 * BEAT_PERIOD_SAMPLES):
        sim.cycle({sample_in: vec["sample_in"], sample_valid: 1})
        energies.append(sim.peek_int(energy))
        beats.append(sim.peek_int(beat))
    print(strip_chart(energies, beats))
    beat_count = sum(beats)
    print(format_kv([
        ("samples processed", len(energies)),
        ("beats detected", beat_count),
        ("nominal pulse period", f"{BEAT_PERIOD_SAMPLES} samples"),
        ("measured inter-beat interval", sim.peek_int(rate)),
    ]))
    assert beat_count >= 3

    print("\nCross-level verification with Counter-based monitors")
    print("=" * 68)
    flow = run_flow(case_study("dsp"), "counter")
    report = flow.mutation
    print(format_kv([
        ("sensors inserted", flow.sensors_inserted),
        ("mutants (3 per sensor)", report.total),
        ("killed", f"{report.killed_pct:.1f}%"),
        ("errors risen (> LUT threshold)", f"{report.risen_pct:.1f}%"),
    ]))

    rows = []
    for outcome in report.outcomes:
        if outcome.kind != "delta":
            continue
        rows.append([
            outcome.register,
            outcome.hf_tick,
            outcome.meas_val,
            "yes" if outcome.error_risen else "no (tolerated)",
        ])
    print("\nDelta mutants: injected vs measured delay (HF periods):")
    print(format_table(
        ["monitored register", "injected tick", "MEAS_VAL", "error risen"],
        rows,
    ))
    for outcome in report.outcomes:
        if outcome.kind == "delta":
            assert outcome.meas_val == outcome.hf_tick


if __name__ == "__main__":
    main()
