#!/usr/bin/env python3
"""Case study 1: the Plasma MIPS core through the complete flow.

Runs real MIPS programs on the CPU at RTL, then takes the core through
sensor insertion, abstraction and mutation analysis -- the paper's
most complex case study.

Run:  python examples/plasma_flow.py
"""

import time

from repro.flow import run_flow, speedup, time_rtl, time_tlm
from repro.ips import case_study
from repro.ips.plasma import (
    CHECKSUM_EXPECTED,
    FIB_EXPECTED,
    SORT_EXPECTED,
    build_plasma,
    checksum_program,
    fibonacci_program,
    sort_program,
)
from repro.reporting import format_kv, format_table
from repro.rtl import Simulation


def run_program(title, program, expected, max_cycles=800):
    """Execute one program on the RTL model and check its result."""
    module, clk = build_plasma(program)
    sim = Simulation(module, {clk: 5000})
    debug = module.find_signal("debug_out")
    halted = module.find_signal("halted_o")
    instret = module.find_signal("instret_o")
    started = time.perf_counter()
    cycles = 0
    for cycles in range(1, max_cycles + 1):
        sim.cycle()
        if sim.peek_int(halted):
            break
    seconds = time.perf_counter() - started
    result = sim.peek_int(debug)
    status = "ok" if result == expected else "MISMATCH"
    return [title, cycles, sim.peek_int(instret), result, expected,
            f"{seconds:.3f}", status]


def main() -> None:
    print("Running MIPS programs on the Plasma RTL model")
    print("=" * 64)
    rows = [
        run_program("fibonacci(12)", fibonacci_program(12), FIB_EXPECTED),
        run_program("rotate-xor checksum", checksum_program(),
                    CHECKSUM_EXPECTED),
        run_program("bubble sort (median)", sort_program(), SORT_EXPECTED),
    ]
    print(format_table(
        ["program", "cycles", "instret", "result", "expected",
         "RTL time (s)", "status"],
        rows,
    ))
    assert all(row[-1] == "ok" for row in rows)

    print("\nCross-level verification flow (Razor sensors)")
    print("=" * 64)
    spec = case_study("plasma")
    flow = run_flow(spec, "razor")
    report = flow.mutation
    print(format_kv([
        ("critical paths", flow.critical.count),
        ("sensors inserted", flow.sensors_inserted),
        ("original RTL (VHDL loc)", flow.original_rtl_loc),
        ("augmented RTL (VHDL loc)", flow.augmented_rtl_loc),
        ("TLM model (loc)", flow.tlm_optimized.loc),
        ("injected TLM (loc)", flow.injected.loc),
        ("mutants", report.total),
        ("killed", f"{report.killed_pct:.1f}%"),
        ("corrected", f"{report.corrected_pct:.1f}%"),
        ("errors risen", f"{report.risen_pct:.1f}%"),
    ]))

    print("\nSimulation speed, RTL vs TLM (fib workload)")
    print("=" * 64)
    stimuli = spec.stimulus(120)
    rtl = time_rtl(flow.augmented, stimuli)
    tlm_std = time_tlm(flow.tlm_standard, stimuli)
    tlm_opt = time_tlm(flow.tlm_optimized, stimuli)
    print(format_table(
        ["level", "time (s)", "cycles/s", "speedup vs RTL"],
        [
            ["RTL (event-driven, 4-value)", f"{rtl.seconds:.4f}",
             int(rtl.cycles_per_second), "1.00x"],
            ["TLM (SystemC-style types)", f"{tlm_std.seconds:.4f}",
             int(tlm_std.cycles_per_second),
             f"{speedup(rtl, tlm_std):.2f}x"],
            ["TLM optimised (HDTLib)", f"{tlm_opt.seconds:.4f}",
             int(tlm_opt.cycles_per_second),
             f"{speedup(rtl, tlm_opt):.2f}x"],
        ],
    ))


if __name__ == "__main__":
    main()
