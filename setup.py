"""Legacy setup shim.

The execution environment has no network access and no ``wheel``
package, so PEP 660 editable installs fail.  This shim lets
``pip install -e .`` fall back to ``setup.py develop``, which works
offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
