"""Wall-clock boundary for eviction-age metadata.

det-lint: wall-clock-boundary -- this module is the one sanctioned
place worker-reachable code may read the wall clock, and only for
storage-housekeeping metadata (cache entry ages for ``repro cache
prune``).  Nothing returned here may ever feed a mutant verdict or
any other ``compare``-relevant report field; the determinism linter
(``tools/lint_determinism.py``) whitelists wall-clock reads *only* in
modules carrying this boundary declaration, so the call sites
themselves (e.g. :mod:`repro.mutation.cache`) stay pragma-free and
any new ``time.time()`` elsewhere still fails the lint.
"""

from __future__ import annotations

import time

__all__ = ["metadata_wall_clock"]


def metadata_wall_clock() -> float:
    """Current wall-clock time (seconds since the epoch) for
    eviction-age bookkeeping -- never for verdict data."""
    return time.time()
