"""Process-local metrics registry with Prometheus text exposition.

One :class:`MetricsRegistry` (:data:`REGISTRY`) per process collects
counters, gauges and histograms from every layer -- cache hits, pool
rebuilds, fleet re-dispatches, batched-sweep forks -- and renders
them:

* :meth:`MetricsRegistry.render` -- the Prometheus text format served
  by ``GET /metrics`` (``# HELP`` / ``# TYPE`` lines, histogram
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` series);
* :meth:`MetricsRegistry.snapshot` -- a JSON-safe dict embedded in
  ``GET /healthz`` and rendered by ``repro status --server`` and
  ``repro top``.

Worker *processes* do not push to this registry directly: pool
children die with their memory and worker daemons live across the
network.  Instead, shard executions bump plain-integer counters on
their :class:`~repro.obs.tracer.ShardCapture`, the counts ride back
inside the shard result, and the coordinator folds them in
(:func:`absorb_shard_counters`); worker-*daemon* registries are
scraped through the coordinator's heartbeat and re-exported as
``repro_worker_*`` series.

Everything is runtime metadata -- nothing here feeds a verdict, so
determinism is untouched (enforced by ``tools/lint_determinism.py``
and the field-identity gate in ``benchmarks/bench_obs.py``).
"""

from __future__ import annotations

import threading

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "absorb_shard_counters",
]

#: Default histogram buckets (seconds) -- shard/campaign durations.
DEFAULT_BUCKETS = (
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: ``# HELP`` text of the well-known series (unknown names render
#: with an empty help line; add entries as instrumentation grows).
_HELP = {
    "repro_shards_executed_total":
        "Campaign shards executed (cache replays excluded)",
    "repro_mutants_executed_total":
        "Mutants executed inside shards (cache replays excluded)",
    "repro_cache_hits_total": "Result-cache lookup hits",
    "repro_cache_misses_total": "Result-cache lookup misses",
    "repro_golden_cache_hits_total": "Golden traces replayed from cache",
    "repro_golden_cache_misses_total":
        "Golden traces simulated and stored",
    "repro_pool_rebuilds_total":
        "Local worker-pool rebuilds after a broken process",
    "repro_shard_isolations_total":
        "Shards isolated as poisonous after repeated pool breaks",
    "repro_fleet_dispatches_total": "Shards dispatched to a placement",
    "repro_fleet_redispatches_total":
        "Shards re-dispatched after a placement was lost",
    "repro_fleet_evictions_total":
        "Fleet members evicted by the heartbeat monitor",
    "repro_fleet_cache_strip_hits_total":
        "Mutants stripped from a dispatch by a cache probe",
    "repro_batch_forks_total":
        "Mutant simulations forked off a batched base sweep",
    "repro_batch_early_kills_total":
        "Batched mutants whose verdict settled before the testbench "
        "ended",
    "repro_batch_rejoins_total":
        "Forked counter-sweep mutants re-joined to the base simulation",
    "repro_jobs_total": "Service jobs reaching a terminal status",
    "repro_shard_seconds": "Shard execution wall time (seconds)",
    "repro_inflight_shards": "Shards currently executing",
    "repro_uptime_seconds": "Seconds since this process enabled obs",
}

_TYPE_COUNTER = "counter"
_TYPE_GAUGE = "gauge"
_TYPE_HISTOGRAM = "histogram"


def _label_suffix(labels: "tuple[tuple[str, str], ...]") -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _series_name(key: "tuple[str, tuple]") -> str:
    name, labels = key
    return name + _label_suffix(labels)


def _key(name: str, labels: dict) -> "tuple[str, tuple]":
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Thread-safe counters / gauges / histograms (see module
    docstring).  Series register themselves on first touch."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: "dict[tuple, float]" = {}
        self._gauges: "dict[tuple, float]" = {}
        self._hist: "dict[tuple, dict]" = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            hist = self._hist.get(key)
            if hist is None:
                hist = {
                    "buckets": [0] * len(DEFAULT_BUCKETS),
                    "sum": 0.0,
                    "count": 0,
                }
                self._hist[key] = hist
            for i, bound in enumerate(DEFAULT_BUCKETS):
                if value <= bound:
                    hist["buckets"][i] += 1
            hist["sum"] += value
            hist["count"] += 1

    def reset(self) -> None:
        """Drop every series (tests; a fresh ``enable``)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hist.clear()

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe summary for ``/healthz`` and ``repro top``."""
        with self._lock:
            return {
                "counters": {
                    _series_name(key): value
                    for key, value in sorted(self._counters.items())
                },
                "gauges": {
                    _series_name(key): value
                    for key, value in sorted(self._gauges.items())
                },
                "histograms": {
                    _series_name(key): {
                        "count": hist["count"],
                        "sum": hist["sum"],
                    }
                    for key, hist in sorted(self._hist.items())
                },
            }

    def counter_value(self, name: str, **labels) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            hists = sorted(self._hist.items())
        lines: "list[str]" = []

        def _head(name: str, kind: str, emitted: set) -> None:
            if name in emitted:
                return
            emitted.add(name)
            lines.append(f"# HELP {name} {_HELP.get(name, '')}".rstrip())
            lines.append(f"# TYPE {name} {kind}")

        emitted: "set[str]" = set()
        for (name, labels), value in counters:
            _head(name, _TYPE_COUNTER, emitted)
            lines.append(f"{name}{_label_suffix(labels)} {_num(value)}")
        for (name, labels), value in gauges:
            _head(name, _TYPE_GAUGE, emitted)
            lines.append(f"{name}{_label_suffix(labels)} {_num(value)}")
        for (name, labels), hist in hists:
            _head(name, _TYPE_HISTOGRAM, emitted)
            cumulative = 0
            for bound, count in zip(DEFAULT_BUCKETS, hist["buckets"]):
                cumulative = count
                bucket_labels = labels + (("le", _num(bound)),)
                lines.append(
                    f"{name}_bucket{_label_suffix(bucket_labels)} "
                    f"{cumulative}"
                )
            inf_labels = labels + (("le", "+Inf"),)
            lines.append(
                f"{name}_bucket{_label_suffix(inf_labels)} "
                f"{hist['count']}"
            )
            lines.append(
                f"{name}_sum{_label_suffix(labels)} {_num(hist['sum'])}"
            )
            lines.append(
                f"{name}_count{_label_suffix(labels)} {hist['count']}"
            )
        return "\n".join(lines) + ("\n" if lines else "")


def _num(value: float) -> str:
    """Integral floats render without the trailing ``.0`` (Prometheus
    accepts either; the compact form reads better in tests/CI logs)."""
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


#: The process-wide registry.
REGISTRY = MetricsRegistry()

#: ShardCapture counter name -> registry series absorbed by
#: :func:`absorb_shard_counters`.
_SHARD_COUNTER_SERIES = {
    "shards": "repro_shards_executed_total",
    "mutants": "repro_mutants_executed_total",
    "batch_forks": "repro_batch_forks_total",
    "batch_early_kills": "repro_batch_early_kills_total",
    "batch_rejoins": "repro_batch_rejoins_total",
}


def absorb_shard_counters(payload: "dict | None",
                          registry: "MetricsRegistry | None" = None
                          ) -> "dict[str, int]":
    """Fold one shard-result obs payload's counters into the registry
    (and its elapsed time into the ``repro_shard_seconds`` histogram).
    Returns the raw counter dict so callers can also aggregate it
    per-campaign."""
    registry = REGISTRY if registry is None else registry
    if not payload:
        return {}
    counters = payload.get("counters") or {}
    for name, value in sorted(counters.items()):
        series = _SHARD_COUNTER_SERIES.get(name)
        if series is not None:
            registry.inc(series, value)
    elapsed = payload.get("elapsed_s")
    if elapsed is not None:
        registry.observe("repro_shard_seconds", float(elapsed))
    return dict(counters)
