"""Span-based tracer with Chrome/Perfetto ``trace.json`` export.

One process-local :class:`Tracer` (:data:`TRACER`) records **spans**
(named intervals with attributes) and **instants** (point events:
fault recoveries, dispatch decisions).  Disabled -- the default -- a
:func:`trace_span` call returns a shared ``nullcontext`` and an
:func:`instant` is a single attribute check, so the instrumented hot
paths cost nothing measurable (gated by ``benchmarks/bench_obs.py``).

Determinism contract
--------------------
Everything here is *runtime metadata*, never a verdict input:

* coordinator-side spans use ``time.perf_counter`` offsets from the
  tracer epoch (explicitly allowed by ``tools/lint_determinism.py``);
* worker-side timings never cross a process boundary as wall-clock
  data.  A shard records into a :class:`ShardCapture` whose spans are
  **relative offsets** from the shard's own start; the payload rides
  back inside a :class:`~repro.mutation.campaign.ShardResult` and the
  coordinator re-anchors it onto its own clock
  (:meth:`Tracer.absorb_shard`).  Reports stay byte-identical: every
  obs field is ``compare=False``, like
  :attr:`~repro.mutation.MutationReport.seconds`.

Span context
------------
:meth:`Tracer.context` pushes attributes onto a thread-local stack;
every span/instant opened by that thread inherits them.  The campaign
service wraps each job's execution in ``TRACER.context(job=job_id)``,
which is what lets ``repro trace <job-id>`` filter one job out of a
shared daemon's timeline.

Export
------
:meth:`Tracer.chrome_trace` emits the Chrome trace-event JSON format
(``"X"`` complete events in microseconds, ``"i"`` instants, ``"M"``
process-name metadata), one ``pid`` track per process: the
coordinator itself plus one synthesized track per absorbed worker
identity.  :func:`validate_chrome_trace` is the schema check used by
the tests and the CI ``obs`` job.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time

__all__ = [
    "TRACER",
    "CompletionStamps",
    "ShardCapture",
    "Tracer",
    "active_capture",
    "shard_capture",
    "shard_count",
    "shard_span",
    "trace_instant",
    "trace_span",
    "validate_chrome_trace",
]

#: Shared disabled-path context manager: entering/exiting it is the
#: whole cost of an instrumented block while tracing is off.
_NULL = contextlib.nullcontext()

#: Synthetic ``pid`` base for absorbed worker tracks (far above any
#: real pid, so worker tracks never collide with the coordinator's).
_WORKER_PID_BASE = 1_000_000


class _Span:
    """One live coordinator-side span (context manager)."""

    __slots__ = ("_tracer", "_name", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        end = time.perf_counter()
        tracer._record({
            "name": self._name,
            "ph": "X",
            "ts": self._start - tracer._epoch,
            "dur": end - self._start,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": {**tracer.current_attrs(), **self._args},
        })
        return False


class Tracer:
    """Process-local span recorder (see module docstring).

    Thread-safe; one instance (:data:`TRACER`) serves the whole
    process.  ``enable()`` stamps the epoch every span offset is
    relative to and clears any previous timeline.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.enabled = False
        self._epoch = 0.0
        self._events: "list[dict]" = []
        self._workers: "dict[str, int]" = {}

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        with self._lock:
            self.enabled = True
            self._epoch = time.perf_counter()
            self._events = []
            self._workers = {}

    def disable(self) -> None:
        with self._lock:
            self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._events = []
            self._workers = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- thread-local span context ----------------------------------------

    def _stack(self) -> "list[dict]":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextlib.contextmanager
    def context(self, **attrs):
        """Attach ``attrs`` to every span/instant this thread opens
        inside the block (e.g. ``TRACER.context(job=job_id)``)."""
        stack = self._stack()
        stack.append(attrs)
        try:
            yield
        finally:
            stack.pop()

    def current_attrs(self) -> dict:
        merged: dict = {}
        for frame in self._stack():
            merged.update(frame)
        return merged

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs):
        """Context manager timing one named interval.  Disabled, it is
        the shared ``nullcontext`` -- no allocation, no clock read."""
        if not self.enabled:
            return _NULL
        return _Span(self, name, attrs)

    def instant(self, name: str, **attrs) -> None:
        """Record a point event (fault recovery, dispatch decision)."""
        if not self.enabled:
            return
        self._record({
            "name": name,
            "ph": "i",
            "ts": time.perf_counter() - self._epoch,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": {**self.current_attrs(), **attrs},
        })

    def _record(self, event: dict) -> None:
        with self._lock:
            if self.enabled:
                self._events.append(event)

    # -- worker-shard absorption ------------------------------------------

    def absorb_shard(self, payload: "dict | None", **attrs) -> None:
        """Merge a shard's :class:`ShardCapture` payload into the
        timeline.  The payload's spans are offsets from the shard's
        own start; they are re-anchored so the shard *ends* now (the
        coordinator absorbs a shard the moment its result arrives).
        Each distinct worker identity gets its own synthetic ``pid``
        track."""
        if not self.enabled or not payload:
            return
        spans = payload.get("spans") or []
        if not spans:
            return
        worker = str(payload.get("worker") or "local")
        elapsed = float(payload.get("elapsed_s") or 0.0)
        anchor = (time.perf_counter() - self._epoch) - elapsed
        with self._lock:
            pid = self._workers.get(worker)
            if pid is None:
                pid = _WORKER_PID_BASE + len(self._workers) + 1
                self._workers[worker] = pid
        base = {**self.current_attrs(), **attrs}
        for span in spans:
            event = {
                "name": span.get("name", "span"),
                "ph": span.get("ph", "X"),
                "ts": anchor + float(span.get("start_s", 0.0)),
                "pid": pid,
                "tid": 1,
                "args": {**base, **(span.get("args") or {})},
            }
            if event["ph"] == "X":
                event["dur"] = float(span.get("dur_s", 0.0))
            self._record(event)

    # -- export ------------------------------------------------------------

    def chrome_trace(self, job: "str | None" = None) -> dict:
        """The recorded timeline as Chrome trace-event JSON.  With
        ``job``, only events carrying that ``job`` context attribute
        are exported (a shared daemon traces many jobs)."""
        with self._lock:
            events = list(self._events)
            workers = dict(self._workers)
        if job is not None:
            events = [
                e for e in events
                if (e.get("args") or {}).get("job") == job
            ]
        names = {os.getpid(): "repro coordinator"}
        names.update(
            {pid: f"repro worker {worker}"
             for worker, pid in workers.items()}
        )
        out: "list[dict]" = []
        for pid in sorted({e["pid"] for e in events}):
            out.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": names.get(pid, f"pid {pid}")},
            })
        for e in events:
            event = {
                "name": e["name"],
                "cat": "repro",
                "ph": e["ph"],
                "ts": round(e["ts"] * 1e6, 3),
                "pid": e["pid"],
                "tid": e["tid"],
                "args": e.get("args") or {},
            }
            if e["ph"] == "X":
                event["dur"] = round(max(0.0, e.get("dur", 0.0)) * 1e6, 3)
            out.append(event)
        return {"traceEvents": out, "displayTimeUnit": "ms"}


#: The process-wide tracer.
TRACER = Tracer()


def trace_span(name: str, **attrs):
    """``TRACER.span(...)`` -- the instrumentation entry point."""
    return TRACER.span(name, **attrs)


def trace_instant(name: str, **attrs) -> None:
    """``TRACER.instant(...)``."""
    TRACER.instant(name, **attrs)


# ---------------------------------------------------------------------------
# Worker-side shard capture (relative offsets only)
# ---------------------------------------------------------------------------

class ShardCapture:
    """Obs data recorded *inside* one shard execution.

    Counters are always collected (plain integer adds).  Spans are
    collected only when the shard was built with ``trace=True`` --
    every span is a ``(start, duration)`` pair **relative to the
    shard's own start**, so no wall-clock value ever leaves the worker
    process (the det-lint rule this design exists to honour)."""

    __slots__ = ("spans_enabled", "spans", "counters", "_t0")

    def __init__(self, spans_enabled: bool = False) -> None:
        self.spans_enabled = spans_enabled
        self.spans: "list[dict]" = []
        self.counters: "dict[str, int]" = {}
        self._t0 = time.perf_counter()

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    @contextlib.contextmanager
    def span(self, name: str, **args):
        start = time.perf_counter() - self._t0
        try:
            yield
        finally:
            self.spans.append({
                "name": name,
                "start_s": start,
                "dur_s": (time.perf_counter() - self._t0) - start,
                "args": args,
            })

    def instant(self, name: str, **args) -> None:
        self.spans.append({
            "name": name,
            "ph": "i",
            "start_s": time.perf_counter() - self._t0,
            "args": args,
        })

    def payload(self) -> dict:
        """The JSON-safe dict carried home inside the shard result."""
        return {
            "elapsed_s": time.perf_counter() - self._t0,
            "spans": self.spans,
            "counters": dict(self.counters),
        }


_shard_local = threading.local()


@contextlib.contextmanager
def shard_capture(spans_enabled: bool = False):
    """Install a :class:`ShardCapture` as this thread's active capture
    for the duration of one shard execution."""
    capture = ShardCapture(spans_enabled)
    _shard_local.capture = capture
    try:
        yield capture
    finally:
        _shard_local.capture = None


def active_capture() -> "ShardCapture | None":
    return getattr(_shard_local, "capture", None)


def shard_count(name: str, value: int = 1) -> None:
    """Bump a counter on the active capture (no-op outside a shard)."""
    capture = active_capture()
    if capture is not None:
        capture.count(name, value)


def shard_span(name: str, **args):
    """A relative-offset span on the active capture; the shared
    ``nullcontext`` when capture is absent or spans are disabled."""
    capture = active_capture()
    if capture is None or not capture.spans_enabled:
        return _NULL
    return capture.span(name, **args)


def shard_instant(name: str, **args) -> None:
    """A relative-offset instant on the active capture (no-op unless
    spans are enabled)."""
    capture = active_capture()
    if capture is not None and capture.spans_enabled:
        capture.instant(name, **args)


# ---------------------------------------------------------------------------
# Validation (tests + the CI obs job)
# ---------------------------------------------------------------------------

_VALID_PHASES = {"X", "B", "E", "i", "I", "M"}


def validate_chrome_trace(payload) -> "list[str]":
    """Schema-check a Chrome trace JSON payload.  Returns the list of
    problems (empty == valid): well-formed events, known phases,
    numeric timestamps, non-negative ``X`` durations, and balanced
    ``B``/``E`` pairs per ``(pid, tid)`` track."""
    problems: "list[str]" = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    open_stacks: "dict[tuple, int]" = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"event {i}: missing name")
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"event {i}: non-numeric ts")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: X event with bad dur "
                                f"{dur!r}")
        track = (event.get("pid"), event.get("tid"))
        if ph == "B":
            open_stacks[track] = open_stacks.get(track, 0) + 1
        elif ph == "E":
            depth = open_stacks.get(track, 0)
            if depth <= 0:
                problems.append(f"event {i}: E without matching B on "
                                f"track {track}")
            else:
                open_stacks[track] = depth - 1
    for track, depth in sorted(open_stacks.items(), key=repr):
        if depth:
            problems.append(f"track {track}: {depth} unclosed B "
                            "event(s)")
    return problems


# ---------------------------------------------------------------------------
# Guarded future-completion stamps (scheduler drain-loop fix)
# ---------------------------------------------------------------------------

class CompletionStamps:
    """Future-completion timestamps with a close() guard.

    ``run_benchmark_suite`` stamps each future's completion time from
    an ``add_done_callback`` -- which the executor may fire *after*
    the drain loop has exited (cancellation during teardown, a result
    landing while the suite unwinds an exception).  The previous bare
    ``dict.setdefault`` kept accepting those late stamps forever,
    leaking entries on an object the loop no longer reads.  This class
    makes the hand-off explicit: once :meth:`close` runs, late
    callbacks become no-ops and the map is emptied."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stamps: "dict[object, float]" = {}
        self._closed = False

    def stamp(self, key) -> bool:
        """Record ``key``'s completion time (first stamp wins, like
        ``setdefault``).  Returns ``False`` -- recording nothing --
        once closed."""
        now = time.perf_counter()
        with self._lock:
            if self._closed:
                return False
            self._stamps.setdefault(key, now)
            return True

    def pop(self, key) -> "float | None":
        with self._lock:
            return self._stamps.pop(key, None)

    def close(self) -> None:
        """Reject all future stamps and drop any unread ones."""
        with self._lock:
            self._closed = True
            self._stamps.clear()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._stamps)
