"""Observability: span tracing + metrics for the whole harness.

The paper's methodology embeds timing monitors *inside* a design to
observe its behaviour at speed; this package applies the same idea to
the harness itself (see ``docs/observability.md``):

* :mod:`repro.obs.tracer` -- a span-based tracer instrumenting every
  layer (flow, campaign preparation, golden simulation, scheduler
  streaming, shard execution, cache, fleet dispatch, batched-sweep
  fork/early-kill/re-join), exportable as Chrome/Perfetto
  ``trace.json`` via ``repro trace``;
* :mod:`repro.obs.metrics` -- a process-local counters / gauges /
  histograms registry served as Prometheus text on ``GET /metrics``
  and summarised by ``repro top`` / ``repro status --server``;
* :mod:`repro.obs.clock` -- the single sanctioned wall-clock read for
  storage metadata (the determinism linter's ``wall-clock-boundary``).

Everything is ``compare=False`` runtime metadata: enabling tracing or
metrics never changes a :class:`~repro.mutation.MutationReport` field
(gated by ``benchmarks/bench_obs.py``).
"""

from .clock import metadata_wall_clock
from .metrics import REGISTRY, MetricsRegistry, absorb_shard_counters
from .tracer import (
    TRACER,
    CompletionStamps,
    ShardCapture,
    Tracer,
    active_capture,
    shard_capture,
    shard_count,
    shard_instant,
    shard_span,
    trace_instant,
    trace_span,
    validate_chrome_trace,
)

__all__ = [
    "REGISTRY",
    "TRACER",
    "CompletionStamps",
    "MetricsRegistry",
    "ShardCapture",
    "Tracer",
    "absorb_shard_counters",
    "active_capture",
    "metadata_wall_clock",
    "shard_capture",
    "shard_count",
    "shard_instant",
    "shard_span",
    "trace_instant",
    "trace_span",
    "validate_chrome_trace",
]
