"""Next-state function extraction for synchronous processes.

For every register assigned by a synchronous process, this pass
derives a purely combinational expression for the value the register
takes at the next active clock edge (the classic mux-tree construction
a synthesis front-end performs).

Both the synthesis/STA substrate (register-to-register paths are paths
through next-state expressions) and the Razor insertion transform
(which needs the D input of a monitored flip-flop as an explicit
signal) are built on this.
"""

from __future__ import annotations

from .ir import (
    Assign,
    Case,
    Const,
    Expr,
    If,
    Module,
    Mux,
    Signal,
    SliceAssign,
    Stmt,
    SyncProcess,
    written_signals,
)

__all__ = ["next_state_exprs", "module_next_state", "drop_assignments_to"]


def next_state_exprs(proc: SyncProcess) -> "dict[Signal, Expr]":
    """Map each register assigned by ``proc`` to its next-state
    expression (reset behaviour excluded: the D input of the physical
    flip-flop is the synchronous data path only)."""
    targets = written_signals(proc.stmts)
    return {
        sig: _walk(proc.stmts, sig, default=sig) for sig in targets
    }


def _walk(stmts: "list[Stmt]", target: Signal, default: Expr) -> Expr:
    """Fold a statement list into the value ``target`` ends up with,
    given it enters the list holding ``default``."""
    result = default
    for stmt in stmts:
        if isinstance(stmt, Assign) and stmt.target is target:
            result = stmt.expr
        elif isinstance(stmt, SliceAssign) and stmt.target is target:
            result = _splice(result, stmt.hi, stmt.lo, stmt.expr)
        elif isinstance(stmt, If):
            then_val = _walk(stmt.then, target, result)
            else_val = _walk(stmt.orelse, target, result)
            if then_val is not result or else_val is not result:
                result = Mux(stmt.cond, then_val, else_val)
        elif isinstance(stmt, Case):
            result = _walk_case(stmt, target, result)
    return result


def _walk_case(stmt: Case, target: Signal, incoming: Expr) -> Expr:
    default_val = _walk(stmt.default, target, incoming)
    result = default_val
    # Build the selector mux chain from the last label backwards so the
    # first matching label wins (matching interpreter semantics).
    for label, body in reversed(stmt.cases):
        branch_val = _walk(body, target, incoming)
        cond = stmt.sel.eq(Const(label, stmt.sel.width))
        result = Mux(cond, branch_val, result)
    return result


def _splice(base: Expr, hi: int, lo: int, part: Expr) -> Expr:
    """Expression for ``base`` with bits hi..lo replaced by ``part``."""
    from .ir import Concat, Slice

    pieces: list[Expr] = []
    if hi < base.width - 1:
        pieces.append(Slice(base, base.width - 1, hi + 1))
    pieces.append(part)
    if lo > 0:
        pieces.append(Slice(base, lo - 1, 0))
    return pieces[0] if len(pieces) == 1 else Concat(*pieces)


def module_next_state(module: Module) -> "dict[Signal, tuple[SyncProcess, Expr]]":
    """Next-state expressions for every register in the module tree,
    keyed by register signal, valued ``(owning_process, expr)``."""
    out: dict[Signal, tuple[SyncProcess, Expr]] = {}
    for _, proc in module.all_processes():
        if not isinstance(proc, SyncProcess):
            continue
        for sig, expr in next_state_exprs(proc).items():
            out[sig] = (proc, expr)
    return out


def drop_assignments_to(stmts: "list[Stmt]", target: Signal) -> "list[Stmt]":
    """A copy of ``stmts`` with every assignment to ``target`` removed
    (used when a register's D input is re-routed through an explicit
    next-state signal during sensor insertion)."""
    out: list[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, (Assign, SliceAssign)) and stmt.target is target:
            continue
        if isinstance(stmt, If):
            new = If(
                stmt.cond,
                drop_assignments_to(stmt.then, target),
                drop_assignments_to(stmt.orelse, target),
            )
            if new.then or new.orelse:
                out.append(new)
            continue
        if isinstance(stmt, Case):
            new_cases = [
                (label, drop_assignments_to(body, target))
                for label, body in stmt.cases
            ]
            new_default = drop_assignments_to(stmt.default, target)
            if any(body for _, body in new_cases) or new_default:
                out.append(Case(stmt.sel, new_cases, new_default))
            continue
        out.append(stmt)
    return out
