"""Event-driven RTL simulation kernel with delta cycles.

The kernel reproduces the HDL scheduler of the paper's Fig. 6.a:

1. at a clock edge, all synchronous processes sensitive to that edge
   run, reading pre-edge values; their writes are non-blocking;
2. committed writes that change a signal wake the combinational
   processes sensitive to it -- a *delta cycle*;
3. delta cycles repeat until no further event, then simulated time
   advances to the next scheduled event.

Time is in integer picoseconds.  Signals may carry a *transport
delay*: a write commits ``nominal_delay + injected_delay`` ps after
the process that produced it.  This models back-annotated path delays
(from STA) and RTL fault injection via delayed assignments (VHDL
``after``), which Section 8.5 of the paper uses to cross-validate the
TLM mutation results.

Any number of clocks is supported; the Counter-based sensor adds a
high-frequency clock whose period divides the main period.

Execution modes
---------------

``exec_mode="compiled"`` (the default) lowers every ``SyncProcess`` /
``CombProcess`` to a specialised Python closure at elaboration time
(:mod:`repro.rtl.compile`), eliminating the per-activation ``EvalEnv``
construction and recursive ``eval_expr`` dispatch of the interpreter.
``exec_mode="interpreted"`` keeps the accuracy-first IR walker of
:mod:`repro.rtl.eval` -- the semantic reference the compiled mode is
lockstep-tested against, and the mode to force when debugging a
suspected miscompile.  Native (Python-behaviour) processes run the
same way in both modes.

The scheduler itself is compiled too: at elaboration every signal and
array gets a precomputed *wake mask* (one bit per sensitive process),
so a delta cycle ORs a few ints and walks set bits instead of
allocating a seen-set and a woken-list per delta.
"""

from __future__ import annotations

import heapq

from .compile import compile_process
from .eval import EvalEnv, exec_stmts
from .ir import (
    Array,
    CombProcess,
    Module,
    NativeProcess,
    Process,
    Signal,
    SyncProcess,
    process_reads,
)
from .types import LV, ONEBIT

__all__ = ["Simulation", "SimulationError", "DeltaOverflowError", "NativeCtx"]

#: Safety bound on delta cycles within one time point.
MAX_DELTA_CYCLES = 1000

#: Shared empty result for commit calls with nothing pending (callers
#: only read it or ``|=`` it into a mutable set).
_EMPTY_SET: frozenset = frozenset()


class SimulationError(RuntimeError):
    """Raised on kernel-level failures (oscillation, bad configuration)."""


class DeltaOverflowError(SimulationError):
    """Raised when a combinational loop never settles."""


class NativeCtx:
    """Execution context handed to :class:`NativeProcess` callables."""

    __slots__ = ("_sim", "state", "now")

    def __init__(self, sim: "Simulation", state: dict, now: int) -> None:
        self._sim = sim
        self.state = state
        self.now = now

    def read(self, sig: Signal) -> LV:
        """Current value of a signal (pre-commit view)."""
        return self._sim._values[sig]

    def write(self, sig: Signal, value: "LV | int") -> None:
        """Non-blocking write, committed with the surrounding delta."""
        if isinstance(value, int):
            value = LV.from_int(sig.width, value)
        self._sim._pending_native[sig] = value


class _Clock:
    """Book-keeping for one clock: value, period and next toggle time.
    ``rise_runners``/``fall_runners`` are filled at elaboration with
    the pre-bound activation closures of the synchronous processes on
    each edge."""

    __slots__ = (
        "signal", "period", "half", "next_toggle", "value",
        "rise_runners", "fall_runners",
    )

    def __init__(self, signal: Signal, period: int, first_rise: int) -> None:
        if period % 2:
            raise SimulationError(f"clock period must be even, got {period}")
        self.signal = signal
        self.period = period
        self.half = period // 2
        self.next_toggle = first_rise
        self.value = 0
        self.rise_runners: tuple = ()
        self.fall_runners: tuple = ()


class Simulation:
    """Event-driven simulator for an elaborated :class:`Module` tree.

    Parameters
    ----------
    top:
        The design to simulate (children are discovered automatically).
    clocks:
        Mapping of clock signals to periods in ps.  The first entry is
        the *main* clock that defines :meth:`cycle` boundaries.
    exec_mode:
        ``"compiled"`` (default) runs IR processes through closures
        generated once at elaboration; ``"interpreted"`` runs them
        through the reference IR walker of :mod:`repro.rtl.eval`.
    """

    def __init__(
        self,
        top: Module,
        clocks: "dict[Signal, int]",
        *,
        init_unknown: bool = False,
        input_launch_at_edge: bool = False,
        exec_mode: str = "compiled",
    ) -> None:
        if not clocks:
            raise SimulationError("at least one clock is required")
        if exec_mode not in ("compiled", "interpreted"):
            raise SimulationError(
                f"exec_mode must be 'compiled' or 'interpreted', "
                f"got {exec_mode!r}"
            )
        self.top = top
        self.exec_mode = exec_mode
        self.time = 0
        self._seq = 0
        #: When True, ``cycle()`` inputs take effect 1 ps after the next
        #: rising edge -- modelling inputs driven by upstream registers,
        #: which is required for designs carrying back-annotated path
        #: delays (an input changing just before the edge could never
        #: traverse a near-critical path in time, so testbench pokes
        #: must be launch-edge aligned there).
        self.input_launch_at_edge = input_launch_at_edge

        clock_items = list(clocks.items())
        self.main_clock = clock_items[0][0]
        self.main_period = clock_items[0][1]
        self._clocks: dict[Signal, _Clock] = {}
        for sig, period in clock_items:
            sig.is_clock = True
            # First rising edge lands one full period after t=0 so the
            # testbench can poke inputs at t=0 before any edge.
            self._clocks[sig] = _Clock(sig, period, first_rise=period)

        # -- value stores ------------------------------------------------
        self._values: dict[Signal, LV] = {}
        self._arrays: dict[Array, list[LV]] = {}
        for sig in top.all_signals():
            if init_unknown and sig.direction != "in" and not sig.is_clock:
                self._values[sig] = LV.all_x(sig.width)
            else:
                self._values[sig] = sig.init_lv
        for clk in self._clocks.values():
            self._values[clk.signal] = LV.from_int(1, 0)
        for arr in top.all_arrays():
            self._arrays[arr] = [LV.from_int(arr.width, w) for w in arr.init]

        # -- process maps -------------------------------------------------
        self._sync_map: dict[tuple[int, str], list[Process]] = {}
        self._sens_map: dict[Signal, list[Process]] = {}
        self._native_state: dict[int, dict] = {}
        self._comb_procs: list[Process] = []
        self._compiled: dict[int, object] = {}
        for _, proc in top.all_processes():
            self._register_process(proc)
            if exec_mode == "compiled" and isinstance(
                proc, (SyncProcess, CombProcess)
            ):
                self._compiled[id(proc)] = compile_process(proc)

        # -- scheduling --------------------------------------------------
        self._pending_nba: dict[Signal, LV] = {}
        self._pending_native: dict[Signal, LV] = {}
        self._pending_arrays: list[tuple] = []
        self._delayed: list[tuple[int, int, Signal, LV]] = []
        self._nominal_delay: dict[Signal, int] = {}
        self._injected_delay: dict[Signal, int] = {}
        self._delays_active = False
        #: Read-through cell for the compiled strict-commit flag
        #: (single mutable slot shared by every runner closure).
        self._strict_cell: list = [False]

        # -- instrumentation -----------------------------------------------
        self.stats = {
            "process_activations": 0,
            "delta_cycles": 0,
            "events": 0,
            "cycles": 0,
        }
        self._watchers: list = []

        self._finalize_scheduling()

        # VHDL semantics: every process executes once at time zero
        # (combinational processes with constant drivers would otherwise
        # never run -- they have empty sensitivity lists).
        self.stats["process_activations"] += len(self._comb_procs)
        for proc in self._comb_procs:
            self._run_process(proc, set())
        initial_changes = self._commit_pending()
        self._settle_deltas(
            set(self._values) | set(self._arrays) | initial_changes
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def _register_process(self, proc: Process) -> None:
        if isinstance(proc, SyncProcess):
            key = (id(proc.clock), proc.edge)
            self._sync_map.setdefault(key, []).append(proc)
            if proc.reset is not None:
                # Asynchronous reset: also sensitive to the reset signal.
                self._sens_map.setdefault(proc.reset, []).append(proc)
        elif isinstance(proc, CombProcess):
            sens = proc.sensitivity or sorted(
                process_reads(proc), key=lambda s: s.name
            )
            for sig in sens:
                self._sens_map.setdefault(sig, []).append(proc)
            # Array reads make the process sensitive to array writes
            # (HDL array-typed signals generate events on update).
            from .ir import stmt_read_arrays

            for arr in stmt_read_arrays(proc.stmts):
                self._sens_map.setdefault(arr, []).append(proc)
            self._comb_procs.append(proc)
        elif isinstance(proc, NativeProcess):
            self._native_state[id(proc)] = {}
            if proc.kind == "sync":
                key = (id(proc.clock), proc.edge)
                self._sync_map.setdefault(key, []).append(proc)
            else:
                for sig in proc.sensitivity:
                    self._sens_map.setdefault(sig, []).append(proc)
                self._comb_procs.append(proc)
        else:
            raise TypeError(f"unknown process type {type(proc)!r}")

    def _make_runner(self, proc: Process):
        """One pre-bound activation closure per process: the per-call
        plan lookup, isinstance dispatch and store attribute loads are
        resolved once at elaboration.  ``self._strict_cell`` is read
        through on every compiled activation, so flipping transport
        delays on or off never rebuilds runners."""
        plan = self._compiled.get(id(proc))
        if plan is not None:
            R, A = self._values, self._arrays
            W, AW = self._pending_nba, self._pending_arrays
            cell = self._strict_cell
            body = plan.body
            if plan.reset is None:
                def runner(changed) -> None:
                    body(R, A, W, AW, cell[0])
                return runner
            reset_body = plan.reset_body
            return self._gated_runner(
                plan.reset, plan.reset_level,
                lambda: body(R, A, W, AW, cell[0]),
                lambda: reset_body(R, A, W, AW, cell[0]),
            )
        if isinstance(proc, NativeProcess):
            def native_runner(changed, _proc=proc) -> None:
                ctx = NativeCtx(
                    self, self._native_state[id(_proc)], self.time
                )
                _proc.fn(ctx)
            return native_runner
        if isinstance(proc, SyncProcess) and proc.reset is not None:
            return self._gated_runner(
                proc.reset, proc.reset_level,
                lambda: self._exec_stmts_interpreted(proc.stmts),
                lambda: self._exec_stmts_interpreted(proc.reset_stmts),
            )

        def interp_runner(changed, _proc=proc) -> None:
            self._exec_stmts_interpreted(_proc.stmts)
        return interp_runner

    def _gated_runner(self, reset_sig, level, body, reset_body):
        """The single home of the asynchronous-reset gating semantics,
        shared by both execution modes: active reset runs the reset
        statements; a wake caused only by reset release (no clock
        edge) does nothing; otherwise the synchronous body runs."""
        R = self._values

        def runner(changed) -> None:
            rst = R[reset_sig]
            if not rst.unk and rst.value == level:
                reset_body()
                return
            if reset_sig in changed:
                return
            body()
        return runner

    def _finalize_scheduling(self) -> None:
        """Freeze the registration maps into the hot-path structures:
        per-process runner closures, edge-runner tuples, and a wake
        *bitmask* per signal/array (one bit per sensitive process, in
        first-registration order) so a delta cycle ORs a few ints and
        walks set bits -- no per-delta seen-set or woken-list."""
        runner_of: dict[int, object] = {}

        def runner(proc: Process):
            r = runner_of.get(id(proc))
            if r is None:
                r = self._make_runner(proc)
                runner_of[id(proc)] = r
            return r

        for procs in self._sync_map.values():
            for proc in procs:
                runner(proc)
        for proc in self._comb_procs:
            runner(proc)

        self._sync_runners: dict = {
            key: tuple(runner(p) for p in procs)
            for key, procs in self._sync_map.items()
        }
        for clk in self._clocks.values():
            clk.rise_runners = self._sync_runners.get(
                (id(clk.signal), "rise"), ()
            )
            clk.fall_runners = self._sync_runners.get(
                (id(clk.signal), "fall"), ()
            )
        proc_bit: dict[int, int] = {}
        wake_runners: list = []
        self._wake_mask: dict = {}
        for key, procs in self._sens_map.items():
            mask = 0
            for proc in procs:
                bit = proc_bit.get(id(proc))
                if bit is None:
                    bit = 1 << len(wake_runners)
                    proc_bit[id(proc)] = bit
                    wake_runners.append(runner(proc))
                mask |= bit
            self._wake_mask[key] = mask
        self._wake_runners: tuple = tuple(wake_runners)
        self._runner_map: dict = runner_of
        self._clock_list: tuple = tuple(self._clocks.values())

    # ------------------------------------------------------------------
    # Delay configuration (STA back-annotation and fault injection)
    # ------------------------------------------------------------------

    def set_transport_delay(self, sig: Signal, delay_ps: int) -> None:
        """Back-annotate a nominal propagation delay on a signal's driver."""
        if delay_ps < 0:
            raise SimulationError("delay must be non-negative")
        self._nominal_delay[sig] = delay_ps
        self._set_delays_active(True)

    def inject_extra_delay(self, sig: Signal, delay_ps: int) -> None:
        """Add fault-injection delay on top of the nominal delay
        (the RTL equivalent of a delay mutant)."""
        if delay_ps < 0:
            raise SimulationError("delay must be non-negative")
        self._injected_delay[sig] = delay_ps
        self._set_delays_active(True)

    def clear_injection(self, sig: "Signal | None" = None) -> None:
        """Remove one or all injected delays."""
        if sig is None:
            self._injected_delay.clear()
        else:
            self._injected_delay.pop(sig, None)
        self._set_delays_active(
            bool(self._nominal_delay or self._injected_delay)
        )

    def _set_delays_active(self, active: bool) -> None:
        """Track whether any transport delay is configured; the shared
        strict cell switches compiled commits between the
        skip-unchanged fast path and interpreter-exact strict
        scheduling without rebuilding any runner."""
        self._delays_active = active
        self._strict_cell[0] = active

    def _total_delay(self, sig: Signal) -> int:
        return self._nominal_delay.get(sig, 0) + self._injected_delay.get(sig, 0)

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------

    def peek(self, sig: Signal) -> LV:
        """Current value of a signal."""
        return self._values[sig]

    def peek_int(self, sig: Signal, default: int = 0) -> int:
        """Current value as an int with unknowns folded to ``default``."""
        return self._values[sig].to_int_or(default)

    def peek_array(self, arr: Array) -> "tuple[LV, ...]":
        """Snapshot of an array's words (immutable; use
        :meth:`peek_array_word` inside monitor loops to avoid the
        whole-array copy per call)."""
        return tuple(self._arrays[arr])

    def peek_array_word(self, arr: Array, index: int) -> LV:
        """Current value of one array word (no copy)."""
        return self._arrays[arr][index]

    def poke(self, sig: Signal, value: "LV | int") -> None:
        """Drive a primary input immediately and settle delta cycles."""
        if sig.direction != "in":
            raise SimulationError(
                f"poke is only allowed on input ports, not {sig.name!r}"
            )
        if isinstance(value, int):
            value = LV.from_int(sig.width, value)
        if value.width != sig.width:
            raise SimulationError(
                f"poke width mismatch on {sig.name}: {value.width} != {sig.width}"
            )
        if self._values[sig] != value:
            self._values[sig] = value
            self._settle_deltas({sig})

    def force(self, sig: Signal, value: "LV | int") -> None:
        """Set any signal's value directly (simulator-command style fault
        injection; bypasses drivers for one delta)."""
        if isinstance(value, int):
            value = LV.from_int(sig.width, value)
        if value.width != sig.width:
            raise SimulationError(
                f"force width mismatch on {sig.name}: "
                f"{value.width} != {sig.width}"
            )
        if self._values[sig] != value:
            self._values[sig] = value
            self._settle_deltas({sig})

    def watch(self, callback) -> None:
        """Register ``callback(sim, time)`` invoked after each fully
        settled time point (used by the waveform recorder)."""
        self._watchers.append(callback)

    def unwatch(self, callback) -> None:
        """Remove a callback registered with :meth:`watch`; a no-op if
        it was never registered (or already removed)."""
        try:
            self._watchers.remove(callback)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Core engine
    # ------------------------------------------------------------------

    def _run_process(self, proc: Process, changed: "set[Signal]") -> None:
        """Execute one process activation, buffering its writes.
        Delegates to the pre-bound runner (the single home of the
        compiled-plan / reset-gating logic).  ``process_activations``
        is counted in bulk by the schedulers that decide to activate,
        not here."""
        self._runner_map[id(proc)](changed)

    def _exec_stmts_interpreted(self, stmts) -> None:
        """Reference execution of one statement list through the IR
        walker of :mod:`repro.rtl.eval`, flushing the collected writes
        into the kernel's non-blocking buffers."""
        env = EvalEnv(
            read=self._values.__getitem__,
            read_array=self._arrays.__getitem__,
        )
        exec_stmts(stmts, env)
        for sig, value in env.sig_writes.items():
            self._pending_nba[sig] = value
        self._pending_arrays.extend(env.array_writes)

    def _commit_pending(self) -> "set[Signal]":
        """Commit buffered writes; returns the set of changed signals.
        Writes to signals with a configured transport delay are moved
        to the delayed-event heap instead."""
        if not (
            self._pending_nba or self._pending_native
            or self._pending_arrays
        ):
            return _EMPTY_SET
        changed: set[Signal] = set()
        values = self._values
        delays = self._delays_active
        for store in (self._pending_nba, self._pending_native):
            if not store:
                continue
            if delays:
                for sig, value in store.items():
                    delay = self._total_delay(sig)
                    if delay:
                        self._seq += 1
                        heapq.heappush(
                            self._delayed,
                            (self.time + delay, self._seq, sig, value),
                        )
                        continue
                    cur = values[sig]
                    if (
                        cur is not value
                        and (cur.value != value.value
                             or cur.unk != value.unk)
                    ):
                        values[sig] = value
                        changed.add(sig)
            else:
                # Inline plane comparison: widths are equal by
                # construction, so "did it change" is two int compares
                # (or one identity hit for interned 1-bit values).
                for sig, value in store.items():
                    cur = values[sig]
                    if cur is not value and (
                        cur.value != value.value or cur.unk != value.unk
                    ):
                        values[sig] = value
                        changed.add(sig)
            store.clear()
        if self._pending_arrays:
            arrays = self._arrays
            for arr, index, value in self._pending_arrays:
                if not index.unk and index.value < arr.depth:
                    words = arrays[arr]
                    if words[index.value] != value:
                        words[index.value] = value
                        changed.add(arr)
            self._pending_arrays.clear()
        self.stats["events"] += len(changed)
        return changed

    def _settle_deltas(self, changed: "set[Signal]") -> None:
        """Run combinational processes to a fixpoint (delta cycles).

        Wake-up is mask-based: each changed signal/array contributes a
        precomputed bitmask of sensitive processes, so one delta costs
        a few int ORs plus a set-bit walk -- no per-delta seen-set or
        woken-list allocation."""
        wake_of = self._wake_mask.get
        runners = self._wake_runners
        stats = self.stats
        commit = self._commit_pending
        for _ in range(MAX_DELTA_CYCLES):
            if not changed:
                return
            mask = 0
            for sig in changed:
                bits = wake_of(sig)
                if bits:
                    mask |= bits
            if not mask:
                return
            stats["delta_cycles"] += 1
            stats["process_activations"] += mask.bit_count()
            while mask:
                low = mask & -mask
                mask ^= low
                runners[low.bit_length() - 1](changed)
            changed = commit()
        raise DeltaOverflowError(
            f"combinational logic did not settle at t={self.time} ps"
        )

    def _apply_delayed_at(self, t: int) -> "set[Signal]":
        """Pop and apply delayed commits scheduled exactly at ``t``."""
        changed: set[Signal] = set()
        while self._delayed and self._delayed[0][0] == t:
            _, _, sig, value = heapq.heappop(self._delayed)
            if self._values[sig] != value:
                self._values[sig] = value
                changed.add(sig)
        self.stats["events"] += len(changed)
        return changed

    def _process_time_point(self, t: int) -> None:
        """One full simulation cycle at absolute time ``t``:
        delayed commits first, then clock toggles, then delta loop."""
        self.time = t

        changed = self._apply_delayed_at(t)
        edge_runners: tuple = ()

        for clk in self._clock_list:
            if clk.next_toggle == t:
                clk.value ^= 1
                # ONEBIT[(v << 1)]: interned 1-bit values, no per-edge
                # allocation for clock toggles.
                self._values[clk.signal] = ONEBIT[clk.value << 1]
                changed.add(clk.signal)
                runners = (
                    clk.rise_runners if clk.value else clk.fall_runners
                )
                if runners:
                    edge_runners = (
                        runners if not edge_runners
                        else edge_runners + runners
                    )
                clk.next_toggle = t + clk.half

        if edge_runners:
            self.stats["process_activations"] += len(edge_runners)
            for runner in edge_runners:
                runner(changed)
            changed |= self._commit_pending()

        self._settle_deltas(changed)
        for callback in self._watchers:
            callback(self, t)

    def _next_event_time(self) -> "int | None":
        t = None
        for clk in self._clock_list:
            nt = clk.next_toggle
            if t is None or nt < t:
                t = nt
        if self._delayed:
            dt = self._delayed[0][0]
            if t is None or dt < t:
                t = dt
        return t

    def run_until(self, t_stop: int) -> None:
        """Process every event with time <= ``t_stop``."""
        while True:
            t = self._next_event_time()
            if t is None or t > t_stop:
                break
            self._process_time_point(t)
        self.time = max(self.time, t_stop)

    # ------------------------------------------------------------------
    # Cycle-level testbench interface
    # ------------------------------------------------------------------

    def next_rising_edge(self) -> int:
        """Absolute time of the next rising edge of the main clock."""
        clk = self._clocks[self.main_clock]
        return clk.next_toggle if clk.value == 0 else clk.next_toggle + clk.half

    def cycle(self, inputs: "dict[Signal, int | LV] | None" = None) -> None:
        """Apply ``inputs`` now, then advance one full main-clock cycle
        (through the next rising and falling edges).

        After the call, outputs reflect the clock edge that consumed
        the supplied inputs -- the same contract as one TLM
        ``b_transport`` transaction in the abstracted model.  (With
        ``input_launch_at_edge`` the inputs are instead launched just
        after this cycle's rising edge and are consumed by the *next*
        edge, as data from an upstream register would be.)
        """
        t_rise = self.next_rising_edge()
        # Align the poke instant with steady state: inputs always apply
        # just before the consuming edge (the first call would otherwise
        # poke a full period early, letting delayed comb commits from
        # back-annotated paths land one cycle ahead).
        if self.time < t_rise - 1:
            self.run_until(t_rise - 1)
        if inputs:
            if self.input_launch_at_edge:
                for sig, value in inputs.items():
                    if isinstance(value, int):
                        value = LV.from_int(sig.width, value)
                    self._seq += 1
                    heapq.heappush(
                        self._delayed, (t_rise + 1, self._seq, sig, value)
                    )
            else:
                for sig, value in inputs.items():
                    self.poke(sig, value)
        self.run_until(t_rise + self.main_period - 1)
        self.stats["cycles"] += 1

    def run_cycles(self, n: int, each=None) -> None:
        """Run ``n`` cycles; ``each(sim, i)`` may poke inputs per cycle."""
        for i in range(n):
            if each is not None:
                each(self, i)
            self.cycle()

    # ------------------------------------------------------------------
    # State snapshot / restore (batched mutant sweeps)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Cheap copy of the committed simulation state.

        Captures only the *data planes* -- signal values, array words,
        clock phases, time, pending/delayed write buffers and native
        process state -- never the elaborated structures (runner
        closures, wake masks, sensitivity maps), which are immutable
        after construction and shared by every fork.  ``LV`` values are
        immutable, so the planes shallow-copy.

        The returned dict feeds :meth:`restore_state` on *this*
        simulation; the pair is what lets a batched mutant sweep
        (:mod:`repro.mutation.batched`) rewind one kernel to a cycle
        boundary instead of re-simulating from reset.
        """
        return {
            "time": self.time,
            "seq": self._seq,
            "values": dict(self._values),
            "arrays": {arr: list(words) for arr, words in self._arrays.items()},
            "clocks": [
                (clk.next_toggle, clk.value) for clk in self._clock_list
            ],
            "pending_nba": dict(self._pending_nba),
            "pending_native": dict(self._pending_native),
            "pending_arrays": list(self._pending_arrays),
            "delayed": list(self._delayed),
            "native_state": {
                key: dict(state)
                for key, state in self._native_state.items()
            },
            "cycles": self.stats["cycles"],
        }

    def restore_state(self, snapshot: dict) -> None:
        """Rewind this simulation to a :meth:`snapshot_state` capture.

        The value stores are mutated *in place* (``clear`` +
        ``update``): every compiled runner closure binds the
        ``_values`` / ``_arrays`` / pending containers by identity at
        elaboration, so rebinding the attributes would silently
        disconnect the runners from the restored state.
        """
        self.time = snapshot["time"]
        self._seq = snapshot["seq"]
        self._values.clear()
        self._values.update(snapshot["values"])
        for arr, words in snapshot["arrays"].items():
            self._arrays[arr][:] = words
        for clk, (next_toggle, value) in zip(
            self._clock_list, snapshot["clocks"]
        ):
            clk.next_toggle = next_toggle
            clk.value = value
        self._pending_nba.clear()
        self._pending_nba.update(snapshot["pending_nba"])
        self._pending_native.clear()
        self._pending_native.update(snapshot["pending_native"])
        self._pending_arrays[:] = snapshot["pending_arrays"]
        self._delayed[:] = snapshot["delayed"]
        for key, state in snapshot["native_state"].items():
            store = self._native_state[key]
            store.clear()
            store.update(state)
        self.stats["cycles"] = snapshot["cycles"]
