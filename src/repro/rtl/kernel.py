"""Event-driven RTL simulation kernel with delta cycles.

The kernel reproduces the HDL scheduler of the paper's Fig. 6.a:

1. at a clock edge, all synchronous processes sensitive to that edge
   run, reading pre-edge values; their writes are non-blocking;
2. committed writes that change a signal wake the combinational
   processes sensitive to it -- a *delta cycle*;
3. delta cycles repeat until no further event, then simulated time
   advances to the next scheduled event.

Time is in integer picoseconds.  Signals may carry a *transport
delay*: a write commits ``nominal_delay + injected_delay`` ps after
the process that produced it.  This models back-annotated path delays
(from STA) and RTL fault injection via delayed assignments (VHDL
``after``), which Section 8.5 of the paper uses to cross-validate the
TLM mutation results.

Any number of clocks is supported; the Counter-based sensor adds a
high-frequency clock whose period divides the main period.
"""

from __future__ import annotations

import heapq

from .eval import EvalEnv, exec_stmts
from .ir import (
    Array,
    CombProcess,
    Module,
    NativeProcess,
    Process,
    Signal,
    SyncProcess,
    process_reads,
)
from .types import LV

__all__ = ["Simulation", "SimulationError", "DeltaOverflowError", "NativeCtx"]

#: Safety bound on delta cycles within one time point.
MAX_DELTA_CYCLES = 1000


class SimulationError(RuntimeError):
    """Raised on kernel-level failures (oscillation, bad configuration)."""


class DeltaOverflowError(SimulationError):
    """Raised when a combinational loop never settles."""


class NativeCtx:
    """Execution context handed to :class:`NativeProcess` callables."""

    __slots__ = ("_sim", "state", "now")

    def __init__(self, sim: "Simulation", state: dict, now: int) -> None:
        self._sim = sim
        self.state = state
        self.now = now

    def read(self, sig: Signal) -> LV:
        """Current value of a signal (pre-commit view)."""
        return self._sim._values[sig]

    def write(self, sig: Signal, value: "LV | int") -> None:
        """Non-blocking write, committed with the surrounding delta."""
        if isinstance(value, int):
            value = LV.from_int(sig.width, value)
        self._sim._pending_native[sig] = value


class _Clock:
    """Book-keeping for one clock: value, period and next toggle time."""

    __slots__ = ("signal", "period", "half", "next_toggle", "value")

    def __init__(self, signal: Signal, period: int, first_rise: int) -> None:
        if period % 2:
            raise SimulationError(f"clock period must be even, got {period}")
        self.signal = signal
        self.period = period
        self.half = period // 2
        self.next_toggle = first_rise
        self.value = 0


class Simulation:
    """Event-driven simulator for an elaborated :class:`Module` tree.

    Parameters
    ----------
    top:
        The design to simulate (children are discovered automatically).
    clocks:
        Mapping of clock signals to periods in ps.  The first entry is
        the *main* clock that defines :meth:`cycle` boundaries.
    """

    def __init__(
        self,
        top: Module,
        clocks: "dict[Signal, int]",
        *,
        init_unknown: bool = False,
        input_launch_at_edge: bool = False,
    ) -> None:
        if not clocks:
            raise SimulationError("at least one clock is required")
        self.top = top
        self.time = 0
        self._seq = 0
        #: When True, ``cycle()`` inputs take effect 1 ps after the next
        #: rising edge -- modelling inputs driven by upstream registers,
        #: which is required for designs carrying back-annotated path
        #: delays (an input changing just before the edge could never
        #: traverse a near-critical path in time, so testbench pokes
        #: must be launch-edge aligned there).
        self.input_launch_at_edge = input_launch_at_edge

        clock_items = list(clocks.items())
        self.main_clock = clock_items[0][0]
        self.main_period = clock_items[0][1]
        self._clocks: dict[Signal, _Clock] = {}
        for sig, period in clock_items:
            sig.is_clock = True
            # First rising edge lands one full period after t=0 so the
            # testbench can poke inputs at t=0 before any edge.
            self._clocks[sig] = _Clock(sig, period, first_rise=period)

        # -- value stores ------------------------------------------------
        self._values: dict[Signal, LV] = {}
        self._arrays: dict[Array, list[LV]] = {}
        for sig in top.all_signals():
            if init_unknown and sig.direction != "in" and not sig.is_clock:
                self._values[sig] = LV.all_x(sig.width)
            else:
                self._values[sig] = sig.init_lv
        for clk in self._clocks.values():
            self._values[clk.signal] = LV.from_int(1, 0)
        for arr in top.all_arrays():
            self._arrays[arr] = [LV.from_int(arr.width, w) for w in arr.init]

        # -- process maps -------------------------------------------------
        self._sync_map: dict[tuple[int, str], list[Process]] = {}
        self._sens_map: dict[Signal, list[Process]] = {}
        self._native_state: dict[int, dict] = {}
        self._comb_procs: list[Process] = []
        for _, proc in top.all_processes():
            self._register_process(proc)

        # -- scheduling --------------------------------------------------
        self._pending_nba: dict[Signal, LV] = {}
        self._pending_native: dict[Signal, LV] = {}
        self._pending_arrays: list[tuple] = []
        self._delayed: list[tuple[int, int, Signal, LV]] = []
        self._nominal_delay: dict[Signal, int] = {}
        self._injected_delay: dict[Signal, int] = {}

        # -- instrumentation -----------------------------------------------
        self.stats = {
            "process_activations": 0,
            "delta_cycles": 0,
            "events": 0,
            "cycles": 0,
        }
        self._watchers: list = []

        # VHDL semantics: every process executes once at time zero
        # (combinational processes with constant drivers would otherwise
        # never run -- they have empty sensitivity lists).
        for proc in self._comb_procs:
            self._run_process(proc, set())
        initial_changes = self._commit_pending()
        self._settle_deltas(
            set(self._values) | set(self._arrays) | initial_changes
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def _register_process(self, proc: Process) -> None:
        if isinstance(proc, SyncProcess):
            key = (id(proc.clock), proc.edge)
            self._sync_map.setdefault(key, []).append(proc)
            if proc.reset is not None:
                # Asynchronous reset: also sensitive to the reset signal.
                self._sens_map.setdefault(proc.reset, []).append(proc)
        elif isinstance(proc, CombProcess):
            sens = proc.sensitivity or sorted(
                process_reads(proc), key=lambda s: s.name
            )
            for sig in sens:
                self._sens_map.setdefault(sig, []).append(proc)
            # Array reads make the process sensitive to array writes
            # (HDL array-typed signals generate events on update).
            from .ir import stmt_read_arrays

            for arr in stmt_read_arrays(proc.stmts):
                self._sens_map.setdefault(arr, []).append(proc)
            self._comb_procs.append(proc)
        elif isinstance(proc, NativeProcess):
            self._native_state[id(proc)] = {}
            if proc.kind == "sync":
                key = (id(proc.clock), proc.edge)
                self._sync_map.setdefault(key, []).append(proc)
            else:
                for sig in proc.sensitivity:
                    self._sens_map.setdefault(sig, []).append(proc)
                self._comb_procs.append(proc)
        else:
            raise TypeError(f"unknown process type {type(proc)!r}")

    # ------------------------------------------------------------------
    # Delay configuration (STA back-annotation and fault injection)
    # ------------------------------------------------------------------

    def set_transport_delay(self, sig: Signal, delay_ps: int) -> None:
        """Back-annotate a nominal propagation delay on a signal's driver."""
        if delay_ps < 0:
            raise SimulationError("delay must be non-negative")
        self._nominal_delay[sig] = delay_ps

    def inject_extra_delay(self, sig: Signal, delay_ps: int) -> None:
        """Add fault-injection delay on top of the nominal delay
        (the RTL equivalent of a delay mutant)."""
        if delay_ps < 0:
            raise SimulationError("delay must be non-negative")
        self._injected_delay[sig] = delay_ps

    def clear_injection(self, sig: "Signal | None" = None) -> None:
        """Remove one or all injected delays."""
        if sig is None:
            self._injected_delay.clear()
        else:
            self._injected_delay.pop(sig, None)

    def _total_delay(self, sig: Signal) -> int:
        return self._nominal_delay.get(sig, 0) + self._injected_delay.get(sig, 0)

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------

    def peek(self, sig: Signal) -> LV:
        """Current value of a signal."""
        return self._values[sig]

    def peek_int(self, sig: Signal, default: int = 0) -> int:
        """Current value as an int with unknowns folded to ``default``."""
        return self._values[sig].to_int_or(default)

    def peek_array(self, arr: Array) -> "list[LV]":
        return list(self._arrays[arr])

    def poke(self, sig: Signal, value: "LV | int") -> None:
        """Drive a primary input immediately and settle delta cycles."""
        if sig.direction != "in":
            raise SimulationError(
                f"poke is only allowed on input ports, not {sig.name!r}"
            )
        if isinstance(value, int):
            value = LV.from_int(sig.width, value)
        if value.width != sig.width:
            raise SimulationError(
                f"poke width mismatch on {sig.name}: {value.width} != {sig.width}"
            )
        if self._values[sig] != value:
            self._values[sig] = value
            self._settle_deltas({sig})

    def force(self, sig: Signal, value: "LV | int") -> None:
        """Set any signal's value directly (simulator-command style fault
        injection; bypasses drivers for one delta)."""
        if isinstance(value, int):
            value = LV.from_int(sig.width, value)
        if self._values[sig] != value:
            self._values[sig] = value
            self._settle_deltas({sig})

    def watch(self, callback) -> None:
        """Register ``callback(sim, time)`` invoked after each fully
        settled time point (used by the waveform recorder)."""
        self._watchers.append(callback)

    def unwatch(self, callback) -> None:
        """Remove a callback registered with :meth:`watch`; a no-op if
        it was never registered (or already removed)."""
        try:
            self._watchers.remove(callback)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Core engine
    # ------------------------------------------------------------------

    def _run_process(self, proc: Process, changed: "set[Signal]") -> None:
        """Execute one process activation, buffering its writes."""
        self.stats["process_activations"] += 1
        if isinstance(proc, NativeProcess):
            ctx = NativeCtx(self, self._native_state[id(proc)], self.time)
            proc.fn(ctx)
            return
        env = EvalEnv(
            read=self._values.__getitem__,
            read_array=self._arrays.__getitem__,
        )
        if isinstance(proc, SyncProcess):
            if proc.reset is not None:
                rst = self._values[proc.reset]
                active = (
                    not rst.unk and rst.value == proc.reset_level
                )
                if active:
                    exec_stmts(proc.reset_stmts, env)
                elif proc.reset in changed:
                    # Woken only by reset release: no clock edge, nothing
                    # to do for the synchronous body.
                    return
                else:
                    exec_stmts(proc.stmts, env)
            else:
                exec_stmts(proc.stmts, env)
        else:
            exec_stmts(proc.stmts, env)
        for sig, value in env.sig_writes.items():
            self._pending_nba[sig] = value
        self._pending_arrays.extend(env.array_writes)

    def _commit_pending(self) -> "set[Signal]":
        """Commit buffered writes; returns the set of changed signals.
        Writes to signals with a configured transport delay are moved
        to the delayed-event heap instead."""
        changed: set[Signal] = set()
        for store in (self._pending_nba, self._pending_native):
            for sig, value in store.items():
                delay = self._total_delay(sig)
                if delay:
                    self._seq += 1
                    heapq.heappush(
                        self._delayed,
                        (self.time + delay, self._seq, sig, value),
                    )
                    continue
                if self._values[sig] != value:
                    self._values[sig] = value
                    changed.add(sig)
            store.clear()
        for arr, index, value in self._pending_arrays:
            if not index.unk and index.value < arr.depth:
                if self._arrays[arr][index.value] != value:
                    self._arrays[arr][index.value] = value
                    changed.add(arr)
        self._pending_arrays.clear()
        self.stats["events"] += len(changed)
        return changed

    def _settle_deltas(self, changed: "set[Signal]") -> None:
        """Run combinational processes to a fixpoint (delta cycles)."""
        for _ in range(MAX_DELTA_CYCLES):
            if not changed:
                return
            woken: list[Process] = []
            seen: set[int] = set()
            for sig in changed:
                for proc in self._sens_map.get(sig, ()):
                    if id(proc) not in seen:
                        seen.add(id(proc))
                        woken.append(proc)
            if not woken:
                return
            self.stats["delta_cycles"] += 1
            for proc in woken:
                self._run_process(proc, changed)
            changed = self._commit_pending()
        raise DeltaOverflowError(
            f"combinational logic did not settle at t={self.time} ps"
        )

    def _apply_delayed_at(self, t: int) -> "set[Signal]":
        """Pop and apply delayed commits scheduled exactly at ``t``."""
        changed: set[Signal] = set()
        while self._delayed and self._delayed[0][0] == t:
            _, _, sig, value = heapq.heappop(self._delayed)
            if self._values[sig] != value:
                self._values[sig] = value
                changed.add(sig)
        self.stats["events"] += len(changed)
        return changed

    def _process_time_point(self, t: int) -> None:
        """One full simulation cycle at absolute time ``t``:
        delayed commits first, then clock toggles, then delta loop."""
        self.time = t

        changed = self._apply_delayed_at(t)
        edge_procs: list[Process] = []

        for clk in self._clocks.values():
            if clk.next_toggle == t:
                clk.value ^= 1
                new = LV.from_int(1, clk.value)
                self._values[clk.signal] = new
                changed.add(clk.signal)
                edge = "rise" if clk.value else "fall"
                edge_procs.extend(
                    self._sync_map.get((id(clk.signal), edge), ())
                )
                clk.next_toggle = t + clk.half

        if edge_procs:
            for proc in edge_procs:
                self._run_process(proc, changed)
            changed |= self._commit_pending()

        self._settle_deltas(changed)
        for callback in self._watchers:
            callback(self, t)

    def _next_event_time(self) -> "int | None":
        candidates = [clk.next_toggle for clk in self._clocks.values()]
        if self._delayed:
            candidates.append(self._delayed[0][0])
        return min(candidates) if candidates else None

    def run_until(self, t_stop: int) -> None:
        """Process every event with time <= ``t_stop``."""
        while True:
            t = self._next_event_time()
            if t is None or t > t_stop:
                break
            self._process_time_point(t)
        self.time = max(self.time, t_stop)

    # ------------------------------------------------------------------
    # Cycle-level testbench interface
    # ------------------------------------------------------------------

    def next_rising_edge(self) -> int:
        """Absolute time of the next rising edge of the main clock."""
        clk = self._clocks[self.main_clock]
        return clk.next_toggle if clk.value == 0 else clk.next_toggle + clk.half

    def cycle(self, inputs: "dict[Signal, int | LV] | None" = None) -> None:
        """Apply ``inputs`` now, then advance one full main-clock cycle
        (through the next rising and falling edges).

        After the call, outputs reflect the clock edge that consumed
        the supplied inputs -- the same contract as one TLM
        ``b_transport`` transaction in the abstracted model.  (With
        ``input_launch_at_edge`` the inputs are instead launched just
        after this cycle's rising edge and are consumed by the *next*
        edge, as data from an upstream register would be.)
        """
        t_rise = self.next_rising_edge()
        # Align the poke instant with steady state: inputs always apply
        # just before the consuming edge (the first call would otherwise
        # poke a full period early, letting delayed comb commits from
        # back-annotated paths land one cycle ahead).
        if self.time < t_rise - 1:
            self.run_until(t_rise - 1)
        if inputs:
            if self.input_launch_at_edge:
                for sig, value in inputs.items():
                    if isinstance(value, int):
                        value = LV.from_int(sig.width, value)
                    self._seq += 1
                    heapq.heappush(
                        self._delayed, (t_rise + 1, self._seq, sig, value)
                    )
            else:
                for sig, value in inputs.items():
                    self.poke(sig, value)
        self.run_until(t_rise + self.main_period - 1)
        self.stats["cycles"] += 1

    def run_cycles(self, n: int, each=None) -> None:
        """Run ``n`` cycles; ``each(sim, i)`` may poke inputs per cycle."""
        for i in range(n):
            if each is not None:
                each(self, i)
            self.cycle()
