"""Ergonomic helpers for constructing IR expressions.

These are thin constructors that keep IP descriptions close to how the
equivalent VHDL reads: ``mux``, ``cat``, ``resize``, reductions, and
small adapters between ints and constants.
"""

from __future__ import annotations

from .ir import (
    ArrayRead,
    Binop,
    Concat,
    Const,
    Expr,
    Mux,
    Signal,
    Slice,
    Unop,
)

__all__ = [
    "const",
    "mux",
    "cat",
    "resize",
    "zero_extend",
    "sign_extend",
    "truncate",
    "red_and",
    "red_or",
    "red_xor",
    "replicate",
    "array_read",
    "sar",
    "b_not",
]


def const(value: int, width: int) -> Const:
    """A literal of explicit width."""
    return Const(value, width)


def mux(sel: Expr, if_true: "Expr | int", if_false: "Expr | int") -> Mux:
    """``sel ? if_true : if_false``; ints adapt to the other arm's width."""
    if isinstance(if_true, int) and isinstance(if_false, int):
        raise TypeError("at least one mux arm must be an expression")
    if isinstance(if_true, int):
        if_true = Const(if_true, if_false.width)
    if isinstance(if_false, int):
        if_false = Const(if_false, if_true.width)
    return Mux(sel, if_true, if_false)


def cat(*parts: Expr) -> Expr:
    """Concatenate, most significant part first."""
    if len(parts) == 1:
        return parts[0]
    return Concat(*parts)


def zero_extend(expr: Expr, width: int) -> Expr:
    if width < expr.width:
        raise ValueError("zero_extend target narrower than operand")
    if width == expr.width:
        return expr
    return Concat(Const(0, width - expr.width), expr)


def sign_extend(expr: Expr, width: int) -> Expr:
    if width < expr.width:
        raise ValueError("sign_extend target narrower than operand")
    if width == expr.width:
        return expr
    extra = width - expr.width
    sign = expr[expr.width - 1]
    fill = mux(sign, Const((1 << extra) - 1, extra), Const(0, extra))
    return Concat(fill, expr)


def truncate(expr: Expr, width: int) -> Expr:
    if width > expr.width:
        raise ValueError("truncate target wider than operand")
    if width == expr.width:
        return expr
    return Slice(expr, width - 1, 0)


def resize(expr: Expr, width: int, signed: bool = False) -> Expr:
    """Resize to ``width``: truncate or zero-/sign-extend as needed."""
    if width == expr.width:
        return expr
    if width < expr.width:
        return truncate(expr, width)
    return sign_extend(expr, width) if signed else zero_extend(expr, width)


def red_and(expr: Expr) -> Unop:
    return Unop("red_and", expr)


def red_or(expr: Expr) -> Unop:
    return Unop("red_or", expr)


def red_xor(expr: Expr) -> Unop:
    return Unop("red_xor", expr)


def b_not(expr: Expr) -> Unop:
    """1-bit boolean negation."""
    return Unop("bool_not", expr)


def replicate(expr: Expr, times: int) -> Expr:
    """Concatenate ``times`` copies of ``expr``."""
    if times <= 0:
        raise ValueError("replication count must be positive")
    return cat(*([expr] * times))


def array_read(array, index: Expr) -> ArrayRead:
    return ArrayRead(array, index)


def sar(a: Expr, amount: "Expr | int") -> Binop:
    """Arithmetic shift right."""
    if isinstance(amount, int):
        bits = max(1, (a.width - 1).bit_length() + 1)
        amount = Const(amount, bits)
    return Binop("sar", a, amount)
