"""Four-valued interpretation of IR expressions and statements.

This is the accuracy-first evaluator used by the RTL kernel: every
operation goes through :class:`repro.rtl.types.LV`, preserving ``X``/``Z``
propagation exactly as an HDL simulator would.  The TLM code generator
(:mod:`repro.abstraction.codegen`) emits the same semantics over plain
integers instead.
"""

from __future__ import annotations

from .ir import (
    ArrayRead,
    ArrayWrite,
    Assign,
    Binop,
    Case,
    Concat,
    Const,
    Expr,
    If,
    Mux,
    Signal,
    Slice,
    SliceAssign,
    Stmt,
    Unop,
)
from .types import LV

__all__ = ["eval_expr", "exec_stmts", "EvalEnv"]


class EvalEnv:
    """Value store an evaluator reads from / writes to.

    ``read(sig)`` must return the *current* value of a signal;
    ``read_array(arr)`` the current list of words.  Writes performed by
    :func:`exec_stmts` are collected into ``sig_writes`` /
    ``array_writes`` and committed by the caller (non-blocking
    assignment semantics: within one activation, later assignments to
    the same signal overwrite earlier ones, and reads never observe
    in-process writes).
    """

    __slots__ = ("read", "read_array", "sig_writes", "array_writes")

    def __init__(self, read, read_array) -> None:
        self.read = read
        self.read_array = read_array
        self.sig_writes: dict[Signal, LV] = {}
        self.array_writes: list[tuple] = []

    def current(self, sig: Signal) -> LV:
        """Signal value as seen inside the process (pre-write)."""
        return self.read(sig)


def eval_expr(expr: Expr, env: EvalEnv) -> LV:
    """Evaluate an expression to a four-valued vector."""
    if isinstance(expr, Signal):
        return env.read(expr)
    if isinstance(expr, Const):
        return LV.from_int(expr.width, expr.value)
    if isinstance(expr, Slice):
        return eval_expr(expr.a, env).slice(expr.hi, expr.lo)
    if isinstance(expr, Concat):
        first = eval_expr(expr.parts[0], env)
        rest = [eval_expr(p, env) for p in expr.parts[1:]]
        return first.concat(*rest)
    if isinstance(expr, Unop):
        return _eval_unop(expr, env)
    if isinstance(expr, Binop):
        return _eval_binop(expr, env)
    if isinstance(expr, Mux):
        sel = eval_expr(expr.sel, env)
        if sel.unk:
            return LV.all_x(expr.width)
        chosen = expr.a if sel.value else expr.b
        return eval_expr(chosen, env)
    if isinstance(expr, ArrayRead):
        index = eval_expr(expr.index, env)
        words = env.read_array(expr.array)
        if index.unk:
            return LV.all_x(expr.width)
        if index.value >= expr.array.depth:
            return LV.all_x(expr.width)
        return words[index.value]
    raise TypeError(f"cannot evaluate expression {expr!r}")


def _eval_unop(expr: Unop, env: EvalEnv) -> LV:
    a = eval_expr(expr.a, env)
    op = expr.op
    if op == "not":
        return ~a
    if op == "neg":
        return a.neg()
    if op == "red_and":
        return a.reduce_and()
    if op == "red_or":
        return a.reduce_or()
    if op == "red_xor":
        return a.reduce_xor()
    if op == "bool_not":
        # Boolean negation of a truth value: OR-reduce to one bit,
        # then invert.  Bitwise ``~`` coincides only for the 1-bit
        # operands the IR currently enforces; this form stays correct
        # if that restriction is ever lifted.
        return ~a.reduce_or()
    raise AssertionError(op)


def _eval_binop(expr: Binop, env: EvalEnv) -> LV:
    a = eval_expr(expr.a, env)
    b = eval_expr(expr.b, env)
    op = expr.op
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "shl":
        return a.shl(b)
    if op == "shr":
        return a.shr(b)
    if op == "sar":
        return a.sar(b)
    if op == "eq":
        return a.eq(b)
    if op == "ne":
        return a.ne(b)
    if op == "lt":
        return a.lt(b)
    if op == "le":
        return a.le(b)
    if op == "gt":
        return a.gt(b)
    if op == "ge":
        return a.ge(b)
    if op == "lt_s":
        return a.lt(b, signed=True)
    if op == "le_s":
        return a.le(b, signed=True)
    if op == "gt_s":
        return a.gt(b, signed=True)
    if op == "ge_s":
        return a.ge(b, signed=True)
    raise AssertionError(op)


def exec_stmts(stmts: "list[Stmt]", env: EvalEnv) -> None:
    """Execute a statement list, collecting writes into ``env``.

    Conditions evaluating to ``X`` conservatively take no branch (a
    real simulator would warn; registers keep their value, which is
    the standard contamination-free interpretation for ``if``).
    """
    for stmt in stmts:
        if isinstance(stmt, Assign):
            env.sig_writes[stmt.target] = eval_expr(stmt.expr, env)
        elif isinstance(stmt, SliceAssign):
            base = env.sig_writes.get(stmt.target)
            if base is None:
                base = env.read(stmt.target)
            part = eval_expr(stmt.expr, env)
            env.sig_writes[stmt.target] = base.replaced_slice(
                stmt.hi, stmt.lo, part
            )
        elif isinstance(stmt, ArrayWrite):
            index = eval_expr(stmt.index, env)
            value = eval_expr(stmt.value, env)
            env.array_writes.append((stmt.array, index, value))
        elif isinstance(stmt, If):
            cond = eval_expr(stmt.cond, env)
            if cond.unk:
                continue
            exec_stmts(stmt.then if cond.value else stmt.orelse, env)
        elif isinstance(stmt, Case):
            sel = eval_expr(stmt.sel, env)
            if sel.unk:
                continue
            for label, body in stmt.cases:
                if label == sel.value:
                    exec_stmts(body, env)
                    break
            else:
                exec_stmts(stmt.default, env)
        else:
            raise TypeError(f"cannot execute statement {stmt!r}")
