"""VHDL backend: emit synthesisable VHDL-93 text from the RTL IR.

The emitted text serves two purposes:

* it is the artefact whose size the paper reports in the *RTL (loc)*
  columns of Tables 1 and 2 (the IPs there are VHDL/Verilog designs),
  so lines-of-code metrics in this reproduction are measured on real
  generated HDL rather than on the Python that builds the IR;
* it documents the augmented designs (sensors included) in a form a
  hardware engineer can inspect.

Native (sensor) processes are emitted as behavioural component bodies
from canned, parameterised templates -- mirroring how the paper's flow
instantiates pre-designed sensor IP at each monitored endpoint.
"""

from __future__ import annotations

from .ir import (
    Array,
    ArrayRead,
    ArrayWrite,
    Assign,
    Binop,
    Case,
    CombProcess,
    Concat,
    Const,
    Expr,
    If,
    Module,
    Mux,
    NativeProcess,
    Signal,
    Slice,
    SliceAssign,
    Stmt,
    SyncProcess,
    Unop,
    process_reads,
)

__all__ = ["emit_vhdl", "count_loc"]

_BINOP_VHDL = {
    "and": "and", "or": "or", "xor": "xor",
    "add": "+", "sub": "-", "mul": "*",
    "eq": "=", "ne": "/=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    "lt_s": "<", "le_s": "<=", "gt_s": ">", "ge_s": ">=",
}


def _sig_type(width: int) -> str:
    if width == 1:
        return "std_logic"
    return f"std_logic_vector({width - 1} downto 0)"


def _const_literal(value: int, width: int) -> str:
    if width == 1:
        return f"'{value & 1}'"
    return '"' + format(value & ((1 << width) - 1), f"0{width}b") + '"'


def _expr_vhdl(expr: Expr) -> str:
    """Pretty-print an expression (numeric_std style)."""
    if isinstance(expr, Signal):
        return expr.name
    if isinstance(expr, Const):
        return _const_literal(expr.value, expr.width)
    if isinstance(expr, Slice):
        base = _expr_vhdl(expr.a)
        if expr.hi == expr.lo:
            return f"{base}({expr.lo})"
        return f"{base}({expr.hi} downto {expr.lo})"
    if isinstance(expr, Concat):
        return "(" + " & ".join(_expr_vhdl(p) for p in expr.parts) + ")"
    if isinstance(expr, Unop):
        a = _expr_vhdl(expr.a)
        if expr.op in ("not", "bool_not"):
            return f"(not {a})"
        if expr.op == "neg":
            return f"std_logic_vector(-signed({a}))"
        return f"{expr.op}({a})"  # reduction helpers from util package
    if isinstance(expr, Binop):
        a, b = _expr_vhdl(expr.a), _expr_vhdl(expr.b)
        op = expr.op
        if op in ("and", "or", "xor"):
            return f"({a} {_BINOP_VHDL[op]} {b})"
        if op in ("add", "sub", "mul"):
            return (
                f"std_logic_vector(unsigned({a}) {_BINOP_VHDL[op]} "
                f"unsigned({b}))"
            )
        if op in ("shl", "shr", "sar"):
            fn = {"shl": "shift_left", "shr": "shift_right", "sar": "shift_right"}[op]
            cast = "signed" if op == "sar" else "unsigned"
            return (
                f"std_logic_vector({fn}({cast}({a}), "
                f"to_integer(unsigned({b}))))"
            )
        # comparisons return std_logic via helper
        cast = "signed" if op.endswith("_s") else "unsigned"
        return f"b2sl({cast}({a}) {_BINOP_VHDL[op]} {cast}({b}))"
    if isinstance(expr, Mux):
        return (
            f"mux2({_expr_vhdl(expr.sel)}, {_expr_vhdl(expr.a)}, "
            f"{_expr_vhdl(expr.b)})"
        )
    if isinstance(expr, ArrayRead):
        return (
            f"{expr.array.name}(to_integer(unsigned({_expr_vhdl(expr.index)})))"
        )
    raise TypeError(f"cannot emit expression {expr!r}")


def _emit_stmts(stmts: "list[Stmt]", indent: int, out: "list[str]") -> None:
    pad = "  " * indent
    for stmt in stmts:
        if isinstance(stmt, Assign):
            out.append(f"{pad}{stmt.target.name} <= {_expr_vhdl(stmt.expr)};")
        elif isinstance(stmt, SliceAssign):
            if stmt.hi == stmt.lo:
                target = f"{stmt.target.name}({stmt.lo})"
            else:
                target = f"{stmt.target.name}({stmt.hi} downto {stmt.lo})"
            out.append(f"{pad}{target} <= {_expr_vhdl(stmt.expr)};")
        elif isinstance(stmt, ArrayWrite):
            out.append(
                f"{pad}{stmt.array.name}"
                f"(to_integer(unsigned({_expr_vhdl(stmt.index)})))"
                f" <= {_expr_vhdl(stmt.value)};"
            )
        elif isinstance(stmt, If):
            out.append(f"{pad}if {_expr_vhdl(stmt.cond)} = '1' then")
            _emit_stmts(stmt.then, indent + 1, out)
            if stmt.orelse:
                out.append(f"{pad}else")
                _emit_stmts(stmt.orelse, indent + 1, out)
            out.append(f"{pad}end if;")
        elif isinstance(stmt, Case):
            out.append(f"{pad}case {_expr_vhdl(stmt.sel)} is")
            for label, body in stmt.cases:
                out.append(
                    f"{pad}  when {_const_literal(label, stmt.sel.width)} =>"
                )
                _emit_stmts(body, indent + 2, out)
            out.append(f"{pad}  when others =>")
            if stmt.default:
                _emit_stmts(stmt.default, indent + 2, out)
            else:
                out.append(f"{pad}    null;")
            out.append(f"{pad}end case;")
        else:
            raise TypeError(f"cannot emit statement {stmt!r}")


#: Behavioural template bodies for sensor primitives, keyed by the
#: ``meta['vhdl_template']`` tag that sensor constructors attach.
_NATIVE_TEMPLATES = {
    "razor": [
        "-- modified Razor flip-flop: main FF + shadow latch on delayed",
        "-- clock; E flags main/shadow mismatch; R enables self-recovery",
        "process({clock})",
        "begin",
        "  if rising_edge({clock}) then",
        "    main_ff <= {d};",
        "  end if;",
        "  if falling_edge({clock}) then",
        "    shadow_latch <= {d};",
        "    {e} <= b2sl(main_ff /= shadow_latch);",
        "    if {r} = '1' and main_ff /= shadow_latch then",
        "      {q} <= shadow_latch;  -- recovery",
        "    end if;",
        "  end if;",
        "end process;",
    ],
    "counter": [
        "-- counter-based delay monitor (Fig. 5): an HF_CLK counter with",
        "-- R1/R2 transition-capture registers, CPS latches, a LUT",
        "-- threshold compare and the 3-cycle measurement control FSM",
        "signal {meas}_count    : std_logic_vector(7 downto 0) := (others => '0');",
        "signal {meas}_r1       : std_logic_vector(7 downto 0) := (others => '0');",
        "signal {meas}_r2       : std_logic_vector(7 downto 0) := (others => '0');",
        "signal {meas}_r1_en    : std_logic := '0';",
        "signal {meas}_r2_en    : std_logic := '0';",
        "signal {meas}_cps_prev : std_logic := '0';",
        "signal {meas}_last_cps : std_logic := '0';",
        "signal {meas}_obs_win  : std_logic := '0';",
        "signal {meas}_state    : std_logic_vector(1 downto 0) := \"00\";",
        "constant {meas}_LUT    : unsigned(7 downto 0) := to_unsigned(LUT_THRESHOLD, 8);",
        "measure_{meas} : process({hf_clock})",
        "begin",
        "  if rising_edge({hf_clock}) then",
        "    if {meas}_obs_win = '1' then",
        "      {meas}_count <= std_logic_vector(unsigned({meas}_count) + 1);",
        "      if cps_now /= {meas}_cps_prev then",
        "        if cps_now = '1' then",
        "          {meas}_r1 <= {meas}_count;",
        "          {meas}_r1_en <= '1';",
        "        else",
        "          {meas}_r2 <= {meas}_count;",
        "          {meas}_r2_en <= '1';",
        "        end if;",
        "      end if;",
        "      {meas}_cps_prev <= cps_now;",
        "    end if;",
        "  end if;",
        "end process;",
        "window_{meas} : process({clock})",
        "begin",
        "  if rising_edge({clock}) then",
        "    case {meas}_state is",
        "      when \"00\" =>  -- open the observability window",
        "        {meas}_obs_win <= '1';",
        "        {meas}_state <= \"01\";",
        "      when \"01\" =>  -- close window, select R1/R2 by last CPS",
        "        {meas}_last_cps <= {meas}_cps_prev;",
        "        if {meas}_cps_prev = '1' then",
        "          {meas} <= {meas}_r1;",
        "        else",
        "          {meas} <= {meas}_r2;",
        "        end if;",
        "        {meas}_state <= \"10\";",
        "      when others =>  -- output-stable cycle, reset and restart",
        "        {ok} <= b2sl(unsigned({meas}) <= {meas}_LUT);",
        "        {meas}_count <= (others => '0');",
        "        {meas}_r1_en <= '0';",
        "        {meas}_r2_en <= '0';",
        "        {meas}_state <= \"00\";",
        "    end case;",
        "  end if;",
        "end process;",
    ],
}


def _emit_native(proc: NativeProcess, out: "list[str]") -> None:
    template = proc.meta.get("vhdl_template")
    if template not in _NATIVE_TEMPLATES:
        out.append(f"  -- native process {proc.name} (no VHDL template)")
        return
    instances = proc.meta.get("instances") or [proc.meta.get("vhdl_subst", {})]
    for index, subst in enumerate(instances):
        out.append(f"  -- sensor instance {index}: {proc.name}")
        for line in _NATIVE_TEMPLATES[template]:
            try:
                out.append("  " + line.format(**subst))
            except (KeyError, IndexError):
                out.append("  " + line)


def emit_vhdl(module: Module) -> str:
    """Emit one VHDL design unit per module in the tree, children first."""
    units: list[str] = []
    emitted: set[int] = set()

    def visit(mod: Module) -> None:
        for _, child in mod.submodules:
            visit(child)
        if id(mod) in emitted:
            return
        emitted.add(id(mod))
        units.append(_emit_entity(mod))

    visit(module)
    header = [
        "library ieee;",
        "use ieee.std_logic_1164.all;",
        "use ieee.numeric_std.all;",
        "use work.repro_util.all;  -- b2sl, mux2, reductions",
        "",
    ]
    return "\n".join(header) + "\n\n".join(units) + "\n"


def _emit_entity(mod: Module) -> str:
    out: list[str] = []
    out.append(f"entity {mod.name} is")
    if mod.ports:
        out.append("  port (")
        for i, port in enumerate(mod.ports):
            direction = "in " if port.direction == "in" else "out"
            sep = ";" if i < len(mod.ports) - 1 else ""
            out.append(
                f"    {port.name} : {direction} {_sig_type(port.width)}{sep}"
            )
        out.append("  );")
    out.append(f"end entity {mod.name};")
    out.append("")
    out.append(f"architecture rtl of {mod.name} is")
    for sig in mod.signals:
        out.append(
            f"  signal {sig.name} : {_sig_type(sig.width)}"
            f" := {_const_literal(sig.init, sig.width)};"
        )
    for arr in mod.arrays:
        out.append(
            f"  type {arr.name}_t is array (0 to {arr.depth - 1}) of "
            f"{_sig_type(arr.width)};"
        )
        out.append(f"  signal {arr.name} : {arr.name}_t;")
    out.append("begin")
    for inst_name, child in mod.submodules:
        out.append(f"  {inst_name} : entity work.{child.name};")
    for proc in mod.processes:
        if isinstance(proc, SyncProcess):
            sens = [proc.clock.name]
            if proc.reset is not None:
                sens.append(proc.reset.name)
            out.append(f"  {proc.name} : process({', '.join(sens)})")
            out.append("  begin")
            if proc.reset is not None:
                level = "'1'" if proc.reset_level else "'0'"
                out.append(f"    if {proc.reset.name} = {level} then")
                _emit_stmts(proc.reset_stmts, 3, out)
                edge = "rising_edge" if proc.edge == "rise" else "falling_edge"
                out.append(f"    elsif {edge}({proc.clock.name}) then")
            else:
                edge = "rising_edge" if proc.edge == "rise" else "falling_edge"
                out.append(f"    if {edge}({proc.clock.name}) then")
            _emit_stmts(proc.stmts, 3, out)
            out.append("    end if;")
            out.append("  end process;")
        elif isinstance(proc, CombProcess):
            sens = proc.sensitivity or sorted(
                process_reads(proc), key=lambda s: s.name
            )
            names = ", ".join(s.name for s in sens)
            out.append(f"  {proc.name} : process({names})")
            out.append("  begin")
            _emit_stmts(proc.stmts, 2, out)
            out.append("  end process;")
        elif isinstance(proc, NativeProcess):
            _emit_native(proc, out)
    out.append(f"end architecture rtl;")
    return "\n".join(out)


def count_loc(text: str) -> int:
    """Count non-blank lines (the convention used in the paper's tables)."""
    return sum(1 for line in text.splitlines() if line.strip())
