"""RTL substrate: four-valued types, IR, event-driven kernel, backends."""

from .types import LV, Logic, L0, L1, LX, LZ, resolve
from .ir import (
    Array,
    ArrayRead,
    ArrayWrite,
    Assign,
    Binop,
    Case,
    CombProcess,
    Concat,
    Const,
    Expr,
    If,
    Module,
    Mux,
    NativeProcess,
    Signal,
    Slice,
    SliceAssign,
    SyncProcess,
    Unop,
    WidthError,
    registers_of,
)
from .build import (
    array_read,
    b_not,
    cat,
    const,
    mux,
    red_and,
    red_or,
    red_xor,
    replicate,
    resize,
    sar,
    sign_extend,
    truncate,
    zero_extend,
)
from .compile import CompiledProcess, compile_process, compile_stmts
from .kernel import DeltaOverflowError, Simulation, SimulationError
from .nextstate import module_next_state, next_state_exprs
from .trace import WaveRecorder
from .vcd import VcdWriter
from .vhdl import count_loc, emit_vhdl

__all__ = [
    "LV", "Logic", "L0", "L1", "LX", "LZ", "resolve",
    "Array", "ArrayRead", "ArrayWrite", "Assign", "Binop", "Case",
    "CombProcess", "Concat", "Const", "Expr", "If", "Module", "Mux",
    "NativeProcess", "Signal", "Slice", "SliceAssign", "SyncProcess",
    "Unop", "WidthError", "registers_of",
    "array_read", "b_not", "cat", "const", "mux", "red_and", "red_or",
    "red_xor", "replicate", "resize", "sar", "sign_extend", "truncate",
    "zero_extend",
    "CompiledProcess", "compile_process", "compile_stmts",
    "DeltaOverflowError", "Simulation", "SimulationError",
    "module_next_state", "next_state_exprs",
    "WaveRecorder",
    "VcdWriter",
    "count_loc", "emit_vhdl",
]
