"""Four-valued logic scalars and vectors for RTL simulation.

The RTL substrate models HDL ``std_logic``-style values with the four
states that matter for gate-level semantics:

* ``0`` / ``1`` -- strong driven values,
* ``X``        -- unknown (conflict, uninitialised, contaminated),
* ``Z``        -- high impedance (undriven).

Vectors are stored as *two integer planes* (the classic two-bit
encoding used by HDL simulators):

===== ======= =======
state  value    unk
===== ======= =======
``0``    0        0
``1``    1        0
``X``    0        1
``Z``    1        1
===== ======= =======

All bitwise operations are implemented as word-parallel boolean
equations on the planes (the "Karnaugh map" formulation the paper's
HDTLib uses) rather than per-bit table lookups, which keeps even the
accurate four-valued layer tractable in pure Python.

Arithmetic and comparisons follow conservative HDL semantics: any
unknown bit in an operand contaminates the whole result (all-``X``).
"""

from __future__ import annotations

__all__ = [
    "Logic",
    "L0",
    "L1",
    "LX",
    "LZ",
    "LV",
    "ONEBIT",
    "resolve",
]


class Logic:
    """A single four-valued logic state.

    Instances are interned: exactly four objects exist (:data:`L0`,
    :data:`L1`, :data:`LX`, :data:`LZ`).  Equality is identity.
    """

    __slots__ = ("value", "unk", "char")
    _interned: dict[tuple[int, int], "Logic"] = {}

    def __new__(cls, value: int, unk: int, char: str) -> "Logic":
        key = (value, unk)
        if key in cls._interned:
            return cls._interned[key]
        obj = super().__new__(cls)
        object.__setattr__(obj, "value", value)
        object.__setattr__(obj, "unk", unk)
        object.__setattr__(obj, "char", char)
        cls._interned[key] = obj
        return obj

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Logic values are immutable")

    @property
    def is_known(self) -> bool:
        """True for ``0``/``1``, False for ``X``/``Z``."""
        return not self.unk

    def __repr__(self) -> str:
        return f"Logic('{self.char}')"

    def __str__(self) -> str:
        return self.char

    @staticmethod
    def from_char(char: str) -> "Logic":
        """Parse a single character (``0 1 x X z Z``)."""
        try:
            return _CHAR_TO_LOGIC[char.upper()]
        except KeyError:
            raise ValueError(f"not a logic character: {char!r}") from None


L0 = Logic(0, 0, "0")
L1 = Logic(1, 0, "1")
LX = Logic(0, 1, "X")
LZ = Logic(1, 1, "Z")

_CHAR_TO_LOGIC = {"0": L0, "1": L1, "X": LX, "Z": LZ}


def resolve(a: Logic, b: Logic) -> Logic:
    """Resolution function for two drivers of the same net.

    Mirrors the ``std_logic`` resolution table restricted to four
    states: ``Z`` yields to anything, equal strong values agree, and
    conflicting strong values (or any ``X``) resolve to ``X``.
    """
    if a is LZ:
        return b
    if b is LZ:
        return a
    if a is b and a.is_known:
        return a
    return LX


def _mask(width: int) -> int:
    return (1 << width) - 1


class LV:
    """An immutable four-valued logic vector of fixed width.

    The two planes are plain Python integers, so vectors of any width
    are supported and word-parallel plane equations give bitwise
    operations in O(width / machine-word).

    Bit 0 is the least significant bit.  ``X``/``Z`` handling:

    * bitwise ops propagate unknowns per bit with dominance rules
      (``0 & X == 0``, ``1 | X == 1``, otherwise ``X``);
    * arithmetic, shifts by unknown amounts and comparisons return
      all-``X`` / ``X`` when any participating bit is unknown;
    * ``Z`` behaves as ``X`` inside every operator (only
      :func:`resolve` distinguishes them).
    """

    __slots__ = ("width", "value", "unk")

    def __init__(self, width: int, value: int = 0, unk: int = 0) -> None:
        if width <= 0:
            raise ValueError(f"LV width must be positive, got {width}")
        m = _mask(width)
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "value", value & m)
        object.__setattr__(self, "unk", unk & m)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LV values are immutable")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def from_int(width: int, value: int) -> "LV":
        """Build a fully-defined vector from a Python int (two's complement
        wrap for negatives)."""
        if width == 1:
            return ONEBIT[(value & 1) << 1]
        return LV(width, value & _mask(width), 0)

    @staticmethod
    def from_str(text: str) -> "LV":
        """Parse a vector literal such as ``"01XZ10"`` (MSB first)."""
        if not text:
            raise ValueError("empty vector literal")
        value = 0
        unk = 0
        for char in text:
            logic = Logic.from_char(char)
            value = (value << 1) | logic.value
            unk = (unk << 1) | logic.unk
        return LV(len(text), value, unk)

    @staticmethod
    def all_x(width: int) -> "LV":
        """A vector with every bit unknown."""
        if width == 1:
            return ONEBIT[1]  # X
        m = _mask(width)
        return LV(width, 0, m)

    @staticmethod
    def all_z(width: int) -> "LV":
        """A vector with every bit high-impedance."""
        m = _mask(width)
        return LV(width, m, m)

    @staticmethod
    def zeros(width: int) -> "LV":
        return LV(width, 0, 0)

    @staticmethod
    def ones(width: int) -> "LV":
        return LV(width, _mask(width), 0)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def is_fully_defined(self) -> bool:
        """True when no bit is ``X`` or ``Z``."""
        return self.unk == 0

    def to_int(self) -> int:
        """Unsigned integer value; raises ``ValueError`` on unknown bits."""
        if self.unk:
            raise ValueError(f"vector has unknown bits: {self}")
        return self.value

    def to_int_signed(self) -> int:
        """Two's-complement signed value; raises on unknown bits."""
        raw = self.to_int()
        sign_bit = 1 << (self.width - 1)
        return raw - (1 << self.width) if raw & sign_bit else raw

    def to_int_or(self, default: int = 0) -> int:
        """Unsigned integer value with unknown bits folded to ``default``'s
        bits (the hdtlib X/Z -> 0 abstraction when ``default`` is 0)."""
        if not self.unk:
            return self.value
        return (self.value & ~self.unk) | (default & self.unk)

    def bit(self, index: int) -> Logic:
        """The :class:`Logic` state of a single bit position."""
        if not 0 <= index < self.width:
            raise IndexError(f"bit {index} out of range for width {self.width}")
        v = (self.value >> index) & 1
        u = (self.unk >> index) & 1
        return Logic._interned[(v, u)]

    def __len__(self) -> int:
        return self.width

    def __str__(self) -> str:
        chars = [self.bit(i).char for i in reversed(range(self.width))]
        return "".join(chars)

    def __repr__(self) -> str:
        return f"LV({self.width}, '{self}')"

    def __eq__(self, other: object) -> bool:
        """Structural equality (same width, same per-bit states).

        Note this is *Python* equality used by containers and tests;
        HDL-semantics comparison (returning ``X`` when unknown) is
        :meth:`eq`.
        """
        if isinstance(other, LV):
            return (
                self.width == other.width
                and self.value == other.value
                and self.unk == other.unk
            )
        if isinstance(other, int):
            return self.unk == 0 and self.value == other & _mask(self.width)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        # Identity fast path: interned 1-bit values make the kernel's
        # hot "did this signal change" checks an ``is`` comparison.
        if self is other:
            return False
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self.width, self.value, self.unk))

    # ------------------------------------------------------------------
    # Plane helpers
    # ------------------------------------------------------------------

    def _planes(self) -> tuple[int, int, int]:
        """Return ``(is_one, is_zero, is_unknown)`` planes with ``Z``
        folded into unknown."""
        m = _mask(self.width)
        unk = self.unk
        one = self.value & ~unk & m
        zero = ~self.value & ~unk & m
        return one, zero, unk

    def _require_same_width(self, other: "LV") -> None:
        if self.width != other.width:
            raise ValueError(
                f"width mismatch: {self.width} vs {other.width}"
            )

    # ------------------------------------------------------------------
    # Bitwise operations (word-parallel plane equations)
    # ------------------------------------------------------------------

    def __and__(self, other: "LV") -> "LV":
        self._require_same_width(other)
        a1, a0, _ = self._planes()
        b1, b0, _ = other._planes()
        m = _mask(self.width)
        res1 = a1 & b1
        res0 = (a0 | b0) & m
        res_unk = ~(res1 | res0) & m
        return LV(self.width, res1, res_unk)

    def __or__(self, other: "LV") -> "LV":
        self._require_same_width(other)
        a1, a0, _ = self._planes()
        b1, b0, _ = other._planes()
        m = _mask(self.width)
        res1 = (a1 | b1) & m
        res0 = a0 & b0
        res_unk = ~(res1 | res0) & m
        return LV(self.width, res1, res_unk)

    def __xor__(self, other: "LV") -> "LV":
        self._require_same_width(other)
        a1, a0, au = self._planes()
        b1, b0, bu = other._planes()
        m = _mask(self.width)
        res_unk = (au | bu) & m
        res1 = ((a1 & b0) | (a0 & b1)) & ~res_unk & m
        return LV(self.width, res1, res_unk)

    def __invert__(self) -> "LV":
        one, zero, unk = self._planes()
        return LV(self.width, zero, unk)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------

    def reduce_and(self) -> "LV":
        """AND of all bits (1-bit result, ``X`` if undetermined)."""
        one, zero, unk = self._planes()
        m = _mask(self.width)
        if zero:  # any hard 0 dominates
            return ONEBIT[0]
        if one == m:
            return ONEBIT[2]
        return ONEBIT[1]

    def reduce_or(self) -> "LV":
        """OR of all bits (1-bit result, ``X`` if undetermined)."""
        one, zero, unk = self._planes()
        m = _mask(self.width)
        if one:  # any hard 1 dominates
            return ONEBIT[2]
        if zero == m:
            return ONEBIT[0]
        return ONEBIT[1]

    def reduce_xor(self) -> "LV":
        """XOR of all bits (1-bit result, ``X`` if any bit unknown)."""
        if self.unk:
            return ONEBIT[1]
        return ONEBIT[(bin(self.value).count("1") & 1) << 1]

    # ------------------------------------------------------------------
    # Arithmetic (contaminating semantics)
    # ------------------------------------------------------------------

    def _arith(self, other: "LV", op) -> "LV":
        self._require_same_width(other)
        if self.unk or other.unk:
            return LV.all_x(self.width)
        return LV(self.width, op(self.value, other.value) & _mask(self.width), 0)

    def __add__(self, other: "LV") -> "LV":
        return self._arith(other, lambda a, b: a + b)

    def __sub__(self, other: "LV") -> "LV":
        return self._arith(other, lambda a, b: a - b)

    def __mul__(self, other: "LV") -> "LV":
        return self._arith(other, lambda a, b: a * b)

    def neg(self) -> "LV":
        """Two's complement negation."""
        if self.unk:
            return LV.all_x(self.width)
        return LV(self.width, (-self.value) & _mask(self.width), 0)

    # ------------------------------------------------------------------
    # Shifts
    # ------------------------------------------------------------------

    def shl(self, amount: "LV | int") -> "LV":
        """Logical shift left; unknown shift amount contaminates."""
        n = self._shift_amount(amount)
        if n is None or self.unk:
            return LV.all_x(self.width) if n is None else LV(
                self.width, self.value << n, self.unk << n
            )
        return LV(self.width, self.value << n, self.unk << n)

    def shr(self, amount: "LV | int") -> "LV":
        """Logical shift right."""
        n = self._shift_amount(amount)
        if n is None:
            return LV.all_x(self.width)
        return LV(self.width, self.value >> n, self.unk >> n)

    def sar(self, amount: "LV | int") -> "LV":
        """Arithmetic (sign-extending) shift right."""
        n = self._shift_amount(amount)
        if n is None:
            return LV.all_x(self.width)
        if n >= self.width:
            n = self.width - 1
        sign_v = (self.value >> (self.width - 1)) & 1
        sign_u = (self.unk >> (self.width - 1)) & 1
        m = _mask(self.width)
        fill = (m >> (self.width - n) << (self.width - n)) if n else 0
        value = (self.value >> n) | (fill if sign_v else 0)
        unk = (self.unk >> n) | (fill if sign_u else 0)
        return LV(self.width, value, unk)

    def _shift_amount(self, amount: "LV | int") -> int | None:
        if isinstance(amount, LV):
            if amount.unk:
                return None
            amount = amount.value
        if amount < 0:
            raise ValueError("negative shift amount")
        return min(amount, self.width + 1)

    # ------------------------------------------------------------------
    # Comparisons (HDL semantics: 1-bit result, X when unknown)
    # ------------------------------------------------------------------

    def _compare(self, other: "LV", op, signed: bool = False) -> "LV":
        self._require_same_width(other)
        if self.unk or other.unk:
            return ONEBIT[1]
        if signed:
            a, b = self.to_int_signed(), other.to_int_signed()
        else:
            a, b = self.value, other.value
        return ONEBIT[2 if op(a, b) else 0]

    def eq(self, other: "LV") -> "LV":
        return self._compare(other, lambda a, b: a == b)

    def ne(self, other: "LV") -> "LV":
        return self._compare(other, lambda a, b: a != b)

    def lt(self, other: "LV", signed: bool = False) -> "LV":
        return self._compare(other, lambda a, b: a < b, signed)

    def le(self, other: "LV", signed: bool = False) -> "LV":
        return self._compare(other, lambda a, b: a <= b, signed)

    def gt(self, other: "LV", signed: bool = False) -> "LV":
        return self._compare(other, lambda a, b: a > b, signed)

    def ge(self, other: "LV", signed: bool = False) -> "LV":
        return self._compare(other, lambda a, b: a >= b, signed)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def slice(self, hi: int, lo: int) -> "LV":
        """Bits ``hi`` down to ``lo`` inclusive (HDL ``sig[hi:lo]``)."""
        if not (0 <= lo <= hi < self.width):
            raise IndexError(
                f"slice [{hi}:{lo}] out of range for width {self.width}"
            )
        w = hi - lo + 1
        return LV(w, self.value >> lo, self.unk >> lo)

    def concat(self, *others: "LV") -> "LV":
        """Concatenate with ``self`` as the most significant part."""
        width = self.width
        value = self.value
        unk = self.unk
        for other in others:
            width += other.width
            value = (value << other.width) | other.value
            unk = (unk << other.width) | other.unk
        return LV(width, value, unk)

    def resize(self, width: int, signed: bool = False) -> "LV":
        """Zero- or sign-extend / truncate to ``width`` bits."""
        if width == self.width:
            return self
        if width < self.width:
            return LV(width, self.value, self.unk)
        extra = width - self.width
        if not signed:
            return LV(width, self.value, self.unk)
        sign_v = (self.value >> (self.width - 1)) & 1
        sign_u = (self.unk >> (self.width - 1)) & 1
        fill = _mask(extra) << self.width
        value = self.value | (fill if sign_v else 0)
        unk = self.unk | (fill if sign_u else 0)
        return LV(width, value, unk)

    def replaced_slice(self, hi: int, lo: int, part: "LV") -> "LV":
        """A copy with bits ``hi..lo`` replaced by ``part``."""
        if part.width != hi - lo + 1:
            raise ValueError("slice replacement width mismatch")
        if not (0 <= lo <= hi < self.width):
            raise IndexError(
                f"slice [{hi}:{lo}] out of range for width {self.width}"
            )
        hole = _mask(hi - lo + 1) << lo
        value = (self.value & ~hole) | (part.value << lo)
        unk = (self.unk & ~hole) | (part.unk << lo)
        return LV(self.width, value, unk)

    def resolve_with(self, other: "LV") -> "LV":
        """Per-bit :func:`resolve` of two drivers."""
        self._require_same_width(other)
        bits = [
            resolve(self.bit(i), other.bit(i)) for i in range(self.width)
        ]
        value = 0
        unk = 0
        for i, b in enumerate(bits):
            value |= b.value << i
            unk |= b.unk << i
        return LV(self.width, value, unk)


def lv_raw(
    width: int,
    value: int,
    unk: int,
    _new=object.__new__,
    _set=object.__setattr__,
) -> "LV":
    """Construct an ``LV`` from already-masked planes, bypassing the
    re-masking and width validation of ``__init__``.  Internal fast
    path for the process compiler's commit sites, which maintain the
    plane invariants themselves."""
    lv = _new(LV)
    _set(lv, "width", width)
    _set(lv, "value", value)
    _set(lv, "unk", unk)
    return lv


#: Interned 1-bit vectors, indexed by ``(value << 1) | unk``:
#: ``0 -> '0'``, ``1 -> 'X'``, ``2 -> '1'``, ``3 -> 'Z'``.  One-bit
#: values (clock phases, enables, flags, comparison results) dominate
#: the kernel's allocation profile, and ``LV`` equality is structural,
#: so sharing the four instances is safe and turns most hot-path
#: ``!=`` checks into identity checks that fail fast.
ONEBIT: "tuple[LV, LV, LV, LV]" = (
    LV(1, 0, 0),
    LV(1, 0, 1),
    LV(1, 1, 0),
    LV(1, 1, 1),
)
