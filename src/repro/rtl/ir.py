"""Intermediate representation for RTL designs.

The IR mirrors a synthesisable VHDL/Verilog subset:

* **Expressions** -- constants, signal references, slices, concats,
  unary/binary operators, muxes and array (memory) reads.  Every
  expression carries a bit width, validated at construction.
* **Statements** -- (non-blocking) signal assignment, array writes,
  ``if``/``elsif``/``else`` and ``case``.
* **Processes** -- synchronous (clocked, optional async reset),
  combinational (sensitivity-list driven) and *native* processes whose
  behaviour is a Python callable (used for sensor primitives).
* **Modules** -- hierarchical containers.  Submodules share ``Signal``
  objects with their parent (elaboration-by-construction, as in migen),
  so a design is flattened simply by walking the tree.

The same IR feeds four backends: the event-driven RTL simulator
(:mod:`repro.rtl.kernel`), the VHDL emitter (:mod:`repro.rtl.vhdl`),
synthesis/STA (:mod:`repro.synth`, :mod:`repro.sta`) and the TLM code
generator (:mod:`repro.abstraction`).
"""

from __future__ import annotations

from .types import LV

__all__ = [
    "WidthError",
    "Expr",
    "Const",
    "Signal",
    "Array",
    "Slice",
    "Concat",
    "Unop",
    "Binop",
    "Mux",
    "ArrayRead",
    "Stmt",
    "Assign",
    "SliceAssign",
    "ArrayWrite",
    "If",
    "Case",
    "Process",
    "SyncProcess",
    "CombProcess",
    "NativeProcess",
    "Module",
    "UNARY_OPS",
    "BINARY_OPS",
    "COMPARE_OPS",
    "walk_stmts",
    "expr_array_reads",
]


class WidthError(ValueError):
    """Raised when expression operand widths are inconsistent."""


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

class Expr:
    """Base class for all IR expressions.  ``width`` is in bits."""

    __slots__ = ("width",)

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise WidthError(f"expression width must be positive, got {width}")
        self.width = width

    # Operator sugar so IPs read naturally ------------------------------

    def __and__(self, other: "Expr") -> "Binop":
        return Binop("and", self, other)

    def __or__(self, other: "Expr") -> "Binop":
        return Binop("or", self, other)

    def __xor__(self, other: "Expr") -> "Binop":
        return Binop("xor", self, other)

    def __invert__(self) -> "Unop":
        return Unop("not", self)

    def __add__(self, other: "Expr") -> "Binop":
        return Binop("add", self, other)

    def __sub__(self, other: "Expr") -> "Binop":
        return Binop("sub", self, other)

    def __mul__(self, other: "Expr") -> "Binop":
        return Binop("mul", self, other)

    def __lshift__(self, other: "Expr | int") -> "Binop":
        return Binop("shl", self, _as_shift(other, self.width))

    def __rshift__(self, other: "Expr | int") -> "Binop":
        return Binop("shr", self, _as_shift(other, self.width))

    def __getitem__(self, index: "int | slice") -> "Slice":
        if isinstance(index, slice):
            # expr[hi:lo] in HDL order (both inclusive)
            hi, lo = index.start, index.stop
            if hi is None or lo is None:
                raise IndexError("slices must be expr[hi:lo] with both bounds")
            return Slice(self, hi, lo)
        return Slice(self, index, index)

    def eq(self, other: "Expr | int") -> "Binop":
        return Binop("eq", self, _as_expr(other, self.width))

    def ne(self, other: "Expr | int") -> "Binop":
        return Binop("ne", self, _as_expr(other, self.width))

    def lt(self, other: "Expr | int") -> "Binop":
        return Binop("lt", self, _as_expr(other, self.width))

    def le(self, other: "Expr | int") -> "Binop":
        return Binop("le", self, _as_expr(other, self.width))

    def gt(self, other: "Expr | int") -> "Binop":
        return Binop("gt", self, _as_expr(other, self.width))

    def ge(self, other: "Expr | int") -> "Binop":
        return Binop("ge", self, _as_expr(other, self.width))

    def lt_s(self, other: "Expr | int") -> "Binop":
        return Binop("lt_s", self, _as_expr(other, self.width))

    def le_s(self, other: "Expr | int") -> "Binop":
        return Binop("le_s", self, _as_expr(other, self.width))

    def gt_s(self, other: "Expr | int") -> "Binop":
        return Binop("gt_s", self, _as_expr(other, self.width))

    def ge_s(self, other: "Expr | int") -> "Binop":
        return Binop("ge_s", self, _as_expr(other, self.width))


def _as_expr(value: "Expr | int", width: int) -> Expr:
    if isinstance(value, Expr):
        return value
    return Const(value, width)


def _as_shift(value: "Expr | int", width: int) -> Expr:
    if isinstance(value, Expr):
        return value
    bits = max(1, (width - 1).bit_length() + 1)
    return Const(value, bits)


class Const(Expr):
    """A literal of fixed width (two's-complement wrap for negatives)."""

    __slots__ = ("value",)

    def __init__(self, value: int, width: int) -> None:
        super().__init__(width)
        self.value = value & ((1 << width) - 1)

    def __repr__(self) -> str:
        return f"Const({self.value}, w={self.width})"


class Signal(Expr):
    """A named wire or register.

    ``direction`` is ``"in"``/``"out"`` for module ports and ``None``
    for internal signals.  ``kind`` is assigned during elaboration
    (``"reg"`` when written by a synchronous process, ``"wire"``
    otherwise).  A signal used in an expression *is* the expression
    node -- there is no separate reference wrapper.
    """

    __slots__ = ("name", "direction", "init", "kind", "signed", "is_clock")

    def __init__(
        self,
        name: str,
        width: int = 1,
        *,
        direction: str | None = None,
        init: int = 0,
        signed: bool = False,
        is_clock: bool = False,
    ) -> None:
        super().__init__(width)
        self.name = name
        self.direction = direction
        self.init = init & ((1 << width) - 1)
        self.kind = "wire"
        self.signed = signed
        self.is_clock = is_clock

    @property
    def init_lv(self) -> LV:
        return LV.from_int(self.width, self.init)

    def __repr__(self) -> str:
        d = f", {self.direction}" if self.direction else ""
        return f"Signal({self.name!r}, w={self.width}{d})"


class Array:
    """A memory: ``depth`` words of ``width`` bits (regfile, RAM, ROM).

    Arrays are not expressions; they are accessed through
    :class:`ArrayRead` / :class:`ArrayWrite`.
    """

    __slots__ = ("name", "depth", "width", "init")

    def __init__(
        self,
        name: str,
        depth: int,
        width: int,
        init: "list[int] | None" = None,
    ) -> None:
        if depth <= 0:
            raise ValueError("array depth must be positive")
        self.name = name
        self.depth = depth
        self.width = width
        mask = (1 << width) - 1
        words = list(init) if init else []
        if len(words) > depth:
            raise ValueError("array init longer than depth")
        words += [0] * (depth - len(words))
        self.init = [w & mask for w in words]

    @property
    def addr_width(self) -> int:
        return max(1, (self.depth - 1).bit_length())

    def __repr__(self) -> str:
        return f"Array({self.name!r}, depth={self.depth}, w={self.width})"


class Slice(Expr):
    """Bits ``hi`` down to ``lo`` (inclusive) of a sub-expression."""

    __slots__ = ("a", "hi", "lo")

    def __init__(self, a: Expr, hi: int, lo: int) -> None:
        if not (0 <= lo <= hi < a.width):
            raise WidthError(
                f"slice [{hi}:{lo}] out of range for width {a.width}"
            )
        super().__init__(hi - lo + 1)
        self.a = a
        self.hi = hi
        self.lo = lo


class Concat(Expr):
    """Concatenation; ``parts[0]`` is the most significant part."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Expr) -> None:
        if not parts:
            raise WidthError("empty concatenation")
        super().__init__(sum(p.width for p in parts))
        self.parts = tuple(parts)


UNARY_OPS = ("not", "neg", "red_and", "red_or", "red_xor", "bool_not")

#: op -> result width rule: "same" keeps operand width, 1 is single-bit.
_UNARY_WIDTH = {
    "not": "same",
    "neg": "same",
    "red_and": 1,
    "red_or": 1,
    "red_xor": 1,
    "bool_not": 1,
}


class Unop(Expr):
    """Unary operator node."""

    __slots__ = ("op", "a")

    def __init__(self, op: str, a: Expr) -> None:
        if op not in _UNARY_WIDTH:
            raise ValueError(f"unknown unary op {op!r}")
        if op == "bool_not" and a.width != 1:
            raise WidthError("bool_not requires a 1-bit operand")
        rule = _UNARY_WIDTH[op]
        super().__init__(a.width if rule == "same" else rule)
        self.op = op
        self.a = a


COMPARE_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "lt_s", "le_s", "gt_s", "ge_s")

BINARY_OPS = (
    "and", "or", "xor",
    "add", "sub", "mul",
    "shl", "shr", "sar",
) + COMPARE_OPS

_SHIFT_OPS = ("shl", "shr", "sar")


class Binop(Expr):
    """Binary operator node.

    Width rules: logical/arithmetic ops require equal operand widths
    and keep them; shifts keep the left operand's width (the right
    operand is the shift amount and may be any width); comparisons
    require equal widths and produce one bit.
    """

    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: Expr, b: Expr) -> None:
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        if op in _SHIFT_OPS:
            width = a.width
        else:
            if a.width != b.width:
                raise WidthError(
                    f"operand width mismatch for {op!r}: "
                    f"{a.width} vs {b.width}"
                )
            width = 1 if op in COMPARE_OPS else a.width
        super().__init__(width)
        self.op = op
        self.a = a
        self.b = b


class Mux(Expr):
    """``sel ? a : b`` with a 1-bit selector."""

    __slots__ = ("sel", "a", "b")

    def __init__(self, sel: Expr, a: Expr, b: Expr) -> None:
        if sel.width != 1:
            raise WidthError("mux selector must be 1 bit")
        if a.width != b.width:
            raise WidthError(
                f"mux arm width mismatch: {a.width} vs {b.width}"
            )
        super().__init__(a.width)
        self.sel = sel
        self.a = a
        self.b = b


class ArrayRead(Expr):
    """Asynchronous (combinational) read of ``array[index]``."""

    __slots__ = ("array", "index")

    def __init__(self, array: Array, index: Expr) -> None:
        super().__init__(array.width)
        self.array = array
        self.index = index


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

class Stmt:
    """Base class for IR statements."""

    __slots__ = ()


class Assign(Stmt):
    """Non-blocking assignment ``target <= expr``.

    Widths must match exactly; use :class:`Slice`/``resize`` helpers on
    the right-hand side to adapt.
    """

    __slots__ = ("target", "expr")

    def __init__(self, target: Signal, expr: "Expr | int") -> None:
        if not isinstance(target, Signal):
            raise TypeError("assignment target must be a Signal")
        expr = _as_expr(expr, target.width)
        if expr.width != target.width:
            raise WidthError(
                f"assignment width mismatch on {target.name}: "
                f"{target.width} vs {expr.width}"
            )
        self.target = target
        self.expr = expr


class SliceAssign(Stmt):
    """Non-blocking assignment to a bit range: ``target[hi:lo] <= expr``."""

    __slots__ = ("target", "hi", "lo", "expr")

    def __init__(self, target: Signal, hi: int, lo: int, expr: "Expr | int") -> None:
        if not (0 <= lo <= hi < target.width):
            raise WidthError(
                f"slice [{hi}:{lo}] out of range for {target.name}"
            )
        expr = _as_expr(expr, hi - lo + 1)
        if expr.width != hi - lo + 1:
            raise WidthError("slice assignment width mismatch")
        self.target = target
        self.hi = hi
        self.lo = lo
        self.expr = expr


class ArrayWrite(Stmt):
    """Synchronous write ``array[index] <= value``."""

    __slots__ = ("array", "index", "value")

    def __init__(self, array: Array, index: Expr, value: "Expr | int") -> None:
        value = _as_expr(value, array.width)
        if value.width != array.width:
            raise WidthError(
                f"array write width mismatch on {array.name}"
            )
        self.array = array
        self.index = index
        self.value = value


class If(Stmt):
    """``if cond then ... else ...`` with 1-bit condition."""

    __slots__ = ("cond", "then", "orelse")

    def __init__(
        self,
        cond: Expr,
        then: "list[Stmt]",
        orelse: "list[Stmt] | None" = None,
    ) -> None:
        if cond.width != 1:
            raise WidthError("if condition must be 1 bit")
        self.cond = cond
        self.then = list(then)
        self.orelse = list(orelse) if orelse else []


class Case(Stmt):
    """``case sel of`` with integer labels and an optional default."""

    __slots__ = ("sel", "cases", "default")

    def __init__(
        self,
        sel: Expr,
        cases: "list[tuple[int, list[Stmt]]]",
        default: "list[Stmt] | None" = None,
    ) -> None:
        mask = (1 << sel.width) - 1
        self.sel = sel
        self.cases = [(label & mask, list(stmts)) for label, stmts in cases]
        self.default = list(default) if default else []


# ----------------------------------------------------------------------
# Processes
# ----------------------------------------------------------------------

class Process:
    """Base class for processes.

    ``__weakref__`` is included so the per-process compiler
    (:mod:`repro.rtl.compile`) can memoise compiled closures in a
    :class:`weakref.WeakKeyDictionary` without keeping dead IR alive.
    """

    __slots__ = ("name", "__weakref__")

    def __init__(self, name: str) -> None:
        self.name = name


class SyncProcess(Process):
    """A clocked process (``if rising_edge(clk) then ...``).

    ``reset`` is an optional asynchronous reset signal: when it holds
    ``reset_level`` the ``reset_stmts`` run instead of ``stmts``.
    """

    __slots__ = ("clock", "edge", "stmts", "reset", "reset_level", "reset_stmts")

    def __init__(
        self,
        name: str,
        clock: Signal,
        stmts: "list[Stmt]",
        *,
        edge: str = "rise",
        reset: "Signal | None" = None,
        reset_level: int = 1,
        reset_stmts: "list[Stmt] | None" = None,
    ) -> None:
        if edge not in ("rise", "fall"):
            raise ValueError("edge must be 'rise' or 'fall'")
        super().__init__(name)
        self.clock = clock
        self.edge = edge
        self.stmts = list(stmts)
        self.reset = reset
        self.reset_level = reset_level
        self.reset_stmts = list(reset_stmts) if reset_stmts else []


class CombProcess(Process):
    """A combinational process; sensitivity is inferred from reads
    unless given explicitly."""

    __slots__ = ("stmts", "sensitivity")

    def __init__(
        self,
        name: str,
        stmts: "list[Stmt]",
        sensitivity: "list[Signal] | None" = None,
    ) -> None:
        super().__init__(name)
        self.stmts = list(stmts)
        self.sensitivity = list(sensitivity) if sensitivity else None


class NativeProcess(Process):
    """A process whose behaviour is a Python callable.

    Used for sensor primitives whose semantics (shadow latches, HF
    counters) are easier to state directly than as IR.  ``fn`` is
    called with a context object exposing ``read(sig)``, ``write(sig,
    lv)``, ``now`` (ps) and ``state`` (a per-process dict persisting
    across activations).

    ``kind`` is ``"sync"`` (clock + edge required) or ``"comb"``
    (``sensitivity`` required).  ``reads``/``writes`` declare the
    signal footprint so the schedulers and the code generator can
    reason about the process without executing it.
    """

    __slots__ = ("kind", "fn", "clock", "edge", "sensitivity", "reads", "writes", "meta")

    def __init__(
        self,
        name: str,
        kind: str,
        fn,
        *,
        clock: "Signal | None" = None,
        edge: str = "rise",
        sensitivity: "list[Signal] | None" = None,
        reads: "list[Signal] | None" = None,
        writes: "list[Signal] | None" = None,
        meta: "dict | None" = None,
    ) -> None:
        if kind not in ("sync", "comb"):
            raise ValueError("kind must be 'sync' or 'comb'")
        if kind == "sync" and clock is None:
            raise ValueError("sync native process needs a clock")
        if kind == "comb" and not sensitivity:
            raise ValueError("comb native process needs a sensitivity list")
        super().__init__(name)
        self.kind = kind
        self.fn = fn
        self.clock = clock
        self.edge = edge
        self.sensitivity = list(sensitivity) if sensitivity else []
        self.reads = list(reads) if reads else []
        self.writes = list(writes) if writes else []
        self.meta = dict(meta) if meta else {}


# ----------------------------------------------------------------------
# Modules
# ----------------------------------------------------------------------

class Module:
    """A hardware module: ports, signals, arrays, processes, children.

    Submodules share ``Signal`` objects with their parent (connection
    by construction), so :meth:`all_processes` over the tree yields a
    flat, simulatable design.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.ports: list[Signal] = []
        self.signals: list[Signal] = []
        self.arrays: list[Array] = []
        self.processes: list[Process] = []
        self.submodules: list[tuple[str, "Module"]] = []
        self._names: set[str] = set()

    # -- construction helpers ------------------------------------------

    def _register_name(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"duplicate name {name!r} in module {self.name}")
        self._names.add(name)

    def input(self, name: str, width: int = 1, **kw) -> Signal:
        """Declare an input port."""
        self._register_name(name)
        sig = Signal(name, width, direction="in", **kw)
        self.ports.append(sig)
        return sig

    def output(self, name: str, width: int = 1, **kw) -> Signal:
        """Declare an output port."""
        self._register_name(name)
        sig = Signal(name, width, direction="out", **kw)
        self.ports.append(sig)
        return sig

    def signal(self, name: str, width: int = 1, **kw) -> Signal:
        """Declare an internal signal."""
        self._register_name(name)
        sig = Signal(name, width, **kw)
        self.signals.append(sig)
        return sig

    def array(self, name: str, depth: int, width: int, init=None) -> Array:
        """Declare a memory array."""
        self._register_name(name)
        arr = Array(name, depth, width, init)
        self.arrays.append(arr)
        return arr

    def adopt(self, sig: Signal) -> Signal:
        """Register an externally-created signal as internal to this
        module (used by augmentation passes)."""
        self._register_name(sig.name)
        self.signals.append(sig)
        return sig

    def sync(
        self,
        name: str,
        clock: Signal,
        stmts: "list[Stmt]",
        **kw,
    ) -> SyncProcess:
        """Add a synchronous process; marks written signals as registers."""
        proc = SyncProcess(name, clock, stmts, **kw)
        self.processes.append(proc)
        for sig in written_signals(proc.stmts) | written_signals(proc.reset_stmts):
            sig.kind = "reg"
        return proc

    def comb(
        self,
        name: str,
        stmts: "list[Stmt]",
        sensitivity: "list[Signal] | None" = None,
    ) -> CombProcess:
        """Add a combinational process."""
        proc = CombProcess(name, stmts, sensitivity)
        self.processes.append(proc)
        return proc

    def native(self, proc: NativeProcess) -> NativeProcess:
        """Attach a native (Python-behaviour) process."""
        self.processes.append(proc)
        return proc

    def add_submodule(self, inst_name: str, child: "Module") -> "Module":
        """Attach a child module instance (signals already shared)."""
        self._register_name(inst_name)
        self.submodules.append((inst_name, child))
        return child

    # -- queries --------------------------------------------------------

    def all_processes(self) -> "list[tuple[str, Process]]":
        """All processes in the tree as ``(hierarchical_name, process)``."""
        out: list[tuple[str, Process]] = []
        self._collect_processes("", out)
        return out

    def _collect_processes(self, prefix: str, out: list) -> None:
        for proc in self.processes:
            out.append((prefix + proc.name, proc))
        for inst_name, child in self.submodules:
            child._collect_processes(f"{prefix}{inst_name}.", out)

    def all_signals(self) -> "list[Signal]":
        """Every signal in the tree (ports first, depth-first), deduplicated."""
        seen: dict[int, Signal] = {}
        order: list[Signal] = []

        def visit(mod: "Module") -> None:
            for sig in list(mod.ports) + list(mod.signals):
                if id(sig) not in seen:
                    seen[id(sig)] = sig
                    order.append(sig)
            for _, child in mod.submodules:
                visit(child)

        visit(self)
        return order

    def all_arrays(self) -> "list[Array]":
        seen: set[int] = set()
        order: list[Array] = []

        def visit(mod: "Module") -> None:
            for arr in mod.arrays:
                if id(arr) not in seen:
                    seen.add(id(arr))
                    order.append(arr)
            for _, child in mod.submodules:
                visit(child)

        visit(self)
        return order

    def inputs(self) -> "list[Signal]":
        return [p for p in self.ports if p.direction == "in"]

    def outputs(self) -> "list[Signal]":
        return [p for p in self.ports if p.direction == "out"]

    def find_signal(self, name: str) -> Signal:
        """Look up a signal by (non-hierarchical) name anywhere in the tree."""
        for sig in self.all_signals():
            if sig.name == name:
                return sig
        raise KeyError(f"no signal named {name!r} in {self.name}")

    def stats(self) -> dict:
        """Structural statistics used by Table 1."""
        procs = [p for _, p in self.all_processes()]
        n_sync = sum(
            1 for p in procs
            if isinstance(p, SyncProcess)
            or (isinstance(p, NativeProcess) and p.kind == "sync")
        )
        n_comb = len(procs) - n_sync
        regs = registers_of(self)
        return {
            "name": self.name,
            "inputs": sum(p.width for p in self.inputs()),
            "outputs": sum(p.width for p in self.outputs()),
            "flip_flops": sum(r.width for r in regs),
            "sync_processes": n_sync,
            "comb_processes": n_comb,
            "signals": len(self.all_signals()),
        }

    def __repr__(self) -> str:
        return f"Module({self.name!r})"


# ----------------------------------------------------------------------
# IR walking utilities
# ----------------------------------------------------------------------

def walk_stmts(stmts: "list[Stmt]"):
    """Yield every statement in a statement list, pre-order, descending
    into :class:`If` / :class:`Case` bodies.  The single traversal used
    by in-place rewrites (saboteur retargeting) and the static linter,
    so neither can miss a nesting level the other handles."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then)
            yield from walk_stmts(stmt.orelse)
        elif isinstance(stmt, Case):
            for _, body in stmt.cases:
                yield from walk_stmts(body)
            yield from walk_stmts(stmt.default)


def expr_array_reads(expr: Expr, acc: "list[ArrayRead] | None" = None) -> "list[ArrayRead]":
    """All :class:`ArrayRead` nodes in an expression tree (pre-order)."""
    if acc is None:
        acc = []
    if isinstance(expr, ArrayRead):
        acc.append(expr)
        expr_array_reads(expr.index, acc)
    elif isinstance(expr, Slice):
        expr_array_reads(expr.a, acc)
    elif isinstance(expr, Concat):
        for p in expr.parts:
            expr_array_reads(p, acc)
    elif isinstance(expr, Unop):
        expr_array_reads(expr.a, acc)
    elif isinstance(expr, Binop):
        expr_array_reads(expr.a, acc)
        expr_array_reads(expr.b, acc)
    elif isinstance(expr, Mux):
        expr_array_reads(expr.sel, acc)
        expr_array_reads(expr.a, acc)
        expr_array_reads(expr.b, acc)
    return acc


def expr_signals(expr: Expr, acc: "set[Signal] | None" = None) -> "set[Signal]":
    """All signals read by an expression."""
    if acc is None:
        acc = set()
    if isinstance(expr, Signal):
        acc.add(expr)
    elif isinstance(expr, Slice):
        expr_signals(expr.a, acc)
    elif isinstance(expr, Concat):
        for p in expr.parts:
            expr_signals(p, acc)
    elif isinstance(expr, Unop):
        expr_signals(expr.a, acc)
    elif isinstance(expr, Binop):
        expr_signals(expr.a, acc)
        expr_signals(expr.b, acc)
    elif isinstance(expr, Mux):
        expr_signals(expr.sel, acc)
        expr_signals(expr.a, acc)
        expr_signals(expr.b, acc)
    elif isinstance(expr, ArrayRead):
        expr_signals(expr.index, acc)
    return acc


def stmt_read_signals(stmts: "list[Stmt]", acc: "set[Signal] | None" = None) -> "set[Signal]":
    """All signals read anywhere in a statement list."""
    if acc is None:
        acc = set()
    for stmt in stmts:
        if isinstance(stmt, Assign):
            expr_signals(stmt.expr, acc)
        elif isinstance(stmt, SliceAssign):
            expr_signals(stmt.expr, acc)
        elif isinstance(stmt, ArrayWrite):
            expr_signals(stmt.index, acc)
            expr_signals(stmt.value, acc)
        elif isinstance(stmt, If):
            expr_signals(stmt.cond, acc)
            stmt_read_signals(stmt.then, acc)
            stmt_read_signals(stmt.orelse, acc)
        elif isinstance(stmt, Case):
            expr_signals(stmt.sel, acc)
            for _, body in stmt.cases:
                stmt_read_signals(body, acc)
            stmt_read_signals(stmt.default, acc)
    return acc


def expr_arrays(expr: Expr, acc: "set[Array] | None" = None) -> "set[Array]":
    """All arrays read (via :class:`ArrayRead`) by an expression."""
    if acc is None:
        acc = set()
    if isinstance(expr, ArrayRead):
        acc.add(expr.array)
        expr_arrays(expr.index, acc)
    elif isinstance(expr, Slice):
        expr_arrays(expr.a, acc)
    elif isinstance(expr, Concat):
        for p in expr.parts:
            expr_arrays(p, acc)
    elif isinstance(expr, Unop):
        expr_arrays(expr.a, acc)
    elif isinstance(expr, Binop):
        expr_arrays(expr.a, acc)
        expr_arrays(expr.b, acc)
    elif isinstance(expr, Mux):
        expr_arrays(expr.sel, acc)
        expr_arrays(expr.a, acc)
        expr_arrays(expr.b, acc)
    return acc


def stmt_read_arrays(stmts: "list[Stmt]", acc: "set[Array] | None" = None) -> "set[Array]":
    """All arrays read anywhere in a statement list."""
    if acc is None:
        acc = set()
    for stmt in stmts:
        if isinstance(stmt, (Assign, SliceAssign)):
            expr_arrays(stmt.expr, acc)
        elif isinstance(stmt, ArrayWrite):
            expr_arrays(stmt.index, acc)
            expr_arrays(stmt.value, acc)
        elif isinstance(stmt, If):
            expr_arrays(stmt.cond, acc)
            stmt_read_arrays(stmt.then, acc)
            stmt_read_arrays(stmt.orelse, acc)
        elif isinstance(stmt, Case):
            expr_arrays(stmt.sel, acc)
            for _, body in stmt.cases:
                stmt_read_arrays(body, acc)
            stmt_read_arrays(stmt.default, acc)
    return acc


def written_signals(stmts: "list[Stmt]", acc: "set[Signal] | None" = None) -> "set[Signal]":
    """All signals assigned anywhere in a statement list."""
    if acc is None:
        acc = set()
    for stmt in stmts:
        if isinstance(stmt, (Assign, SliceAssign)):
            acc.add(stmt.target)
        elif isinstance(stmt, If):
            written_signals(stmt.then, acc)
            written_signals(stmt.orelse, acc)
        elif isinstance(stmt, Case):
            for _, body in stmt.cases:
                written_signals(body, acc)
            written_signals(stmt.default, acc)
    return acc


def written_arrays(stmts: "list[Stmt]", acc: "set[Array] | None" = None) -> "set[Array]":
    """All arrays written anywhere in a statement list."""
    if acc is None:
        acc = set()
    for stmt in stmts:
        if isinstance(stmt, ArrayWrite):
            acc.add(stmt.array)
        elif isinstance(stmt, If):
            written_arrays(stmt.then, acc)
            written_arrays(stmt.orelse, acc)
        elif isinstance(stmt, Case):
            for _, body in stmt.cases:
                written_arrays(body, acc)
            written_arrays(stmt.default, acc)
    return acc


def process_reads(proc: Process) -> "set[Signal]":
    """Signals a process reads (for sensitivity inference)."""
    if isinstance(proc, SyncProcess):
        reads = stmt_read_signals(proc.stmts) | stmt_read_signals(proc.reset_stmts)
        return reads
    if isinstance(proc, CombProcess):
        return stmt_read_signals(proc.stmts)
    if isinstance(proc, NativeProcess):
        return set(proc.reads)
    raise TypeError(f"unknown process type {type(proc)!r}")


def process_writes(proc: Process) -> "set[Signal]":
    """Signals a process writes."""
    if isinstance(proc, SyncProcess):
        return written_signals(proc.stmts) | written_signals(proc.reset_stmts)
    if isinstance(proc, CombProcess):
        return written_signals(proc.stmts)
    if isinstance(proc, NativeProcess):
        return set(proc.writes)
    raise TypeError(f"unknown process type {type(proc)!r}")


def registers_of(module: Module) -> "list[Signal]":
    """All signals written by synchronous processes in the tree."""
    regs: list[Signal] = []
    seen: set[int] = set()
    for _, proc in module.all_processes():
        if isinstance(proc, SyncProcess):
            targets = written_signals(proc.stmts) | written_signals(proc.reset_stmts)
        elif isinstance(proc, NativeProcess) and proc.kind == "sync":
            targets = set(proc.writes)
        else:
            continue
        for sig in targets:
            if id(sig) not in seen:
                seen.add(id(sig))
                regs.append(sig)
    return regs
