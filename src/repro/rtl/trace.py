"""Waveform recording and ASCII timing diagrams.

The recorder samples selected signals after every fully-settled
simulation time point and can render them as text timing diagrams, in
the style of the paper's Fig. 4.b (Razor mechanism) and Fig. 5.b
(Counter-based sensor mechanism).
"""

from __future__ import annotations

from .ir import Signal
from .kernel import Simulation
from .types import LV

__all__ = ["WaveRecorder"]


class WaveRecorder:
    """Records ``(time, value)`` changes for a set of signals."""

    def __init__(self, sim: Simulation, signals: "list[Signal]") -> None:
        self.signals = list(signals)
        self.history: dict[Signal, list[tuple[int, LV]]] = {
            sig: [(sim.time, sim.peek(sig))] for sig in self.signals
        }
        sim.watch(self._on_time_point)

    def _on_time_point(self, sim: Simulation, time: int) -> None:
        for sig in self.signals:
            value = sim.peek(sig)
            hist = self.history[sig]
            if hist[-1][1] != value:
                hist.append((time, value))

    def value_at(self, sig: Signal, time: int) -> LV:
        """Value a signal held at an absolute time."""
        result = self.history[sig][0][1]
        for t, value in self.history[sig]:
            if t > time:
                break
            result = value
        return result

    def changes(self, sig: Signal) -> "list[tuple[int, LV]]":
        """All recorded ``(time, value)`` change points of a signal."""
        return list(self.history[sig])

    def render(
        self,
        t_start: int,
        t_stop: int,
        step: int,
        *,
        name_width: int = 14,
    ) -> str:
        """Render an ASCII timing diagram sampling every ``step`` ps.

        Single-bit signals render as ``_``/``#``/``X`` rails; multi-bit
        signals render their (hex) value at each change point.
        """
        times = list(range(t_start, t_stop + 1, step))
        lines = []
        header = " " * name_width + "".join(
            f"{t // 1000:<6}" if (t % 5000 == 0) else " " * 6
            for t in times[:: max(1, len(times) // 12)]
        )
        lines.append(header.rstrip() + "  (ns)")
        for sig in self.signals:
            cells = []
            for t in times:
                value = self.value_at(sig, t)
                if sig.width == 1:
                    if value.unk:
                        cells.append("X")
                    else:
                        cells.append("#" if value.value else "_")
                else:
                    cells.append("?")
            if sig.width == 1:
                rail = "".join(cells)
            else:
                rail = self._multibit_rail(sig, times)
            lines.append(f"{sig.name:<{name_width}}{rail}")
        return "\n".join(lines)

    def _multibit_rail(self, sig: Signal, times: "list[int]") -> str:
        cells = []
        previous = None
        for t in times:
            value = self.value_at(sig, t)
            if value != previous:
                text = "X" * 2 if value.unk == (1 << sig.width) - 1 else (
                    f"{value.to_int_or(0):x}"
                )
                cells.append(f"|{text}")
                previous = value
            else:
                cells.append(".")
        return "".join(cells)
