"""Compile-once execution of RTL processes: IR -> Python closures.

This is the compiled counterpart of :mod:`repro.rtl.eval`.  At
elaboration time each :class:`~repro.rtl.ir.SyncProcess` /
:class:`~repro.rtl.ir.CombProcess` statement list is lowered to one
specialised Python function (source-generated, ``compile()``'d and
``exec``'d once), so a process activation costs a single call instead
of a recursive ``isinstance`` walk over the IR with a fresh
``EvalEnv`` per activation -- the same move a compiled-code simulator
(Verilator) makes over an event-driven interpreter, restricted to the
process granularity the kernel scheduler needs.

The compiled/interpreted contract
---------------------------------

The generated code preserves the four-valued semantics of
:mod:`repro.rtl.eval` **exactly**, bit for bit:

* every intermediate value is carried as the two integer planes of
  :class:`~repro.rtl.types.LV` (``value``/``unk``), with the plane
  equations of ``types.py`` inlined as word-parallel int arithmetic;
  ``LV`` objects are only materialised at commit boundaries (and
  interned for 1-bit results);
* X-contamination rules are reproduced verbatim: arithmetic, shifts
  by unknown amounts and comparisons contaminate, bitwise operators
  propagate per-bit with dominance, ``if``/``case`` selectors that
  evaluate to ``X`` take **no** branch;
* non-blocking assignment order is preserved: per-activation target
  slots with a written flag, later assignments overwrite earlier
  ones, reads never observe in-process writes, and a target that was
  not assigned on the taken path produces **no** pending write (so
  transport-delayed signals see exactly the events the interpreter
  would schedule);
* ``Mux`` arms and array reads stay lazy/guarded exactly as in
  ``eval_expr``;
* constant subexpressions (no signal or array reads) are folded at
  compile time through the reference interpreter itself, so both
  modes share one source of truth for literal semantics.

The interpreter remains the semantic reference: construct the
simulator with ``Simulation(..., exec_mode="interpreted")`` (or pass
``exec_mode="interpreted"`` through ``AugmentedIP.make_simulation`` /
``run_flow(rtl_exec_mode=...)``) to force it, e.g. when debugging a
suspected miscompile.  ``tests/test_compiled_kernel.py`` drives both
modes in lockstep over randomised designs and all three case-study
IPs (including X-init and delay-annotated runs) to keep the contract
honest.

Compiled closures are memoised per process object in a weak-key
cache, fingerprinted over the full statement/expression structure, so
re-elaborating the same module (e.g. one simulator per mutant in the
RTL validation loop) does not recompile -- while in-place IR rewrites
(saboteur insertion, endpoint extraction) are detected and trigger
recompilation.
"""

from __future__ import annotations

import weakref

from .eval import eval_expr
from .ir import (
    Array,
    ArrayRead,
    ArrayWrite,
    Assign,
    Binop,
    Case,
    CombProcess,
    Concat,
    Const,
    Expr,
    If,
    Mux,
    Process,
    Signal,
    Slice,
    SliceAssign,
    Stmt,
    SyncProcess,
    Unop,
)
from .types import LV, ONEBIT, lv_raw

__all__ = [
    "CompiledProcess",
    "compile_process",
    "compile_stmts",
    "clear_cache",
    "expr_is_pure",
    "fold_constant",
]


def _mask(width: int) -> int:
    return (1 << width) - 1


def expr_is_pure(expr: Expr, memo: "dict[int, bool] | None" = None) -> bool:
    """True when ``expr`` reads no signal or array state, i.e. it can
    be evaluated once at compile time.  ``memo`` (keyed by ``id``) is
    shared across calls when the caller walks many expressions of one
    design."""
    if memo is None:
        memo = {}
    key = id(expr)
    hit = memo.get(key)
    if hit is not None:
        return hit
    if isinstance(expr, (Signal, ArrayRead)):
        pure = False
    elif isinstance(expr, Const):
        pure = True
    elif isinstance(expr, Slice):
        pure = expr_is_pure(expr.a, memo)
    elif isinstance(expr, Concat):
        pure = all(expr_is_pure(p, memo) for p in expr.parts)
    elif isinstance(expr, Unop):
        pure = expr_is_pure(expr.a, memo)
    elif isinstance(expr, Binop):
        pure = expr_is_pure(expr.a, memo) and expr_is_pure(expr.b, memo)
    elif isinstance(expr, Mux):
        pure = (
            expr_is_pure(expr.sel, memo)
            and expr_is_pure(expr.a, memo)
            and expr_is_pure(expr.b, memo)
        )
    else:
        pure = False
    memo[key] = pure
    return pure


def fold_constant(expr: Expr, memo: "dict[int, bool] | None" = None) -> "LV | None":
    """Fold a signal-free subtree to its :class:`LV` value through the
    reference interpreter (the single source of truth for literal
    semantics), or ``None`` when the subtree reads state.  Shared by
    the per-process compiler and the static analyses in
    :mod:`repro.lint`."""
    return eval_expr(expr, None) if expr_is_pure(expr, memo) else None


class CompiledProcess:
    """One process lowered to Python closures.

    ``body`` (and ``reset_body`` for synchronous processes with an
    asynchronous reset) have the signature ``fn(R, A, W, AW, S=False)``
    where ``R`` is the signal-value dict, ``A`` the array store, ``W``
    the non-blocking write buffer and ``AW`` the pending array-write
    list -- the kernel's own stores, written directly.  ``S`` is the
    strict-commit flag: callers MUST pass ``True`` whenever the
    simulation has transport delays configured, so value-preserving
    writes still reach the delayed-event heap exactly as the
    interpreter schedules them (the default elides them).  The
    generated sources are kept for inspection/debugging.
    """

    __slots__ = (
        "name",
        "body",
        "body_source",
        "reset",
        "reset_level",
        "reset_body",
        "reset_source",
    )

    def __init__(
        self,
        name: str,
        body,
        body_source: str,
        *,
        reset: "Signal | None" = None,
        reset_level: int = 1,
        reset_body=None,
        reset_source: "str | None" = None,
    ) -> None:
        self.name = name
        self.body = body
        self.body_source = body_source
        self.reset = reset
        self.reset_level = reset_level
        self.reset_body = reset_body
        self.reset_source = reset_source


# ----------------------------------------------------------------------
# Ordered IR walks (deterministic first-appearance order)
# ----------------------------------------------------------------------

def _collect_expr(expr: Expr, sigs: list, arrs: list, seen: set) -> None:
    if isinstance(expr, Signal):
        if id(expr) not in seen:
            seen.add(id(expr))
            sigs.append(expr)
    elif isinstance(expr, Slice):
        _collect_expr(expr.a, sigs, arrs, seen)
    elif isinstance(expr, Concat):
        for p in expr.parts:
            _collect_expr(p, sigs, arrs, seen)
    elif isinstance(expr, Unop):
        _collect_expr(expr.a, sigs, arrs, seen)
    elif isinstance(expr, Binop):
        _collect_expr(expr.a, sigs, arrs, seen)
        _collect_expr(expr.b, sigs, arrs, seen)
    elif isinstance(expr, Mux):
        _collect_expr(expr.sel, sigs, arrs, seen)
        _collect_expr(expr.a, sigs, arrs, seen)
        _collect_expr(expr.b, sigs, arrs, seen)
    elif isinstance(expr, ArrayRead):
        if ("arr", id(expr.array)) not in seen:
            seen.add(("arr", id(expr.array)))
            arrs.append(expr.array)
        _collect_expr(expr.index, sigs, arrs, seen)


def _collect_stmts(stmts, sigs, arrs, targets, tseen, seen) -> None:
    for stmt in stmts:
        if isinstance(stmt, (Assign, SliceAssign)):
            _collect_expr(stmt.expr, sigs, arrs, seen)
            if id(stmt.target) not in tseen:
                tseen.add(id(stmt.target))
                targets.append(stmt.target)
        elif isinstance(stmt, ArrayWrite):
            _collect_expr(stmt.index, sigs, arrs, seen)
            _collect_expr(stmt.value, sigs, arrs, seen)
        elif isinstance(stmt, If):
            _collect_expr(stmt.cond, sigs, arrs, seen)
            _collect_stmts(stmt.then, sigs, arrs, targets, tseen, seen)
            _collect_stmts(stmt.orelse, sigs, arrs, targets, tseen, seen)
        elif isinstance(stmt, Case):
            _collect_expr(stmt.sel, sigs, arrs, seen)
            for _, body in stmt.cases:
                _collect_stmts(body, sigs, arrs, targets, tseen, seen)
            _collect_stmts(stmt.default, sigs, arrs, targets, tseen, seen)
        else:
            raise TypeError(f"cannot compile statement {stmt!r}")


# ----------------------------------------------------------------------
# The statement-list compiler
# ----------------------------------------------------------------------

class _FnCompiler:
    """Lowers one statement list to the source of ``fn(R, A, W, AW)``."""

    def __init__(self) -> None:
        self.lines: "list[str]" = []
        self._tmp = 0
        #: exec-namespace bindings, passed as default arguments so the
        #: generated function loads them as fast locals.
        self.bound: "dict[str, object]" = {
            "LV": LV, "LVR": lv_raw, "B": ONEBIT,
        }
        self._bound_ids: "dict[int, str]" = {}
        self.read_planes: "dict[int, tuple[str, str]]" = {}
        self.arr_words: "dict[int, str]" = {}
        self.slots: "dict[int, tuple[str, str, str]]" = {}
        self._pure: "dict[int, bool]" = {}
        self._folded: "dict[int, LV | None]" = {}

    # -- small helpers --------------------------------------------------

    def emit(self, text: str, ind: int) -> None:
        self.lines.append("    " * ind + text)

    def tmp(self, base: str = "t") -> str:
        self._tmp += 1
        return f"_{base}{self._tmp}"

    def bind(self, obj, prefix: str) -> str:
        name = self._bound_ids.get(id(obj))
        if name is None:
            name = f"{prefix}{len(self._bound_ids)}"
            self._bound_ids[id(obj)] = name
            self.bound[name] = obj
        return name

    def mk_lv(self, width: int, v: str, u: str) -> str:
        """Source constructing an ``LV`` from (masked) plane strings."""
        if width == 1:
            return f"B[({v} << 1) | {u}]"
        return f"LVR({width}, {v}, {u})"

    # -- constant folding ----------------------------------------------

    def _is_pure(self, expr: Expr) -> bool:
        return expr_is_pure(expr, self._pure)

    def fold(self, expr: Expr) -> "LV | None":
        """Evaluate a signal-free subtree once, through the reference
        interpreter (single source of truth for literal semantics)."""
        key = id(expr)
        if key in self._folded:
            return self._folded[key]
        lv = fold_constant(expr, self._pure)
        self._folded[key] = lv
        return lv

    @staticmethod
    def _lit(text: str):
        """Plane string back to an int when it is a literal."""
        return int(text) if text.isdigit() else None

    # -- expression lowering -------------------------------------------
    #
    # ``ex()`` returns ``(value_plane, unk_plane)`` source strings that
    # are always *names or int literals* (safe to mention repeatedly);
    # compound nodes emit prelude statements at the given indent.

    def ex(self, expr: Expr, ind: int) -> "tuple[str, str]":
        folded = self.fold(expr)
        if folded is not None:
            return str(folded.value), str(folded.unk)
        if isinstance(expr, Signal):
            planes = self.read_planes.get(id(expr))
            if planes is None:
                # Signal not in the hoisted read set (defensive; every
                # read is collected up front) -- read it inline.
                s = self.bind(expr, "s")
                r, tv, tu = self.tmp("r"), self.tmp(), self.tmp()
                self.emit(f"{r} = R[{s}]", ind)
                self.emit(f"{tv} = {r}.value; {tu} = {r}.unk", ind)
                planes = (tv, tu)
                self.read_planes[id(expr)] = planes
            return planes
        if isinstance(expr, Slice):
            return self._ex_slice(expr, ind)
        if isinstance(expr, Concat):
            return self._ex_concat(expr, ind)
        if isinstance(expr, Unop):
            return self._ex_unop(expr, ind)
        if isinstance(expr, Binop):
            return self._ex_binop(expr, ind)
        if isinstance(expr, Mux):
            return self._ex_mux(expr, ind)
        if isinstance(expr, ArrayRead):
            return self._ex_array_read(expr, ind)
        raise TypeError(f"cannot compile expression {expr!r}")

    def _ex_slice(self, expr: Slice, ind: int):
        av, au = self.ex(expr.a, ind)
        if expr.lo == 0 and expr.width == expr.a.width:
            return av, au
        m = _mask(expr.width)
        tv, tu = self.tmp(), self.tmp()
        if expr.lo:
            self.emit(f"{tv} = ({av} >> {expr.lo}) & {m}", ind)
            self.emit(f"{tu} = ({au} >> {expr.lo}) & {m}", ind)
        else:
            self.emit(f"{tv} = {av} & {m}", ind)
            self.emit(f"{tu} = {au} & {m}", ind)
        return tv, tu

    def _ex_concat(self, expr: Concat, ind: int):
        planes = [self.ex(p, ind) for p in expr.parts]
        accv, accu = planes[0]
        for part, (pv, pu) in zip(expr.parts[1:], planes[1:]):
            accv = f"(({accv} << {part.width}) | {pv})"
            accu = f"(({accu} << {part.width}) | {pu})"
        tv, tu = self.tmp(), self.tmp()
        self.emit(f"{tv} = {accv}", ind)
        self.emit(f"{tu} = {accu}", ind)
        return tv, tu

    def _ex_unop(self, expr: Unop, ind: int):
        av, au = self.ex(expr.a, ind)
        m = _mask(expr.a.width)
        op = expr.op
        tv, tu = self.tmp(), self.tmp()
        if op == "not":
            self.emit(f"{tv} = ~{av} & ~{au} & {m}", ind)
            return tv, au
        if op == "neg":
            self.emit(f"if {au}:", ind)
            self.emit(f"    {tv} = 0; {tu} = {m}", ind)
            self.emit("else:", ind)
            self.emit(f"    {tv} = -{av} & {m}; {tu} = 0", ind)
            return tv, tu
        if op == "red_and":
            self.emit(f"if ~{av} & ~{au} & {m}:", ind)
            self.emit(f"    {tv} = 0; {tu} = 0", ind)
            self.emit(f"elif ({av} & ~{au}) == {m}:", ind)
            self.emit(f"    {tv} = 1; {tu} = 0", ind)
            self.emit("else:", ind)
            self.emit(f"    {tv} = 0; {tu} = 1", ind)
            return tv, tu
        if op == "red_or":
            self.emit(f"if {av} & ~{au}:", ind)
            self.emit(f"    {tv} = 1; {tu} = 0", ind)
            self.emit(f"elif (~{av} & ~{au} & {m}) == {m}:", ind)
            self.emit(f"    {tv} = 0; {tu} = 0", ind)
            self.emit("else:", ind)
            self.emit(f"    {tv} = 0; {tu} = 1", ind)
            return tv, tu
        if op == "red_xor":
            self.emit(f"if {au}:", ind)
            self.emit(f"    {tv} = 0; {tu} = 1", ind)
            self.emit("else:", ind)
            self.emit(f"    {tv} = ({av}).bit_count() & 1; {tu} = 0", ind)
            return tv, tu
        if op == "bool_not":
            # OR-reduce to a truth value, then invert (see eval.py).
            self.emit(f"if {av} & ~{au}:", ind)
            self.emit(f"    {tv} = 0; {tu} = 0", ind)
            self.emit(f"elif (~{av} & ~{au} & {m}) == {m}:", ind)
            self.emit(f"    {tv} = 1; {tu} = 0", ind)
            self.emit("else:", ind)
            self.emit(f"    {tv} = 0; {tu} = 1", ind)
            return tv, tu
        raise AssertionError(op)

    def _ex_binop(self, expr: Binop, ind: int):
        op = expr.op
        av, au = self.ex(expr.a, ind)
        bv, bu = self.ex(expr.b, ind)
        m = _mask(expr.a.width)
        tv, tu = self.tmp(), self.tmp()
        if op == "and":
            self.emit(f"{tv} = ({av} & ~{au}) & ({bv} & ~{bu})", ind)
            self.emit(
                f"{tu} = ~({tv} | (~{av} & ~{au}) | (~{bv} & ~{bu})) & {m}",
                ind,
            )
            return tv, tu
        if op == "or":
            self.emit(f"{tv} = ({av} & ~{au}) | ({bv} & ~{bu})", ind)
            self.emit(
                f"{tu} = ~({tv} | ((~{av} & ~{au}) & (~{bv} & ~{bu}))) & {m}",
                ind,
            )
            return tv, tu
        if op == "xor":
            self.emit(f"{tu} = {au} | {bu}", ind)
            self.emit(
                f"{tv} = ((({av} & ~{au}) & (~{bv} & ~{bu}))"
                f" | ((~{av} & ~{au}) & ({bv} & ~{bu}))) & ~{tu} & {m}",
                ind,
            )
            return tv, tu
        if op in ("add", "sub", "mul"):
            sym = {"add": "+", "sub": "-", "mul": "*"}[op]
            self.emit(f"if {au} | {bu}:", ind)
            self.emit(f"    {tv} = 0; {tu} = {m}", ind)
            self.emit("else:", ind)
            self.emit(f"    {tv} = ({av} {sym} {bv}) & {m}; {tu} = 0", ind)
            return tv, tu
        if op in ("shl", "shr", "sar"):
            return self._ex_shift(expr, av, au, bv, bu, ind)
        # comparisons (1-bit result)
        return self._ex_compare(expr, av, au, bv, bu, ind)

    def _ex_shift(self, expr: Binop, av, au, bv, bu, ind: int):
        w = expr.a.width
        m = _mask(w)
        op = expr.op
        tv, tu = self.tmp(), self.tmp()
        lit = self._lit(bv) if self._lit(bu) == 0 else None

        def emit_body(n_src: str, ind: int) -> None:
            if op == "shl":
                self.emit(f"{tv} = ({av} << {n_src}) & {m}", ind)
                self.emit(f"{tu} = ({au} << {n_src}) & {m}", ind)
                return
            if op == "shr":
                self.emit(f"{tv} = {av} >> {n_src}", ind)
                self.emit(f"{tu} = {au} >> {n_src}", ind)
                return
            # sar: clamp to width-1, sign-extend both planes
            sign = 1 << (w - 1)
            n2 = self.tmp("n")
            self.emit(f"{n2} = {n_src} if {n_src} < {w} else {w - 1}", ind)
            f = self.tmp("f")
            self.emit(
                f"{f} = ({m} >> ({w} - {n2})) << ({w} - {n2}) "
                f"if {n2} else 0",
                ind,
            )
            self.emit(
                f"{tv} = ({av} >> {n2}) | ({f} if {av} & {sign} else 0)", ind
            )
            self.emit(
                f"{tu} = ({au} >> {n2}) | ({f} if {au} & {sign} else 0)", ind
            )

        if lit is not None:
            emit_body(str(min(lit, w + 1)), ind)
            return tv, tu
        self.emit(f"if {bu}:", ind)
        self.emit(f"    {tv} = 0; {tu} = {m}", ind)
        self.emit("else:", ind)
        n = self.tmp("n")
        self.emit(f"    {n} = {bv} if {bv} < {w + 1} else {w + 1}", ind)
        emit_body(n, ind + 1)
        return tv, tu

    def _ex_compare(self, expr: Binop, av, au, bv, bu, ind: int):
        op = expr.op
        w = expr.a.width
        tv, tu = self.tmp(), self.tmp()
        self.emit(f"if {au} | {bu}:", ind)
        self.emit(f"    {tv} = 0; {tu} = 1", ind)
        self.emit("else:", ind)
        la, lb = av, bv
        if op.endswith("_s"):
            sign = 1 << (w - 1)
            full = 1 << w
            la, lb = self.tmp("a"), self.tmp("b")
            self.emit(
                f"    {la} = {av} - {full} if {av} & {sign} else {av}", ind
            )
            self.emit(
                f"    {lb} = {bv} - {full} if {bv} & {sign} else {bv}", ind
            )
        sym = {
            "eq": "==", "ne": "!=",
            "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
            "lt_s": "<", "le_s": "<=", "gt_s": ">", "ge_s": ">=",
        }[op]
        self.emit(f"    {tv} = 1 if {la} {sym} {lb} else 0; {tu} = 0", ind)
        return tv, tu

    def _ex_mux(self, expr: Mux, ind: int):
        sv, su = self.ex(expr.sel, ind)
        m = _mask(expr.width)
        tv, tu = self.tmp(), self.tmp()
        self.emit(f"if {su}:", ind)
        self.emit(f"    {tv} = 0; {tu} = {m}", ind)
        self.emit(f"elif {sv}:", ind)
        av, au = self.ex(expr.a, ind + 1)
        self.emit(f"    {tv} = {av}; {tu} = {au}", ind)
        self.emit("else:", ind)
        bv, bu = self.ex(expr.b, ind + 1)
        self.emit(f"    {tv} = {bv}; {tu} = {bu}", ind)
        return tv, tu

    def _ex_array_read(self, expr: ArrayRead, ind: int):
        iv, iu = self.ex(expr.index, ind)
        words = self.arr_words[id(expr.array)]
        m = _mask(expr.width)
        tv, tu = self.tmp(), self.tmp()
        word = self.tmp("w")
        self.emit(f"if {iu} or {iv} >= {expr.array.depth}:", ind)
        self.emit(f"    {tv} = 0; {tu} = {m}", ind)
        self.emit("else:", ind)
        self.emit(f"    {word} = {words}[{iv}]", ind)
        self.emit(f"    {tv} = {word}.value; {tu} = {word}.unk", ind)
        return tv, tu

    # -- statement lowering --------------------------------------------

    def stmts(self, stmts: "list[Stmt]", ind: int) -> None:
        if not stmts:
            self.emit("pass", ind)
            return
        for stmt in stmts:
            if isinstance(stmt, Assign):
                v, u = self.ex(stmt.expr, ind)
                nv, nu, nw = self.slots[id(stmt.target)]
                self.emit(f"{nv} = {v}; {nu} = {u}; {nw} = True", ind)
            elif isinstance(stmt, SliceAssign):
                self._slice_assign(stmt, ind)
            elif isinstance(stmt, ArrayWrite):
                iv, iu = self.ex(stmt.index, ind)
                vv, vu = self.ex(stmt.value, ind)
                g = self.bind(stmt.array, "g")
                idx = self.mk_lv(stmt.index.width, iv, iu)
                val = self.mk_lv(stmt.array.width, vv, vu)
                self.emit(f"AW.append(({g}, {idx}, {val}))", ind)
            elif isinstance(stmt, If):
                self._if(stmt, ind)
            elif isinstance(stmt, Case):
                self._case(stmt, ind)
            else:
                raise TypeError(f"cannot compile statement {stmt!r}")

    def _slice_assign(self, stmt: SliceAssign, ind: int) -> None:
        v, u = self.ex(stmt.expr, ind)
        nv, nu, nw = self.slots[id(stmt.target)]
        tw = stmt.target.width
        hole = _mask(stmt.hi - stmt.lo + 1) << stmt.lo
        keep = ~hole & _mask(tw)
        self.emit(f"if not {nw}:", ind)
        planes = self.read_planes.get(id(stmt.target))
        if planes is not None:
            pv, pu = planes
            self.emit(f"    {nv} = {pv}; {nu} = {pu}; {nw} = True", ind)
        else:
            s = self.bind(stmt.target, "s")
            b = self.tmp("b")
            self.emit(f"    {b} = R[{s}]", ind)
            self.emit(
                f"    {nv} = {b}.value; {nu} = {b}.unk; {nw} = True", ind
            )
        self.emit(
            f"{nv} = ({nv} & {keep}) | (({v} << {stmt.lo}) & {hole})", ind
        )
        self.emit(
            f"{nu} = ({nu} & {keep}) | (({u} << {stmt.lo}) & {hole})", ind
        )

    def _if(self, stmt: If, ind: int) -> None:
        cv, cu = self.ex(stmt.cond, ind)
        if stmt.orelse:
            self.emit(f"if not {cu}:", ind)
            self.emit(f"    if {cv}:", ind)
            self.stmts(stmt.then, ind + 2)
            self.emit("    else:", ind)
            self.stmts(stmt.orelse, ind + 2)
        else:
            self.emit(f"if not {cu} and {cv}:", ind)
            self.stmts(stmt.then, ind + 1)

    def _case(self, stmt: Case, ind: int) -> None:
        sv, su = self.ex(stmt.sel, ind)
        self.emit(f"if not {su}:", ind)
        if not stmt.cases:
            self.stmts(stmt.default, ind + 1)
            return
        for pos, (label, body) in enumerate(stmt.cases):
            key = "if" if pos == 0 else "elif"
            self.emit(f"    {key} {sv} == {label}:", ind)
            self.stmts(body, ind + 2)
        if stmt.default:
            self.emit("    else:", ind)
            self.stmts(stmt.default, ind + 2)

    # -- top-level assembly --------------------------------------------

    def build(self, stmts: "list[Stmt]", name: str):
        sigs: "list[Signal]" = []
        arrs: "list[Array]" = []
        targets: "list[Signal]" = []
        _collect_stmts(stmts, sigs, arrs, targets, set(), set())

        # Prologue: hoist every signal read once (reads never observe
        # in-process writes, so all reads see the pre-activation value)
        # and the word list of every array read.  Targets are hoisted
        # too, enabling the skip-unchanged commit below.
        for sig in sigs + [t for t in targets if id(t) not in
                           {id(s) for s in sigs}]:
            s = self.bind(sig, "s")
            r = self.tmp("r")
            tv, tu = self.tmp("v"), self.tmp("u")
            self.emit(f"{r} = R[{s}]", 1)
            self.emit(f"{tv} = {r}.value; {tu} = {r}.unk", 1)
            self.read_planes[id(sig)] = (tv, tu)
        for arr in arrs:
            g = self.bind(arr, "g")
            gw = self.tmp("gw")
            self.emit(f"{gw} = A[{g}]", 1)
            self.arr_words[id(arr)] = gw
        for i, sig in enumerate(targets):
            self.slots[id(sig)] = (f"nv{i}", f"nu{i}", f"nw{i}")
            self.emit(f"nw{i} = False", 1)

        self.stmts(stmts, 1)

        # Epilogue: commit the targets the taken path assigned.  An
        # assignment that reproduces the current value is elided
        # entirely -- valid because signal values are stable within a
        # delta and each signal has a single driving process per delta
        # (the synthesisable subset) -- unless ``S`` (strict mode) is
        # set: with transport delays active, even value-preserving
        # writes must reach the delayed-event heap exactly as the
        # interpreter schedules them.
        for sig in targets:
            nv, nu, nw = self.slots[id(sig)]
            pv, pu = self.read_planes[id(sig)]
            s = self.bind(sig, "s")
            self.emit(
                f"if {nw} and (S or {nv} != {pv} or {nu} != {pu}):", 1
            )
            self.emit(f"    W[{s}] = {self.mk_lv(sig.width, nv, nu)}", 1)

        if not self.lines:
            self.emit("pass", 1)
        params = ", ".join(f"{n}={n}" for n in self.bound)
        header = f"def _fn(R, A, W, AW, S=False, {params}):"
        source = "\n".join([header] + self.lines) + "\n"
        namespace = dict(self.bound)
        exec(compile(source, f"<rtl-compiled:{name}>", "exec"), namespace)
        return namespace["_fn"], source


def compile_stmts(stmts: "list[Stmt]", name: str = "stmts"):
    """Compile a statement list; returns ``(fn, source)`` where ``fn``
    has the ``fn(R, A, W, AW, S=False)`` closure signature described
    on :class:`CompiledProcess` (``S`` = strict commit, required True
    when transport delays are configured)."""
    return _FnCompiler().build(stmts, name)


# ----------------------------------------------------------------------
# Process-level compilation with a fingerprinted weak cache
# ----------------------------------------------------------------------

def _fp_expr(expr: Expr, out: list) -> None:
    t = type(expr)
    if t is Signal:
        out.append(id(expr))
    elif t is Const:
        out.append(("c", expr.width, expr.value))
    elif t is Slice:
        out.append(("sl", expr.hi, expr.lo))
        _fp_expr(expr.a, out)
    elif t is Concat:
        out.append(("cat", len(expr.parts)))
        for p in expr.parts:
            _fp_expr(p, out)
    elif t is Unop:
        out.append(("u", expr.op))
        _fp_expr(expr.a, out)
    elif t is Binop:
        out.append(("b", expr.op))
        _fp_expr(expr.a, out)
        _fp_expr(expr.b, out)
    elif t is Mux:
        out.append("m")
        _fp_expr(expr.sel, out)
        _fp_expr(expr.a, out)
        _fp_expr(expr.b, out)
    elif t is ArrayRead:
        out.append(("ar", id(expr.array)))
        _fp_expr(expr.index, out)
    else:
        out.append(("?", id(expr)))


def _fp_stmts(stmts, out: list) -> None:
    for stmt in stmts:
        t = type(stmt)
        if t is Assign:
            out.append(("a", id(stmt.target)))
            _fp_expr(stmt.expr, out)
        elif t is SliceAssign:
            out.append(("sa", id(stmt.target), stmt.hi, stmt.lo))
            _fp_expr(stmt.expr, out)
        elif t is ArrayWrite:
            out.append(("aw", id(stmt.array)))
            _fp_expr(stmt.index, out)
            _fp_expr(stmt.value, out)
        elif t is If:
            out.append(("if", len(stmt.then), len(stmt.orelse)))
            _fp_expr(stmt.cond, out)
            _fp_stmts(stmt.then, out)
            _fp_stmts(stmt.orelse, out)
        elif t is Case:
            # Labels *and* per-body statement counts: bodies are
            # flattened below, so without the counts a statement moved
            # between arms (or into the default) would fingerprint
            # identically and reuse a stale compilation.
            out.append((
                "case",
                tuple((l, len(body)) for l, body in stmt.cases),
                len(stmt.default),
            ))
            _fp_expr(stmt.sel, out)
            for _, body in stmt.cases:
                _fp_stmts(body, out)
            _fp_stmts(stmt.default, out)
        else:
            out.append(("?", id(stmt)))


def _fingerprint(proc: Process) -> tuple:
    out: list = []
    if isinstance(proc, SyncProcess):
        out.append(("sync", id(proc.reset), proc.reset_level))
        _fp_stmts(proc.stmts, out)
        out.append("reset")
        _fp_stmts(proc.reset_stmts, out)
    else:
        out.append("comb")
        _fp_stmts(proc.stmts, out)
    return tuple(out)


_CACHE: "weakref.WeakKeyDictionary[Process, tuple]" = (
    weakref.WeakKeyDictionary()
)


def clear_cache() -> None:
    """Drop all memoised compilations (mainly for tests)."""
    _CACHE.clear()


def compile_process(proc: Process) -> CompiledProcess:
    """Compile (or fetch the memoised compilation of) one process.

    The cache is keyed weakly by the process object and validated
    against a structural fingerprint, so in-place IR rewrites between
    elaborations force a recompile instead of silently running stale
    code.
    """
    if not isinstance(proc, (SyncProcess, CombProcess)):
        raise TypeError(
            f"only SyncProcess/CombProcess can be compiled, "
            f"got {type(proc).__name__}"
        )
    fp = _fingerprint(proc)
    entry = _CACHE.get(proc)
    if entry is not None and entry[0] == fp:
        return entry[1]
    body, body_src = compile_stmts(proc.stmts, proc.name)
    if isinstance(proc, SyncProcess) and proc.reset is not None:
        reset_body, reset_src = compile_stmts(
            proc.reset_stmts, proc.name + ".reset"
        )
        compiled = CompiledProcess(
            proc.name,
            body,
            body_src,
            reset=proc.reset,
            reset_level=proc.reset_level,
            reset_body=reset_body,
            reset_source=reset_src,
        )
    else:
        compiled = CompiledProcess(proc.name, body, body_src)
    _CACHE[proc] = (fp, compiled)
    return compiled
