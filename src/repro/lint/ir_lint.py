"""Static IR linter: structural checks over :mod:`repro.rtl.ir` netlists.

Check catalog (ids as reported on :class:`~repro.lint.findings.LintFinding`):

``comb-loop`` (error)
    A cycle in the combinational dependency graph (SCC over
    read->write edges of comb processes, including native comb
    processes).  The TLM code generator's topological sort tolerates
    such cycles by falling back to source order and the event kernel
    would delta-loop on them, so results are backend-dependent.
``multi-driver`` (error / info)
    One signal written by more than one process.  When one of the
    writers is a sensor-bank native process
    (``proc.meta["sensor"]``), the conflict is the *intentional* Razor
    recovery path (the bank restores a monitored register from its
    shadow latch) and is reported at info severity instead.
``width-mismatch`` (error)
    An assignment whose operand widths no longer match.  Statement
    constructors validate widths at construction, so this only fires
    on post-construction in-place rewrites (retargeting passes).
``inferred-latch`` (warning)
    A combinational process that assigns a signal on some control
    paths but not all: the signal holds state, i.e. synthesises to a
    latch the RTL author almost never intended.
``never-written`` (warning)
    A signal read by some process but driven by none (inputs, clocks
    and reset pins excluded): it is stuck at its init value and, in a
    real netlist, would float.
``never-read`` (info)
    A signal driven but observed by nothing (outputs excluded): dead
    logic.
``x-source`` (warning)
    An :class:`~repro.rtl.ir.ArrayRead` whose index is wide enough to
    address past the array depth; an out-of-range read yields all-X,
    so this is a latent X-propagation source.
"""

from __future__ import annotations

from repro.rtl.ir import (
    Array,
    ArrayRead,
    ArrayWrite,
    Assign,
    Case,
    CombProcess,
    If,
    Module,
    NativeProcess,
    Process,
    Signal,
    SliceAssign,
    SyncProcess,
    expr_array_reads,
    process_reads,
    process_writes,
    walk_stmts,
    written_signals,
)

from .findings import LintFinding, LintReport

__all__ = ["lint_module", "CHECKS"]

CHECKS = (
    "comb-loop",
    "multi-driver",
    "width-mismatch",
    "inferred-latch",
    "never-written",
    "never-read",
    "x-source",
)


def _sig_path(module: Module, sig: Signal) -> str:
    return f"{module.name}.{sig.name}"


def _proc_stmt_lists(proc: Process):
    """The statement lists of a process (native processes have none)."""
    if isinstance(proc, SyncProcess):
        yield proc.stmts
        if proc.reset_stmts:
            yield proc.reset_stmts
    elif isinstance(proc, CombProcess):
        yield proc.stmts


def _top_exprs(stmts):
    """Every top-level expression in a statement list (conditions,
    selectors, right-hand sides, array indices)."""
    for stmt in walk_stmts(stmts):
        if isinstance(stmt, (Assign, SliceAssign)):
            yield stmt.expr
        elif isinstance(stmt, ArrayWrite):
            yield stmt.index
            yield stmt.value
        elif isinstance(stmt, If):
            yield stmt.cond
        elif isinstance(stmt, Case):
            yield stmt.sel


def lint_module(module: Module) -> LintReport:
    """Run every structural check over a module tree; returns the raw
    (unwaived) :class:`LintReport`.  Pure static analysis -- nothing is
    simulated and the IR is never modified."""
    report = LintReport(module_name=module.name)
    procs = module.all_processes()
    signals = module.all_signals()

    _check_comb_loops(module, procs, report)
    _check_multi_driver(module, procs, report)
    _check_widths(module, procs, report)
    _check_latches(module, procs, report)
    _check_connectivity(module, procs, signals, report)
    _check_x_sources(module, procs, report)
    return report


# ----------------------------------------------------------------------
# comb-loop: SCC over the combinational dependency graph
# ----------------------------------------------------------------------

def _check_comb_loops(module, procs, report) -> None:
    comb = [
        (name, p) for name, p in procs
        if isinstance(p, CombProcess)
        or (isinstance(p, NativeProcess) and p.kind == "comb")
    ]
    # Signal-level graph: an edge read -> written for every comb
    # process.  A native comb process contributes its declared
    # footprint.  Self-edges (a process reading its own output) count.
    edges: "dict[int, set[int]]" = {}
    by_id: "dict[int, Signal]" = {}
    writer_name: "dict[int, str]" = {}
    for name, proc in comb:
        reads = process_reads(proc)
        writes = process_writes(proc)
        for w in writes:
            by_id[id(w)] = w
            writer_name.setdefault(id(w), name)
        for r in reads:
            by_id[id(r)] = r
            for w in writes:
                edges.setdefault(id(r), set()).add(id(w))

    # Iterative Tarjan SCC over the signal graph.
    index_of: "dict[int, int]" = {}
    low: "dict[int, int]" = {}
    on_stack: "set[int]" = set()
    stack: "list[int]" = []
    counter = [0]
    sccs: "list[list[int]]" = []

    def strongconnect(root: int) -> None:
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)

    for node in sorted(edges):
        if node not in index_of:
            strongconnect(node)

    for scc in sccs:
        cyclic = len(scc) > 1 or (scc[0] in edges.get(scc[0], ()))
        if not cyclic:
            continue
        names = sorted(by_id[n].name for n in scc if n in by_id)
        proc_names = sorted({
            writer_name[n] for n in scc if n in writer_name
        })
        report.findings.append(LintFinding(
            check="comb-loop",
            severity="error",
            message=(
                "combinational cycle through "
                + " -> ".join(names)
            ),
            signal=", ".join(
                _sig_path(module, by_id[n]) for n in scc
                if n in by_id and by_id[n].name in names
            ) or None,
            process=", ".join(proc_names) or None,
        ))


# ----------------------------------------------------------------------
# multi-driver
# ----------------------------------------------------------------------

def _check_multi_driver(module, procs, report) -> None:
    writers: "dict[int, list[tuple[str, Process]]]" = {}
    by_id: "dict[int, Signal]" = {}
    for name, proc in procs:
        for sig in process_writes(proc):
            by_id[id(sig)] = sig
            writers.setdefault(id(sig), []).append((name, proc))
    for sig_id, procs_here in sorted(
        writers.items(), key=lambda kv: by_id[kv[0]].name
    ):
        if len(procs_here) < 2:
            continue
        sig = by_id[sig_id]
        sensor = [
            (n, p) for n, p in procs_here
            if isinstance(p, NativeProcess) and p.meta.get("sensor")
        ]
        names = ", ".join(n for n, _ in procs_here)
        if sensor:
            report.findings.append(LintFinding(
                check="multi-driver",
                severity="info",
                message=(
                    f"{sig.name} driven by {len(procs_here)} processes; "
                    "intentional sensor recovery path "
                    f"({sensor[0][1].meta.get('sensor')} bank restore)"
                ),
                signal=_sig_path(module, sig),
                process=names,
            ))
        else:
            report.findings.append(LintFinding(
                check="multi-driver",
                severity="error",
                message=(
                    f"{sig.name} driven by {len(procs_here)} processes"
                ),
                signal=_sig_path(module, sig),
                process=names,
            ))


# ----------------------------------------------------------------------
# width-mismatch (post-construction re-validation)
# ----------------------------------------------------------------------

def _check_widths(module, procs, report) -> None:
    for name, proc in procs:
        for stmts in _proc_stmt_lists(proc):
            for stmt in walk_stmts(stmts):
                problem = _stmt_width_problem(stmt)
                if problem is None:
                    continue
                sig = getattr(stmt, "target", None)
                report.findings.append(LintFinding(
                    check="width-mismatch",
                    severity="error",
                    message=problem,
                    signal=(
                        _sig_path(module, sig)
                        if isinstance(sig, Signal) else None
                    ),
                    process=name,
                ))


def _stmt_width_problem(stmt) -> "str | None":
    if isinstance(stmt, Assign):
        if stmt.expr.width != stmt.target.width:
            return (
                f"assignment to {stmt.target.name}: target is "
                f"{stmt.target.width} bits, expression is "
                f"{stmt.expr.width}"
            )
    elif isinstance(stmt, SliceAssign):
        if not (0 <= stmt.lo <= stmt.hi < stmt.target.width):
            return (
                f"slice [{stmt.hi}:{stmt.lo}] out of range for "
                f"{stmt.target.name} ({stmt.target.width} bits)"
            )
        if stmt.expr.width != stmt.hi - stmt.lo + 1:
            return (
                f"slice assignment to {stmt.target.name}"
                f"[{stmt.hi}:{stmt.lo}] expects "
                f"{stmt.hi - stmt.lo + 1} bits, got {stmt.expr.width}"
            )
    elif isinstance(stmt, ArrayWrite):
        if stmt.value.width != stmt.array.width:
            return (
                f"array write to {stmt.array.name}: word is "
                f"{stmt.array.width} bits, value is {stmt.value.width}"
            )
    return None


# ----------------------------------------------------------------------
# inferred-latch (definite-assignment analysis on comb processes)
# ----------------------------------------------------------------------

def _definitely_assigned(stmts) -> "set[int]":
    assigned: "set[int]" = set()
    for stmt in stmts:
        if isinstance(stmt, Assign):
            assigned.add(id(stmt.target))
        elif isinstance(stmt, If):
            if stmt.orelse:
                assigned |= (
                    _definitely_assigned(stmt.then)
                    & _definitely_assigned(stmt.orelse)
                )
        elif isinstance(stmt, Case):
            branches = [body for _, body in stmt.cases]
            labels = {label for label, _ in stmt.cases}
            covers_all = len(labels) == (1 << stmt.sel.width)
            if stmt.default:
                branches = branches + [stmt.default]
            elif not covers_all:
                branches = []
            if branches:
                common = _definitely_assigned(branches[0])
                for body in branches[1:]:
                    common &= _definitely_assigned(body)
                assigned |= common
        # SliceAssign never fully covers its target: conservative.
    return assigned


def _check_latches(module, procs, report) -> None:
    for name, proc in procs:
        if not isinstance(proc, CombProcess):
            continue
        written = written_signals(proc.stmts)
        definite = _definitely_assigned(proc.stmts)
        for sig in sorted(written, key=lambda s: s.name):
            if id(sig) in definite:
                continue
            report.findings.append(LintFinding(
                check="inferred-latch",
                severity="warning",
                message=(
                    f"{sig.name} is assigned on some paths of "
                    f"combinational process {proc.name} but not all: "
                    "it holds state (inferred latch)"
                ),
                signal=_sig_path(module, sig),
                process=name,
            ))


# ----------------------------------------------------------------------
# never-written / never-read
# ----------------------------------------------------------------------

def _check_connectivity(module, procs, signals, report) -> None:
    written: "set[int]" = set()
    read: "set[int]" = set()
    for _, proc in procs:
        written |= {id(s) for s in process_writes(proc)}
        read |= {id(s) for s in process_reads(proc)}
        clock = getattr(proc, "clock", None)
        if clock is not None:
            read.add(id(clock))
        reset = getattr(proc, "reset", None)
        if reset is not None:
            read.add(id(reset))
        for sig in getattr(proc, "sensitivity", None) or []:
            read.add(id(sig))

    for sig in signals:
        if id(sig) in read and id(sig) not in written:
            if sig.direction == "in" or sig.is_clock:
                continue
            report.findings.append(LintFinding(
                check="never-written",
                severity="warning",
                message=(
                    f"{sig.name} is read but has no driver: it is "
                    f"stuck at its init value ({sig.init})"
                ),
                signal=_sig_path(module, sig),
            ))
        elif id(sig) in written and id(sig) not in read:
            if sig.direction == "out":
                continue
            report.findings.append(LintFinding(
                check="never-read",
                severity="info",
                message=f"{sig.name} is driven but never observed",
                signal=_sig_path(module, sig),
            ))


# ----------------------------------------------------------------------
# x-source: array reads that can address past the depth
# ----------------------------------------------------------------------

def _check_x_sources(module, procs, report) -> None:
    seen: "set[tuple[int, int]]" = set()
    for name, proc in procs:
        for stmts in _proc_stmt_lists(proc):
            for expr in _top_exprs(stmts):
                for node in expr_array_reads(expr):
                    arr: Array = node.array
                    if (1 << node.index.width) <= arr.depth:
                        continue
                    key = (id(arr), node.index.width)
                    if key in seen:
                        continue
                    seen.add(key)
                    report.findings.append(LintFinding(
                        check="x-source",
                        severity="warning",
                        message=(
                            f"read of {arr.name} (depth {arr.depth}) "
                            f"with a {node.index.width}-bit index: "
                            "out-of-range reads yield X"
                        ),
                        signal=f"{module.name}.{arr.name}",
                        process=name,
                    ))
