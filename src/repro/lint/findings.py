"""Structured lint findings, severities and waivers.

Every check in :mod:`repro.lint.ir_lint` reports a
:class:`LintFinding` -- a plain-data record carrying the check id, a
severity, the offending signal path and the source process -- collected
into a :class:`LintReport`.  Severity model:

``error``
    structural defects that make simulation results meaningless or
    divergent across backends (combinational loops, conflicting
    drivers, post-construction width corruption).  ``repro lint``
    exits non-zero on any unwaived error, and
    :func:`repro.flow.run_flow` refuses to start a mutation campaign
    over them.
``warning``
    latent hazards that simulate deterministically but usually hide a
    design mistake (inferred latches, undriven-but-read signals,
    X-propagation sources).
``info``
    observations worth surfacing, not acting on (dead signals,
    intentional sensor multi-drivers).

Intentional findings are suppressed through *waivers*: per-IP JSON
files (``src/repro/lint/waivers/<ip>.json``) holding a list of
``{"check": ..., "signal": ..., "process": ..., "reason": ...}``
objects whose fields are ``fnmatch`` patterns (missing fields default
to ``"*"``).  Waived findings are kept on the report (``waived``), so
``repro lint`` can show what was suppressed and why.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SEVERITIES",
    "LintFinding",
    "LintReport",
    "LintGateError",
    "Waiver",
    "apply_waivers",
    "load_waiver_file",
    "waivers_for_ip",
]

SEVERITIES = ("error", "warning", "info")

#: Directory holding the shipped per-IP waiver files.
WAIVER_DIR = Path(__file__).resolve().parent / "waivers"


class LintGateError(RuntimeError):
    """Raised by the pre-campaign lint gate on unwaived error-severity
    findings; carries the offending :class:`LintReport`."""

    def __init__(self, report: "LintReport") -> None:
        errors = report.errors()
        lines = "; ".join(f.one_line() for f in errors)
        super().__init__(
            f"lint gate: {len(errors)} error finding(s) on "
            f"{report.module_name}: {lines}"
        )
        self.report = report


@dataclass(frozen=True)
class LintFinding:
    """One structural finding."""

    check: str                     # e.g. "comb-loop", "multi-driver"
    severity: str                  # "error" | "warning" | "info"
    message: str
    signal: "str | None" = None    # signal path, e.g. "plasma.pc"
    process: "str | None" = None   # hierarchical source-process name

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def one_line(self) -> str:
        where = self.signal or self.process or "-"
        return f"[{self.severity}] {self.check} {where}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "severity": self.severity,
            "message": self.message,
            "signal": self.signal,
            "process": self.process,
        }


@dataclass(frozen=True)
class Waiver:
    """An fnmatch-pattern suppression rule for intentional findings."""

    check: str = "*"
    signal: str = "*"
    process: str = "*"
    reason: str = ""

    def matches(self, finding: LintFinding) -> bool:
        return (
            fnmatch.fnmatchcase(finding.check, self.check)
            and fnmatch.fnmatchcase(finding.signal or "", self.signal)
            and fnmatch.fnmatchcase(finding.process or "", self.process)
        )


@dataclass
class LintReport:
    """All findings for one linted module."""

    module_name: str
    findings: "list[LintFinding]" = field(default_factory=list)
    #: Findings suppressed by a waiver, with the waiver that matched.
    waived: "list[tuple[LintFinding, Waiver]]" = field(default_factory=list)

    def by_severity(self, severity: str) -> "list[LintFinding]":
        return [f for f in self.findings if f.severity == severity]

    def errors(self) -> "list[LintFinding]":
        return self.by_severity("error")

    def warnings(self) -> "list[LintFinding]":
        return self.by_severity("warning")

    @property
    def ok(self) -> bool:
        """True when no unwaived error-severity finding remains."""
        return not self.errors()

    def counts(self) -> "dict[str, int]":
        out = {s: 0 for s in SEVERITIES}
        for f in self.findings:
            out[f.severity] += 1
        return out

    def to_dict(self) -> dict:
        return {
            "module": self.module_name,
            "ok": self.ok,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
            "waived": [
                {**f.to_dict(), "waiver_reason": w.reason}
                for f, w in self.waived
            ],
        }


def apply_waivers(
    report: LintReport, waivers: "list[Waiver]"
) -> LintReport:
    """Split a report's findings on the waiver list: matched findings
    move to ``waived`` (keeping the matching waiver), the rest stay.
    Returns a new report; the input is untouched."""
    kept: "list[LintFinding]" = []
    waived = list(report.waived)
    for finding in report.findings:
        hit = next((w for w in waivers if w.matches(finding)), None)
        if hit is None:
            kept.append(finding)
        else:
            waived.append((finding, hit))
    return LintReport(
        module_name=report.module_name, findings=kept, waived=waived
    )


def load_waiver_file(path) -> "list[Waiver]":
    """Load a waiver JSON file (a list of pattern objects)."""
    entries = json.loads(Path(path).read_text())
    if not isinstance(entries, list):
        raise ValueError(f"waiver file {path} must hold a JSON list")
    waivers = []
    for entry in entries:
        unknown = set(entry) - {"check", "signal", "process", "reason"}
        if unknown:
            raise ValueError(
                f"waiver file {path}: unknown keys {sorted(unknown)}"
            )
        waivers.append(Waiver(**entry))
    return waivers


def waivers_for_ip(ip_name: str) -> "list[Waiver]":
    """The shipped waivers of one case-study IP (empty when the IP has
    no waiver file -- the common, clean case)."""
    path = WAIVER_DIR / f"{ip_name}.json"
    if not path.exists():
        return []
    return load_waiver_file(path)
