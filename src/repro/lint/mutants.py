"""Static mutant analysis: equivalent / duplicate detection before any
simulation.

The ``MUTANTS`` table of an injected TLM model
(:class:`repro.abstraction.GeneratedTlm`) is analysed purely
structurally:

**Equivalent mutants** (``equivalent_static``) are entries whose
activation provably cannot change the observable stream, so their
verdict can be *synthesised* from the golden trace by replaying the
exact judging logic of :mod:`repro.mutation.analysis` over it:

* ``hf-first-tick`` -- dual-scheduler (Counter) mutants with
  ``hf_tick == 1``: the postponed endpoint commit is applied
  immediately after the main delta cycle, *before* the first HF
  sample, which is exactly where the golden commit is first
  observable.  The two schedules are indistinguishable.
* ``frozen-target`` -- mutants whose target signal is structurally
  frozen at its init value: every driver statement is a plain
  assignment whose right-hand side constant-folds (through
  :func:`repro.rtl.compile.fold_constant`, i.e. the reference
  interpreter) to the signal's init, and no native process or partial
  write touches it.  Postponing writes that never change the value is
  a no-op.  For Razor campaigns this additionally requires a *clean*
  golden trace (no stall/error anywhere): a stalling golden would
  desynchronise the driver's re-presentation handshake against the
  synthesised verdict.  (By construction golden Razor traces are
  clean -- main and shadow always capture the same committed value --
  so the guard is defensive, not restrictive.)

Mutants that merely never *apply* (wrong kind for the scheduler) are
**not** equivalent: activation alone diverts every write of the target
to the postponement slot, so such mutants behave as stuck-at-init
faults.

**Duplicate mutants** share a behavioural fingerprint: the single
(Razor) scheduler consults only ``(kind, target)`` and its judge adds
nothing spec-dependent; the dual (Counter) scheduler consults
``(target, hf_tick)`` and its judge adds ``register`` (measurement
lane + LUT threshold).  Entries with equal fingerprints produce
field-identical verdicts, so one representative executes and the rest
clone its outcome (sharing its content-addressed
:class:`~repro.mutation.cache.ResultCache` entry via write-back).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtl.compile import fold_constant
from repro.rtl.ir import (
    Assign,
    CombProcess,
    Module,
    NativeProcess,
    SliceAssign,
    SyncProcess,
    walk_stmts,
)

__all__ = [
    "PrunePlan",
    "plan_pruning",
    "frozen_signal_names",
    "equivalence_confirmed",
    "judge_equivalent",
    "clone_outcome",
]


@dataclass(frozen=True)
class PrunePlan:
    """Static classification of one ``MUTANTS`` table."""

    total: int
    #: mutant index -> reason ("hf-first-tick" | "frozen-target").
    equivalent: "dict[int, str]" = field(default_factory=dict)
    #: duplicate index -> representative (lowest) index with the same
    #: behavioural fingerprint.
    duplicate_of: "dict[int, int]" = field(default_factory=dict)

    @property
    def equivalent_count(self) -> int:
        return len(self.equivalent)

    @property
    def duplicate_count(self) -> int:
        return len(self.duplicate_of)

    @property
    def prunable(self) -> int:
        return self.equivalent_count + self.duplicate_count

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "equivalent": {
                str(i): r for i, r in sorted(self.equivalent.items())
            },
            "duplicate_of": {
                str(i): rep for i, rep in sorted(self.duplicate_of.items())
            },
            "prunable": self.prunable,
        }


def _fingerprint(spec, scheduler_kind: str):
    if scheduler_kind == "dual":
        # The dual scheduler ignores ``kind``; the judge reads the
        # register's lane and threshold.
        return (spec.target, spec.hf_tick, spec.register)
    # The single scheduler ignores ``hf_tick``; the Razor judge reads
    # no further spec field.
    return (spec.kind, spec.target)


def frozen_signal_names(module: Module, candidates: "set[str]") -> "set[str]":
    """The subset of ``candidates`` (signal names) provably frozen at
    their init value: every driver statement anywhere in the tree is a
    plain :class:`Assign` whose expression constant-folds to the init,
    with no native-process or partial (slice) writes."""
    if not candidates:
        return set()
    state: "dict[str, bool]" = {}
    sig_of: "dict[str, object]" = {}
    memo: "dict[int, bool]" = {}
    for _, proc in module.all_processes():
        if isinstance(proc, NativeProcess):
            for sig in proc.writes:
                if sig.name in candidates:
                    state[sig.name] = False
            continue
        stmt_lists = [proc.stmts]
        if isinstance(proc, SyncProcess) and proc.reset_stmts:
            stmt_lists.append(proc.reset_stmts)
        if not isinstance(proc, (SyncProcess, CombProcess)):
            continue
        for stmts in stmt_lists:
            for stmt in walk_stmts(stmts):
                target = getattr(stmt, "target", None)
                if target is None or target.name not in candidates:
                    continue
                name = target.name
                sig_of[name] = target
                if state.get(name) is False:
                    continue
                if not isinstance(stmt, Assign) or isinstance(
                    stmt, SliceAssign
                ):
                    state[name] = False
                    continue
                folded = fold_constant(stmt.expr, memo)
                frozen = (
                    folded is not None
                    and folded.unk == 0
                    and folded.value == target.init
                )
                state[name] = state.get(name, True) and frozen
    # A candidate with no IR driver at all keeps its init value too --
    # but only when no native process writes it (handled above).
    out = set()
    for name in candidates:
        if state.get(name, None) is True:
            out.add(name)
        elif name not in state:
            # Never written anywhere: frozen iff the signal exists.
            try:
                module.find_signal(name)
            except KeyError:
                continue
            out.add(name)
    return out


def plan_pruning(
    injected, sensor_type: str, *, module: "Module | None" = None
) -> PrunePlan:
    """Classify every ``MUTANTS`` entry of an injected model.

    ``module`` (the augmented IR the model was generated from) enables
    the ``frozen-target`` fold analysis; without it only the
    scheduler-level criteria apply.  The plan is advisory:
    :func:`repro.mutation.campaign.prepare_campaign` re-confirms each
    equivalence against the golden trace
    (:func:`equivalence_confirmed`) before pruning.
    """
    specs = injected.mutants
    scheduler_kind = injected.scheduler_kind
    equivalent: "dict[int, str]" = {}

    if sensor_type == "counter" and scheduler_kind == "dual":
        for i, spec in enumerate(specs):
            if spec.hf_tick == 1:
                equivalent[i] = "hf-first-tick"

    if module is not None:
        frozen = frozen_signal_names(
            module, {spec.target for spec in specs}
        )
        for i, spec in enumerate(specs):
            if i not in equivalent and spec.target in frozen:
                equivalent[i] = "frozen-target"

    duplicate_of: "dict[int, int]" = {}
    if (sensor_type, scheduler_kind) in (
        ("razor", "single"), ("counter", "dual")
    ):
        first: "dict[tuple, int]" = {}
        for i, spec in enumerate(specs):
            if i in equivalent:
                continue
            fp = _fingerprint(spec, scheduler_kind)
            rep = first.setdefault(fp, i)
            if rep != i:
                duplicate_of[i] = rep

    return PrunePlan(
        total=len(specs),
        equivalent=equivalent,
        duplicate_of=duplicate_of,
    )


def equivalence_confirmed(reason: str, sensor_type: str, golden) -> bool:
    """Final gate before an equivalence is acted on, evaluated at
    prepare time against the campaign's golden trace."""
    if reason == "frozen-target" and sensor_type == "razor":
        # A stalling golden would desynchronise the stall handshake
        # between the synthesised verdict and an executed run.
        return all(
            not outs.get("razor_stall", 0) and not outs.get("razor_err", 0)
            for outs in golden.full
        )
    return True


def judge_equivalent(
    index: int,
    spec,
    golden,
    *,
    sensor_type: str,
    recovery: bool,
    tap_order,
    thresholds: "dict[str, int] | None" = None,
):
    """Synthesise the verdict of a statically-equivalent mutant by
    judging the golden trace as the mutant stream -- the byte-identical
    replay of :func:`repro.mutation.analysis._run_razor_mutant` /
    ``_run_counter_mutant`` for a mutant whose stream *is* the golden
    stream."""
    from repro.mutation.analysis import MutantOutcome

    if sensor_type == "razor":
        error_seen = any(
            outs.get("razor_err", 0) for outs in golden.full
        )
        corrected = None
        if recovery:
            # The mutant stream is the golden stream, so the golden
            # functional trace is trivially a subsequence of it; the
            # executed path's ``error_seen and _is_subsequence(...)``
            # reduces to ``error_seen`` (False for a confirmed
            # equivalence -- clean golden).
            corrected = bool(error_seen)
        return MutantOutcome(
            index=index,
            kind=spec.kind,
            target=spec.target,
            register=spec.register,
            hf_tick=spec.hf_tick,
            killed=False,
            detected=error_seen,
            error_risen=error_seen,
            corrected=corrected,
            meas_val=None,
            first_divergence=None,
            timed_out=False,
        )

    tap_order = list(tap_order)
    thresholds = thresholds or {}
    tap_index = tap_order.index(spec.register)
    lo = 8 * tap_index
    threshold = thresholds.get(spec.register, 8)
    detected = False
    risen = False
    measured = None
    killed = False
    for outs in golden.full:
        meas = (outs.get("meas_val", 0) >> lo) & 0xFF
        if meas:
            detected = True
            measured = meas
            if meas == spec.hf_tick:
                killed = True
        if meas and meas > threshold:
            risen = True
        if outs.get("metric_ok", 1) == 0:
            risen = True
    return MutantOutcome(
        index=index,
        kind=spec.kind,
        target=spec.target,
        register=spec.register,
        hf_tick=spec.hf_tick,
        killed=killed,
        detected=detected,
        error_risen=risen,
        corrected=None,
        meas_val=measured,
        first_divergence=None,
        timed_out=False,
    )


def clone_outcome(source, index: int, spec):
    """Clone a representative's verdict onto a duplicate mutant: spec
    fields come from the duplicate's own table entry, verdict fields
    from the executed (or cached) representative."""
    from repro.mutation.analysis import MutantOutcome

    return MutantOutcome(
        index=index,
        kind=spec.kind,
        target=spec.target,
        register=spec.register,
        hf_tick=spec.hf_tick,
        killed=source.killed,
        detected=source.detected,
        error_risen=source.error_risen,
        corrected=source.corrected,
        meas_val=source.meas_val,
        first_divergence=source.first_divergence,
        timed_out=source.timed_out,
    )
