"""Static analysis tier: IR linting and pre-execution mutant pruning.

Two halves, both decidable from the IR / generated model alone -- no
simulation:

* :mod:`repro.lint.ir_lint` -- structural netlist checks
  (combinational loops, multi-drivers, width corruption, inferred
  latches, connectivity, X-sources) producing structured
  :class:`~repro.lint.findings.LintFinding` records with a severity
  model and per-IP waivers;
* :mod:`repro.lint.mutants` -- static classification of a ``MUTANTS``
  table into equivalent / duplicate / must-execute entries, consumed
  by :func:`repro.mutation.campaign.prepare_campaign` under
  ``lint_prune=True`` to cut executed-mutant counts without changing
  a single verdict.

Exposed on the CLI as ``repro lint`` and run automatically in front of
every :func:`repro.flow.run_flow` mutation campaign.
"""

from .findings import (
    SEVERITIES,
    LintFinding,
    LintGateError,
    LintReport,
    Waiver,
    apply_waivers,
    load_waiver_file,
    waivers_for_ip,
)
from .ir_lint import CHECKS, lint_module
from .mutants import (
    PrunePlan,
    clone_outcome,
    equivalence_confirmed,
    frozen_signal_names,
    judge_equivalent,
    plan_pruning,
)

__all__ = [
    "SEVERITIES",
    "CHECKS",
    "LintFinding",
    "LintGateError",
    "LintReport",
    "Waiver",
    "apply_waivers",
    "load_waiver_file",
    "waivers_for_ip",
    "lint_module",
    "PrunePlan",
    "plan_pruning",
    "frozen_signal_names",
    "equivalence_confirmed",
    "judge_equivalent",
    "clone_outcome",
]
