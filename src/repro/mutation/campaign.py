"""Sharded, parallel mutation-campaign engine (paper Section 7 at scale).

A mutation campaign is embarrassingly parallel -- one golden/injected
lockstep run per mutant -- but the naive loop pays two mutant-
independent costs per mutant: the golden stimulus run (depends only on
stimuli and the recovery bit) and the ``exec`` of the generated model
source.  The engine amortises both:

1. the golden trace is computed **once per campaign**
   (:func:`repro.mutation.analysis.compute_golden_trace`) and shipped
   to workers inside the shard payload;
2. mutants are batched into **shards**; the generated source is
   compiled once per shard/worker process (the
   :meth:`GeneratedTlm.compiled_class` cache), so each mutant pays only
   object construction plus its own simulation;
3. shard execution goes through the streaming cross-IP scheduler
   (:mod:`repro.mutation.scheduler`): ``workers > 1`` runs the shards
   on a persistent :class:`~concurrent.futures.ProcessPoolExecutor`
   owned by a :class:`~repro.mutation.scheduler.CampaignScheduler`
   (pass ``scheduler=`` to share one pool across many campaigns);
   every shard is a picklable plain-data work unit, and outcomes are
   merged back in mutant-index order, so the report is
   **deterministic** -- byte-identical outcomes and percentages for
   any ``workers`` / ``shard_size`` combination, including the inline
   ``workers=1`` path;
4. with a :class:`~repro.mutation.cache.ResultCache` (``cache=``),
   previously-computed verdicts are **replayed** instead of executed:
   :func:`prepare_campaign` probes the cache per mutant, shards only
   the misses, and carries the replayed outcomes (plus per-mutant
   entry keys for write-back) on the :class:`PreparedCampaign`.  The
   golden trace itself is cached the same way (keyed by the golden
   model's structural fingerprint and the stimuli hash), so a warm
   preparation skips the golden simulation entirely -- pass the golden
   as a :class:`GeneratedTlm` (not a bare factory) to make it
   fingerprintable.

This module owns campaign *preparation* (tap-order resolution, golden
memoisation, shard construction -- :func:`prepare_campaign`) and the
blocking :func:`run_campaign` entry point; streaming consumption lives
in :func:`repro.mutation.scheduler.iter_campaign`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.abstraction import GeneratedTlm
from repro.obs import (
    REGISTRY,
    TRACER,
    shard_capture,
    shard_span,
    trace_span,
)

from .analysis import (
    GoldenTrace,
    MutationReport,
    _run_counter_mutant,
    _run_razor_mutant,
    compute_golden_trace,
)

__all__ = [
    "CampaignShard",
    "PreparedCampaign",
    "ShardResult",
    "prepare_campaign",
    "resolve_tap_order",
    "run_campaign",
    "shard_indices",
]


class ShardResult(list):
    """A shard's outcome list plus its observability side-channel.

    Behaves exactly like the plain ``list`` every existing consumer
    expects (merging, sorting, pickling across the process pool), with
    one extra attribute: ``obs``, the worker-side
    :class:`~repro.obs.tracer.ShardCapture` payload of relative-offset
    spans and counters.  Code that concatenates or re-wraps outcome
    lists may silently degrade the result to ``list`` -- readers must
    treat ``obs`` as best-effort (``getattr(result, "obs", None)``).
    """

    def __init__(self, outcomes=(), obs: "dict | None" = None) -> None:
        super().__init__(outcomes)
        self.obs = obs


@dataclass(frozen=True)
class CampaignShard:
    """One picklable unit of campaign work: a batch of mutant indices
    plus everything a worker process needs to evaluate them."""

    indices: "tuple[int, ...]"
    injected: GeneratedTlm
    stimuli: "tuple[dict, ...]"
    golden: GoldenTrace
    sensor_type: str
    recovery: bool
    tap_order: "tuple[str, ...]"
    #: Execution mode: ``"serial"`` runs one full simulation per
    #: mutant; ``"batched"`` runs sweeps of ``batch_size`` mutants
    #: sharing one base simulation with fork-on-divergence
    #: (:mod:`repro.mutation.batched`).  Batched and serial shards
    #: produce field-identical outcomes.
    exec_strategy: str = "serial"
    batch_size: "int | None" = None
    #: Record worker-side spans (:mod:`repro.obs`) during execution.
    #: Counters are collected regardless (cheap integer adds); spans
    #: only when the coordinator prepared the campaign with tracing
    #: enabled.  Pure metadata -- never changes an outcome.
    trace: bool = False

    #: A TLM shard is always safe to pickle to a worker process.
    inline_only = False
    #: ... and safe to serialise to a *remote* worker daemon too: every
    #: field is plain data with a lossless JSON codec
    #: (:func:`repro.service.api.encode_shard`).  RTL-validation shards
    #: stay ``remote_ok = False`` until their rebuild recipes travel.
    remote_ok = True

    def run(self) -> "list":
        """Evaluate the shard's mutants (in a worker process, or inline
        for ``workers=1``).  The generated model class is compiled once
        per process via the :meth:`GeneratedTlm.compiled_class` cache;
        each mutant then pays only construction + simulation.

        Returns a :class:`ShardResult`: the outcome list plus the
        shard's obs payload (execution counters always; relative-
        offset spans when ``self.trace``)."""
        with shard_capture(self.trace) as capture:
            capture.count("shards", 1)
            capture.count("mutants", len(self.indices))
            with shard_span(
                "shard.execute",
                mutants=len(self.indices),
                strategy=self.exec_strategy,
            ):
                outcomes = self._execute()
            return ShardResult(outcomes, obs=capture.payload())

    def _execute(self) -> "list":
        if self.exec_strategy == "batched":
            from .batched import run_batched_shard

            return run_batched_shard(self)
        stimuli = list(self.stimuli)
        tap_order = list(self.tap_order)
        specs = self.injected.mutants
        outcomes = []
        for index in self.indices:
            mutant = self.injected.instantiate()
            mutant.activate_mutant(index)
            spec = specs[index]
            with shard_span("mutant", index=index):
                if self.sensor_type == "razor":
                    outcomes.append(_run_razor_mutant(
                        index, spec, mutant, stimuli, self.recovery,
                        self.golden
                    ))
                else:
                    outcomes.append(_run_counter_mutant(
                        index, spec, mutant, stimuli, tap_order,
                        self.golden
                    ))
        return outcomes


@dataclass(frozen=True)
class PreparedCampaign:
    """A campaign lowered to its schedulable form: the shard list plus
    the metadata needed to assemble the merged :class:`MutationReport`.
    Preparation (golden trace, tap order, cache probe) runs once in the
    parent; the shards are then free to execute on any pool,
    interleaved with shards from other campaigns.

    When prepared against a :class:`~repro.mutation.cache.ResultCache`,
    ``shards`` covers only the cache *misses*; the replayed verdicts
    sit in ``cached_outcomes`` (already re-indexed) and ``cache_keys``
    maps every mutant index to its entry key so executed outcomes can
    be written back.

    When prepared with ``lint_prune=True``, statically-equivalent
    mutants are judged against the golden trace at prepare time
    (``pruned_outcomes``) and duplicates of still-executing
    representatives are deferred (``duplicate_of`` /
    ``duplicate_specs``) until :meth:`expand_outcomes` clones them as
    their representative's shard completes.  Pruned mutants are
    *counted, never dropped*: every mutant index appears in the final
    outcome stream either way.
    """

    ip_name: str
    sensor_type: str
    variant: str
    cycles_per_run: int
    total: int
    shards: "tuple[CampaignShard, ...]"
    #: Verdicts replayed from the result cache (empty without a cache).
    cached_outcomes: "tuple" = ()
    #: Per-mutant-index entry keys (``None`` when prepared cache-less).
    cache_keys: "tuple[str, ...] | None" = None
    cache_hits: "int | None" = None
    cache_misses: "int | None" = None
    #: ``True`` when the golden trace was replayed from the cache,
    #: ``False`` when it was simulated (and stored), ``None`` when no
    #: cache was in play or the golden was not fingerprintable.
    golden_cached: "bool | None" = None
    #: Verdicts synthesised at prepare time by the static mutant
    #: analyzer (equivalents judged against the golden trace, plus
    #: duplicates whose representative's verdict was already known).
    pruned_outcomes: "tuple" = ()
    #: Deferred duplicates: mutant index -> representative index that
    #: is still scheduled for execution; resolved by
    #: :meth:`expand_outcomes`.
    duplicate_of: "dict[int, int] | None" = None
    #: Deferred duplicates' own table entries (spec fields for the
    #: cloned outcome).
    duplicate_specs: "dict[int, object] | None" = None
    pruned_equivalent: "int | None" = None
    pruned_duplicate: "int | None" = None

    @property
    def replayed_outcomes(self) -> "tuple":
        """Every verdict known before any shard executes: cache
        replays plus statically-pruned verdicts, absorbed as one
        virtual first shard."""
        return tuple(self.cached_outcomes) + tuple(self.pruned_outcomes)

    @property
    def total_shards(self) -> int:
        """Shard count as seen by progress accounting: the executable
        shards plus one virtual "replay shard" when replayed (cached
        or pruned) outcomes exist (they are absorbed as a single
        batch)."""
        return len(self.shards) + (1 if self.replayed_outcomes else 0)

    def expand_outcomes(self, outcomes) -> "list":
        """Resolve deferred duplicates against a freshly-executed
        outcome batch: clones of any representative present in the
        batch are appended (spec fields from the duplicate's own
        table entry, verdict fields from the representative).  Returns
        a new list; call before cache write-back so the clones earn
        their own cache entries."""
        if not self.duplicate_of:
            return list(outcomes)
        from repro.lint.mutants import clone_outcome

        by_index = {o.index: o for o in outcomes}
        expanded = list(outcomes)
        for dup, rep in sorted(self.duplicate_of.items()):
            source = by_index.get(rep)
            if source is None:
                continue
            expanded.append(
                clone_outcome(source, dup, self.duplicate_specs[dup])
            )
        return expanded

    def build_report(self, outcomes, seconds: float = 0.0) -> MutationReport:
        """Assemble the deterministic merged report: outcomes sorted
        by mutant index plus the campaign metadata captured at prepare
        time.  Shared by :func:`run_campaign` and
        :func:`repro.mutation.scheduler.run_benchmark_suite` so their
        reports cannot drift apart."""
        report = MutationReport(
            ip_name=self.ip_name,
            sensor_type=self.sensor_type,
            variant=self.variant,
            outcomes=sorted(outcomes, key=lambda o: o.index),
            cycles_per_run=self.cycles_per_run,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            golden_cache_hit=self.golden_cached,
            pruned_equivalent=self.pruned_equivalent,
            pruned_duplicate=self.pruned_duplicate,
        )
        report.seconds = seconds
        return report


def _shard_sequence(
    indices: "list[int]", workers: int, shard_size: "int | None" = None
) -> "list[tuple[int, ...]]":
    """Partition an arbitrary index list into contiguous shards (the
    cache-aware generalisation of :func:`shard_indices`: after a cache
    probe the miss indices need not be contiguous)."""
    if not indices:
        return []
    if shard_size is None:
        shard_size = -(-len(indices) // max(1, workers))
    shard_size = max(1, shard_size)
    return [
        tuple(indices[lo:lo + shard_size])
        for lo in range(0, len(indices), shard_size)
    ]


def shard_indices(
    total: int, workers: int, shard_size: "int | None" = None
) -> "list[tuple[int, ...]]":
    """Partition ``range(total)`` into contiguous shards.

    The default is one shard per worker: delay mutants are homogeneous
    in cost (same stimuli length each), so finer batching only
    multiplies the per-shard setup (pickling the golden trace,
    dispatching the task).  Pass ``shard_size`` explicitly to trade
    load balance against that overhead.
    """
    if total <= 0:
        return []
    return _shard_sequence(list(range(total)), workers, shard_size)


def resolve_tap_order(
    injected: GeneratedTlm,
    sensor_type: str,
    tap_order: "list[str] | tuple[str, ...] | None" = None,
) -> "tuple[str, ...]":
    """Resolve the ``meas_val`` lane order of a Counter campaign.

    Only the Counter mutant runner reads the tap order, so for every
    other sensor type this returns without touching the generated
    source -- probing ``COUNTER_TAP_ORDER`` through
    :meth:`GeneratedTlm.compiled_class` would pay a full generated-
    source compile in the parent process that razor campaigns never
    need (their workers compile in their own processes).
    """
    if sensor_type != "counter":
        return tuple(tap_order or ())
    if tap_order is None:
        tap_order = list(
            getattr(injected.compiled_class(), "COUNTER_TAP_ORDER", ())
        ) or None
    if tap_order is None:
        seen: "list[str]" = []
        for spec in injected.mutants:
            if spec.register not in seen:
                seen.append(spec.register)
        tap_order = seen
    return tuple(tap_order)


def _run_shard(shard) -> "list":
    """Execute any shard kind by its ``run()`` method.  Module-level so
    :class:`~concurrent.futures.ProcessPoolExecutor` submissions can
    pickle it by reference; dispatches to :meth:`CampaignShard.run` or
    :meth:`repro.mutation.rtl_validation.RtlValidationShard.run`."""
    return shard.run()


def _resolve_golden_model(golden):
    """Accept a factory callable, a :class:`GeneratedTlm`, or an
    already-constructed model object."""
    if isinstance(golden, GeneratedTlm):
        return golden.instantiate()
    if callable(golden):
        return golden()
    return golden


def prepare_campaign(
    golden,
    injected: GeneratedTlm,
    stimuli: "list[dict[str, int]]",
    *,
    ip_name: str = "ip",
    sensor_type: str = "razor",
    recovery: bool = True,
    tap_order: "list[str] | None" = None,
    workers: int = 1,
    shard_size: "int | None" = None,
    batch_size: "int | None" = None,
    cache=None,
    lint_prune: bool = False,
    prune_plan=None,
) -> PreparedCampaign:
    """Run the mutant-independent campaign setup once.

    Simulates the golden model (exactly once, regardless of the mutant
    count -- or not at all, when ``cache`` holds the golden trace for
    this (golden fingerprint, stimuli) pair and ``golden`` is a
    fingerprintable :class:`GeneratedTlm`), resolves the Counter tap
    order lazily (razor campaigns skip the generated-source probe
    entirely), probes ``cache`` (a
    :class:`~repro.mutation.cache.ResultCache`) for already-known
    verdicts, and partitions the remaining mutant indices into
    :class:`CampaignShard` work units sized for ``workers`` /
    ``shard_size``.  ``batch_size=K`` marks the shards for batched
    execution (sweeps of K mutants sharing one base simulation --
    :mod:`repro.mutation.batched`); verdicts and cache write-back keys
    are identical either way.

    With ``lint_prune=True`` the static mutant analyzer
    (:func:`repro.lint.mutants.plan_pruning`, or a precomputed
    ``prune_plan`` -- pass one built with the augmented IR module to
    enable the ``frozen-target`` fold analysis) additionally removes
    provably-equivalent mutants from the executable set: their
    verdicts are synthesised against the golden trace right here and
    written back to ``cache`` like executed ones.  Duplicate mutants
    clone their representative's verdict -- immediately when it is
    already known (cache hit or equivalent), otherwise deferred to
    :meth:`PreparedCampaign.expand_outcomes` as the representative's
    shard completes.

    Returns a :class:`PreparedCampaign` whose ``shards`` cover exactly
    the cache misses minus the pruned set (every mutant, when ``cache``
    is ``None`` and ``lint_prune`` is off); replayed verdicts are
    carried in ``cached_outcomes`` / ``pruned_outcomes``, re-indexed
    to the current mutant table.
    """
    # One span covers the whole preparation; explicit enter/exit keeps
    # the long single-exit body un-indented.
    _span = trace_span("campaign.prepare", ip=ip_name, sensor=sensor_type)
    _span.__enter__()
    specs = injected.mutants
    taps = resolve_tap_order(injected, sensor_type, tap_order)

    golden_trace = None
    golden_cached = None
    golden_key = None
    if cache is not None and isinstance(golden, GeneratedTlm):
        from .cache import (
            decode_golden_trace,
            golden_entry_key,
            model_fingerprint,
            stimuli_hash,
        )

        golden_key = golden_entry_key(
            model_fingerprint(golden),
            stimuli_hash(stimuli),
            sensor_type,
            recovery=recovery,
        )
        payload = cache.get(golden_key)
        if payload is not None:
            golden_trace = decode_golden_trace(payload)
            golden_cached = True
            REGISTRY.inc("repro_golden_cache_hits_total")
    if golden_trace is None:
        golden_model = _resolve_golden_model(golden)
        with trace_span("campaign.golden", ip=ip_name,
                        cycles=len(stimuli)):
            golden_trace = compute_golden_trace(
                golden_model, stimuli, sensor_type=sensor_type,
                recovery=recovery
            )
        if golden_key is not None:
            from .cache import encode_golden_trace

            cache.put(
                golden_key, encode_golden_trace(golden_trace, ip=ip_name)
            )
            golden_cached = False
            REGISTRY.inc("repro_golden_cache_misses_total")

    cached_outcomes: "list" = []
    cache_keys = None
    hits = misses = None
    miss_indices = list(range(len(specs)))
    if cache is not None:
        from .cache import (
            decode_outcome,
            golden_trace_hash,
            model_fingerprint,
            mutant_entry_key,
            stimuli_hash,
        )

        model_fp = model_fingerprint(injected)
        stim_hash = stimuli_hash(stimuli)
        golden_hash = golden_trace_hash(golden_trace)
        cache_keys = tuple(
            mutant_entry_key(
                model_fp, stim_hash, golden_hash, sensor_type, spec,
                recovery=recovery, tap_order=taps,
            )
            for spec in specs
        )
        with trace_span("campaign.cache_probe", ip=ip_name,
                        keys=len(cache_keys)):
            cached_outcomes, miss_indices = cache.probe(
                cache_keys, decode_outcome
            )
        hits = len(cached_outcomes)
        misses = len(miss_indices)

    pruned_outcomes: "list" = []
    duplicate_of: "dict[int, int]" = {}
    duplicate_specs: "dict[int, object]" = {}
    pruned_equivalent = pruned_duplicate = None
    if lint_prune:
        from repro.lint.mutants import (
            clone_outcome,
            equivalence_confirmed,
            judge_equivalent,
            plan_pruning,
        )

        plan = (
            prune_plan
            if prune_plan is not None
            else plan_pruning(injected, sensor_type)
        )
        thresholds = None
        if sensor_type == "counter":
            thresholds = dict(
                getattr(injected.compiled_class(), "LUT_THRESHOLDS", {})
                or {}
            )
        confirmed = {
            i: reason
            for i, reason in plan.equivalent.items()
            if equivalence_confirmed(reason, sensor_type, golden_trace)
        }
        # Plan-level counters (all table entries, not just cache
        # misses) so cold and warm runs of the same campaign report
        # identical prune statistics.
        pruned_equivalent = len(confirmed)
        pruned_duplicate = len(plan.duplicate_of)
        known = {o.index: o for o in cached_outcomes}
        remaining: "list[int]" = []
        for i in miss_indices:
            if i in confirmed:
                outcome = judge_equivalent(
                    i,
                    specs[i],
                    golden_trace,
                    sensor_type=sensor_type,
                    recovery=recovery,
                    tap_order=taps,
                    thresholds=thresholds,
                )
                pruned_outcomes.append(outcome)
                known[i] = outcome
            else:
                remaining.append(i)
        miss_indices = []
        for i in remaining:
            rep = plan.duplicate_of.get(i)
            if rep is None:
                miss_indices.append(i)
            elif rep in known:
                outcome = clone_outcome(known[rep], i, specs[i])
                pruned_outcomes.append(outcome)
                known[i] = outcome
            else:
                # Representative still executes; clone when its shard
                # lands (PreparedCampaign.expand_outcomes).
                duplicate_of[i] = rep
                duplicate_specs[i] = specs[i]
        if cache is not None and pruned_outcomes:
            from .cache import encode_outcome

            for outcome in pruned_outcomes:
                payload = encode_outcome(outcome)
                payload["ip"] = ip_name
                cache.put(cache_keys[outcome.index], payload)

    shards = tuple(
        CampaignShard(
            indices=indices,
            injected=injected,
            stimuli=tuple(stimuli),
            golden=golden_trace,
            sensor_type=sensor_type,
            recovery=recovery,
            tap_order=taps,
            exec_strategy="batched" if batch_size else "serial",
            batch_size=batch_size or None,
            trace=TRACER.enabled,
        )
        for indices in _shard_sequence(miss_indices, workers, shard_size)
    )
    prepared = PreparedCampaign(
        ip_name=ip_name,
        sensor_type=sensor_type,
        variant=injected.variant,
        cycles_per_run=len(stimuli),
        total=len(specs),
        shards=shards,
        cached_outcomes=tuple(cached_outcomes),
        cache_keys=cache_keys,
        cache_hits=hits,
        cache_misses=misses,
        golden_cached=golden_cached,
        pruned_outcomes=tuple(pruned_outcomes),
        duplicate_of=duplicate_of or None,
        duplicate_specs=duplicate_specs or None,
        pruned_equivalent=pruned_equivalent,
        pruned_duplicate=pruned_duplicate,
    )
    _span.__exit__(None, None, None)
    return prepared


def run_campaign(
    golden,
    injected: GeneratedTlm,
    stimuli: "list[dict[str, int]]",
    *,
    ip_name: str = "ip",
    sensor_type: str = "razor",
    recovery: bool = True,
    tap_order: "list[str] | None" = None,
    workers: int = 1,
    shard_size: "int | None" = None,
    batch_size: "int | None" = None,
    scheduler=None,
    progress=None,
    cache=None,
    lint_prune: bool = False,
    prune_plan=None,
) -> MutationReport:
    """Run a full mutation campaign, sharded across ``workers``.

    Args:
        golden: the non-injected reference -- a factory callable, a
            :class:`GeneratedTlm`, or a constructed model.  It is
            simulated exactly once, regardless of the mutant count;
            pass the :class:`GeneratedTlm` itself to let a warm
            ``cache`` replay the golden trace and skip even that one
            simulation.
        injected: the ADAM-generated description; a fresh instance is
            created per mutant from a per-process compiled class.
        stimuli: per-cycle ``name -> int`` input vectors.
        workers / shard_size: shard sizing (``shard_size`` overrides
            the automatic one-shard-per-worker batching).
        batch_size: execute each shard as batched sweeps of this many
            mutants sharing one base simulation, with
            fork-on-divergence and early-kill
            (:mod:`repro.mutation.batched`); ``None`` keeps the
            one-simulation-per-mutant serial path.  Verdicts are
            field-identical either way.
        scheduler: a
            :class:`~repro.mutation.scheduler.CampaignScheduler` to
            reuse one persistent worker pool across many campaigns
            instead of paying a pool spin-up per call (``workers`` is
            then ignored in favour of ``scheduler.workers``).
        progress: per-shard
            :class:`~repro.mutation.scheduler.CampaignProgress`
            callback.
        cache: a :class:`~repro.mutation.cache.ResultCache`; known
            verdicts are replayed instead of executed, and fresh
            verdicts are written back as their shards complete.
        lint_prune: run the static mutant analyzer
            (:mod:`repro.lint.mutants`) at prepare time; provably
            equivalent mutants are judged against the golden trace
            without simulation and duplicates clone their
            representative's verdict.  ``prune_plan`` optionally
            supplies a precomputed (module-aware)
            :class:`~repro.lint.mutants.PrunePlan`.

    Returns:
        The merged :class:`MutationReport`, with ``cache_hits`` /
        ``cache_misses`` set when a cache was in play and
        ``pruned_equivalent`` / ``pruned_duplicate`` set when
        ``lint_prune`` was on.

    Determinism: the report is byte-identical on every scored field
    for any ``workers`` / ``shard_size`` / ``batch_size`` /
    ``scheduler`` combination, for any cache state (cold, warm, or
    partial), and for ``lint_prune`` on vs off.
    """
    from .scheduler import (
        _ephemeral_width,
        _leased_scheduler,
        stream_shard_batches,
    )

    started = time.perf_counter()
    with trace_span("campaign.run", ip=ip_name, sensor=sensor_type):
        prepared = prepare_campaign(
            golden,
            injected,
            stimuli,
            ip_name=ip_name,
            sensor_type=sensor_type,
            recovery=recovery,
            tap_order=tap_order,
            workers=workers if scheduler is None else scheduler.workers,
            shard_size=shard_size,
            batch_size=batch_size,
            cache=cache,
            lint_prune=lint_prune,
            prune_plan=prune_plan,
        )
        outcomes: "list" = []
        obs_counters: "dict[str, int]" = {}
        with _leased_scheduler(
            scheduler, _ephemeral_width(workers, prepared)
        ) as sched:
            for batch, _snapshot in stream_shard_batches(
                sched, prepared, progress=progress, cache=cache
            ):
                outcomes.extend(batch)
                payload = getattr(batch, "obs", None) or {}
                for name, value in sorted(
                    (payload.get("counters") or {}).items()
                ):
                    obs_counters[name] = obs_counters.get(name, 0) + value
    report = prepared.build_report(
        outcomes, seconds=time.perf_counter() - started
    )
    if obs_counters:
        report.obs = {"counters": obs_counters}
    return report
