"""Sharded, parallel mutation-campaign engine (paper Section 7 at scale).

A mutation campaign is embarrassingly parallel -- one golden/injected
lockstep run per mutant -- but the naive loop pays two mutant-
independent costs per mutant: the golden stimulus run (depends only on
stimuli and the recovery bit) and the ``exec`` of the generated model
source.  The engine amortises both:

1. the golden trace is computed **once per campaign**
   (:func:`repro.mutation.analysis.compute_golden_trace`) and shipped
   to workers inside the shard payload;
2. mutants are batched into **shards**; the generated source is
   compiled once per shard/worker process (the
   :meth:`GeneratedTlm.compiled_class` cache), so each mutant pays only
   object construction plus its own simulation;
3. with ``workers > 1`` the shards run on a
   :class:`concurrent.futures.ProcessPoolExecutor`; every shard is a
   picklable plain-data work unit, and outcomes are merged back in
   mutant-index order, so the report is **deterministic** -- byte-
   identical outcomes and percentages for any ``workers`` /
   ``shard_size`` combination, including the inline ``workers=1``
   path.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.abstraction import GeneratedTlm

from .analysis import (
    GoldenTrace,
    MutationReport,
    _run_counter_mutant,
    _run_razor_mutant,
    compute_golden_trace,
)

__all__ = ["CampaignShard", "run_campaign", "shard_indices"]


@dataclass(frozen=True)
class CampaignShard:
    """One picklable unit of campaign work: a batch of mutant indices
    plus everything a worker process needs to evaluate them."""

    indices: "tuple[int, ...]"
    injected: GeneratedTlm
    stimuli: "tuple[dict, ...]"
    golden: GoldenTrace
    sensor_type: str
    recovery: bool
    tap_order: "tuple[str, ...]"


def shard_indices(
    total: int, workers: int, shard_size: "int | None" = None
) -> "list[tuple[int, ...]]":
    """Partition ``range(total)`` into contiguous shards.

    The default is one shard per worker: delay mutants are homogeneous
    in cost (same stimuli length each), so finer batching only
    multiplies the per-shard setup (pickling the golden trace,
    dispatching the task).  Pass ``shard_size`` explicitly to trade
    load balance against that overhead.
    """
    if total <= 0:
        return []
    if shard_size is None:
        shard_size = -(-total // max(1, workers))
    shard_size = max(1, shard_size)
    return [
        tuple(range(lo, min(lo + shard_size, total)))
        for lo in range(0, total, shard_size)
    ]


def _run_shard(shard: CampaignShard) -> "list":
    """Evaluate one shard (runs in a worker process, or inline for
    ``workers=1``).  The generated model class is compiled once per
    process via the :meth:`GeneratedTlm.compiled_class` cache; each
    mutant then pays only construction + simulation."""
    stimuli = list(shard.stimuli)
    tap_order = list(shard.tap_order)
    specs = shard.injected.mutants
    outcomes = []
    for index in shard.indices:
        mutant = shard.injected.instantiate()
        mutant.activate_mutant(index)
        spec = specs[index]
        if shard.sensor_type == "razor":
            outcomes.append(_run_razor_mutant(
                index, spec, mutant, stimuli, shard.recovery, shard.golden
            ))
        else:
            outcomes.append(_run_counter_mutant(
                index, spec, mutant, stimuli, tap_order, shard.golden
            ))
    return outcomes


def _resolve_golden_model(golden):
    """Accept a factory callable, a :class:`GeneratedTlm`, or an
    already-constructed model object."""
    if isinstance(golden, GeneratedTlm):
        return golden.instantiate()
    if callable(golden):
        return golden()
    return golden


def run_campaign(
    golden,
    injected: GeneratedTlm,
    stimuli: "list[dict[str, int]]",
    *,
    ip_name: str = "ip",
    sensor_type: str = "razor",
    recovery: bool = True,
    tap_order: "list[str] | None" = None,
    workers: int = 1,
    shard_size: "int | None" = None,
) -> MutationReport:
    """Run a full mutation campaign, sharded across ``workers``.

    ``golden`` is the non-injected reference: a factory callable, a
    :class:`GeneratedTlm`, or a constructed model.  It is simulated
    exactly once, regardless of the mutant count.  ``injected`` is the
    ADAM-generated description; a fresh instance is created per mutant
    from a per-process compiled class.  ``shard_size`` overrides the
    automatic one-shard-per-worker batching.
    """
    started = time.perf_counter()
    specs = injected.mutants

    if tap_order is None:
        tap_order = list(
            getattr(injected.compiled_class(), "COUNTER_TAP_ORDER", ())
        ) or None
    if tap_order is None:
        seen: "list[str]" = []
        for spec in specs:
            if spec.register not in seen:
                seen.append(spec.register)
        tap_order = seen

    golden_model = _resolve_golden_model(golden)
    golden_trace = compute_golden_trace(
        golden_model, stimuli, sensor_type=sensor_type, recovery=recovery
    )

    shards = [
        CampaignShard(
            indices=indices,
            injected=injected,
            stimuli=tuple(stimuli),
            golden=golden_trace,
            sensor_type=sensor_type,
            recovery=recovery,
            tap_order=tuple(tap_order),
        )
        for indices in shard_indices(len(specs), workers, shard_size)
    ]

    if workers <= 1 or len(shards) <= 1:
        shard_results = [_run_shard(shard) for shard in shards]
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(shards))
        ) as pool:
            shard_results = list(pool.map(_run_shard, shards))

    outcomes = [o for chunk in shard_results for o in chunk]
    outcomes.sort(key=lambda o: o.index)

    report = MutationReport(
        ip_name=ip_name,
        sensor_type=sensor_type,
        variant=injected.variant,
        outcomes=outcomes,
        cycles_per_run=len(stimuli),
    )
    report.seconds = time.perf_counter() - started
    return report
