"""Sharded, parallel mutation-campaign engine (paper Section 7 at scale).

A mutation campaign is embarrassingly parallel -- one golden/injected
lockstep run per mutant -- but the naive loop pays two mutant-
independent costs per mutant: the golden stimulus run (depends only on
stimuli and the recovery bit) and the ``exec`` of the generated model
source.  The engine amortises both:

1. the golden trace is computed **once per campaign**
   (:func:`repro.mutation.analysis.compute_golden_trace`) and shipped
   to workers inside the shard payload;
2. mutants are batched into **shards**; the generated source is
   compiled once per shard/worker process (the
   :meth:`GeneratedTlm.compiled_class` cache), so each mutant pays only
   object construction plus its own simulation;
3. shard execution goes through the streaming cross-IP scheduler
   (:mod:`repro.mutation.scheduler`): ``workers > 1`` runs the shards
   on a persistent :class:`~concurrent.futures.ProcessPoolExecutor`
   owned by a :class:`~repro.mutation.scheduler.CampaignScheduler`
   (pass ``scheduler=`` to share one pool across many campaigns);
   every shard is a picklable plain-data work unit, and outcomes are
   merged back in mutant-index order, so the report is
   **deterministic** -- byte-identical outcomes and percentages for
   any ``workers`` / ``shard_size`` combination, including the inline
   ``workers=1`` path;
4. with a :class:`~repro.mutation.cache.ResultCache` (``cache=``),
   previously-computed verdicts are **replayed** instead of executed:
   :func:`prepare_campaign` probes the cache per mutant, shards only
   the misses, and carries the replayed outcomes (plus per-mutant
   entry keys for write-back) on the :class:`PreparedCampaign`.  The
   golden trace itself is cached the same way (keyed by the golden
   model's structural fingerprint and the stimuli hash), so a warm
   preparation skips the golden simulation entirely -- pass the golden
   as a :class:`GeneratedTlm` (not a bare factory) to make it
   fingerprintable.

This module owns campaign *preparation* (tap-order resolution, golden
memoisation, shard construction -- :func:`prepare_campaign`) and the
blocking :func:`run_campaign` entry point; streaming consumption lives
in :func:`repro.mutation.scheduler.iter_campaign`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.abstraction import GeneratedTlm

from .analysis import (
    GoldenTrace,
    MutationReport,
    _run_counter_mutant,
    _run_razor_mutant,
    compute_golden_trace,
)

__all__ = [
    "CampaignShard",
    "PreparedCampaign",
    "prepare_campaign",
    "resolve_tap_order",
    "run_campaign",
    "shard_indices",
]


@dataclass(frozen=True)
class CampaignShard:
    """One picklable unit of campaign work: a batch of mutant indices
    plus everything a worker process needs to evaluate them."""

    indices: "tuple[int, ...]"
    injected: GeneratedTlm
    stimuli: "tuple[dict, ...]"
    golden: GoldenTrace
    sensor_type: str
    recovery: bool
    tap_order: "tuple[str, ...]"

    #: A TLM shard is always safe to pickle to a worker process.
    inline_only = False
    #: ... and safe to serialise to a *remote* worker daemon too: every
    #: field is plain data with a lossless JSON codec
    #: (:func:`repro.service.api.encode_shard`).  RTL-validation shards
    #: stay ``remote_ok = False`` until their rebuild recipes travel.
    remote_ok = True

    def run(self) -> "list":
        """Evaluate the shard's mutants (in a worker process, or inline
        for ``workers=1``).  The generated model class is compiled once
        per process via the :meth:`GeneratedTlm.compiled_class` cache;
        each mutant then pays only construction + simulation."""
        stimuli = list(self.stimuli)
        tap_order = list(self.tap_order)
        specs = self.injected.mutants
        outcomes = []
        for index in self.indices:
            mutant = self.injected.instantiate()
            mutant.activate_mutant(index)
            spec = specs[index]
            if self.sensor_type == "razor":
                outcomes.append(_run_razor_mutant(
                    index, spec, mutant, stimuli, self.recovery, self.golden
                ))
            else:
                outcomes.append(_run_counter_mutant(
                    index, spec, mutant, stimuli, tap_order, self.golden
                ))
        return outcomes


@dataclass(frozen=True)
class PreparedCampaign:
    """A campaign lowered to its schedulable form: the shard list plus
    the metadata needed to assemble the merged :class:`MutationReport`.
    Preparation (golden trace, tap order, cache probe) runs once in the
    parent; the shards are then free to execute on any pool,
    interleaved with shards from other campaigns.

    When prepared against a :class:`~repro.mutation.cache.ResultCache`,
    ``shards`` covers only the cache *misses*; the replayed verdicts
    sit in ``cached_outcomes`` (already re-indexed) and ``cache_keys``
    maps every mutant index to its entry key so executed outcomes can
    be written back.
    """

    ip_name: str
    sensor_type: str
    variant: str
    cycles_per_run: int
    total: int
    shards: "tuple[CampaignShard, ...]"
    #: Verdicts replayed from the result cache (empty without a cache).
    cached_outcomes: "tuple" = ()
    #: Per-mutant-index entry keys (``None`` when prepared cache-less).
    cache_keys: "tuple[str, ...] | None" = None
    cache_hits: "int | None" = None
    cache_misses: "int | None" = None
    #: ``True`` when the golden trace was replayed from the cache,
    #: ``False`` when it was simulated (and stored), ``None`` when no
    #: cache was in play or the golden was not fingerprintable.
    golden_cached: "bool | None" = None

    @property
    def total_shards(self) -> int:
        """Shard count as seen by progress accounting: the executable
        shards plus one virtual "replay shard" when cached outcomes
        exist (they are absorbed as a single batch)."""
        return len(self.shards) + (1 if self.cached_outcomes else 0)

    def build_report(self, outcomes, seconds: float = 0.0) -> MutationReport:
        """Assemble the deterministic merged report: outcomes sorted
        by mutant index plus the campaign metadata captured at prepare
        time.  Shared by :func:`run_campaign` and
        :func:`repro.mutation.scheduler.run_benchmark_suite` so their
        reports cannot drift apart."""
        report = MutationReport(
            ip_name=self.ip_name,
            sensor_type=self.sensor_type,
            variant=self.variant,
            outcomes=sorted(outcomes, key=lambda o: o.index),
            cycles_per_run=self.cycles_per_run,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            golden_cache_hit=self.golden_cached,
        )
        report.seconds = seconds
        return report


def _shard_sequence(
    indices: "list[int]", workers: int, shard_size: "int | None" = None
) -> "list[tuple[int, ...]]":
    """Partition an arbitrary index list into contiguous shards (the
    cache-aware generalisation of :func:`shard_indices`: after a cache
    probe the miss indices need not be contiguous)."""
    if not indices:
        return []
    if shard_size is None:
        shard_size = -(-len(indices) // max(1, workers))
    shard_size = max(1, shard_size)
    return [
        tuple(indices[lo:lo + shard_size])
        for lo in range(0, len(indices), shard_size)
    ]


def shard_indices(
    total: int, workers: int, shard_size: "int | None" = None
) -> "list[tuple[int, ...]]":
    """Partition ``range(total)`` into contiguous shards.

    The default is one shard per worker: delay mutants are homogeneous
    in cost (same stimuli length each), so finer batching only
    multiplies the per-shard setup (pickling the golden trace,
    dispatching the task).  Pass ``shard_size`` explicitly to trade
    load balance against that overhead.
    """
    if total <= 0:
        return []
    return _shard_sequence(list(range(total)), workers, shard_size)


def resolve_tap_order(
    injected: GeneratedTlm,
    sensor_type: str,
    tap_order: "list[str] | tuple[str, ...] | None" = None,
) -> "tuple[str, ...]":
    """Resolve the ``meas_val`` lane order of a Counter campaign.

    Only the Counter mutant runner reads the tap order, so for every
    other sensor type this returns without touching the generated
    source -- probing ``COUNTER_TAP_ORDER`` through
    :meth:`GeneratedTlm.compiled_class` would pay a full generated-
    source compile in the parent process that razor campaigns never
    need (their workers compile in their own processes).
    """
    if sensor_type != "counter":
        return tuple(tap_order or ())
    if tap_order is None:
        tap_order = list(
            getattr(injected.compiled_class(), "COUNTER_TAP_ORDER", ())
        ) or None
    if tap_order is None:
        seen: "list[str]" = []
        for spec in injected.mutants:
            if spec.register not in seen:
                seen.append(spec.register)
        tap_order = seen
    return tuple(tap_order)


def _run_shard(shard) -> "list":
    """Execute any shard kind by its ``run()`` method.  Module-level so
    :class:`~concurrent.futures.ProcessPoolExecutor` submissions can
    pickle it by reference; dispatches to :meth:`CampaignShard.run` or
    :meth:`repro.mutation.rtl_validation.RtlValidationShard.run`."""
    return shard.run()


def _resolve_golden_model(golden):
    """Accept a factory callable, a :class:`GeneratedTlm`, or an
    already-constructed model object."""
    if isinstance(golden, GeneratedTlm):
        return golden.instantiate()
    if callable(golden):
        return golden()
    return golden


def prepare_campaign(
    golden,
    injected: GeneratedTlm,
    stimuli: "list[dict[str, int]]",
    *,
    ip_name: str = "ip",
    sensor_type: str = "razor",
    recovery: bool = True,
    tap_order: "list[str] | None" = None,
    workers: int = 1,
    shard_size: "int | None" = None,
    cache=None,
) -> PreparedCampaign:
    """Run the mutant-independent campaign setup once.

    Simulates the golden model (exactly once, regardless of the mutant
    count -- or not at all, when ``cache`` holds the golden trace for
    this (golden fingerprint, stimuli) pair and ``golden`` is a
    fingerprintable :class:`GeneratedTlm`), resolves the Counter tap
    order lazily (razor campaigns skip the generated-source probe
    entirely), probes ``cache`` (a
    :class:`~repro.mutation.cache.ResultCache`) for already-known
    verdicts, and partitions the remaining mutant indices into
    :class:`CampaignShard` work units sized for ``workers`` /
    ``shard_size``.

    Returns a :class:`PreparedCampaign` whose ``shards`` cover exactly
    the cache misses (every mutant, when ``cache`` is ``None``);
    replayed verdicts are carried in ``cached_outcomes``, re-indexed
    to the current mutant table.
    """
    specs = injected.mutants
    taps = resolve_tap_order(injected, sensor_type, tap_order)

    golden_trace = None
    golden_cached = None
    golden_key = None
    if cache is not None and isinstance(golden, GeneratedTlm):
        from .cache import (
            decode_golden_trace,
            golden_entry_key,
            model_fingerprint,
            stimuli_hash,
        )

        golden_key = golden_entry_key(
            model_fingerprint(golden),
            stimuli_hash(stimuli),
            sensor_type,
            recovery=recovery,
        )
        payload = cache.get(golden_key)
        if payload is not None:
            golden_trace = decode_golden_trace(payload)
            golden_cached = True
    if golden_trace is None:
        golden_model = _resolve_golden_model(golden)
        golden_trace = compute_golden_trace(
            golden_model, stimuli, sensor_type=sensor_type, recovery=recovery
        )
        if golden_key is not None:
            from .cache import encode_golden_trace

            cache.put(
                golden_key, encode_golden_trace(golden_trace, ip=ip_name)
            )
            golden_cached = False

    cached_outcomes: "list" = []
    cache_keys = None
    hits = misses = None
    miss_indices = list(range(len(specs)))
    if cache is not None:
        from .cache import (
            decode_outcome,
            golden_trace_hash,
            model_fingerprint,
            mutant_entry_key,
            stimuli_hash,
        )

        model_fp = model_fingerprint(injected)
        stim_hash = stimuli_hash(stimuli)
        golden_hash = golden_trace_hash(golden_trace)
        cache_keys = tuple(
            mutant_entry_key(
                model_fp, stim_hash, golden_hash, sensor_type, spec,
                recovery=recovery, tap_order=taps,
            )
            for spec in specs
        )
        cached_outcomes, miss_indices = cache.probe(
            cache_keys, decode_outcome
        )
        hits = len(cached_outcomes)
        misses = len(miss_indices)

    shards = tuple(
        CampaignShard(
            indices=indices,
            injected=injected,
            stimuli=tuple(stimuli),
            golden=golden_trace,
            sensor_type=sensor_type,
            recovery=recovery,
            tap_order=taps,
        )
        for indices in _shard_sequence(miss_indices, workers, shard_size)
    )
    return PreparedCampaign(
        ip_name=ip_name,
        sensor_type=sensor_type,
        variant=injected.variant,
        cycles_per_run=len(stimuli),
        total=len(specs),
        shards=shards,
        cached_outcomes=tuple(cached_outcomes),
        cache_keys=cache_keys,
        cache_hits=hits,
        cache_misses=misses,
        golden_cached=golden_cached,
    )


def run_campaign(
    golden,
    injected: GeneratedTlm,
    stimuli: "list[dict[str, int]]",
    *,
    ip_name: str = "ip",
    sensor_type: str = "razor",
    recovery: bool = True,
    tap_order: "list[str] | None" = None,
    workers: int = 1,
    shard_size: "int | None" = None,
    scheduler=None,
    progress=None,
    cache=None,
) -> MutationReport:
    """Run a full mutation campaign, sharded across ``workers``.

    Args:
        golden: the non-injected reference -- a factory callable, a
            :class:`GeneratedTlm`, or a constructed model.  It is
            simulated exactly once, regardless of the mutant count;
            pass the :class:`GeneratedTlm` itself to let a warm
            ``cache`` replay the golden trace and skip even that one
            simulation.
        injected: the ADAM-generated description; a fresh instance is
            created per mutant from a per-process compiled class.
        stimuli: per-cycle ``name -> int`` input vectors.
        workers / shard_size: shard sizing (``shard_size`` overrides
            the automatic one-shard-per-worker batching).
        scheduler: a
            :class:`~repro.mutation.scheduler.CampaignScheduler` to
            reuse one persistent worker pool across many campaigns
            instead of paying a pool spin-up per call (``workers`` is
            then ignored in favour of ``scheduler.workers``).
        progress: per-shard
            :class:`~repro.mutation.scheduler.CampaignProgress`
            callback.
        cache: a :class:`~repro.mutation.cache.ResultCache`; known
            verdicts are replayed instead of executed, and fresh
            verdicts are written back as their shards complete.

    Returns:
        The merged :class:`MutationReport`, with ``cache_hits`` /
        ``cache_misses`` set when a cache was in play.

    Determinism: the report is byte-identical on every scored field
    for any ``workers`` / ``shard_size`` / ``scheduler`` combination
    and for any cache state (cold, warm, or partial).
    """
    from .scheduler import _ephemeral_width, _leased_scheduler, stream_prepared

    started = time.perf_counter()
    prepared = prepare_campaign(
        golden,
        injected,
        stimuli,
        ip_name=ip_name,
        sensor_type=sensor_type,
        recovery=recovery,
        tap_order=tap_order,
        workers=workers if scheduler is None else scheduler.workers,
        shard_size=shard_size,
        cache=cache,
    )
    with _leased_scheduler(
        scheduler, _ephemeral_width(workers, prepared)
    ) as sched:
        outcomes = list(stream_prepared(
            sched, prepared, progress=progress, cache=cache
        ))
    return prepared.build_report(
        outcomes, seconds=time.perf_counter() - started
    )
