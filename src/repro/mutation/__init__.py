"""Delay mutants: ADAM injection, TLM campaign, RTL cross-validation."""

from .adam import delta_tick_plan, inject_mutants
from .analysis import (
    SENSOR_PORTS,
    MutantOutcome,
    MutationReport,
    run_mutation_analysis,
)
from .rtl_validation import (
    RtlMutantOutcome,
    RtlValidationReport,
    validate_at_rtl,
)
from .saboteurs import Saboteur, insert_saboteur

__all__ = [
    "Saboteur",
    "insert_saboteur",
    "delta_tick_plan",
    "inject_mutants",
    "SENSOR_PORTS",
    "MutantOutcome",
    "MutationReport",
    "run_mutation_analysis",
    "RtlMutantOutcome",
    "RtlValidationReport",
    "validate_at_rtl",
]
