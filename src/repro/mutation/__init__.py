"""Delay mutants: ADAM injection, TLM campaign, RTL cross-validation.

Campaign execution goes through the sharded engine in
:mod:`repro.mutation.campaign`: the golden stimulus run is memoised
once per campaign (it is mutant-independent), mutants are batched into
shards so the generated-model source is compiled once per shard, and a
``workers`` knob distributes the shards across a
:class:`concurrent.futures.ProcessPoolExecutor` -- ``workers=1`` runs
inline, ``workers=N`` shards across ``N`` processes with a
deterministic, order-independent merge (byte-identical
:class:`MutationReport` for any worker count).
:func:`run_mutation_analysis` keeps the historical signature and
forwards to :func:`repro.mutation.campaign.run_campaign`; both accept
``workers=`` / ``shard_size=``.
"""

from .adam import delta_tick_plan, inject_mutants
from .analysis import (
    SENSOR_PORTS,
    GoldenTrace,
    MutantOutcome,
    MutationReport,
    compute_golden_trace,
    run_mutation_analysis,
)
from .campaign import CampaignShard, run_campaign, shard_indices
from .rtl_validation import (
    RtlMutantOutcome,
    RtlValidationReport,
    validate_at_rtl,
)
from .saboteurs import Saboteur, insert_saboteur

__all__ = [
    "Saboteur",
    "insert_saboteur",
    "delta_tick_plan",
    "inject_mutants",
    "SENSOR_PORTS",
    "GoldenTrace",
    "MutantOutcome",
    "MutationReport",
    "compute_golden_trace",
    "run_mutation_analysis",
    "CampaignShard",
    "run_campaign",
    "shard_indices",
    "RtlMutantOutcome",
    "RtlValidationReport",
    "validate_at_rtl",
]
