"""Delay mutants: ADAM injection, TLM campaign, RTL cross-validation.

Campaign execution goes through the sharded engine in
:mod:`repro.mutation.campaign` and the streaming cross-IP scheduler in
:mod:`repro.mutation.scheduler`: the golden stimulus run is memoised
once per campaign (it is mutant-independent), mutants are batched into
shards so the generated-model source is compiled once per shard, and
shards execute on a persistent :class:`CampaignScheduler` worker pool
-- ``workers=1`` runs inline, ``workers=N`` shards across ``N``
processes with a deterministic merge (byte-identical
:class:`MutationReport` for any worker count, any shard size, and
shared or ephemeral pools).

Three consumption styles share that machinery:

* :func:`run_campaign` / :func:`run_mutation_analysis` -- blocking,
  one merged report per campaign (the historical signatures, now with
  ``scheduler=`` / ``progress=``);
* :func:`iter_campaign` -- streaming: yields each
  :class:`MutantOutcome` as its shard completes, with
  :class:`CampaignProgress` callbacks and :class:`AbortPolicy`
  early-abort (first survivor / score threshold);
* :func:`run_benchmark_suite` -- cross-IP batching: every
  ``IP x sensor type`` campaign prepared up front, shards interleaved
  round-robin on one shared pool so small campaigns backfill idle
  slots (``rtl_validation=True`` interleaves
  :class:`RtlValidationShard` units on the same pool).

All four styles accept ``cache=`` (a :class:`ResultCache` from
:mod:`repro.mutation.cache`): verdicts are content-addressed by
(model fingerprint, stimuli/golden hash, mutant spec, sensor type,
judgement parameters), so re-running an unchanged campaign replays
instantly and only mutants invalidated by a real change execute.

Score accounting excludes timed-out (stall-budget-truncated) runs from
every aggregate percentage -- see
:class:`repro.mutation.analysis.MutationReport.effective_total`.
"""

from .adam import delta_tick_plan, inject_mutants
from .analysis import (
    SENSOR_PORTS,
    GoldenTrace,
    MutantOutcome,
    MutationReport,
    compute_golden_trace,
    run_mutation_analysis,
)
from .cache import ResultCache, shard_entry_keys
from .campaign import (
    CampaignShard,
    PreparedCampaign,
    ShardResult,
    prepare_campaign,
    resolve_tap_order,
    run_campaign,
    shard_indices,
)
from .placement import (
    LocalPoolPlacement,
    PlacementLostError,
    PoisonShardError,
    ShardPlacement,
    SupervisedFuture,
)
from .rtl_validation import (
    PreparedRtlValidation,
    RtlMutantOutcome,
    RtlValidationReport,
    RtlValidationShard,
    prepare_rtl_validation,
    validate_at_rtl,
)
from .saboteurs import Saboteur, insert_saboteur
from .scheduler import (
    AbortPolicy,
    CampaignProgress,
    CampaignScheduler,
    SuiteResult,
    iter_campaign,
    run_benchmark_suite,
    stream_shard_batches,
)

__all__ = [
    "Saboteur",
    "insert_saboteur",
    "delta_tick_plan",
    "inject_mutants",
    "SENSOR_PORTS",
    "GoldenTrace",
    "MutantOutcome",
    "MutationReport",
    "compute_golden_trace",
    "run_mutation_analysis",
    "CampaignShard",
    "PreparedCampaign",
    "ShardResult",
    "prepare_campaign",
    "resolve_tap_order",
    "run_campaign",
    "shard_indices",
    "AbortPolicy",
    "CampaignProgress",
    "CampaignScheduler",
    "SuiteResult",
    "iter_campaign",
    "run_benchmark_suite",
    "stream_shard_batches",
    "ResultCache",
    "shard_entry_keys",
    "ShardPlacement",
    "LocalPoolPlacement",
    "PlacementLostError",
    "PoisonShardError",
    "SupervisedFuture",
    "PreparedRtlValidation",
    "RtlMutantOutcome",
    "RtlValidationReport",
    "RtlValidationShard",
    "prepare_rtl_validation",
    "validate_at_rtl",
]
