"""Shard placement: *where* a shard runs, as a policy object.

Historically :class:`~repro.mutation.scheduler.CampaignScheduler`
welded two concerns together: the streaming submit/drain protocol the
campaign engine speaks, and the ownership of one local
:class:`~concurrent.futures.ProcessPoolExecutor`.  This module splits
them: a :class:`ShardPlacement` is anything that accepts shards and
resolves futures of their outcome lists, and the campaign engine
(:func:`~repro.mutation.scheduler._stream_shard_results`,
:func:`~repro.mutation.scheduler.stream_shard_batches`,
:func:`~repro.mutation.scheduler.run_benchmark_suite`) is written
against that interface alone.

Implementations:

* :class:`LocalPoolPlacement` (here) -- today's behaviour,
  bit-identical: a lazily-created local process pool, with
  ``workers=1`` degrading to inline execution and ``inline_only``
  shards always executing in the parent.
  :class:`~repro.mutation.scheduler.CampaignScheduler` is now a thin
  alias of this class, so every existing call site keeps working.
* :class:`repro.service.fleet.RemoteWorkerPlacement` -- shards
  serialised over the service wire format to a
  ``repro serve --role worker`` daemon.
* :class:`repro.service.fleet.FleetPlacement` -- a coordinator-side
  composite distributing shards across many placements (least-loaded
  dispatch = work-stealing for ragged campaigns), re-dispatching on
  placement loss and short-circuiting shards whose verdicts a shared
  cache already holds.

The determinism contract is placement-independent by construction:
outcomes are merged by mutant index
(:meth:`~repro.mutation.campaign.PreparedCampaign.build_report`), so
reports are byte-identical regardless of placement kind, worker count
or steal order.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor

from .campaign import _run_shard

__all__ = [
    "LocalPoolPlacement",
    "PlacementLostError",
    "ShardPlacement",
]


class PlacementLostError(RuntimeError):
    """A placement became unreachable while (or before) executing a
    shard -- a worker daemon crashed, its socket reset, its process
    pool broke.  The shard itself is *not* at fault: a fleet reacts by
    re-dispatching it to a surviving placement, whereas any other
    exception (a genuine shard failure) propagates unchanged."""


class ShardPlacement:
    """Where shards run: the interface the campaign engine streams
    against.

    A placement accepts shard objects (anything with a ``run()``
    method; see :class:`~repro.mutation.campaign.CampaignShard`) and
    returns :class:`~concurrent.futures.Future`\\ s of their outcome
    lists.  The contract the streaming drain loop relies on:

    * ``workers`` -- the current submission window: how many shards
      may usefully be in flight at once.  Re-read every iteration, so
      a fleet that grows or shrinks mid-campaign widens or narrows the
      window live.
    * ``submit(shard)`` -- returns a future of ``shard.run()``'s
      outcome list.  May resolve eagerly (inline execution).  Raises
      :class:`PlacementLostError` (or resolves the future with it)
      when the placement cannot run shards any more.
    * ``shutdown(wait=True)`` -- release resources; further
      submissions raise.
    * ``describe()`` -- a JSON-able health snapshot (identity,
      liveness, queue depth, in-flight shards) surfaced by the
      service's ``/healthz``.
    """

    #: Discriminator in :meth:`describe` payloads.
    kind = "placement"

    workers: int = 1

    @property
    def alive(self) -> bool:
        """Whether the placement can currently accept shards."""
        return True

    def submit(self, shard) -> Future:
        raise NotImplementedError

    def shutdown(self, wait: bool = True) -> None:
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "alive": self.alive,
        }

    def __enter__(self) -> "ShardPlacement":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class LocalPoolPlacement(ShardPlacement):
    """One persistent local worker pool serving shards from many
    campaigns.

    The pool is created lazily on first submission and lives until
    :meth:`shutdown` (or context-manager exit), so a whole regression
    -- every IP x sensor type, TLM campaigns and RTL validations,
    plus ad-hoc :func:`~repro.mutation.scheduler.iter_campaign`
    streams -- reuses warm worker processes instead of forking a fresh
    pool per campaign.  ``workers=1`` never creates processes: shards
    run inline at submission time, which keeps the single-worker path
    deterministic and dependency-free.

    The placement is shard-kind agnostic: anything with a ``run()``
    method and (for pool execution) a picklable payload is accepted --
    :class:`~repro.mutation.campaign.CampaignShard` and
    :class:`~repro.mutation.rtl_validation.RtlValidationShard` today.
    Shards flagged ``inline_only`` (an RTL shard carrying a live
    :class:`~repro.sensors.insertion.AugmentedIP` or an opaque drive
    callable, neither of which pickles) execute in the parent process
    even when a pool exists.

    The placement is **thread-safe**: many threads (the campaign
    service runs one per in-flight job) may submit shards to one
    placement concurrently.  Pool creation and shutdown are
    lock-guarded; ``ProcessPoolExecutor.submit`` is thread-safe by
    contract; inline execution happens on the submitting thread.
    """

    kind = "local"

    def __init__(self, workers: int = 1, *, mp_context=None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        #: Optional :mod:`multiprocessing` context for the pool.  The
        #: default (``None``) keeps the platform default (``fork`` on
        #: Linux -- cheapest for one-shot batch runs from a
        #: single-threaded parent).  A *threaded* parent -- the
        #: campaign service, whose job threads trigger the lazy pool
        #: creation -- must pass a fork+exec context (``forkserver``
        #: or ``spawn``): forking a multi-threaded process can
        #: deadlock the children on locks snapshotted mid-hold.
        self.mp_context = mp_context
        self.identity = f"local/{os.getpid()}"
        self._pool: "ProcessPoolExecutor | None" = None
        self._closed = False
        self._lock = threading.Lock()
        self._in_flight = 0
        self._shards_done = 0

    @property
    def alive(self) -> bool:
        return not self._closed

    def pool(self) -> ProcessPoolExecutor:
        """The lazily-created shared executor (``workers > 1`` only)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler has been shut down")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=self.mp_context
                )
            return self._pool

    def _track(self, future: Future) -> Future:
        with self._lock:
            self._in_flight += 1

        def _done(_future: Future) -> None:
            with self._lock:
                self._in_flight -= 1
                self._shards_done += 1

        future.add_done_callback(_done)
        return future

    def submit(self, shard) -> Future:
        """Submit one shard; returns a future of its outcome list.
        Inline mode (``workers=1``), and any shard flagged
        ``inline_only``, executes eagerly in the parent and returns an
        already-resolved future."""
        if self._closed:
            raise RuntimeError("scheduler has been shut down")
        if self.workers <= 1 or getattr(shard, "inline_only", False):
            future: Future = Future()
            try:
                future.set_result(_run_shard(shard))
            except BaseException as exc:  # pragma: no cover - propagated
                future.set_exception(exc)
            with self._lock:
                self._shards_done += 1
            return future
        return self._track(self.pool().submit(_run_shard, shard))

    def shutdown(self, wait: bool = True) -> None:
        """Close the placement and tear down the pool (if one was ever
        created).  Further submissions raise; ``wait=False`` returns
        without joining the worker processes."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def describe(self) -> dict:
        with self._lock:
            in_flight = self._in_flight
            shards_done = self._shards_done
            live = self._pool is not None
        return {
            "kind": self.kind,
            "identity": self.identity,
            "workers": self.workers,
            "alive": self.alive,
            "pool_live": live,
            "in_flight": in_flight,
            "queued": max(0, in_flight - self.workers),
            "shards_done": shards_done,
        }

    def __enter__(self) -> "LocalPoolPlacement":
        return self
