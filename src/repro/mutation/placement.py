"""Shard placement: *where* a shard runs, as a policy object.

Historically :class:`~repro.mutation.scheduler.CampaignScheduler`
welded two concerns together: the streaming submit/drain protocol the
campaign engine speaks, and the ownership of one local
:class:`~concurrent.futures.ProcessPoolExecutor`.  This module splits
them: a :class:`ShardPlacement` is anything that accepts shards and
resolves futures of their outcome lists, and the campaign engine
(:func:`~repro.mutation.scheduler._stream_shard_results`,
:func:`~repro.mutation.scheduler.stream_shard_batches`,
:func:`~repro.mutation.scheduler.run_benchmark_suite`) is written
against that interface alone.

Implementations:

* :class:`LocalPoolPlacement` (here) -- today's behaviour,
  bit-identical: a lazily-created local process pool, with
  ``workers=1`` degrading to inline execution and ``inline_only``
  shards always executing in the parent.
  :class:`~repro.mutation.scheduler.CampaignScheduler` is now a thin
  alias of this class, so every existing call site keeps working.
* :class:`repro.service.fleet.RemoteWorkerPlacement` -- shards
  serialised over the service wire format to a
  ``repro serve --role worker`` daemon.
* :class:`repro.service.fleet.FleetPlacement` -- a coordinator-side
  composite distributing shards across many placements (least-loaded
  dispatch = work-stealing for ragged campaigns), re-dispatching on
  placement loss and short-circuiting shards whose verdicts a shared
  cache already holds.

The determinism contract is placement-independent by construction:
outcomes are merged by mutant index
(:meth:`~repro.mutation.campaign.PreparedCampaign.build_report`), so
reports are byte-identical regardless of placement kind, worker count
or steal order.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..faults import fault_point
from ..obs import REGISTRY, TRACER
from .campaign import _run_shard

__all__ = [
    "LocalPoolPlacement",
    "PlacementLostError",
    "PoisonShardError",
    "ShardPlacement",
    "SupervisedFuture",
]


class SupervisedFuture(Future):
    """A :class:`~concurrent.futures.Future` settled by a supervisor
    (callback chain, heartbeat thread) rather than an executor, whose
    cancellation is therefore **self-acknowledging**.

    ``concurrent.futures.wait``/``as_completed`` only treat a
    cancelled future as done once an executor acknowledges the
    cancellation via ``set_running_or_notify_cancel`` (state
    ``CANCELLED_AND_NOTIFIED``).  Supervised futures have no executor:
    with a plain ``Future``, ``cancel()`` strands waiters forever even
    though ``done()`` reports ``True``.  Acknowledging inside
    ``cancel()`` keeps cancel-then-``wait()`` drain loops (campaign
    streams, suite abandon paths) from wedging."""

    def __init__(self) -> None:
        super().__init__()
        self._cancel_acknowledged = False

    def cancel(self) -> bool:
        cancelled = super().cancel()
        if cancelled:
            with self._condition:
                acknowledge = not self._cancel_acknowledged
                self._cancel_acknowledged = True
            if acknowledge:
                self.set_running_or_notify_cancel()
        return cancelled


class PlacementLostError(RuntimeError):
    """A placement became unreachable while (or before) executing a
    shard -- a worker daemon crashed, its socket reset, its process
    pool broke.  The shard itself is *not* at fault: a fleet reacts by
    re-dispatching it to a surviving placement, whereas any other
    exception (a genuine shard failure) propagates unchanged."""


class PoisonShardError(RuntimeError):
    """A shard broke the local process pool repeatedly and has been
    quarantined.

    Pool supervision (:meth:`LocalPoolPlacement.submit`) absorbs a
    :class:`~concurrent.futures.process.BrokenProcessPool` by
    rebuilding the pool and re-running the lost shard -- but a shard
    whose *own execution* kills worker processes would do so forever.
    A break fails **every** queued future of the pool, so break counts
    alone cannot tell the culprit from innocent bystanders: after
    :attr:`LocalPoolPlacement.pool_break_limit` breaks a shard is
    instead re-run in an *isolated* throwaway single-process pool.
    Innocents prove themselves there; a shard that breaks its private
    pool too is definitively poisonous and fails loudly, carrying a
    structured :attr:`diagnostic` (mutant indices, break count, last
    error) so the campaign's failure names the culprit rather than
    truncating the report."""

    def __init__(self, shard, breaks: int, last_error: BaseException):
        indices = list(getattr(shard, "indices", ()) or ())
        self.diagnostic = {
            "fault": "pool.poison_shard",
            "indices": indices,
            "pool_breaks": breaks,
            "last_error": repr(last_error),
        }
        super().__init__(
            f"shard {indices} broke the process pool {breaks} times, "
            f"failed an isolated re-run, and was quarantined "
            f"(last error: {last_error!r})"
        )


def _exit_worker() -> None:  # pragma: no cover - runs in a pool child
    """Injected by the ``pool.break_worker`` fault site: die the way a
    SIGKILLed / OOM-killed worker does, taking the pool down."""
    os._exit(1)


class ShardPlacement:
    """Where shards run: the interface the campaign engine streams
    against.

    A placement accepts shard objects (anything with a ``run()``
    method; see :class:`~repro.mutation.campaign.CampaignShard`) and
    returns :class:`~concurrent.futures.Future`\\ s of their outcome
    lists.  The contract the streaming drain loop relies on:

    * ``workers`` -- the current submission window: how many shards
      may usefully be in flight at once.  Re-read every iteration, so
      a fleet that grows or shrinks mid-campaign widens or narrows the
      window live.
    * ``submit(shard)`` -- returns a future of ``shard.run()``'s
      outcome list.  May resolve eagerly (inline execution).  Raises
      :class:`PlacementLostError` (or resolves the future with it)
      when the placement cannot run shards any more.
    * ``shutdown(wait=True)`` -- release resources; further
      submissions raise.
    * ``describe()`` -- a JSON-able health snapshot (identity,
      liveness, queue depth, in-flight shards) surfaced by the
      service's ``/healthz``.
    """

    #: Discriminator in :meth:`describe` payloads.
    kind = "placement"

    workers: int = 1

    @property
    def alive(self) -> bool:
        """Whether the placement can currently accept shards."""
        return True

    def submit(self, shard) -> Future:
        raise NotImplementedError

    def shutdown(self, wait: bool = True) -> None:
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "alive": self.alive,
        }

    def __enter__(self) -> "ShardPlacement":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class LocalPoolPlacement(ShardPlacement):
    """One persistent local worker pool serving shards from many
    campaigns.

    The pool is created lazily on first submission and lives until
    :meth:`shutdown` (or context-manager exit), so a whole regression
    -- every IP x sensor type, TLM campaigns and RTL validations,
    plus ad-hoc :func:`~repro.mutation.scheduler.iter_campaign`
    streams -- reuses warm worker processes instead of forking a fresh
    pool per campaign.  ``workers=1`` never creates processes: shards
    run inline at submission time, which keeps the single-worker path
    deterministic and dependency-free.

    The placement is shard-kind agnostic: anything with a ``run()``
    method and (for pool execution) a picklable payload is accepted --
    :class:`~repro.mutation.campaign.CampaignShard` and
    :class:`~repro.mutation.rtl_validation.RtlValidationShard` today.
    Shards flagged ``inline_only`` (an RTL shard carrying a live
    :class:`~repro.sensors.insertion.AugmentedIP` or an opaque drive
    callable, neither of which pickles) execute in the parent process
    even when a pool exists.

    The placement is **thread-safe**: many threads (the campaign
    service runs one per in-flight job) may submit shards to one
    placement concurrently.  Pool creation and shutdown are
    lock-guarded; ``ProcessPoolExecutor.submit`` is thread-safe by
    contract; inline execution happens on the submitting thread.
    """

    kind = "local"

    #: Pool breaks one shard may live through before it is escalated
    #: to an isolated single-process probe run (see :meth:`_isolate`).
    #: Innocent shards in flight when *another* shard (or a
    #: ``kill -9``) breaks the pool also count a break, so reaching
    #: the limit is suspicion, not conviction: the probe acquits
    #: bystanders and quarantines only shards that break their own
    #: private pool too.
    pool_break_limit = 2

    def __init__(self, workers: int = 1, *, mp_context=None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        #: Optional :mod:`multiprocessing` context for the pool.  The
        #: default (``None``) keeps the platform default (``fork`` on
        #: Linux -- cheapest for one-shot batch runs from a
        #: single-threaded parent).  A *threaded* parent -- the
        #: campaign service, whose job threads trigger the lazy pool
        #: creation -- must pass a fork+exec context (``forkserver``
        #: or ``spawn``): forking a multi-threaded process can
        #: deadlock the children on locks snapshotted mid-hold.
        self.mp_context = mp_context
        self.identity = f"local/{os.getpid()}"
        self._pool: "ProcessPoolExecutor | None" = None
        self._closed = False
        self._lock = threading.Lock()
        self._in_flight = 0
        self._shards_done = 0
        self._pool_rebuilds = 0
        self._isolations = 0

    @property
    def alive(self) -> bool:
        return not self._closed

    def pool(self) -> ProcessPoolExecutor:
        """The lazily-created shared executor (``workers > 1`` only)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler has been shut down")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=self.mp_context
                )
            return self._pool

    def _track(self, future: Future) -> Future:
        with self._lock:
            self._in_flight += 1

        def _done(_future: Future) -> None:
            with self._lock:
                self._in_flight -= 1
                self._shards_done += 1

        future.add_done_callback(_done)
        return future

    def submit(self, shard) -> Future:
        """Submit one shard; returns a future of its outcome list.
        Inline mode (``workers=1``), and any shard flagged
        ``inline_only``, executes eagerly in the parent and returns an
        already-resolved future.

        Pool execution is **supervised**: a
        :class:`~concurrent.futures.process.BrokenProcessPool` (a
        worker was SIGKILLed, OOM-killed or ``os._exit``-ed mid-shard)
        never reaches the caller directly.  The broken pool is torn
        down, a fresh one is built, and the lost shard re-runs -- up
        to :attr:`pool_break_limit` breaks per shard, after which it
        must prove itself in an isolated single-process probe pool;
        only a shard that breaks its private pool too is quarantined
        with a :class:`PoisonShardError`."""
        if self._closed:
            raise RuntimeError("scheduler has been shut down")
        if self.workers <= 1 or getattr(shard, "inline_only", False):
            future: Future = SupervisedFuture()
            try:
                future.set_result(_run_shard(shard))
            except BaseException as exc:  # pragma: no cover - propagated
                future.set_exception(exc)
            with self._lock:
                self._shards_done += 1
            return future
        outer: Future = SupervisedFuture()
        self._track(outer)
        self._pool_attempt(shard, outer, breaks=0)
        return outer

    # -- pool supervision -----------------------------------------------

    @staticmethod
    def _settle(future: Future, result=None, exc=None) -> None:
        """Resolve *future* if nobody (cancellation) beat us to it."""
        try:
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(result)
        except Exception:  # InvalidStateError: abandoned by the drain
            pass

    def _pool_attempt(self, shard, outer: Future, breaks: int) -> None:
        """Run *shard* on the current pool, chaining recovery onto the
        inner future.  *breaks* counts the pool breaks this shard has
        already lived through."""
        if outer.cancelled():
            return
        try:
            pool = self.pool()
        except BaseException as exc:  # closed mid-retry
            self._settle(outer, exc=exc)
            return
        try:
            if fault_point("pool.break_worker") is not None:
                pool.submit(_exit_worker)
            inner = pool.submit(_run_shard, shard)
        except BrokenProcessPool as exc:
            self._recover_break(shard, outer, breaks + 1, pool, exc)
            return
        except BaseException as exc:
            self._settle(outer, exc=exc)
            return
        inner.add_done_callback(
            lambda f: self._pool_done(f, shard, outer, breaks, pool)
        )

    def _pool_done(
        self, inner: Future, shard, outer: Future, breaks: int, pool
    ) -> None:
        if outer.cancelled():
            return
        try:
            exc = inner.exception()
        except CancelledError as cancelled:
            exc = cancelled
        if exc is None:
            self._settle(outer, result=inner.result())
        elif isinstance(exc, BrokenProcessPool):
            self._recover_break(shard, outer, breaks + 1, pool, exc)
        else:
            self._settle(outer, exc=exc)

    def _recover_break(
        self, shard, outer: Future, breaks: int, pool, exc: BaseException
    ) -> None:
        """A pool break reached *shard*: rebuild the pool (once -- every
        in-flight shard of the broken pool lands here) and re-run the
        shard -- on the shared pool while under the break limit, in an
        isolated probe pool once at it (a break fails every queued
        future, so a repeat offender may still be an innocent
        bystander of somebody else's kill)."""
        self._rebuild_pool(pool)
        if breaks >= self.pool_break_limit:
            self._isolate(shard, outer, breaks, exc)
        else:
            self._pool_attempt(shard, outer, breaks)

    def _isolate(
        self, shard, outer: Future, breaks: int, last: BaseException
    ) -> None:
        """Definitive poison test: re-run *shard* alone in a throwaway
        single-process pool.  Success (or an honest shard exception)
        settles the outer future; breaking the private pool convicts
        the shard and quarantines it with a :class:`PoisonShardError`.
        Runs on its own thread -- recovery callbacks fire on pool
        threads that must not block on a child process."""
        if outer.cancelled():
            return
        with self._lock:
            self._isolations += 1
        REGISTRY.inc("repro_shard_isolations_total")
        TRACER.instant(
            "pool.isolate",
            indices=list(getattr(shard, "indices", ()) or ()),
            breaks=breaks,
        )

        def probe() -> None:
            try:
                with ProcessPoolExecutor(max_workers=1) as solo:
                    result = solo.submit(_run_shard, shard).result()
            except BrokenProcessPool as exc:
                self._settle(
                    outer, exc=PoisonShardError(shard, breaks, exc)
                )
            except BaseException as exc:
                self._settle(outer, exc=exc)
            else:
                self._settle(outer, result=result)

        threading.Thread(
            target=probe, name="repro-shard-isolation", daemon=True
        ).start()

    def _rebuild_pool(self, broken_pool) -> None:
        """Discard *broken_pool* so the next :meth:`pool` call creates a
        fresh one.  Idempotent per broken pool: concurrent recovery
        callbacks (one per in-flight shard) rebuild at most once."""
        with self._lock:
            if self._closed or self._pool is not broken_pool:
                return
            self._pool = None
            self._pool_rebuilds += 1
        REGISTRY.inc("repro_pool_rebuilds_total")
        TRACER.instant("pool.rebuild", identity=self.identity)
        broken_pool.shutdown(wait=False)

    def shutdown(self, wait: bool = True) -> None:
        """Close the placement and tear down the pool (if one was ever
        created).  Further submissions raise; ``wait=False`` returns
        without joining the worker processes."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def describe(self) -> dict:
        with self._lock:
            in_flight = self._in_flight
            shards_done = self._shards_done
            live = self._pool is not None
            rebuilds = self._pool_rebuilds
            isolations = self._isolations
        return {
            "kind": self.kind,
            "identity": self.identity,
            "workers": self.workers,
            "alive": self.alive,
            "pool_live": live,
            "in_flight": in_flight,
            "queued": max(0, in_flight - self.workers),
            "shards_done": shards_done,
            "pool_rebuilds": rebuilds,
            "shard_isolations": isolations,
        }

    def __enter__(self) -> "LocalPoolPlacement":
        return self
