"""Batched multi-mutant execution: K mutants per simulation sweep.

Serial shard execution re-runs the full stimulus once per mutant, yet
mutants of one generated model differ only at the ``MUTANTS``-table
postponement site: until the postponed target actually changes value,
a mutant's committed state is provably identical to the base (no
active mutant) simulation.  A batched sweep exploits that:

* one **base** instance runs the stimulus; every mutant of the batch
  starts *attached* to it, its judge fed the shared base outputs
  (stimulus decode and golden comparison paid once per sweep);
* before each cycle the sweep snapshots the base state and the
  attached targets' committed values; a mutant whose target changed
  during the cycle **forks** -- a fresh instance rebuilt from the
  pre-cycle snapshot with the mutant activated, which replays the
  cycle and continues solo (fork-on-first-divergence);
* forked Razor mutants run to completion immediately with
  **early-kill**: the drive stops once the judge is settled
  (:meth:`~repro.mutation.analysis.RazorMutantJudge.settled`);
* forked Counter mutants step in lockstep with the base and
  **re-join** (re-attach) once their committed state converges back
  to the base's -- on the slowly-toggling decimated endpoints of the
  filter IP this recovers most of the sweep sharing;
* Counter mutants applying at HF tick 1 never fork at all: their
  postponed commit lands before the first HF sample, so they are
  state-identical to the base at every observation point.

The cycle-boundary value compare is an exact divergence detector only
for targets the generator proved immune to change-and-revert within a
cycle (``BATCH_SAFE_TARGETS``, emitted by
:meth:`repro.abstraction.codegen._Generator._batch_safe_targets`);
mutants on any other target fall back to the plain serial runner
inside batched mode.  Batched reports are therefore **field-identical**
to serial ones -- same ``first_divergence``, same ``timed_out``, same
cache write-back keys -- for any batch size, which
``tests/test_batched_exec.py`` locks down.
"""

from __future__ import annotations

from repro.obs import shard_count, shard_instant, shard_span

from .analysis import (
    CounterMutantJudge,
    RazorMutantJudge,
    _drive_razor,
    _functional,
    _run_counter_mutant,
    _run_razor_mutant,
)

__all__ = ["run_batched_shard"]


def _copy_state(state: dict) -> dict:
    """Copy a generated model's ``__dict__``: values are immutable
    (ints / logic vectors) except the in-place-mutated lists (memory
    arrays, measurement pipelines), which are copied shallowly.  Called
    once per snapshot *and* once per fork so no two instances ever
    alias a list."""
    return {
        k: (
            list(v) if v.__class__ is list
            else dict(v) if v.__class__ is dict
            else v
        )
        for k, v in state.items()
    }


def _fork(cls, snapshot: dict, index: int):
    """Rebuild a solo mutant from a pre-cycle base snapshot.  At an
    undiverged cycle boundary the solo mutant's committed state equals
    the base's, and ``activate_mutant`` re-seeds its postponement
    buffer from the committed value -- so the fork is exactly the state
    the solo run would have carried into this cycle."""
    mutant = cls.__new__(cls)
    mutant.__dict__.update(_copy_state(snapshot))
    mutant.activate_mutant(index)
    return mutant


#: Instance attributes excluded from the re-join state compare: the
#: active-mutant bookkeeping always differs from the base, and the
#: ``_tmp_`` postponement buffers are judged separately (the mutant's
#: own buffer must equal its committed target -- coherence; foreign
#: buffers are never written by either side).
_MUTANT_BOOKKEEPING = ("_mutant_kind", "_mutant_target", "_mutant_hf")


def _rejoined(mutant, base, target_attr: str) -> bool:
    """Whether a forked mutant's committed state has converged back to
    the base's, making it safe to re-attach: every non-bookkeeping
    attribute equal and the postponement buffer coherent with the
    committed target value."""
    md = mutant.__dict__
    for k, v in base.__dict__.items():
        if k in _MUTANT_BOOKKEEPING or k.startswith("_tmp_"):
            continue
        if md[k] != v:
            return False
    return md["_tmp_" + target_attr] == md[target_attr]


def _sweep_razor(cls, group, specs, stimuli, recovery, golden, safe):
    """One Razor sweep: attached mutants ride the base simulation; a
    mutant forks the cycle its register first changes at the rising
    edge (the only cycle its postponed commit can make the main/shadow
    compare fire) and then runs to completion solo with early-kill."""
    recovery_bit = 1 if recovery else 0
    judges = {
        i: RazorMutantJudge(i, specs[i], golden, recovery) for i in group
    }
    outcomes = {}
    attached = list(group)
    base = cls()
    budget_total = 3 * len(stimuli) + 8
    for cyc, inputs in enumerate(stimuli):
        if not attached:
            break
        snapshot = _copy_state(base.__dict__)
        pre = [
            (i, getattr(base, safe[specs[i].target])) for i in attached
        ]
        outs = base.b_transport({**inputs, "razor_r": recovery_bit})
        functional = _functional(outs, golden.functional_ports)
        still = []
        for i, pre_value in pre:
            if getattr(base, safe[specs[i].target]) != pre_value:
                # The shared prefix was stall-free (the base never
                # raises an error), so the solo run enters this cycle
                # with exactly ``cyc`` budget units spent.
                shard_count("batch_forks")
                mutant = _fork(cls, snapshot, i)
                with shard_span("batch.fork", index=i, cycle=cyc):
                    timed_out = _drive_razor(
                        mutant, stimuli, recovery_bit, judges[i],
                        position=cyc, budget=budget_total - cyc,
                        early_kill=True,
                    )
                if not timed_out and judges[i].settled():
                    # The drive stopped before consuming every
                    # stimulus: the early-kill saving this sweep
                    # exists for.
                    shard_count("batch_early_kills")
                    shard_instant("batch.early_kill", index=i)
                outcomes[i] = judges[i].finish(timed_out)
            else:
                judges[i].observe(outs, functional=functional)
                still.append(i)
        attached = still
    for i in attached:
        outcomes[i] = judges[i].finish(False)
    return outcomes


def _sweep_counter(cls, group, specs, stimuli, tap_order, golden, safe):
    """One Counter sweep: attached mutants ride the base simulation;
    max/delta mutants fork the cycle their endpoint changes (their HF
    samples then lag the base's) and re-attach once their state
    converges back; HF-tick-1 mutants never fork (their postponed
    commit lands before the first HF sample of the cycle)."""
    thresholds = getattr(cls, "LUT_THRESHOLDS", {}) or {}
    judges = {}
    for i in group:
        spec = specs[i]
        judges[i] = CounterMutantJudge(
            i, spec, golden,
            lo=8 * tap_order.index(spec.register),
            threshold=thresholds.get(spec.register, 8),
        )
    base = cls()
    attached = list(group)
    forked = []
    for cyc, inputs in enumerate(stimuli):
        watch = [i for i in attached if specs[i].hf_tick != 1]
        snapshot = _copy_state(base.__dict__) if watch else None
        pre = [(i, getattr(base, safe[specs[i].target])) for i in watch]
        outs = base.b_transport(dict(inputs))
        functional = _functional(outs, golden.functional_ports)
        newly_forked = []
        for i, pre_value in pre:
            if getattr(base, safe[specs[i].target]) != pre_value:
                attached.remove(i)
                shard_count("batch_forks")
                shard_instant("batch.fork", index=i, cycle=cyc)
                newly_forked.append((i, _fork(cls, snapshot, i)))
        for i in attached:
            judges[i].observe(outs, functional=functional)
        still = []
        for i, mutant in forked + newly_forked:
            m_outs = mutant.b_transport(dict(inputs))
            judges[i].observe(m_outs)
            if m_outs == outs and _rejoined(
                mutant, base, safe[specs[i].target]
            ):
                shard_count("batch_rejoins")
                shard_instant("batch.rejoin", index=i, cycle=cyc)
                attached.append(i)
            else:
                still.append((i, mutant))
        forked = still
    return {i: judges[i].finish() for i in group}


def run_batched_shard(shard) -> "list":
    """Evaluate a shard's mutants in batched sweeps of
    ``shard.batch_size``.  Mutants whose target is not in the generated
    model's ``BATCH_SAFE_TARGETS`` map (or any mutant of a model
    generated without one) run the plain serial path; outcomes are
    returned in ``shard.indices`` order either way."""
    stimuli = list(shard.stimuli)
    tap_order = list(shard.tap_order)
    specs = shard.injected.mutants
    cls = shard.injected.compiled_class()
    safe = getattr(cls, "BATCH_SAFE_TARGETS", None) or {}
    batch = max(1, shard.batch_size or 1)
    razor = shard.sensor_type == "razor"

    outcomes: "dict[int, object]" = {}
    for lo in range(0, len(shard.indices), batch):
        chunk = shard.indices[lo:lo + batch]
        group = [i for i in chunk if specs[i].target in safe]
        for index in chunk:
            if index in group:
                continue
            mutant = shard.injected.instantiate()
            mutant.activate_mutant(index)
            if razor:
                outcomes[index] = _run_razor_mutant(
                    index, specs[index], mutant, stimuli,
                    shard.recovery, shard.golden,
                )
            else:
                outcomes[index] = _run_counter_mutant(
                    index, specs[index], mutant, stimuli, tap_order,
                    shard.golden,
                )
        if not group:
            continue
        with shard_span("batch.sweep", mutants=len(group),
                        sensor=shard.sensor_type):
            if razor:
                outcomes.update(_sweep_razor(
                    cls, group, specs, stimuli, shard.recovery,
                    shard.golden, safe,
                ))
            else:
                outcomes.update(_sweep_counter(
                    cls, group, specs, stimuli, tap_order, shard.golden,
                    safe,
                ))
    return [outcomes[i] for i in shard.indices]
