"""RTL validation of the TLM mutation results (paper Section 8.5).

The paper validates the TLM campaign by reproducing each mutant at
RTL with explicitly delayed assignments (VHDL ``after`` clauses) and
checking that the sensors raise the same errors.  Delays are chosen so
that RTL and TLM fall *within the same high-frequency clock period*,
which makes the two levels indistinguishable to the sensors:

* **minimum delay** -> arrival just after the consuming edge
  (``T + T_HF/2`` after the launch);
* **maximum delay** -> arrival just inside the Razor window's end
  (``1.5 T - T_HF/2`` after the launch);
* **delta delay k** -> an absolute arrival of ``k`` HF periods after
  the launch (Counter versions).

These run on the event-driven kernel with the sensor banks active, so
they exercise the true shadow-latch / HF-counter mechanics rather than
the TLM emulation.

Execution model
---------------
Validation is lowered to :class:`RtlValidationShard` work units served
by the same :class:`~repro.mutation.scheduler.CampaignScheduler` pool
as the TLM campaign shards (the historical serial per-mutant loop is
gone): mixed TLM-campaign + RTL-validation suites interleave on one
executor (:func:`repro.mutation.scheduler.run_benchmark_suite` with
``rtl_validation=True``).

An :class:`~repro.sensors.insertion.AugmentedIP` holds native sensor
processes (local closures) and therefore does not pickle, so a shard
ships one of two payloads:

* a **rebuild recipe** -- the registry name of the IP plus the sensor
  type; each worker process reconstructs the augmented design once
  via :func:`repro.flow.pipeline.build_augmented` (memoised per
  process, deterministic by construction) and serves every subsequent
  shard of that campaign from the memo;
* the **live object** -- when the caller validates an ad-hoc augmented
  design (no registry entry) or passes an opaque ``drive`` callable,
  the shard is flagged ``inline_only`` and executes in the parent
  process even on a multi-worker pool.

Results are cached in the same
:class:`~repro.mutation.cache.ResultCache` as the TLM campaign
verdicts, keyed by :func:`repro.mutation.cache.rtl_entry_key`
(structural RTL fingerprint, stimuli hash, cycle count, recovery
value, mutant spec); caching needs the declarative ``stimuli`` form --
an opaque ``drive`` callable cannot be fingerprinted and bypasses the
cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.abstraction.codegen import MutantSpec
from repro.sensors.insertion import AugmentedIP

from .campaign import _shard_sequence

__all__ = [
    "RtlMutantOutcome",
    "RtlValidationReport",
    "RtlValidationShard",
    "PreparedRtlValidation",
    "prepare_rtl_validation",
    "validate_at_rtl",
]


@dataclass(frozen=True)
class RtlMutantOutcome:
    spec: MutantSpec
    error_risen: bool
    meas_val: "int | None"
    #: Position in the campaign's mutant table (for the deterministic
    #: merge of shard results and the result-cache write-back).
    index: int = -1


@dataclass
class RtlValidationReport:
    ip_name: str
    sensor_type: str
    outcomes: "list[RtlMutantOutcome]" = field(default_factory=list)
    #: Wall-clock time -- runtime metadata, excluded from equality.
    seconds: float = field(default=0.0, compare=False)
    #: Result-cache accounting (``None`` when validated cache-less);
    #: excluded from equality so cached and uncached reports compare
    #: identical on every verdict field.
    cache_hits: "int | None" = field(default=None, compare=False)
    cache_misses: "int | None" = field(default=None, compare=False)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def risen_pct(self) -> float:
        if not self.outcomes:
            return 0.0
        return 100.0 * sum(o.error_risen for o in self.outcomes) / len(
            self.outcomes
        )


def _rtl_delay_for(spec: MutantSpec, augmented: AugmentedIP) -> int:
    """Absolute transport delay reproducing one TLM mutant at RTL."""
    period = augmented.main_period_ps
    hf = augmented.hf_period_ps() if augmented.sensor_type == "counter" \
        else period // 10
    if augmented.sensor_type == "razor":
        if spec.kind == "min":
            return period + hf // 2
        if spec.kind == "max":
            return period + period // 2 - hf // 2
        raise ValueError(f"unexpected razor mutant kind {spec.kind!r}")
    # Counter: all mutant classes are realised as an arrival inside HF
    # period k, matching the TLM dual-clock scheduler placement.  The
    # 2 ps pull-in keeps input-launched relaunches (which commit 1 ps
    # after the edge under the edge-launch convention) inside the same
    # HF period as register-launched ones -- the paper's "same HF
    # period at RTL and TLM" alignment.
    return max(1, spec.hf_tick * hf - 2)


def _stimulus_driver(augmented: AugmentedIP, stimuli,
                     recovery_value: int = 0):
    """The canonical testbench driver: poke the cycle's input vector
    (plus the Razor recovery enable) and advance one clock.  Built
    identically in the parent and in worker processes, so declarative
    ``stimuli`` validation is location-independent."""
    input_ports = {p.name: p for p in augmented.module.inputs()}
    extra = {}
    if augmented.sensor_type == "razor" and \
            augmented.bank.recovery is not None:
        extra[augmented.bank.recovery] = recovery_value

    def drive(sim, i):
        vec = stimuli[i % len(stimuli)]
        pokes = {input_ports[k]: v for k, v in vec.items()}
        pokes.update(extra)
        sim.cycle(pokes)

    return drive


def _run_rtl_mutant(augmented: AugmentedIP, index: int, spec: MutantSpec,
                    drive, cycles: int, exec_mode: str) -> RtlMutantOutcome:
    """Reproduce one mutant at RTL: fresh simulator, one delayed
    endpoint, ``cycles`` driven testbench cycles, sensor taps read
    every cycle."""
    sim = augmented.make_simulation(
        input_launch_at_edge=True, exec_mode=exec_mode
    )
    endpoint = augmented.endpoint_for(spec.register)
    sim.set_transport_delay(endpoint, _rtl_delay_for(spec, augmented))
    risen = False
    measured = None
    if augmented.sensor_type == "razor":
        tap = next(
            t for t in augmented.bank.taps
            if t.register.name == spec.register
        )
        for i in range(cycles):
            drive(sim, i)
            if sim.peek_int(tap.error):
                risen = True
    else:
        tap = augmented.bank.tap_for(spec.register)
        for i in range(cycles):
            drive(sim, i)
            meas = sim.peek_int(tap.meas_val)
            if meas:
                measured = meas
                if meas > tap.lut_threshold:
                    risen = True
    return RtlMutantOutcome(
        spec=spec, error_risen=risen, meas_val=measured, index=index
    )


#: Per-process memo of rebuilt augmented designs, keyed by
#: ``((ip_name, sensor_type), exec_mode)``: every shard of the same
#: validation campaign served by one worker reuses one rebuild.
_REBUILT_AUGMENTED: "dict[tuple, AugmentedIP]" = {}


def _rebuilt_augmented(recipe: "tuple[str, str]",
                       exec_mode: str) -> AugmentedIP:
    key = (recipe, exec_mode)
    augmented = _REBUILT_AUGMENTED.get(key)
    if augmented is None:
        # Function-level import: repro.flow imports repro.mutation, so
        # the reverse edge must stay out of module import time.
        from repro.flow.pipeline import build_augmented
        from repro.ips import case_study

        ip_name, sensor_type = recipe
        augmented = build_augmented(
            case_study(ip_name), sensor_type, exec_mode=exec_mode
        ).augmented
        _REBUILT_AUGMENTED[key] = augmented
    return augmented


@dataclass(frozen=True)
class RtlValidationShard:
    """One schedulable batch of RTL-validation mutants.

    Picklable when it carries a ``rebuild`` recipe (registry IP name +
    sensor type); otherwise it holds the live ``augmented`` object /
    ``drive`` callable and is flagged ``inline_only`` so the scheduler
    executes it in the parent process.
    """

    indices: "tuple[int, ...]"
    specs: "tuple[MutantSpec, ...]"           # aligned with ``indices``
    cycles: int
    exec_mode: str
    recovery_value: int
    stimuli: "tuple[dict, ...] | None"        # None -> ``drive`` carried
    rebuild: "tuple[str, str] | None"         # (ip registry name, sensor)
    augmented: "AugmentedIP | None" = None
    drive: "object | None" = None

    #: RTL shards never travel to remote worker daemons: the rebuild
    #: recipe references the local IP registry and the live-object
    #: variants do not serialise at all.  A fleet routes them to its
    #: local placement instead.
    remote_ok = False

    @property
    def inline_only(self) -> bool:
        # An opaque drive callable never leaves the parent, even when a
        # rebuild recipe would make the rest of the payload picklable.
        return self.rebuild is None or self.drive is not None

    def run(self) -> "list[RtlMutantOutcome]":
        augmented = self.augmented
        if augmented is None:
            augmented = _rebuilt_augmented(self.rebuild, self.exec_mode)
        drive = self.drive
        if drive is None:
            drive = _stimulus_driver(
                augmented, list(self.stimuli), self.recovery_value
            )
        return [
            _run_rtl_mutant(
                augmented, index, spec, drive, self.cycles, self.exec_mode
            )
            for index, spec in zip(self.indices, self.specs)
        ]


@dataclass(frozen=True)
class PreparedRtlValidation:
    """An RTL validation lowered to its schedulable form (the RTL
    analogue of :class:`~repro.mutation.campaign.PreparedCampaign`):
    shards cover the cache misses, replayed verdicts sit in
    ``cached_outcomes``, and ``cache_keys`` maps every mutant index to
    its entry key for write-back."""

    ip_name: str
    sensor_type: str
    total: int
    shards: "tuple[RtlValidationShard, ...]"
    cached_outcomes: "tuple" = ()
    cache_keys: "tuple[str, ...] | None" = None
    cache_hits: "int | None" = None
    cache_misses: "int | None" = None

    @property
    def total_shards(self) -> int:
        return len(self.shards) + (1 if self.cached_outcomes else 0)

    def build_report(self, outcomes,
                     seconds: float = 0.0) -> RtlValidationReport:
        """Deterministic merged report: outcomes in mutant-table order
        regardless of shard completion order or cache state."""
        return RtlValidationReport(
            ip_name=self.ip_name,
            sensor_type=self.sensor_type,
            outcomes=sorted(outcomes, key=lambda o: o.index),
            seconds=seconds,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
        )


def prepare_rtl_validation(
    augmented: AugmentedIP,
    mutants: "list[MutantSpec]",
    *,
    stimuli=None,
    drive=None,
    cycles: int = 24,
    ip_name: str = "ip",
    exec_mode: str = "compiled",
    recovery_value: int = 0,
    rebuild: "str | None" = None,
    workers: int = 1,
    shard_size: "int | None" = None,
    cache=None,
) -> PreparedRtlValidation:
    """Lower an RTL validation to schedulable shards.

    Exactly one of ``stimuli`` (declarative per-cycle input vectors --
    shardable across processes and cacheable) or ``drive`` (an opaque
    ``drive(sim, cycle_index)`` callable -- inline-only, cache
    bypassed) must be given.  ``rebuild`` names a registered case
    study whose augmentation the workers reconstruct instead of
    pickling ``augmented``; without it, shards carry the live object
    and execute in the parent.

    Contract: when ``rebuild`` is set, ``augmented`` must be *exactly*
    the registry build of that IP (derive the name via
    :func:`repro.ips.rebuild_recipe`, which identity-checks the spec,
    as :func:`repro.flow.run_flow` and the suite do).  Passing a
    modified design with ``rebuild`` set makes pool workers simulate
    the registry design while inline shards simulate yours -- a report
    mixing two designs, cached under the wrong fingerprint.
    """
    if (stimuli is None) == (drive is None):
        raise ValueError("pass exactly one of stimuli= or drive=")
    specs = tuple(mutants)

    cached_outcomes: "list[RtlMutantOutcome]" = []
    cache_keys = None
    hits = misses = None
    miss_indices = list(range(len(specs)))
    if cache is not None and stimuli is not None:
        from .cache import (
            decode_rtl_outcome,
            rtl_entry_key,
            rtl_fingerprint,
            stimuli_hash,
        )

        rtl_fp = rtl_fingerprint(augmented)
        stim_hash = stimuli_hash(stimuli)
        cache_keys = tuple(
            rtl_entry_key(rtl_fp, stim_hash, cycles, recovery_value, spec)
            for spec in specs
        )
        cached_outcomes, miss_indices = cache.probe(
            cache_keys, decode_rtl_outcome
        )
        hits = len(cached_outcomes)
        misses = len(miss_indices)

    recipe = (rebuild, augmented.sensor_type) if rebuild else None
    if recipe is not None:
        # Seed the per-process rebuild memo with the design we already
        # hold: inline execution (workers=1, or backfill in the
        # parent) reuses it instead of paying a second flow front-end;
        # worker processes still rebuild into their own memo.  Assign
        # (not setdefault) so inline shards always simulate exactly
        # the object being validated -- ``rebuild=`` asserts it equals
        # the registry build, which is what pool workers reconstruct.
        _REBUILT_AUGMENTED[(recipe, exec_mode)] = augmented
    shards = tuple(
        RtlValidationShard(
            indices=indices,
            specs=tuple(specs[i] for i in indices),
            cycles=cycles,
            exec_mode=exec_mode,
            recovery_value=recovery_value,
            stimuli=tuple(stimuli) if stimuli is not None else None,
            rebuild=recipe,
            augmented=None if recipe else augmented,
            drive=drive,
        )
        for indices in _shard_sequence(miss_indices, workers, shard_size)
    )
    return PreparedRtlValidation(
        ip_name=ip_name,
        sensor_type=augmented.sensor_type,
        total=len(specs),
        shards=shards,
        cached_outcomes=tuple(cached_outcomes),
        cache_keys=cache_keys,
        cache_hits=hits,
        cache_misses=misses,
    )


def validate_at_rtl(
    augmented: AugmentedIP,
    mutants: "list[MutantSpec]",
    drive=None,
    *,
    stimuli=None,
    cycles: int = 24,
    ip_name: str = "ip",
    exec_mode: str = "compiled",
    recovery_value: int = 0,
    rebuild: "str | None" = None,
    workers: int = 1,
    shard_size: "int | None" = None,
    scheduler=None,
    cache=None,
) -> RtlValidationReport:
    """Re-run each mutant at RTL via delayed assignments.

    Args:
        augmented: the sensor-augmented design under validation.
        mutants: the TLM campaign's :class:`MutantSpec` table.
        drive: legacy ``drive(sim, cycle_index)`` testbench callable
            (one full cycle: poke inputs, advance the clock).  Opaque,
            so it forces inline execution and bypasses the cache;
            prefer ``stimuli``.
        stimuli: declarative per-cycle ``name -> int`` input vectors
            (the same form the TLM campaign consumes); the canonical
            driver re-presents ``stimuli[i % len(stimuli)]`` each
            cycle, with the Razor recovery enable poked to
            ``recovery_value``.
        cycles: testbench cycles per mutant.
        exec_mode: kernel execution mode (compiled closures by
            default; per-process compilation is memoised, so each
            worker compiles each process exactly once).
        rebuild: registry name of the IP, enabling worker processes to
            reconstruct the augmentation instead of pickling it --
            required for the shards to leave the parent process.
            ``augmented`` must then be exactly the registry build; use
            :func:`repro.ips.rebuild_recipe` to derive the name safely
            (see :func:`prepare_rtl_validation` for the contract).
        workers / shard_size / scheduler: shard sizing and pool
            placement, exactly as in
            :func:`~repro.mutation.campaign.run_campaign`; pass the
            campaign's :class:`CampaignScheduler` to interleave RTL
            shards with TLM shards on one executor.
        cache: a :class:`~repro.mutation.cache.ResultCache`; known
            verdicts replay instantly (``stimuli`` form only).

    Returns:
        An :class:`RtlValidationReport` with outcomes in mutant-table
        order -- deterministic for any worker count, shard size and
        cache state.
    """
    from .scheduler import (
        _ephemeral_width,
        _leased_scheduler,
        _stream_shard_results,
        _write_back,
    )

    started = time.perf_counter()
    prepared = prepare_rtl_validation(
        augmented,
        mutants,
        stimuli=stimuli,
        drive=drive,
        cycles=cycles,
        ip_name=ip_name,
        exec_mode=exec_mode,
        recovery_value=recovery_value,
        rebuild=rebuild,
        workers=workers if scheduler is None else scheduler.workers,
        shard_size=shard_size,
        cache=cache,
    )
    outcomes = list(prepared.cached_outcomes)
    with _leased_scheduler(
        scheduler, _ephemeral_width(workers, prepared)
    ) as sched:
        for batch in _stream_shard_results(sched, prepared.shards):
            if cache is not None:
                from .cache import encode_rtl_outcome

                _write_back(cache, prepared.cache_keys, batch,
                            encode_rtl_outcome, ip=ip_name)
            outcomes.extend(batch)
    return prepared.build_report(
        outcomes, seconds=time.perf_counter() - started
    )
