"""RTL validation of the TLM mutation results (paper Section 8.5).

The paper validates the TLM campaign by reproducing each mutant at
RTL with explicitly delayed assignments (VHDL ``after`` clauses) and
checking that the sensors raise the same errors.  Delays are chosen so
that RTL and TLM fall *within the same high-frequency clock period*,
which makes the two levels indistinguishable to the sensors:

* **minimum delay** -> arrival just after the consuming edge
  (``T + T_HF/2`` after the launch);
* **maximum delay** -> arrival just inside the Razor window's end
  (``1.5 T - T_HF/2`` after the launch);
* **delta delay k** -> an absolute arrival of ``k`` HF periods after
  the launch (Counter versions).

These run on the event-driven kernel with the sensor banks active, so
they exercise the true shadow-latch / HF-counter mechanics rather than
the TLM emulation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.abstraction.codegen import MutantSpec
from repro.sensors.insertion import AugmentedIP

__all__ = ["RtlMutantOutcome", "RtlValidationReport", "validate_at_rtl"]


@dataclass(frozen=True)
class RtlMutantOutcome:
    spec: MutantSpec
    error_risen: bool
    meas_val: "int | None"


@dataclass
class RtlValidationReport:
    ip_name: str
    sensor_type: str
    outcomes: "list[RtlMutantOutcome]" = field(default_factory=list)
    seconds: float = 0.0

    @property
    def risen_pct(self) -> float:
        if not self.outcomes:
            return 0.0
        return 100.0 * sum(o.error_risen for o in self.outcomes) / len(
            self.outcomes
        )


def _rtl_delay_for(spec: MutantSpec, augmented: AugmentedIP) -> int:
    """Absolute transport delay reproducing one TLM mutant at RTL."""
    period = augmented.main_period_ps
    hf = augmented.hf_period_ps() if augmented.sensor_type == "counter" \
        else period // 10
    if augmented.sensor_type == "razor":
        if spec.kind == "min":
            return period + hf // 2
        if spec.kind == "max":
            return period + period // 2 - hf // 2
        raise ValueError(f"unexpected razor mutant kind {spec.kind!r}")
    # Counter: all mutant classes are realised as an arrival inside HF
    # period k, matching the TLM dual-clock scheduler placement.  The
    # 2 ps pull-in keeps input-launched relaunches (which commit 1 ps
    # after the edge under the edge-launch convention) inside the same
    # HF period as register-launched ones -- the paper's "same HF
    # period at RTL and TLM" alignment.
    return max(1, spec.hf_tick * hf - 2)


def validate_at_rtl(
    augmented: AugmentedIP,
    mutants: "list[MutantSpec]",
    drive,
    *,
    cycles: int = 24,
    ip_name: str = "ip",
    exec_mode: str = "compiled",
) -> RtlValidationReport:
    """Re-run each mutant at RTL via delayed assignments.

    ``drive(sim, cycle_index)`` runs one full testbench cycle (poking
    inputs and advancing the clock via ``sim.cycle(...)``) -- the same
    stimulus the TLM campaign used.  ``exec_mode`` selects the kernel
    execution mode (compiled closures by default; the per-process
    compilation is memoised, so the one-simulator-per-mutant loop
    compiles each process exactly once).
    """
    started = time.perf_counter()
    report = RtlValidationReport(
        ip_name=ip_name, sensor_type=augmented.sensor_type
    )
    for spec in mutants:
        sim = augmented.make_simulation(
            input_launch_at_edge=True, exec_mode=exec_mode
        )
        endpoint = augmented.endpoint_for(spec.register)
        sim.set_transport_delay(endpoint, _rtl_delay_for(spec, augmented))
        risen = False
        measured = None
        if augmented.sensor_type == "razor":
            tap = next(
                t for t in augmented.bank.taps
                if t.register.name == spec.register
            )
            for i in range(cycles):
                drive(sim, i)
                if sim.peek_int(tap.error):
                    risen = True
        else:
            tap = augmented.bank.tap_for(spec.register)
            for i in range(cycles):
                drive(sim, i)
                meas = sim.peek_int(tap.meas_val)
                if meas:
                    measured = meas
                    if meas > tap.lut_threshold:
                        risen = True
        report.outcomes.append(
            RtlMutantOutcome(spec=spec, error_risen=risen, meas_val=measured)
        )
    report.seconds = time.perf_counter() - started
    return report
