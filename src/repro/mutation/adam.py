"""ADAM -- Automatic Delay Analysis and Mutation (paper Section 8.4).

The paper's ADAM tool takes the names of the RTL signals connected to
the delay monitors plus the mutant classes to inject, and applies the
code modifications automatically.  This reproduction drives the TLM
code generator in injection mode:

* for **Razor** versions, every monitored register receives a
  *minimum delay* and a *maximum delay* mutant (2 per sensor, as in
  Table 5: 29 paths -> 58 mutants);
* for **Counter** versions, every monitored endpoint receives the two
  window-extreme mutants plus a *delta delay* mutant whose HF tick is
  placed just above the path's nominal delay (3 per sensor: 29 paths
  -> 87 mutants).  The delta tick choice is deterministic per
  register, spreading measured delays across the LUT threshold so the
  fraction of *errors risen* varies per IP exactly as in the paper.
"""

from __future__ import annotations

import hashlib

from repro.abstraction import GeneratedTlm, generate_tlm
from repro.sensors.insertion import AugmentedIP

__all__ = ["inject_mutants", "delta_tick_plan"]


def _stable_hash(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:4], "big")


def delta_tick_plan(augmented: AugmentedIP) -> "dict[str, int]":
    """HF tick for each monitored register's delta mutant.

    The tick is drawn from ``(nominal_hf, ratio]`` -- a genuine
    degradation beyond the path's nominal arrival but still inside the
    observability window -- deterministically per register name.
    """
    if augmented.sensor_type != "counter":
        return {}
    ratio = augmented.hf_ratio
    hf_period = augmented.hf_period_ps()
    plan: dict[str, int] = {}
    for path in augmented.monitored:
        endpoint = augmented.endpoint_of[path.endpoint]
        nominal = augmented.nominal_delay_of[endpoint]
        nominal_hf = -(-nominal // hf_period)  # ceil
        low = min(nominal_hf + 1, ratio)
        span = max(1, ratio - low)
        tick = low + _stable_hash(path.endpoint.name) % span
        plan[path.endpoint.name] = min(tick, ratio - 1) if ratio > low else low
    return plan


def inject_mutants(
    augmented: AugmentedIP,
    *,
    variant: str = "hdtlib",
    delta_ticks: "dict[str, int] | None" = None,
) -> GeneratedTlm:
    """Generate the mutant-injected TLM model of an augmented IP."""
    ticks = delta_ticks if delta_ticks is not None else delta_tick_plan(augmented)
    return generate_tlm(
        augmented.module,
        variant=variant,
        augmented=augmented,
        inject_mutants=True,
        delta_mutant_ticks=ticks,
    )
