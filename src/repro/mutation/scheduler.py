"""Streaming cross-IP campaign scheduler (one pool, many campaigns).

:mod:`repro.mutation.campaign` turned one campaign into picklable
shards; this module turns *many* campaigns -- all IPs x both sensor
types x any variant -- into one service-shaped workload fed to a
single persistent worker pool:

* :class:`CampaignScheduler` owns one
  :class:`concurrent.futures.ProcessPoolExecutor` for its whole
  lifetime.  Campaigns share it instead of paying a pool spin-up and
  tear-down per :func:`~repro.mutation.campaign.run_campaign` call;
  ``workers=1`` degrades to inline execution (no processes, fully
  deterministic ordering).
* :func:`iter_campaign` is the streaming face of one campaign: a
  generator yielding :class:`~repro.mutation.analysis.MutantOutcome`
  objects as their shards complete, with per-shard
  :class:`CampaignProgress` callbacks and :class:`AbortPolicy`
  early-abort (stop on the first surviving mutant, or once the score
  threshold is reached -- new shards stop being submitted, in-flight
  shards drain).  Collecting every yield and sorting by mutant index
  reproduces the blocking report byte-for-byte.
* :func:`run_benchmark_suite` batches whole campaign *suites* across
  IPs: each campaign's shards are submitted to the shared pool as soon
  as that campaign is prepared (prep of later campaigns overlaps
  execution of earlier ones), and the shared queue lets short
  campaigns backfill pool slots left idle while the long ones drain --
  no per-campaign serialisation barrier, one pool warm for the whole
  regression.  With ``rtl_validation=True`` the suite also lowers
  every campaign's RTL-validation mutants to
  :class:`~repro.mutation.rtl_validation.RtlValidationShard` work
  units on the *same* pool, so TLM campaigns and RTL validations
  interleave on one executor instead of the historical serial
  per-mutant loop.

Every entry point threads ``cache=`` (a
:class:`~repro.mutation.cache.ResultCache`) through
:func:`~repro.mutation.campaign.prepare_campaign`: known verdicts are
replayed instantly as a virtual first shard, only cache misses are
submitted, and fresh verdicts are written back as their shards
complete -- so a warm re-run of an unchanged suite executes (nearly)
nothing.

Score accounting in the merged reports follows
:class:`repro.mutation.analysis.MutationReport`: timed-out runs are
excluded from every aggregate percentage (``effective_total``).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs import (
    TRACER,
    CompletionStamps,
    absorb_shard_counters,
    trace_span,
)

from .campaign import PreparedCampaign, ShardResult, prepare_campaign
from .placement import LocalPoolPlacement, ShardPlacement

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependency
    from .analysis import MutationReport

__all__ = [
    "AbortPolicy",
    "CampaignProgress",
    "CampaignScheduler",
    "SuiteResult",
    "iter_campaign",
    "run_benchmark_suite",
    "stream_prepared",
    "stream_shard_batches",
]


@dataclass(frozen=True)
class AbortPolicy:
    """Early-abort policy for streaming campaigns.

    ``stop_on_survivor``
        stop submitting new shards as soon as a judged mutant survives
        (the paper's closure loop cares about the *first* hole in the
        sensor net, not the full count);
    ``score_threshold``
        stop once the killed percentage over the judged outcomes so
        far reaches the threshold (metric-driven closure: the campaign
        has proven enough).  The running score over a few mutants is
        noisy -- ``min_judged`` requires a minimum judged sample
        before the threshold may trigger (default 1: any judged
        outcome counts).

    Aborting never discards observations: shards already in flight
    drain and their outcomes are still yielded; only *new* submissions
    stop.
    """

    stop_on_survivor: bool = False
    score_threshold: "float | None" = None
    min_judged: int = 1

    def triggered(self, *, killed: int, survivors: int, judged: int) -> bool:
        if self.stop_on_survivor and survivors > 0:
            return True
        if (
            self.score_threshold is not None
            and judged >= max(1, self.min_judged)
            and 100.0 * killed / judged >= self.score_threshold
        ):
            return True
        return False


@dataclass(frozen=True)
class CampaignProgress:
    """Snapshot handed to ``progress`` callbacks after every shard."""

    ip_name: str
    sensor_type: str
    done: int            # outcomes observed so far
    total: int           # mutants in the campaign
    killed: int          # judged kills (timed-out runs are neither)
    survivors: int       # judged, not killed
    timed_out: int       # truncated runs (excluded from the score);
                         # killed + survivors + timed_out == done
    shards_done: int
    shards_total: int
    aborted: bool = False

    @property
    def pct(self) -> float:
        return 100.0 * self.done / self.total if self.total else 100.0


class _CampaignTracker:
    """Mutable per-campaign counters behind the progress snapshots and
    the abort policy."""

    def __init__(self, prepared: PreparedCampaign,
                 abort: "AbortPolicy | None" = None) -> None:
        self.prepared = prepared
        self.abort = abort
        self.done = 0
        self.killed = 0
        self.survivors = 0
        self.timed_out = 0
        self.shards_done = 0
        self.aborted = False

    def record(self, outcome) -> None:
        self.done += 1
        # Mirror MutationReport's score accounting: a timed-out run is
        # neither a kill nor a survivor, even if it diverged before the
        # truncation -- so killed + survivors + timed_out == done and
        # the running abort score agrees with the final report.
        if outcome.timed_out:
            self.timed_out += 1
        elif outcome.killed:
            self.killed += 1
        else:
            self.survivors += 1
        if self.abort is not None and not self.aborted:
            self.aborted = self.abort.triggered(
                killed=self.killed,
                survivors=self.survivors,
                judged=self.done - self.timed_out,
            )

    def absorb(self, outcomes, progress=None) -> None:
        """Account one completed shard: record every outcome, bump the
        shard counter, fire the progress callback.  The single
        absorption path shared by :func:`stream_prepared` and
        :func:`run_benchmark_suite`, so streaming and suite accounting
        cannot drift apart."""
        for outcome in outcomes:
            self.record(outcome)
        self.shards_done += 1
        if progress is not None:
            progress(self.snapshot())

    def snapshot(self) -> CampaignProgress:
        p = self.prepared
        return CampaignProgress(
            ip_name=p.ip_name,
            sensor_type=p.sensor_type,
            done=self.done,
            total=p.total,
            killed=self.killed,
            survivors=self.survivors,
            timed_out=self.timed_out,
            shards_done=self.shards_done,
            shards_total=p.total_shards,
            aborted=self.aborted,
        )


class CampaignScheduler(LocalPoolPlacement):
    """One persistent local worker pool serving shards from many
    campaigns -- the historical name of
    :class:`~repro.mutation.placement.LocalPoolPlacement`, kept as the
    batch-flow entry point.

    "Where a shard runs" is now a policy
    (:class:`~repro.mutation.placement.ShardPlacement`): every
    streaming entry point in this module accepts any placement -- this
    local pool, a :class:`~repro.service.fleet.RemoteWorkerPlacement`
    speaking to a ``repro serve --role worker`` daemon, or a whole
    :class:`~repro.service.fleet.FleetPlacement` -- and produces
    byte-identical reports on all of them (outcomes merge by mutant
    index, never by completion or steal order).

    The pool is **self-healing** (PR 7, inherited from
    :class:`~repro.mutation.placement.LocalPoolPlacement`): a worker
    process dying mid-shard (``kill -9``, OOM, ``os._exit``) is
    absorbed by rebuilding the pool and re-running the lost shards;
    a shard that keeps breaking pools must prove itself in an
    isolated probe pool and is otherwise quarantined with a loud,
    structured
    :class:`~repro.mutation.placement.PoisonShardError` -- a campaign
    is never silently truncated by infrastructure failure.
    """

    def __enter__(self) -> "CampaignScheduler":
        return self


def _ephemeral_width(workers: int, prepared: PreparedCampaign) -> int:
    """Pool width for a one-campaign ephemeral scheduler: never more
    workers than shards (a one-shard campaign executes inline), never
    fewer than one (``workers <= 1`` keeps the historical inline
    semantics instead of raising)."""
    return min(max(1, workers), max(1, len(prepared.shards)))


@contextmanager
def _leased_scheduler(scheduler: "ShardPlacement | None", width: int):
    """Yield ``scheduler`` untouched when one was passed (the caller
    owns its lifetime), or an ephemeral :class:`CampaignScheduler` of
    ``width`` workers that is shut down on exit.  The single
    scheduler-lifecycle policy shared by every campaign entry point."""
    if scheduler is not None:
        yield scheduler
        return
    ephemeral = CampaignScheduler(max(1, width))
    try:
        yield ephemeral
    finally:
        ephemeral.shutdown()


def _stream_shard_results(scheduler: "ShardPlacement", shards, *,
                          stop=None):
    """Windowed shard submission: yield each completed shard's outcome
    list in completion order, keeping at most one submitted shard per
    pool slot so a ``stop()`` predicate (e.g. an abort policy)
    genuinely stops work instead of merely ignoring results of shards
    already queued behind the pool.  The low-level drain loop shared
    by :func:`stream_shard_batches` and
    :func:`repro.mutation.rtl_validation.validate_at_rtl`.

    The in-flight window is **never abandoned**: if the consumer stops
    iterating early -- a raising ``progress`` callback, an aborted
    stream, a disconnected service client closing its generator -- the
    ``finally`` block cancels what it can and drains the rest, so a
    shared pool is left with no orphan futures and the next campaign
    starts clean.
    """
    remaining = iter(shards)
    pending: "set[Future]" = set()
    exhausted = False
    try:
        while True:
            while not exhausted and len(pending) < scheduler.workers and \
                    not (stop is not None and stop()):
                shard = next(remaining, None)
                if shard is None:
                    exhausted = True
                    break
                pending.add(scheduler.submit(shard))
            if not pending:
                break
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                yield future.result()
    finally:
        if pending:
            for future in pending:
                future.cancel()
            wait(pending)


def _write_back(cache, cache_keys, outcomes, encode, ip=None) -> None:
    """Store freshly-executed outcomes under their prepare-time entry
    keys (no-op without a cache).  ``ip`` tags each payload for the
    per-IP cache statistics (:meth:`ResultCache.stats`); the tag is
    informational and ignored on decode."""
    if cache is None or cache_keys is None:
        return
    for outcome in outcomes:
        payload = encode(outcome)
        if ip is not None:
            payload["ip"] = ip
        cache.put(cache_keys[outcome.index], payload)


def stream_shard_batches(
    scheduler: "ShardPlacement",
    prepared: PreparedCampaign,
    *,
    progress=None,
    abort: "AbortPolicy | None" = None,
    cache=None,
):
    """Run an already-prepared campaign on ``scheduler``, yielding one
    ``(outcomes, CampaignProgress)`` pair per completed shard.  The
    shard-granular streaming core shared by :func:`stream_prepared`
    and the campaign service (whose ``/jobs/<id>/events`` wire format
    is exactly this: per-shard outcome batches interleaved with
    progress snapshots); the caller owns the scheduler's lifetime.

    Replayed outcomes (``prepared.replayed_outcomes``: cache hits plus
    statically-pruned verdicts) are yielded first as one virtual shard
    -- they count toward progress and can trigger the abort policy
    before any submission happens.  Freshly executed outcomes are
    expanded with any deferred duplicate clones
    (:meth:`~repro.mutation.campaign.PreparedCampaign.expand_outcomes`)
    and written back to ``cache`` as their shards complete (pass the
    same cache the campaign was prepared with) -- so the clones earn
    their own content-addressed entries for free.

    Abandoning the generator early (``close()``, or an exception out
    of a ``progress`` callback) stops submission and drains in-flight
    shards before returning, so a shared scheduler is never left with
    orphan work -- see :func:`_stream_shard_results`.
    """
    from .cache import encode_outcome

    with trace_span("scheduler.stream", ip=prepared.ip_name,
                    sensor=prepared.sensor_type,
                    shards=prepared.total_shards):
        tracker = _CampaignTracker(prepared, abort)
        replayed = prepared.replayed_outcomes
        if replayed:
            tracker.absorb(replayed, progress)
            yield list(replayed), tracker.snapshot()
        results = _stream_shard_results(
            scheduler, prepared.shards, stop=lambda: tracker.aborted
        )
        try:
            for outcomes in results:
                # The obs side-channel is absorbed before the outcome
                # list is re-shaped (expansion builds a plain list):
                # shard counters feed the metrics registry, relative-
                # offset spans are re-anchored onto the tracer, and the
                # payload rides on to the caller for per-campaign
                # aggregation (report.obs).
                obs = getattr(outcomes, "obs", None)
                absorb_shard_counters(obs)
                TRACER.absorb_shard(obs, ip=prepared.ip_name)
                outcomes = prepared.expand_outcomes(outcomes)
                _write_back(cache, prepared.cache_keys, outcomes,
                            encode_outcome, ip=prepared.ip_name)
                tracker.absorb(outcomes, progress)
                yield ShardResult(outcomes, obs=obs), tracker.snapshot()
        finally:
            # Deterministic cleanup even when our *own* frame is torn
            # down mid-yield (consumer close) or a callback raised
            # above: close the drain loop now instead of waiting for
            # GC.
            results.close()


def stream_prepared(
    scheduler: "ShardPlacement",
    prepared: PreparedCampaign,
    *,
    progress=None,
    abort: "AbortPolicy | None" = None,
    cache=None,
):
    """Run an already-prepared campaign on ``scheduler``, yielding
    ``MutantOutcome``s as shards complete.  The streaming core shared
    by :func:`iter_campaign` and
    :func:`repro.mutation.campaign.run_campaign`; the caller owns the
    scheduler's lifetime.  Outcome-granular flattening of
    :func:`stream_shard_batches` -- see there for the cache-replay and
    early-abandonment semantics.
    """
    batches = stream_shard_batches(
        scheduler, prepared, progress=progress, abort=abort, cache=cache
    )
    try:
        for outcomes, _snapshot in batches:
            yield from outcomes
    finally:
        batches.close()


def iter_campaign(
    golden,
    injected,
    stimuli,
    *,
    ip_name: str = "ip",
    sensor_type: str = "razor",
    recovery: bool = True,
    tap_order: "list[str] | None" = None,
    workers: int = 1,
    shard_size: "int | None" = None,
    batch_size: "int | None" = None,
    scheduler: "ShardPlacement | None" = None,
    progress=None,
    abort: "AbortPolicy | None" = None,
    cache=None,
    lint_prune: bool = False,
    prune_plan=None,
):
    """Stream one campaign: yield ``MutantOutcome``s as shards complete.

    Arguments mirror :func:`repro.mutation.campaign.run_campaign`.
    With a ``scheduler`` the campaign runs on that shared pool (and
    ``workers`` is ignored in favour of ``scheduler.workers``);
    otherwise an ephemeral scheduler is created and shut down when the
    generator finishes (or is closed early).

    Every outcome is yielded exactly once.  Yield order is shard-
    completion order -- deterministic for one worker, pool-dependent
    otherwise -- but the outcomes themselves are computed identically
    regardless of sharding, so sorting the collected yields by
    ``index`` reproduces :func:`run_campaign`'s deterministic report.

    ``progress`` is called with a :class:`CampaignProgress` after each
    shard.  ``abort`` (an :class:`AbortPolicy`) stops *submission* of
    new shards once triggered; shards already in flight drain and are
    still yielded.  ``cache`` (a
    :class:`~repro.mutation.cache.ResultCache`) replays known verdicts
    as the very first batch -- so with a warm cache the stream yields
    everything instantly and submits nothing -- and writes fresh
    verdicts back as shards complete.  ``lint_prune`` / ``prune_plan``
    mirror :func:`~repro.mutation.campaign.run_campaign`: statically
    pruned verdicts join the first (replayed) batch.
    """
    prepared = prepare_campaign(
        golden,
        injected,
        stimuli,
        ip_name=ip_name,
        sensor_type=sensor_type,
        recovery=recovery,
        tap_order=tap_order,
        workers=workers if scheduler is None else scheduler.workers,
        shard_size=shard_size,
        batch_size=batch_size,
        cache=cache,
        lint_prune=lint_prune,
        prune_plan=prune_plan,
    )
    with _leased_scheduler(
        scheduler, _ephemeral_width(workers, prepared)
    ) as sched:
        yield from stream_prepared(
            sched, prepared, progress=progress, abort=abort, cache=cache
        )


@dataclass
class SuiteResult:
    """Outcome of one :func:`run_benchmark_suite` run."""

    #: ``(ip_name, sensor_type) -> MutationReport``, every report
    #: field-identical to a standalone ``run_campaign`` (modulo the
    #: wall-clock ``seconds``, which here spans that campaign's own
    #: preparation to its last shard; campaigns overlap on the shared
    #: pool, so the per-campaign times can sum past the suite total).
    reports: "dict[tuple[str, str], MutationReport]"
    seconds: float           # whole suite, including flow builds
    campaign_seconds: float  # prepare+execute phase (prep of later
                             # campaigns overlaps earlier shards)
    workers: int
    #: ``(ip_name, sensor_type) -> RtlValidationReport`` when the
    #: suite ran with ``rtl_validation=True`` (empty otherwise); the
    #: RTL shards interleaved with the TLM shards on the same pool.
    rtl_reports: "dict" = field(default_factory=dict)

    @property
    def total_mutants(self) -> int:
        """TLM campaign mutants (RTL validations counted separately
        via :attr:`total_rtl_mutants`)."""
        return sum(r.total for r in self.reports.values())

    @property
    def total_rtl_mutants(self) -> int:
        return sum(r.total for r in self.rtl_reports.values())

    @property
    def cache_hits(self) -> "int | None":
        """Replayed verdicts across every report (TLM + RTL), or
        ``None`` when the suite ran without a cache."""
        hits = [
            r.cache_hits
            for r in (*self.reports.values(), *self.rtl_reports.values())
            if r.cache_hits is not None
        ]
        return sum(hits) if hits else None

    @property
    def cache_misses(self) -> "int | None":
        misses = [
            r.cache_misses
            for r in (*self.reports.values(), *self.rtl_reports.values())
            if r.cache_misses is not None
        ]
        return sum(misses) if misses else None

    @property
    def mutants_per_second(self) -> float:
        """Pool throughput over the campaign window: mutants actually
        *executed* per second.  RTL-validation mutants run inside the
        same window, so they count; cache-replayed verdicts never
        touch the pool, so they do not (a fully-warm re-run reports
        0.0 rather than a replay rate mislabelled as execution)."""
        if self.campaign_seconds <= 0:
            return 0.0
        executed = (
            self.total_mutants + self.total_rtl_mutants
            - (self.cache_hits or 0)
        )
        return executed / self.campaign_seconds

    @property
    def all_killed(self) -> bool:
        return all(r.killed_pct == 100.0 for r in self.reports.values())

    @property
    def timed_out_count(self) -> int:
        return sum(r.timed_out_count for r in self.reports.values())

    @property
    def rtl_validation_ok(self) -> bool:
        """True when no RTL validation ran, or every Razor RTL report
        raised its error on every mutant (the paper's cross-level
        agreement criterion).  Counter risen percentages sit below
        100% by LUT-threshold design, so they are not gated."""
        return all(
            r.risen_pct == 100.0
            for (_, sensor), r in self.rtl_reports.items()
            if sensor == "razor"
        )


@dataclass
class _SuiteJob:
    """One TLM campaign inside a suite: prepared shards + merge state."""

    key: "tuple[str, str]"
    prepared: PreparedCampaign
    tracker: _CampaignTracker
    started: float = 0.0     # perf_counter at this campaign's prepare
    outcomes: "list" = field(default_factory=list)
    seconds: float = 0.0

    def absorb_shard(self, outcomes, progress) -> None:
        self.outcomes.extend(outcomes)
        self.tracker.absorb(outcomes, progress)

    def expand(self, outcomes) -> "list":
        """Resolve deferred duplicate clones against a fresh shard
        batch (no-op unless the campaign was prepared with
        ``lint_prune=True``)."""
        return self.prepared.expand_outcomes(outcomes)

    def write_back(self, cache, outcomes) -> None:
        from .cache import encode_outcome

        _write_back(cache, self.prepared.cache_keys, outcomes,
                    encode_outcome, ip=self.key[0])

    @property
    def complete(self) -> bool:
        return self.tracker.shards_done == self.prepared.total_shards


@dataclass
class _RtlSuiteJob:
    """One RTL validation inside a suite: its shards ride the same
    shared pool as the TLM campaign shards (no per-shard progress
    callbacks -- RTL outcomes carry no kill/timeout verdict for the
    :class:`CampaignProgress` fields to mean anything)."""

    key: "tuple[str, str]"
    prepared: "object"       # PreparedRtlValidation
    started: float = 0.0
    outcomes: "list" = field(default_factory=list)
    shards_done: int = 0
    seconds: float = 0.0

    def absorb_shard(self, outcomes, progress) -> None:
        del progress
        self.outcomes.extend(outcomes)
        self.shards_done += 1

    def expand(self, outcomes) -> "list":
        """RTL validation never prunes: every mutant re-executes at
        RTL by definition of the cross-level check."""
        return list(outcomes)

    def write_back(self, cache, outcomes) -> None:
        from .cache import encode_rtl_outcome

        _write_back(cache, self.prepared.cache_keys, outcomes,
                    encode_rtl_outcome, ip=self.key[0])

    @property
    def complete(self) -> bool:
        return self.shards_done == self.prepared.total_shards


def run_benchmark_suite(
    specs,
    sensor_types=("razor", "counter"),
    *,
    workers: int = 4,
    shard_size: "int | None" = None,
    batch_size: "int | None" = None,
    mutation_cycles: "int | None" = None,
    scheduler: "ShardPlacement | None" = None,
    progress=None,
    flows: "dict | None" = None,
    cache=None,
    rtl_validation: bool = False,
    rtl_validation_cycles: "int | None" = None,
    rtl_exec_mode: str = "compiled",
    lint_prune: bool = False,
) -> SuiteResult:
    """Run the cross-IP campaign suite on one shared worker pool.

    Args:
        specs: iterable of :class:`repro.ips.IpSpec` or registry
            names; every distinct ``spec x sensor_type`` pair becomes
            one campaign (duplicates are run once).
        sensor_types: the sensor variants to cover (default both).
        workers: pool width when no ``scheduler`` is passed.
        shard_size: overrides the one-shard-per-worker batching.
        batch_size: execute every TLM shard as batched multi-mutant
            sweeps of this many mutants
            (:mod:`repro.mutation.batched`); reports stay
            field-identical to the serial default.
        mutation_cycles: overrides each IP's testbench length.
        scheduler: a :class:`CampaignScheduler` owning the shared pool
            (its ``workers`` takes precedence).
        progress: per-shard :class:`CampaignProgress` callback, tagged
            with the shard's campaign.
        flows: optional ``(ip_name, sensor_type) ->``
            :class:`~repro.flow.pipeline.FlowResult` map of pre-built
            flows (the benchmark harness uses this to time scheduling
            strategies without re-running flow setup); missing entries
            are built via :func:`repro.flow.run_flow`.
        cache: a :class:`~repro.mutation.cache.ResultCache` shared by
            every campaign (and RTL validation) in the suite: known
            verdicts replay instantly, fresh ones are written back, so
            a second identical suite run executes (nearly) nothing.
        rtl_validation: also lower every campaign's RTL-validation
            mutants to shards on the *same* pool
            (:class:`~repro.mutation.rtl_validation.RtlValidationShard`),
            interleaved with the TLM shards; reports land in
            :attr:`SuiteResult.rtl_reports`.
        rtl_validation_cycles: RTL testbench length (default: the
            suite's ``mutation_cycles`` override, else the IP's
            ``mutation_cycles``).  Note a short override truncates the
            RTL testbench too: slowly-toggling endpoints (e.g. the
            filter's decimated outputs) may then legitimately miss
            100% risen -- same caveat as the TLM kill gate on short
            testbenches; pass ``rtl_validation_cycles`` explicitly to
            decouple.
        rtl_exec_mode: kernel execution mode for the RTL shards.
        lint_prune: run the static mutant analyzer
            (:mod:`repro.lint.mutants`) on every campaign; equivalent
            mutants are judged against the golden trace instead of
            simulated, duplicates clone their representative's
            verdict.  Reports stay field-identical to an unpruned run
            (RTL validation is never pruned).

    Each campaign's flow (characterise + insert + abstract + inject)
    and golden trace are prepared in the parent, and its shards are
    submitted to the one shared :class:`CampaignScheduler` **as soon
    as that campaign is ready** -- the pool chews earlier campaigns'
    shards while later ones still prepare, and the shared queue lets
    short campaigns backfill the slots long ones leave idle.  The pool
    is spun up exactly once for the whole suite.

    Returns:
        A :class:`SuiteResult`.  The per-campaign reports are
        deterministic: field-identical to a standalone
        :func:`~repro.mutation.campaign.run_campaign` of the same
        campaign (``seconds`` aside), for any worker count and any
        cache state.
    """
    from repro.flow import run_flow
    from repro.ips import IpSpec, case_study, rebuild_recipe

    from .rtl_validation import prepare_rtl_validation

    started = time.perf_counter()
    resolved: "list[IpSpec]" = [
        case_study(s) if isinstance(s, str) else s for s in specs
    ]
    sensor_types = tuple(sensor_types)
    for sensor in sensor_types:
        # Fail fast in the parent: an unknown sensor type would
        # otherwise surface as a tap-order crash inside a worker.
        if sensor not in ("razor", "counter"):
            raise ValueError(f"unknown sensor type {sensor!r}")

    campaign_started = time.perf_counter()

    def _absorb(job, outcomes, finished_at: "float | None" = None,
                write: bool = True) -> None:
        if write:
            # Fresh shard: attach any deferred duplicate clones before
            # write-back so the clones earn their own cache entries.
            # (Replayed batches arrive with write=False and already
            # contain every prepare-time clone.)
            outcomes = job.expand(outcomes)
            job.write_back(cache, outcomes)
        job.absorb_shard(outcomes, progress)
        if job.complete:
            job.seconds = (
                finished_at if finished_at is not None
                else time.perf_counter()
            ) - job.started

    jobs: "list[_SuiteJob]" = []
    rtl_jobs: "list[_RtlSuiteJob]" = []
    futures: "dict[Future, object]" = {}
    #: perf_counter stamped the moment each future resolves (pool
    #: callback thread), so a campaign's duration is measured to its
    #: last shard's *completion*, not to whenever the parent -- which
    #: may be busy building a later campaign's flow -- drains it.
    #: Closed once the drain loop exits: a done-callback firing after
    #: that (cancelled future resolving during teardown) must not
    #: mutate the stamp map the suite no longer reads.
    completion = CompletionStamps()
    seen: "set[tuple[str, str]]" = set()

    def _absorb_done(block: bool) -> None:
        if not futures:
            return
        done, _ = wait(
            set(futures),
            timeout=None if block else 0,
            return_when=FIRST_COMPLETED,
        )
        for future in done:
            _absorb(
                futures.pop(future),
                future.result(),
                completion.pop(future),
            )

    def _submit_job(sched, job, shards) -> None:
        # Submit immediately: the pool starts on this campaign's
        # shards while the next campaign's flow and golden trace still
        # prepare in the parent.  (Inline execution resolves at
        # submission, so absorb right away.)
        for shard in shards:
            future = sched.submit(shard)
            if future.done():
                _absorb(job, future.result())
            else:
                futures[future] = job
                future.add_done_callback(completion.stamp)

    def _run_suite(sched) -> None:
        for spec in resolved:
            for sensor in sensor_types:
                key = (spec.name, sensor)
                if key in seen:
                    continue
                seen.add(key)
                flow = (flows or {}).get(key)
                if flow is None:
                    # Forward the kernel mode so the parent-side
                    # design (RTL fingerprints, inline shards, memo
                    # seeding) is built exactly as pool workers will
                    # rebuild it.
                    flow = run_flow(
                        spec, sensor, run_mutation=False,
                        rtl_exec_mode=rtl_exec_mode,
                    )
                stimuli = spec.stimulus(
                    mutation_cycles or spec.mutation_cycles
                )
                # Campaign time starts at its own preparation (golden
                # trace + sharding), matching run_campaign.seconds --
                # the flow build above is suite setup, not campaign.
                job_started = time.perf_counter()
                prune_plan = None
                if lint_prune:
                    from repro.lint.mutants import plan_pruning

                    # The augmented IR module enables the
                    # frozen-target fold analysis on top of the
                    # scheduler-level criteria.
                    prune_plan = plan_pruning(
                        flow.injected, sensor,
                        module=flow.augmented.module,
                    )
                prepared = prepare_campaign(
                    # The GeneratedTlm (not a bare factory) keeps the
                    # golden fingerprintable for golden-trace caching.
                    flow.tlm_optimized,
                    flow.injected,
                    stimuli,
                    ip_name=spec.name,
                    sensor_type=sensor,
                    recovery=True,
                    workers=sched.workers,
                    shard_size=shard_size,
                    batch_size=batch_size,
                    cache=cache,
                    lint_prune=lint_prune,
                    prune_plan=prune_plan,
                )
                job = _SuiteJob(
                    key=key,
                    prepared=prepared,
                    tracker=_CampaignTracker(prepared),
                    started=job_started,
                )
                jobs.append(job)
                if prepared.replayed_outcomes:
                    # Replayed verdicts (cache hits + statically
                    # pruned) are already in the cache -- absorb
                    # without writing them back.
                    _absorb(job, prepared.replayed_outcomes, write=False)
                _submit_job(sched, job, prepared.shards)

                if rtl_validation:
                    # Honour the suite-wide cycle override: a quick
                    # `--cycles 4` suite must not pay full-length RTL
                    # simulation per mutant behind the user's back.
                    rtl_stimuli = spec.stimulus(
                        rtl_validation_cycles or mutation_cycles
                        or spec.mutation_cycles
                    )
                    rtl_started = time.perf_counter()
                    rtl_prepared = prepare_rtl_validation(
                        flow.augmented,
                        flow.injected.mutants,
                        stimuli=rtl_stimuli,
                        cycles=len(rtl_stimuli),
                        ip_name=spec.name,
                        exec_mode=rtl_exec_mode,
                        rebuild=rebuild_recipe(spec),
                        workers=sched.workers,
                        shard_size=shard_size,
                        cache=cache,
                    )
                    rtl_job = _RtlSuiteJob(
                        key=key, prepared=rtl_prepared, started=rtl_started
                    )
                    rtl_jobs.append(rtl_job)
                    if rtl_prepared.cached_outcomes:
                        _absorb(
                            rtl_job, rtl_prepared.cached_outcomes,
                            write=False,
                        )
                    _submit_job(sched, rtl_job, rtl_prepared.shards)
                # Keep progress live and per-campaign timing honest:
                # drain whatever finished while this campaign prepared.
                _absorb_done(block=False)
        while futures:
            _absorb_done(block=True)

    # A passed scheduler defines the pool width; shard to fill it.
    with _leased_scheduler(scheduler, workers) as sched:
        try:
            _run_suite(sched)
        except BaseException:
            # A raising progress callback (or any mid-suite failure)
            # must not leave orphan futures behind on a *shared* pool:
            # cancel what never started, drain what is in flight, so
            # the next suite on the same scheduler starts clean.
            for future in futures:
                future.cancel()
            if futures:
                wait(set(futures))
            raise
        finally:
            completion.close()
    campaign_seconds = time.perf_counter() - campaign_started

    reports = {
        job.key: job.prepared.build_report(job.outcomes, seconds=job.seconds)
        for job in jobs
    }
    rtl_reports = {
        job.key: job.prepared.build_report(job.outcomes, seconds=job.seconds)
        for job in rtl_jobs
    }
    return SuiteResult(
        reports=reports,
        seconds=time.perf_counter() - started,
        campaign_seconds=campaign_seconds,
        workers=sched.workers,
        rtl_reports=rtl_reports,
    )
