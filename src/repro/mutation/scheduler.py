"""Streaming cross-IP campaign scheduler (one pool, many campaigns).

:mod:`repro.mutation.campaign` turned one campaign into picklable
shards; this module turns *many* campaigns -- all IPs x both sensor
types x any variant -- into one service-shaped workload fed to a
single persistent worker pool:

* :class:`CampaignScheduler` owns one
  :class:`concurrent.futures.ProcessPoolExecutor` for its whole
  lifetime.  Campaigns share it instead of paying a pool spin-up and
  tear-down per :func:`~repro.mutation.campaign.run_campaign` call;
  ``workers=1`` degrades to inline execution (no processes, fully
  deterministic ordering).
* :func:`iter_campaign` is the streaming face of one campaign: a
  generator yielding :class:`~repro.mutation.analysis.MutantOutcome`
  objects as their shards complete, with per-shard
  :class:`CampaignProgress` callbacks and :class:`AbortPolicy`
  early-abort (stop on the first surviving mutant, or once the score
  threshold is reached -- new shards stop being submitted, in-flight
  shards drain).  Collecting every yield and sorting by mutant index
  reproduces the blocking report byte-for-byte.
* :func:`run_benchmark_suite` batches whole campaign *suites* across
  IPs: each campaign's shards are submitted to the shared pool as soon
  as that campaign is prepared (prep of later campaigns overlaps
  execution of earlier ones), and the shared queue lets short
  campaigns backfill pool slots left idle while the long ones drain --
  no per-campaign serialisation barrier, one pool warm for the whole
  regression.

Score accounting in the merged reports follows
:class:`repro.mutation.analysis.MutationReport`: timed-out runs are
excluded from every aggregate percentage (``effective_total``).
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .campaign import PreparedCampaign, _run_shard, prepare_campaign

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependency
    from .analysis import MutationReport

__all__ = [
    "AbortPolicy",
    "CampaignProgress",
    "CampaignScheduler",
    "SuiteResult",
    "iter_campaign",
    "run_benchmark_suite",
    "stream_prepared",
]


@dataclass(frozen=True)
class AbortPolicy:
    """Early-abort policy for streaming campaigns.

    ``stop_on_survivor``
        stop submitting new shards as soon as a judged mutant survives
        (the paper's closure loop cares about the *first* hole in the
        sensor net, not the full count);
    ``score_threshold``
        stop once the killed percentage over the judged outcomes so
        far reaches the threshold (metric-driven closure: the campaign
        has proven enough).  The running score over a few mutants is
        noisy -- ``min_judged`` requires a minimum judged sample
        before the threshold may trigger (default 1: any judged
        outcome counts).

    Aborting never discards observations: shards already in flight
    drain and their outcomes are still yielded; only *new* submissions
    stop.
    """

    stop_on_survivor: bool = False
    score_threshold: "float | None" = None
    min_judged: int = 1

    def triggered(self, *, killed: int, survivors: int, judged: int) -> bool:
        if self.stop_on_survivor and survivors > 0:
            return True
        if (
            self.score_threshold is not None
            and judged >= max(1, self.min_judged)
            and 100.0 * killed / judged >= self.score_threshold
        ):
            return True
        return False


@dataclass(frozen=True)
class CampaignProgress:
    """Snapshot handed to ``progress`` callbacks after every shard."""

    ip_name: str
    sensor_type: str
    done: int            # outcomes observed so far
    total: int           # mutants in the campaign
    killed: int          # judged kills (timed-out runs are neither)
    survivors: int       # judged, not killed
    timed_out: int       # truncated runs (excluded from the score);
                         # killed + survivors + timed_out == done
    shards_done: int
    shards_total: int
    aborted: bool = False

    @property
    def pct(self) -> float:
        return 100.0 * self.done / self.total if self.total else 100.0


class _CampaignTracker:
    """Mutable per-campaign counters behind the progress snapshots and
    the abort policy."""

    def __init__(self, prepared: PreparedCampaign,
                 abort: "AbortPolicy | None" = None) -> None:
        self.prepared = prepared
        self.abort = abort
        self.done = 0
        self.killed = 0
        self.survivors = 0
        self.timed_out = 0
        self.shards_done = 0
        self.aborted = False

    def record(self, outcome) -> None:
        self.done += 1
        # Mirror MutationReport's score accounting: a timed-out run is
        # neither a kill nor a survivor, even if it diverged before the
        # truncation -- so killed + survivors + timed_out == done and
        # the running abort score agrees with the final report.
        if outcome.timed_out:
            self.timed_out += 1
        elif outcome.killed:
            self.killed += 1
        else:
            self.survivors += 1
        if self.abort is not None and not self.aborted:
            self.aborted = self.abort.triggered(
                killed=self.killed,
                survivors=self.survivors,
                judged=self.done - self.timed_out,
            )

    def absorb(self, outcomes, progress=None) -> None:
        """Account one completed shard: record every outcome, bump the
        shard counter, fire the progress callback.  The single
        absorption path shared by :func:`stream_prepared` and
        :func:`run_benchmark_suite`, so streaming and suite accounting
        cannot drift apart."""
        for outcome in outcomes:
            self.record(outcome)
        self.shards_done += 1
        if progress is not None:
            progress(self.snapshot())

    def snapshot(self) -> CampaignProgress:
        p = self.prepared
        return CampaignProgress(
            ip_name=p.ip_name,
            sensor_type=p.sensor_type,
            done=self.done,
            total=p.total,
            killed=self.killed,
            survivors=self.survivors,
            timed_out=self.timed_out,
            shards_done=self.shards_done,
            shards_total=len(p.shards),
            aborted=self.aborted,
        )


class CampaignScheduler:
    """One persistent worker pool serving shards from many campaigns.

    The pool is created lazily on first submission and lives until
    :meth:`shutdown` (or context-manager exit), so a whole regression
    -- every IP x sensor type, plus ad-hoc :func:`iter_campaign`
    streams -- reuses warm worker processes instead of forking a fresh
    pool per campaign.  ``workers=1`` never creates processes: shards
    run inline at submission time, which keeps the single-worker path
    deterministic and dependency-free.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool: "ProcessPoolExecutor | None" = None
        self._closed = False

    def pool(self) -> ProcessPoolExecutor:
        """The lazily-created shared executor (``workers > 1`` only)."""
        if self._closed:
            raise RuntimeError("scheduler has been shut down")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def submit(self, shard) -> Future:
        """Submit one :class:`CampaignShard`; returns a future of its
        outcome list.  Inline mode (``workers=1``) executes the shard
        eagerly and returns an already-resolved future."""
        if self._closed:
            raise RuntimeError("scheduler has been shut down")
        if self.workers <= 1:
            future: Future = Future()
            try:
                future.set_result(_run_shard(shard))
            except BaseException as exc:  # pragma: no cover - propagated
                future.set_exception(exc)
            return future
        return self.pool().submit(_run_shard, shard)

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None

    def __enter__(self) -> "CampaignScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _ephemeral_width(workers: int, prepared: PreparedCampaign) -> int:
    """Pool width for a one-campaign ephemeral scheduler: never more
    workers than shards (a one-shard campaign executes inline), never
    fewer than one (``workers <= 1`` keeps the historical inline
    semantics instead of raising)."""
    return min(max(1, workers), max(1, len(prepared.shards)))


@contextmanager
def _leased_scheduler(scheduler: "CampaignScheduler | None", width: int):
    """Yield ``scheduler`` untouched when one was passed (the caller
    owns its lifetime), or an ephemeral :class:`CampaignScheduler` of
    ``width`` workers that is shut down on exit.  The single
    scheduler-lifecycle policy shared by every campaign entry point."""
    if scheduler is not None:
        yield scheduler
        return
    ephemeral = CampaignScheduler(max(1, width))
    try:
        yield ephemeral
    finally:
        ephemeral.shutdown()


def stream_prepared(
    scheduler: "CampaignScheduler",
    prepared: PreparedCampaign,
    *,
    progress=None,
    abort: "AbortPolicy | None" = None,
):
    """Run an already-prepared campaign on ``scheduler``, yielding
    ``MutantOutcome``s as shards complete.  The streaming core shared
    by :func:`iter_campaign` and
    :func:`repro.mutation.campaign.run_campaign`; the caller owns the
    scheduler's lifetime."""
    tracker = _CampaignTracker(prepared, abort)
    remaining = iter(prepared.shards)
    pending: "set[Future]" = set()
    exhausted = False
    while True:
        # Keep at most one submitted shard per pool slot so an abort
        # genuinely stops work, instead of merely ignoring results of
        # shards already queued behind the pool.
        while not tracker.aborted and not exhausted and \
                len(pending) < scheduler.workers:
            shard = next(remaining, None)
            if shard is None:
                exhausted = True
                break
            pending.add(scheduler.submit(shard))
        if not pending:
            break
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            outcomes = future.result()
            tracker.absorb(outcomes, progress)
            yield from outcomes


def iter_campaign(
    golden,
    injected,
    stimuli,
    *,
    ip_name: str = "ip",
    sensor_type: str = "razor",
    recovery: bool = True,
    tap_order: "list[str] | None" = None,
    workers: int = 1,
    shard_size: "int | None" = None,
    scheduler: "CampaignScheduler | None" = None,
    progress=None,
    abort: "AbortPolicy | None" = None,
):
    """Stream one campaign: yield ``MutantOutcome``s as shards complete.

    Arguments mirror :func:`repro.mutation.campaign.run_campaign`.
    With a ``scheduler`` the campaign runs on that shared pool (and
    ``workers`` is ignored in favour of ``scheduler.workers``);
    otherwise an ephemeral scheduler is created and shut down when the
    generator finishes (or is closed early).

    Every outcome is yielded exactly once.  Yield order is shard-
    completion order -- deterministic for one worker, pool-dependent
    otherwise -- but the outcomes themselves are computed identically
    regardless of sharding, so sorting the collected yields by
    ``index`` reproduces :func:`run_campaign`'s deterministic report.

    ``progress`` is called with a :class:`CampaignProgress` after each
    shard.  ``abort`` (an :class:`AbortPolicy`) stops *submission* of
    new shards once triggered; shards already in flight drain and are
    still yielded.
    """
    prepared = prepare_campaign(
        golden,
        injected,
        stimuli,
        ip_name=ip_name,
        sensor_type=sensor_type,
        recovery=recovery,
        tap_order=tap_order,
        workers=workers if scheduler is None else scheduler.workers,
        shard_size=shard_size,
    )
    with _leased_scheduler(
        scheduler, _ephemeral_width(workers, prepared)
    ) as sched:
        yield from stream_prepared(
            sched, prepared, progress=progress, abort=abort
        )


@dataclass
class SuiteResult:
    """Outcome of one :func:`run_benchmark_suite` run."""

    #: ``(ip_name, sensor_type) -> MutationReport``, every report
    #: field-identical to a standalone ``run_campaign`` (modulo the
    #: wall-clock ``seconds``, which here spans that campaign's own
    #: preparation to its last shard; campaigns overlap on the shared
    #: pool, so the per-campaign times can sum past the suite total).
    reports: "dict[tuple[str, str], MutationReport]"
    seconds: float           # whole suite, including flow builds
    campaign_seconds: float  # prepare+execute phase (prep of later
                             # campaigns overlaps earlier shards)
    workers: int

    @property
    def total_mutants(self) -> int:
        return sum(r.total for r in self.reports.values())

    @property
    def mutants_per_second(self) -> float:
        if self.campaign_seconds <= 0:
            return 0.0
        return self.total_mutants / self.campaign_seconds

    @property
    def all_killed(self) -> bool:
        return all(r.killed_pct == 100.0 for r in self.reports.values())

    @property
    def timed_out_count(self) -> int:
        return sum(r.timed_out_count for r in self.reports.values())


@dataclass
class _SuiteJob:
    """One campaign inside a suite: prepared shards + merge state."""

    key: "tuple[str, str]"
    prepared: PreparedCampaign
    tracker: _CampaignTracker
    started: float = 0.0     # perf_counter at this campaign's prepare
    outcomes: "list" = field(default_factory=list)
    seconds: float = 0.0

    @property
    def complete(self) -> bool:
        return self.tracker.shards_done == len(self.prepared.shards)


def run_benchmark_suite(
    specs,
    sensor_types=("razor", "counter"),
    *,
    workers: int = 4,
    shard_size: "int | None" = None,
    mutation_cycles: "int | None" = None,
    scheduler: "CampaignScheduler | None" = None,
    progress=None,
    flows: "dict | None" = None,
) -> SuiteResult:
    """Run the cross-IP campaign suite on one shared worker pool.

    ``specs`` is an iterable of :class:`repro.ips.IpSpec` or registry
    names; every distinct ``spec x sensor_type`` pair becomes one
    campaign (duplicates are run once).  Each campaign's flow
    (characterise + insert + abstract + inject) and golden trace are
    prepared in the parent, and its shards are submitted to the one
    shared :class:`CampaignScheduler` **as soon as that campaign is
    ready** -- the pool chews earlier campaigns' shards while later
    ones still prepare, and the shared queue lets short campaigns
    backfill the slots long ones leave idle.  The pool is spun up
    exactly once for the whole suite.

    ``flows`` optionally maps ``(ip_name, sensor_type)`` to an already-
    built :class:`~repro.flow.pipeline.FlowResult` (the benchmark
    harness uses this to time scheduling strategies without re-running
    flow setup); missing entries are built via
    :func:`repro.flow.run_flow`.  ``progress`` receives a
    :class:`CampaignProgress` per completed shard, tagged with that
    shard's campaign.

    The per-campaign reports are deterministic: field-identical to a
    standalone :func:`~repro.mutation.campaign.run_campaign` of the
    same campaign (``seconds`` aside).
    """
    from repro.flow import run_flow
    from repro.ips import IpSpec, case_study

    started = time.perf_counter()
    resolved: "list[IpSpec]" = [
        case_study(s) if isinstance(s, str) else s for s in specs
    ]
    sensor_types = tuple(sensor_types)
    for sensor in sensor_types:
        # Fail fast in the parent: an unknown sensor type would
        # otherwise surface as a tap-order crash inside a worker.
        if sensor not in ("razor", "counter"):
            raise ValueError(f"unknown sensor type {sensor!r}")

    campaign_started = time.perf_counter()

    def _absorb(job: _SuiteJob, outcomes,
                finished_at: "float | None" = None) -> None:
        job.outcomes.extend(outcomes)
        job.tracker.absorb(outcomes, progress)
        if job.complete:
            job.seconds = (
                finished_at if finished_at is not None
                else time.perf_counter()
            ) - job.started

    jobs: "list[_SuiteJob]" = []
    futures: "dict[Future, _SuiteJob]" = {}
    #: perf_counter stamped the moment each future resolves (pool
    #: callback thread), so a campaign's duration is measured to its
    #: last shard's *completion*, not to whenever the parent -- which
    #: may be busy building a later campaign's flow -- drains it.
    completion: "dict[Future, float]" = {}
    seen: "set[tuple[str, str]]" = set()

    def _absorb_done(block: bool) -> None:
        if not futures:
            return
        done, _ = wait(
            set(futures),
            timeout=None if block else 0,
            return_when=FIRST_COMPLETED,
        )
        for future in done:
            _absorb(
                futures.pop(future),
                future.result(),
                completion.pop(future, None),
            )

    # A passed scheduler defines the pool width; shard to fill it.
    with _leased_scheduler(scheduler, workers) as sched:
        for spec in resolved:
            for sensor in sensor_types:
                key = (spec.name, sensor)
                if key in seen:
                    continue
                seen.add(key)
                flow = (flows or {}).get(key)
                if flow is None:
                    flow = run_flow(spec, sensor, run_mutation=False)
                stimuli = spec.stimulus(
                    mutation_cycles or spec.mutation_cycles
                )
                # Campaign time starts at its own preparation (golden
                # trace + sharding), matching run_campaign.seconds --
                # the flow build above is suite setup, not campaign.
                job_started = time.perf_counter()
                prepared = prepare_campaign(
                    flow.golden_factory(),
                    flow.injected,
                    stimuli,
                    ip_name=spec.name,
                    sensor_type=sensor,
                    recovery=True,
                    workers=sched.workers,
                    shard_size=shard_size,
                )
                job = _SuiteJob(
                    key=key,
                    prepared=prepared,
                    tracker=_CampaignTracker(prepared),
                    started=job_started,
                )
                jobs.append(job)
                # Submit immediately: the pool starts on this
                # campaign's shards while the next campaign's flow and
                # golden trace still prepare in the parent.  (Inline
                # mode executes at submission, so absorb right away.)
                for shard in prepared.shards:
                    future = sched.submit(shard)
                    if sched.workers <= 1:
                        _absorb(job, future.result())
                    else:
                        futures[future] = job
                        future.add_done_callback(
                            lambda f: completion.setdefault(
                                f, time.perf_counter()
                            )
                        )
                # Keep progress live and per-campaign timing honest:
                # drain whatever finished while this campaign prepared.
                _absorb_done(block=False)
        while futures:
            _absorb_done(block=True)
    campaign_seconds = time.perf_counter() - campaign_started

    reports = {
        job.key: job.prepared.build_report(job.outcomes, seconds=job.seconds)
        for job in jobs
    }
    return SuiteResult(
        reports=reports,
        seconds=time.perf_counter() - started,
        campaign_seconds=campaign_seconds,
        workers=sched.workers,
    )
