"""Mutation analysis of augmented TLM models (paper Section 7).

The injected TLM model is simulated in lockstep with a non-injected
TLM model under the same stimuli, once per mutant:

* a mutant is **killed** when the two models become observably
  different -- functional outputs diverging, or (for within-cycle
  delays that cannot corrupt function, i.e. Counter mutants) the
  sensor measurement reporting the injected delay;
* for Razor versions the per-sensor ``E`` flag verifies **detection /
  error risen**, and with recovery enabled the corrected output stream
  must equal the golden stream (stall cycles discounted) --
  **corrected**;
* for Counter versions ``MEAS_VAL`` must equal the mutant's HF tick
  (detection), and ``OUT_OK`` flags **errors risen** only above the
  LUT threshold -- delays below it are tolerable by design, which is
  why the Counter "risen" percentage sits below 100% in Table 5.

The stimulus driver implements the stall handshake: when the injected
model asserts ``razor_stall``, the input vector whose consuming edge
was stalled is re-presented (a valid/stall interface, which real
recovery-capable pipelines require anyway).

The golden stream depends only on the stimuli (and the recovery
setting), never on the active mutant, so it is computed **once per
campaign** as a :class:`GoldenTrace` and shared by every per-mutant
run.  :func:`run_mutation_analysis` is a thin compatibility wrapper
over the sharded engine in :mod:`repro.mutation.campaign`, which in
turn executes through the streaming cross-IP scheduler in
:mod:`repro.mutation.scheduler`.

Score accounting
----------------
A run that exhausts its stall budget (``MutantOutcome.timed_out``) was
truncated by the driver, not judged: its tail is not kill evidence, and
treating it as a survivor silently deflates the campaign score.  All
aggregate percentages (``killed_pct`` / ``detected_pct`` / ``risen_pct``
/ ``mutation_score``) therefore exclude timed-out outcomes entirely and
divide by :attr:`MutationReport.effective_total` (the judged runs).
The exclusion is surfaced by :func:`repro.reporting.mutation_summary_pairs`
and the ``repro mutate`` / ``repro bench`` CLI summaries; the raw
per-outcome verdicts (including a divergence observed *before* a
timeout) remain available on :attr:`MutationReport.outcomes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.abstraction import GeneratedTlm

__all__ = [
    "GoldenTrace",
    "MutantOutcome",
    "MutationReport",
    "compute_golden_trace",
    "run_mutation_analysis",
]

#: Sensor-infrastructure ports excluded from functional comparison.
SENSOR_PORTS = ("metric_ok", "razor_err", "razor_stall", "meas_val")


@dataclass(frozen=True)
class MutantOutcome:
    """Verdict for one mutant."""

    index: int
    kind: str            # "min" | "max" | "delta"
    target: str          # mutated signal
    register: str        # monitored register
    hf_tick: int
    killed: bool
    detected: bool
    error_risen: bool
    corrected: "bool | None"
    meas_val: "int | None"
    first_divergence: "int | None"
    #: True when the stall handshake exhausted its cycle budget before
    #: consuming every stimulus; the truncated tail is then *not*
    #: evidence of a kill (only divergence observed before the timeout
    #: is).
    timed_out: bool = False


@dataclass
class MutationReport:
    """Aggregate campaign result (one IP x one sensor type)."""

    ip_name: str
    sensor_type: str
    variant: str
    outcomes: "list[MutantOutcome]" = field(default_factory=list)
    cycles_per_run: int = 0
    #: Wall-clock campaign time -- runtime metadata, not a verdict, so
    #: it is excluded from report equality (two reports are equal iff
    #: every *scored* field matches).
    seconds: float = field(default=0.0, compare=False)
    #: Result-cache accounting for this campaign: ``None`` when no
    #: cache was in play, otherwise replayed / executed mutant counts.
    #: ``compare=False`` keeps cached and uncached reports equal on
    #: every scored field -- the cache must never change a verdict.
    cache_hits: "int | None" = field(default=None, compare=False)
    cache_misses: "int | None" = field(default=None, compare=False)
    #: Whether the golden trace was replayed from the result cache
    #: (``True``), simulated and stored (``False``), or the campaign
    #: ran cache-less / with an unfingerprintable golden (``None``).
    golden_cache_hit: "bool | None" = field(default=None, compare=False)
    #: Static-prune accounting (:mod:`repro.lint.mutants`): ``None``
    #: when the campaign ran without ``lint_prune``, otherwise the
    #: number of mutants whose verdicts were synthesised from the
    #: golden trace (equivalents) or cloned from a representative
    #: (duplicates) instead of simulated.  ``compare=False`` for the
    #: same reason as the cache counters -- pruning must never change
    #: a verdict, so pruned and unpruned reports compare equal.
    pruned_equivalent: "int | None" = field(default=None, compare=False)
    pruned_duplicate: "int | None" = field(default=None, compare=False)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    def judged(self) -> "list[MutantOutcome]":
        """Outcomes whose verdict counts toward the aggregate score:
        runs that completed within the stall budget.  A timed-out run
        was truncated by the driver, so it can neither be scored as a
        kill nor as a survivor (counting it in the denominator would
        silently under-report the score)."""
        return [o for o in self.outcomes if not o.timed_out]

    @property
    def effective_total(self) -> int:
        """Denominator of every aggregate percentage: mutants whose
        runs completed (``total`` minus ``timed_out_count``)."""
        return self.total - self.timed_out_count

    @property
    def killed_pct(self) -> float:
        judged = self.judged()
        return _pct(sum(o.killed for o in judged), len(judged))

    @property
    def detected_pct(self) -> float:
        judged = self.judged()
        return _pct(sum(o.detected for o in judged), len(judged))

    @property
    def risen_pct(self) -> float:
        judged = self.judged()
        return _pct(sum(o.error_risen for o in judged), len(judged))

    @property
    def corrected_pct(self) -> "float | None":
        judged = [o for o in self.outcomes if o.corrected is not None]
        if not judged:
            return None
        return _pct(sum(o.corrected for o in judged), len(judged))

    @property
    def timed_out_count(self) -> int:
        return sum(o.timed_out for o in self.outcomes)

    @property
    def mutants_per_second(self) -> float:
        """Campaign throughput: mutants actually *executed* per
        wall-clock second.  Cache-replayed verdicts are excluded (a
        fully-warm campaign reports 0.0 rather than a replay rate
        mislabelled as execution), matching
        :attr:`repro.mutation.scheduler.SuiteResult.mutants_per_second`."""
        if self.seconds <= 0:
            return 0.0
        return (self.total - (self.cache_hits or 0)) / self.seconds

    @property
    def mutation_score(self) -> float:
        """Killed over judged non-equivalent mutants (all delay mutants
        on exercised paths are non-equivalent by construction; timed-out
        runs are excluded -- see :meth:`judged`)."""
        return self.killed_pct

    def survivors(self) -> "list[MutantOutcome]":
        """Judged mutants that were not killed.  Timed-out runs are not
        survivors -- they were never fully driven."""
        return [o for o in self.judged() if not o.killed]


def _pct(num: int, den: int) -> float:
    return 100.0 * num / den if den else 0.0


def _functional(outputs: dict, functional_ports: "tuple[str, ...]") -> dict:
    return {k: outputs[k] for k in functional_ports}


def _is_subsequence(needle: "list", hay: "list") -> bool:
    it = iter(hay)
    return all(any(x == y for y in it) for x in needle)


@dataclass(frozen=True)
class GoldenTrace:
    """The mutant-independent golden reference, computed once per
    campaign and shared (pickled to worker processes) by every
    per-mutant run.

    ``full`` holds all primary outputs per cycle (the kill check --
    sensor flags are primary outputs of the augmented IP), while
    ``functional`` holds only the non-sensor subset (the corrected
    check discounts stall repeats against this stream).
    """

    functional_ports: "tuple[str, ...]"
    full: "tuple[dict, ...]"
    functional: "tuple[dict, ...]"


def compute_golden_trace(
    golden,
    stimuli: "list[dict[str, int]]",
    *,
    sensor_type: str = "razor",
    recovery: bool = True,
) -> GoldenTrace:
    """Simulate the non-injected model once over ``stimuli``.

    The golden stream depends only on the stimuli (plus the recovery
    bit for Razor versions), never on the active mutant -- so one
    trace serves the whole campaign.
    """
    functional_ports = tuple(
        p for p in golden.PORTS_OUT if p not in SENSOR_PORTS
    )
    recovery_bit = 1 if recovery else 0
    full = []
    for inputs in stimuli:
        if sensor_type == "razor":
            outs = golden.b_transport({**inputs, "razor_r": recovery_bit})
        else:
            outs = golden.b_transport(dict(inputs))
        full.append(outs)
    return GoldenTrace(
        functional_ports=functional_ports,
        full=tuple(full),
        functional=tuple(_functional(o, functional_ports) for o in full),
    )


def run_mutation_analysis(
    golden_factory,
    injected: GeneratedTlm,
    stimuli: "list[dict[str, int]]",
    *,
    ip_name: str = "ip",
    sensor_type: str = "razor",
    recovery: bool = True,
    tap_order: "list[str] | None" = None,
    workers: int = 1,
    shard_size: "int | None" = None,
    scheduler=None,
    progress=None,
    cache=None,
    lint_prune: bool = False,
    prune_plan=None,
) -> MutationReport:
    """Run the full campaign: one golden/injected pair per mutant.

    Compatibility wrapper over
    :func:`repro.mutation.campaign.run_campaign`: the golden stimulus
    run is memoised once per campaign, mutants are batched into shards,
    and ``workers > 1`` distributes the shards across worker processes
    (``scheduler=`` shares one persistent
    :class:`~repro.mutation.scheduler.CampaignScheduler` pool across
    campaigns; ``progress=`` receives per-shard
    :class:`~repro.mutation.scheduler.CampaignProgress` callbacks;
    ``cache=`` replays previously-computed verdicts from a
    :class:`~repro.mutation.cache.ResultCache`;
    ``lint_prune=True`` synthesises verdicts for statically-equivalent
    and duplicate mutants via :mod:`repro.lint.mutants` instead of
    simulating them -- pass a module-aware ``prune_plan`` to enable
    the frozen-target fold analysis).
    The merged report is deterministic -- byte-identical outcomes and
    percentages for any ``workers`` / ``shard_size`` / cache state /
    ``lint_prune`` combination.

    ``golden_factory()`` must return a fresh non-injected model;
    ``injected`` is the ADAM-generated model description (a fresh
    instance is created per mutant).  ``tap_order`` gives the register
    order of the Counter ``meas_val`` bus (resolved lazily, and only
    for Counter campaigns, when omitted).

    Returns the merged :class:`MutationReport` (outcomes in mutant-
    index order; aggregate percentages exclude timed-out runs).
    """
    from .campaign import run_campaign

    return run_campaign(
        golden_factory,
        injected,
        stimuli,
        ip_name=ip_name,
        sensor_type=sensor_type,
        recovery=recovery,
        tap_order=tap_order,
        workers=workers,
        shard_size=shard_size,
        scheduler=scheduler,
        progress=progress,
        cache=cache,
        lint_prune=lint_prune,
        prune_plan=prune_plan,
    )


def _run_razor_mutant(index, spec, mutant, stimuli, recovery, golden):
    """Evaluate one Razor mutant against the memoised golden trace."""
    functional_ports = golden.functional_ports
    recovery_bit = 1 if recovery else 0

    injected_stream = []
    injected_full = []
    error_seen = False
    killed = False
    first_div = None
    # Stall handshake: re-present the input whose edge was stalled.
    pending = list(stimuli)
    position = 0
    prev_inputs = None
    stalled_next = False
    budget = 3 * len(stimuli) + 8
    # A stall on the final stimulus still needs its re-presentation,
    # otherwise the recovered last output is never observed.
    while (position < len(pending) or stalled_next) and budget:
        budget -= 1
        if stalled_next and prev_inputs is not None:
            inputs = prev_inputs
        else:
            inputs = pending[position]
            position += 1
        outs = mutant.b_transport({**inputs, "razor_r": recovery_bit})
        if outs.get("razor_err", 0):
            error_seen = True
        stalled_next = bool(outs.get("razor_stall", 0))
        injected_stream.append(_functional(outs, functional_ports))
        injected_full.append(outs)
        prev_inputs = inputs

    # Budget exhausted mid-stall: stimuli were never consumed, or a
    # trailing re-presentation was still pending.  That is a driver
    # timeout, not an observation -- the truncated tail must not count
    # as a kill by length mismatch, nor be judged for correction.
    timed_out = (position < len(pending) or stalled_next) and not budget

    # Kill check: any observable divergence under lockstep alignment.
    # The sensor outputs (E, stall) are primary outputs of the
    # augmented IP, so a raised error alone makes the mutant
    # observable -- the paper's "if the outputs differ" criterion.
    for i, expected in enumerate(golden.full):
        if i >= len(injected_full):
            # Only reachable after a timeout (a completed run always
            # yields at least one output per stimulus); the truncated
            # tail is not evidence of a kill.
            break
        if injected_full[i] != expected:
            killed = True
            first_div = i
            break
    if not timed_out and len(injected_full) != len(golden.full):
        killed = True

    corrected = None
    if recovery and not timed_out:
        # Corrected: the golden stream survives inside the recovered
        # stream (stall repeats aside) and the error was flagged.  A
        # timed-out run never drove every stimulus, so it cannot be
        # judged either way and stays out of corrected_pct.
        corrected = error_seen and _is_subsequence(
            list(golden.functional), injected_stream
        )
    return MutantOutcome(
        index=index,
        kind=spec.kind,
        target=spec.target,
        register=spec.register,
        hf_tick=spec.hf_tick,
        killed=killed,
        detected=error_seen,
        error_risen=error_seen,
        corrected=corrected,
        meas_val=None,
        first_divergence=first_div,
        timed_out=timed_out,
    )


def _run_counter_mutant(index, spec, mutant, stimuli, tap_order, golden):
    """Evaluate one Counter mutant against the memoised golden trace."""
    tap_index = tap_order.index(spec.register)
    lo = 8 * tap_index

    killed = False
    first_div = None
    detected = False
    risen = False
    measured = None
    for i, inputs in enumerate(stimuli):
        mutant_outs = mutant.b_transport(dict(inputs))
        if _functional(
            mutant_outs, golden.functional_ports
        ) != golden.functional[i]:
            if first_div is None:
                first_div = i
            killed = True
        meas_bus = mutant_outs.get("meas_val", 0)
        meas = (meas_bus >> lo) & 0xFF
        if meas:
            detected = True
            measured = meas
            if meas == spec.hf_tick:
                # Exact measurement of the injected delay: the sensor
                # observed the mutant -- this is the paper's Counter
                # kill criterion (MEAS_VAL != 0 for the activated
                # mutant).
                killed = True
        if meas and meas > _lut_threshold(mutant, spec.register):
            risen = True
        if mutant_outs.get("metric_ok", 1) == 0:
            risen = True
    return MutantOutcome(
        index=index,
        kind=spec.kind,
        target=spec.target,
        register=spec.register,
        hf_tick=spec.hf_tick,
        killed=killed,
        detected=detected,
        error_risen=risen,
        corrected=None,
        meas_val=measured,
        first_divergence=first_div,
        timed_out=False,
    )


def _lut_threshold(model, register: str) -> int:
    """Per-path LUT threshold as baked into the generated model; the
    paper's default global threshold is 8 HF periods."""
    return getattr(model, "LUT_THRESHOLDS", {}).get(register, 8)
