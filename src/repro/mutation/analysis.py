"""Mutation analysis of augmented TLM models (paper Section 7).

The injected TLM model is simulated in lockstep with a non-injected
TLM model under the same stimuli, once per mutant:

* a mutant is **killed** when the two models become observably
  different -- functional outputs diverging, or (for within-cycle
  delays that cannot corrupt function, i.e. Counter mutants) the
  sensor measurement reporting the injected delay;
* for Razor versions the per-sensor ``E`` flag verifies **detection /
  error risen**, and with recovery enabled the corrected output stream
  must equal the golden stream (stall cycles discounted) --
  **corrected**;
* for Counter versions ``MEAS_VAL`` must equal the mutant's HF tick
  (detection), and ``OUT_OK`` flags **errors risen** only above the
  LUT threshold -- delays below it are tolerable by design, which is
  why the Counter "risen" percentage sits below 100% in Table 5.

The stimulus driver implements the stall handshake: when the injected
model asserts ``razor_stall``, the input vector whose consuming edge
was stalled is re-presented (a valid/stall interface, which real
recovery-capable pipelines require anyway).

The golden stream depends only on the stimuli (and the recovery
setting), never on the active mutant, so it is computed **once per
campaign** as a :class:`GoldenTrace` and shared by every per-mutant
run.  :func:`run_mutation_analysis` is a thin compatibility wrapper
over the sharded engine in :mod:`repro.mutation.campaign`, which in
turn executes through the streaming cross-IP scheduler in
:mod:`repro.mutation.scheduler`.

Score accounting
----------------
A run that exhausts its stall budget (``MutantOutcome.timed_out``) was
truncated by the driver, not judged: its tail is not kill evidence, and
treating it as a survivor silently deflates the campaign score.  All
aggregate percentages (``killed_pct`` / ``detected_pct`` / ``risen_pct``
/ ``mutation_score``) therefore exclude timed-out outcomes entirely and
divide by :attr:`MutationReport.effective_total` (the judged runs).
The exclusion is surfaced by :func:`repro.reporting.mutation_summary_pairs`
and the ``repro mutate`` / ``repro bench`` CLI summaries; the raw
per-outcome verdicts (including a divergence observed *before* a
timeout) remain available on :attr:`MutationReport.outcomes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.abstraction import GeneratedTlm

__all__ = [
    "CounterMutantJudge",
    "GoldenTrace",
    "MutantOutcome",
    "MutationReport",
    "RazorMutantJudge",
    "compute_golden_trace",
    "run_mutation_analysis",
]

#: Sensor-infrastructure ports excluded from functional comparison.
SENSOR_PORTS = ("metric_ok", "razor_err", "razor_stall", "meas_val")


@dataclass(frozen=True)
class MutantOutcome:
    """Verdict for one mutant."""

    index: int
    kind: str            # "min" | "max" | "delta"
    target: str          # mutated signal
    register: str        # monitored register
    hf_tick: int
    killed: bool
    detected: bool
    error_risen: bool
    corrected: "bool | None"
    meas_val: "int | None"
    first_divergence: "int | None"
    #: True when the stall handshake exhausted its cycle budget before
    #: consuming every stimulus; the truncated tail is then *not*
    #: evidence of a kill (only divergence observed before the timeout
    #: is).
    timed_out: bool = False


@dataclass
class MutationReport:
    """Aggregate campaign result (one IP x one sensor type)."""

    ip_name: str
    sensor_type: str
    variant: str
    outcomes: "list[MutantOutcome]" = field(default_factory=list)
    cycles_per_run: int = 0
    #: Wall-clock campaign time -- runtime metadata, not a verdict, so
    #: it is excluded from report equality (two reports are equal iff
    #: every *scored* field matches).
    seconds: float = field(default=0.0, compare=False)
    #: Result-cache accounting for this campaign: ``None`` when no
    #: cache was in play, otherwise replayed / executed mutant counts.
    #: ``compare=False`` keeps cached and uncached reports equal on
    #: every scored field -- the cache must never change a verdict.
    cache_hits: "int | None" = field(default=None, compare=False)
    cache_misses: "int | None" = field(default=None, compare=False)
    #: Whether the golden trace was replayed from the result cache
    #: (``True``), simulated and stored (``False``), or the campaign
    #: ran cache-less / with an unfingerprintable golden (``None``).
    golden_cache_hit: "bool | None" = field(default=None, compare=False)
    #: Static-prune accounting (:mod:`repro.lint.mutants`): ``None``
    #: when the campaign ran without ``lint_prune``, otherwise the
    #: number of mutants whose verdicts were synthesised from the
    #: golden trace (equivalents) or cloned from a representative
    #: (duplicates) instead of simulated.  ``compare=False`` for the
    #: same reason as the cache counters -- pruning must never change
    #: a verdict, so pruned and unpruned reports compare equal.
    pruned_equivalent: "int | None" = field(default=None, compare=False)
    pruned_duplicate: "int | None" = field(default=None, compare=False)
    #: Aggregated observability data (:mod:`repro.obs`): per-campaign
    #: shard-capture counters (batched forks, early kills, re-joins,
    #: executed shard/mutant counts).  ``None`` unless at least one
    #: shard carried a capture.  ``compare=False`` like ``seconds`` --
    #: tracing on vs off must leave reports field-identical.
    obs: "dict | None" = field(default=None, compare=False, repr=False)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    def judged(self) -> "list[MutantOutcome]":
        """Outcomes whose verdict counts toward the aggregate score:
        runs that completed within the stall budget.  A timed-out run
        was truncated by the driver, so it can neither be scored as a
        kill nor as a survivor (counting it in the denominator would
        silently under-report the score)."""
        return [o for o in self.outcomes if not o.timed_out]

    @property
    def effective_total(self) -> int:
        """Denominator of every aggregate percentage: mutants whose
        runs completed (``total`` minus ``timed_out_count``)."""
        return self.total - self.timed_out_count

    @property
    def killed_pct(self) -> float:
        judged = self.judged()
        return _pct(sum(o.killed for o in judged), len(judged))

    @property
    def detected_pct(self) -> float:
        judged = self.judged()
        return _pct(sum(o.detected for o in judged), len(judged))

    @property
    def risen_pct(self) -> float:
        judged = self.judged()
        return _pct(sum(o.error_risen for o in judged), len(judged))

    @property
    def corrected_pct(self) -> "float | None":
        judged = [o for o in self.outcomes if o.corrected is not None]
        if not judged:
            return None
        return _pct(sum(o.corrected for o in judged), len(judged))

    @property
    def timed_out_count(self) -> int:
        return sum(o.timed_out for o in self.outcomes)

    @property
    def mutants_per_second(self) -> float:
        """Campaign throughput: mutants actually *executed* per
        wall-clock second.  Cache-replayed verdicts are excluded (a
        fully-warm campaign reports 0.0 rather than a replay rate
        mislabelled as execution), matching
        :attr:`repro.mutation.scheduler.SuiteResult.mutants_per_second`."""
        if self.seconds <= 0:
            return 0.0
        return (self.total - (self.cache_hits or 0)) / self.seconds

    @property
    def mutation_score(self) -> float:
        """Killed over judged non-equivalent mutants (all delay mutants
        on exercised paths are non-equivalent by construction; timed-out
        runs are excluded -- see :meth:`judged`)."""
        return self.killed_pct

    def survivors(self) -> "list[MutantOutcome]":
        """Judged mutants that were not killed.  Timed-out runs are not
        survivors -- they were never fully driven."""
        return [o for o in self.judged() if not o.killed]


def _pct(num: int, den: int) -> float:
    return 100.0 * num / den if den else 0.0


def _functional(outputs: dict, functional_ports: "tuple[str, ...]") -> dict:
    return {k: outputs[k] for k in functional_ports}


def _is_subsequence(needle: "list", hay: "list") -> bool:
    it = iter(hay)
    return all(any(x == y for y in it) for x in needle)


@dataclass(frozen=True)
class GoldenTrace:
    """The mutant-independent golden reference, computed once per
    campaign and shared (pickled to worker processes) by every
    per-mutant run.

    ``full`` holds all primary outputs per cycle (the kill check --
    sensor flags are primary outputs of the augmented IP), while
    ``functional`` holds only the non-sensor subset (the corrected
    check discounts stall repeats against this stream).
    """

    functional_ports: "tuple[str, ...]"
    full: "tuple[dict, ...]"
    functional: "tuple[dict, ...]"


def compute_golden_trace(
    golden,
    stimuli: "list[dict[str, int]]",
    *,
    sensor_type: str = "razor",
    recovery: bool = True,
) -> GoldenTrace:
    """Simulate the non-injected model once over ``stimuli``.

    The golden stream depends only on the stimuli (plus the recovery
    bit for Razor versions), never on the active mutant -- so one
    trace serves the whole campaign.
    """
    functional_ports = tuple(
        p for p in golden.PORTS_OUT if p not in SENSOR_PORTS
    )
    recovery_bit = 1 if recovery else 0
    full = []
    for inputs in stimuli:
        if sensor_type == "razor":
            outs = golden.b_transport({**inputs, "razor_r": recovery_bit})
        else:
            outs = golden.b_transport(dict(inputs))
        full.append(outs)
    return GoldenTrace(
        functional_ports=functional_ports,
        full=tuple(full),
        functional=tuple(_functional(o, functional_ports) for o in full),
    )


def run_mutation_analysis(
    golden_factory,
    injected: GeneratedTlm,
    stimuli: "list[dict[str, int]]",
    *,
    ip_name: str = "ip",
    sensor_type: str = "razor",
    recovery: bool = True,
    tap_order: "list[str] | None" = None,
    workers: int = 1,
    shard_size: "int | None" = None,
    batch_size: "int | None" = None,
    scheduler=None,
    progress=None,
    cache=None,
    lint_prune: bool = False,
    prune_plan=None,
) -> MutationReport:
    """Run the full campaign: one golden/injected pair per mutant.

    Compatibility wrapper over
    :func:`repro.mutation.campaign.run_campaign`: the golden stimulus
    run is memoised once per campaign, mutants are batched into shards,
    and ``workers > 1`` distributes the shards across worker processes
    (``scheduler=`` shares one persistent
    :class:`~repro.mutation.scheduler.CampaignScheduler` pool across
    campaigns; ``progress=`` receives per-shard
    :class:`~repro.mutation.scheduler.CampaignProgress` callbacks;
    ``cache=`` replays previously-computed verdicts from a
    :class:`~repro.mutation.cache.ResultCache`;
    ``lint_prune=True`` synthesises verdicts for statically-equivalent
    and duplicate mutants via :mod:`repro.lint.mutants` instead of
    simulating them -- pass a module-aware ``prune_plan`` to enable
    the frozen-target fold analysis;
    ``batch_size=K`` executes each shard as batched multi-mutant
    sweeps of K mutants sharing one base simulation, forking a mutant
    into its own simulation only once it diverges --
    :mod:`repro.mutation.batched`).
    The merged report is deterministic -- byte-identical outcomes and
    percentages for any ``workers`` / ``shard_size`` / ``batch_size``
    / cache state / ``lint_prune`` combination.

    ``golden_factory()`` must return a fresh non-injected model;
    ``injected`` is the ADAM-generated model description (a fresh
    instance is created per mutant).  ``tap_order`` gives the register
    order of the Counter ``meas_val`` bus (resolved lazily, and only
    for Counter campaigns, when omitted).

    Returns the merged :class:`MutationReport` (outcomes in mutant-
    index order; aggregate percentages exclude timed-out runs).
    """
    from .campaign import run_campaign

    return run_campaign(
        golden_factory,
        injected,
        stimuli,
        ip_name=ip_name,
        sensor_type=sensor_type,
        recovery=recovery,
        tap_order=tap_order,
        workers=workers,
        shard_size=shard_size,
        batch_size=batch_size,
        scheduler=scheduler,
        progress=progress,
        cache=cache,
        lint_prune=lint_prune,
        prune_plan=prune_plan,
    )


class RazorMutantJudge:
    """Resumable per-cycle verdict accumulator for one Razor mutant.

    The monolithic per-mutant loop is factored into observation
    (:meth:`observe`, one call per driven cycle) and finalisation
    (:meth:`finish`), so the batched sweep
    (:mod:`repro.mutation.batched`) can feed a mutant base-simulation
    outputs while it is attached and its own outputs after it forks --
    the judge cannot tell the difference, which is what makes batched
    and serial verdicts field-identical.

    :meth:`settled` reports when every verdict field is already fixed
    (killed with its ``first_divergence``, error seen, and -- under
    recovery -- the golden stream fully recovered), enabling the
    early-kill cut: generated razor banks stall at most every other
    cycle (one-cycle cooldown), so a settled run can never reach the
    stall-budget timeout that the skipped tail would otherwise have to
    rule out.
    """

    __slots__ = (
        "index", "spec", "golden", "recovery", "calls", "error_seen",
        "killed", "first_divergence", "_cmp_done", "_sub_pos",
    )

    def __init__(self, index, spec, golden, recovery):
        self.index = index
        self.spec = spec
        self.golden = golden
        self.recovery = recovery
        self.calls = 0
        self.error_seen = False
        self.killed = False
        self.first_divergence = None
        #: Lockstep compare stops at the first mismatch, matching the
        #: serial runner's scan (later cycles cannot move the verdict).
        self._cmp_done = False
        #: Greedy two-pointer progress of the corrected check: how much
        #: of ``golden.functional`` has been matched, in order, inside
        #: the observed stream (incremental :func:`_is_subsequence`).
        self._sub_pos = 0

    def observe(self, outs, functional=None) -> None:
        """Record one observed output vector (cycle ``self.calls``)."""
        golden = self.golden
        i = self.calls
        self.calls = i + 1
        if outs.get("razor_err", 0):
            self.error_seen = True
        if not self._cmp_done and i < len(golden.full):
            if outs != golden.full[i]:
                self.killed = True
                self.first_divergence = i
                self._cmp_done = True
        if self._sub_pos < len(golden.functional):
            if functional is None:
                functional = _functional(outs, golden.functional_ports)
            if functional == golden.functional[self._sub_pos]:
                self._sub_pos += 1

    def settled(self) -> bool:
        """True once no future observation can change any verdict
        field: the kill (and its ``first_divergence``) is recorded, the
        error flag has risen, and -- when recovery is judged -- the
        golden stream has already been recovered in full."""
        return (
            self.killed
            and self._cmp_done
            and self.error_seen
            and (
                not self.recovery
                or self._sub_pos >= len(self.golden.functional)
            )
        )

    def finish(self, timed_out: bool):
        """Close the run and produce the :class:`MutantOutcome`."""
        golden = self.golden
        killed = self.killed
        if not timed_out and self.calls != len(golden.full):
            # A completed run yields at least one output per stimulus;
            # a short stream is itself an observable divergence.  An
            # early-killed run is already killed, so the cut cannot
            # reach here with ``killed`` unset.
            killed = True
        corrected = None
        if self.recovery and not timed_out:
            # Corrected: the golden stream survives inside the
            # recovered stream (stall repeats aside) and the error was
            # flagged.  A timed-out run never drove every stimulus, so
            # it cannot be judged either way and stays out of
            # corrected_pct.
            corrected = (
                self.error_seen
                and self._sub_pos >= len(golden.functional)
            )
        return MutantOutcome(
            index=self.index,
            kind=self.spec.kind,
            target=self.spec.target,
            register=self.spec.register,
            hf_tick=self.spec.hf_tick,
            killed=killed,
            detected=self.error_seen,
            error_risen=self.error_seen,
            corrected=corrected,
            meas_val=None,
            first_divergence=self.first_divergence,
            timed_out=timed_out,
        )


class CounterMutantJudge:
    """Resumable per-cycle verdict accumulator for one Counter mutant.

    Counter campaigns have no stall handshake (one output per
    stimulus), so the judge is a plain fold over the output stream.
    There is deliberately **no** early-kill analogue: ``meas_val``
    reports the *last* non-zero measurement, so every remaining cycle
    can still move the outcome.
    """

    __slots__ = (
        "index", "spec", "golden", "lo", "threshold", "calls", "killed",
        "first_divergence", "detected", "risen", "meas_val",
    )

    def __init__(self, index, spec, golden, *, lo, threshold):
        self.index = index
        self.spec = spec
        self.golden = golden
        self.lo = lo
        self.threshold = threshold
        self.calls = 0
        self.killed = False
        self.first_divergence = None
        self.detected = False
        self.risen = False
        self.meas_val = None

    def observe(self, outs, functional=None) -> None:
        """Record one observed output vector (cycle ``self.calls``)."""
        golden = self.golden
        i = self.calls
        self.calls = i + 1
        if functional is None:
            functional = _functional(outs, golden.functional_ports)
        if functional != golden.functional[i]:
            if self.first_divergence is None:
                self.first_divergence = i
            self.killed = True
        meas = (outs.get("meas_val", 0) >> self.lo) & 0xFF
        if meas:
            self.detected = True
            self.meas_val = meas
            if meas == self.spec.hf_tick:
                # Exact measurement of the injected delay: the sensor
                # observed the mutant -- this is the paper's Counter
                # kill criterion (MEAS_VAL != 0 for the activated
                # mutant).
                self.killed = True
            if meas > self.threshold:
                self.risen = True
        if outs.get("metric_ok", 1) == 0:
            self.risen = True

    def finish(self):
        """Close the run and produce the :class:`MutantOutcome`."""
        return MutantOutcome(
            index=self.index,
            kind=self.spec.kind,
            target=self.spec.target,
            register=self.spec.register,
            hf_tick=self.spec.hf_tick,
            killed=self.killed,
            detected=self.detected,
            error_risen=self.risen,
            corrected=None,
            meas_val=self.meas_val,
            first_divergence=self.first_divergence,
            timed_out=False,
        )


def _drive_razor(
    mutant,
    stimuli,
    recovery_bit: int,
    judge: RazorMutantJudge,
    *,
    position: int = 0,
    budget: "int | None" = None,
    early_kill: bool = False,
) -> bool:
    """Drive a Razor mutant through the stall handshake, feeding every
    observed output to ``judge``.  Returns whether the stall budget
    timed out.

    ``position`` / ``budget`` resume a run mid-stream (a mutant forked
    off a batched sweep at cycle ``position`` has already been judged
    for the shared prefix and has ``position`` fewer budget units
    left -- the prefix is stall-free, since a stall requires a razor
    error and the base simulation never raises one).  With
    ``early_kill`` the drive stops as soon as the judge is settled;
    the run then did not time out by construction (see
    :meth:`RazorMutantJudge.settled`).
    """
    pending = stimuli
    if budget is None:
        budget = 3 * len(stimuli) + 8
    prev_inputs = None
    stalled_next = False
    # A stall on the final stimulus still needs its re-presentation,
    # otherwise the recovered last output is never observed.
    while (position < len(pending) or stalled_next) and budget:
        budget -= 1
        if stalled_next and prev_inputs is not None:
            inputs = prev_inputs
        else:
            inputs = pending[position]
            position += 1
        outs = mutant.b_transport({**inputs, "razor_r": recovery_bit})
        judge.observe(outs)
        stalled_next = bool(outs.get("razor_stall", 0))
        prev_inputs = inputs
        if early_kill and judge.settled():
            return False
    # Budget exhausted mid-stall: stimuli were never consumed, or a
    # trailing re-presentation was still pending.  That is a driver
    # timeout, not an observation -- the truncated tail must not count
    # as a kill by length mismatch, nor be judged for correction.
    return (position < len(pending) or stalled_next) and not budget


def _run_razor_mutant(index, spec, mutant, stimuli, recovery, golden):
    """Evaluate one Razor mutant against the memoised golden trace."""
    judge = RazorMutantJudge(index, spec, golden, recovery)
    timed_out = _drive_razor(
        mutant, list(stimuli), 1 if recovery else 0, judge
    )
    return judge.finish(timed_out)


def _run_counter_mutant(index, spec, mutant, stimuli, tap_order, golden):
    """Evaluate one Counter mutant against the memoised golden trace."""
    judge = CounterMutantJudge(
        index,
        spec,
        golden,
        lo=8 * tap_order.index(spec.register),
        threshold=_lut_threshold(mutant, spec.register),
    )
    for inputs in stimuli:
        judge.observe(mutant.b_transport(dict(inputs)))
    return judge.finish()


def _lut_threshold(model, register: str) -> int:
    """Per-path LUT threshold as baked into the generated model; the
    paper's default global threshold is 8 HF periods."""
    return getattr(model, "LUT_THRESHOLDS", {}).get(register, 8)
