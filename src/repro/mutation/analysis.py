"""Mutation analysis of augmented TLM models (paper Section 7).

The injected TLM model is simulated in lockstep with a non-injected
TLM model under the same stimuli, once per mutant:

* a mutant is **killed** when the two models become observably
  different -- functional outputs diverging, or (for within-cycle
  delays that cannot corrupt function, i.e. Counter mutants) the
  sensor measurement reporting the injected delay;
* for Razor versions the per-sensor ``E`` flag verifies **detection /
  error risen**, and with recovery enabled the corrected output stream
  must equal the golden stream (stall cycles discounted) --
  **corrected**;
* for Counter versions ``MEAS_VAL`` must equal the mutant's HF tick
  (detection), and ``OUT_OK`` flags **errors risen** only above the
  LUT threshold -- delays below it are tolerable by design, which is
  why the Counter "risen" percentage sits below 100% in Table 5.

The stimulus driver implements the stall handshake: when the injected
model asserts ``razor_stall``, the input vector whose consuming edge
was stalled is re-presented (a valid/stall interface, which real
recovery-capable pipelines require anyway).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.abstraction import GeneratedTlm

__all__ = ["MutantOutcome", "MutationReport", "run_mutation_analysis"]

#: Sensor-infrastructure ports excluded from functional comparison.
SENSOR_PORTS = ("metric_ok", "razor_err", "razor_stall", "meas_val")


@dataclass(frozen=True)
class MutantOutcome:
    """Verdict for one mutant."""

    index: int
    kind: str            # "min" | "max" | "delta"
    target: str          # mutated signal
    register: str        # monitored register
    hf_tick: int
    killed: bool
    detected: bool
    error_risen: bool
    corrected: "bool | None"
    meas_val: "int | None"
    first_divergence: "int | None"


@dataclass
class MutationReport:
    """Aggregate campaign result (one IP x one sensor type)."""

    ip_name: str
    sensor_type: str
    variant: str
    outcomes: "list[MutantOutcome]" = field(default_factory=list)
    cycles_per_run: int = 0
    seconds: float = 0.0

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def killed_pct(self) -> float:
        return _pct(sum(o.killed for o in self.outcomes), self.total)

    @property
    def detected_pct(self) -> float:
        return _pct(sum(o.detected for o in self.outcomes), self.total)

    @property
    def risen_pct(self) -> float:
        return _pct(sum(o.error_risen for o in self.outcomes), self.total)

    @property
    def corrected_pct(self) -> "float | None":
        judged = [o for o in self.outcomes if o.corrected is not None]
        if not judged:
            return None
        return _pct(sum(o.corrected for o in judged), len(judged))

    @property
    def mutation_score(self) -> float:
        """Killed over total non-equivalent mutants (all delay mutants
        on exercised paths are non-equivalent by construction)."""
        return self.killed_pct

    def survivors(self) -> "list[MutantOutcome]":
        return [o for o in self.outcomes if not o.killed]


def _pct(num: int, den: int) -> float:
    return 100.0 * num / den if den else 0.0


def _functional(outputs: dict, functional_ports: "tuple[str, ...]") -> dict:
    return {k: outputs[k] for k in functional_ports}


def _is_subsequence(needle: "list", hay: "list") -> bool:
    it = iter(hay)
    return all(any(x == y for y in it) for x in needle)


def run_mutation_analysis(
    golden_factory,
    injected: GeneratedTlm,
    stimuli: "list[dict[str, int]]",
    *,
    ip_name: str = "ip",
    sensor_type: str = "razor",
    recovery: bool = True,
    tap_order: "list[str] | None" = None,
) -> MutationReport:
    """Run the full campaign: one golden/injected pair per mutant.

    ``golden_factory()`` must return a fresh non-injected model;
    ``injected`` is the ADAM-generated model description (a fresh
    instance is created per mutant).  ``tap_order`` gives the register
    order of the Counter ``meas_val`` bus (defaults to MUTANTS order).
    """
    started = time.perf_counter()
    report = MutationReport(
        ip_name=ip_name,
        sensor_type=sensor_type,
        variant=injected.variant,
        cycles_per_run=len(stimuli),
    )
    specs = injected.mutants
    if tap_order is None:
        probe = injected.instantiate()
        tap_order = list(getattr(probe, "COUNTER_TAP_ORDER", ())) or None
    if tap_order is None:
        seen: list[str] = []
        for spec in specs:
            if spec.register not in seen:
                seen.append(spec.register)
        tap_order = seen

    for index, spec in enumerate(specs):
        golden = golden_factory()
        mutant = injected.instantiate()
        mutant.activate_mutant(index)
        if sensor_type == "razor":
            outcome = _run_razor_mutant(
                index, spec, golden, mutant, stimuli, recovery
            )
        else:
            outcome = _run_counter_mutant(
                index, spec, golden, mutant, stimuli, tap_order
            )
        report.outcomes.append(outcome)

    report.seconds = time.perf_counter() - started
    return report


def _run_razor_mutant(index, spec, golden, mutant, stimuli, recovery):
    functional_ports = tuple(
        p for p in golden.PORTS_OUT if p not in SENSOR_PORTS
    )
    recovery_bit = 1 if recovery else 0

    golden_stream = []       # functional ports only (corrected check)
    golden_full = []         # all ports (kill check; E is an IP output)
    for inputs in stimuli:
        outs = golden.b_transport({**inputs, "razor_r": recovery_bit})
        golden_stream.append(_functional(outs, functional_ports))
        golden_full.append(outs)

    injected_stream = []
    injected_full = []
    error_seen = False
    killed = False
    first_div = None
    # Stall handshake: re-present the input whose edge was stalled.
    pending = list(stimuli)
    position = 0
    prev_inputs = None
    stalled_next = False
    budget = 3 * len(stimuli) + 8
    while position < len(pending) and budget:
        budget -= 1
        if stalled_next and prev_inputs is not None:
            inputs = prev_inputs
        else:
            inputs = pending[position]
            position += 1
        outs = mutant.b_transport({**inputs, "razor_r": recovery_bit})
        if outs.get("razor_err", 0):
            error_seen = True
        stalled_next = bool(outs.get("razor_stall", 0))
        injected_stream.append(_functional(outs, functional_ports))
        injected_full.append(outs)
        prev_inputs = inputs

    # Kill check: any observable divergence under lockstep alignment.
    # The sensor outputs (E, stall) are primary outputs of the
    # augmented IP, so a raised error alone makes the mutant
    # observable -- the paper's "if the outputs differ" criterion.
    for i, expected in enumerate(golden_full):
        if i >= len(injected_full) or injected_full[i] != expected:
            killed = True
            first_div = i
            break
    if len(injected_full) != len(golden_full):
        killed = True

    corrected = None
    if recovery:
        # Corrected: the golden stream survives inside the recovered
        # stream (stall repeats aside) and the error was flagged.
        corrected = error_seen and _is_subsequence(
            golden_stream, injected_stream
        )
    return MutantOutcome(
        index=index,
        kind=spec.kind,
        target=spec.target,
        register=spec.register,
        hf_tick=spec.hf_tick,
        killed=killed,
        detected=error_seen,
        error_risen=error_seen,
        corrected=corrected,
        meas_val=None,
        first_divergence=first_div,
    )


def _run_counter_mutant(index, spec, golden, mutant, stimuli, tap_order):
    functional_ports = tuple(
        p for p in golden.PORTS_OUT if p not in SENSOR_PORTS
    )
    tap_index = tap_order.index(spec.register)
    lo = 8 * tap_index

    killed = False
    first_div = None
    detected = False
    risen = False
    measured = None
    for i, inputs in enumerate(stimuli):
        golden_outs = golden.b_transport(dict(inputs))
        mutant_outs = mutant.b_transport(dict(inputs))
        if _functional(mutant_outs, functional_ports) != _functional(
            golden_outs, functional_ports
        ):
            if first_div is None:
                first_div = i
            killed = True
        meas_bus = mutant_outs.get("meas_val", 0)
        meas = (meas_bus >> lo) & 0xFF
        if meas:
            detected = True
            measured = meas
            if meas == spec.hf_tick:
                # Exact measurement of the injected delay: the sensor
                # observed the mutant -- this is the paper's Counter
                # kill criterion (MEAS_VAL != 0 for the activated
                # mutant).
                killed = True
        if meas and meas > _lut_threshold(mutant, spec.register):
            risen = True
        if mutant_outs.get("metric_ok", 1) == 0:
            risen = True
    return MutantOutcome(
        index=index,
        kind=spec.kind,
        target=spec.target,
        register=spec.register,
        hf_tick=spec.hf_tick,
        killed=killed,
        detected=detected,
        error_risen=risen,
        corrected=None,
        meas_val=measured,
        first_divergence=first_div,
    )


def _lut_threshold(model, register: str) -> int:
    """Per-path LUT threshold as baked into the generated model; the
    paper's default global threshold is 8 HF periods."""
    return getattr(model, "LUT_THRESHOLDS", {}).get(register, 8)
