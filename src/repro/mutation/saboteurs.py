"""Saboteur-style RTL fault injection (the Section 2.2 alternative).

The paper contrasts its mutant-based approach with the two classic RTL
fault-injection techniques: simulator commands (our kernel's ``force``)
and **saboteurs** -- components inserted in series with a signal that
corrupt it when activated through a dedicated control input (MEFISTO
style).  This module implements serial saboteurs for the RTL kernel so
the trade-off the paper argues (saboteurs need extra control wiring and
structural edits; mutants live at scheduler synchronisation points) can
be measured rather than asserted.

A saboteur on signal ``s`` splits it into driver -> ``s__sab`` ->
consumers and, while its control is asserted, replaces the forwarded
value according to its mode:

* ``"delay"``     -- forwards the *previous* cycle's value (one-cycle
  transport corruption, the timing-fault analogue);
* ``"stuck_x"``   -- forwards all-``X``;
* ``"invert"``    -- forwards the bitwise complement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.eval import EvalEnv, exec_stmts
from repro.rtl.ir import (
    Assign,
    CombProcess,
    Module,
    NativeProcess,
    Signal,
    SliceAssign,
    Stmt,
    SyncProcess,
    WidthError,
    walk_stmts,
)
from repro.rtl.types import LV

__all__ = ["Saboteur", "insert_saboteur"]

_MODES = ("delay", "stuck_x", "invert")


@dataclass(frozen=True)
class Saboteur:
    """Handle to one inserted saboteur."""

    original: Signal      # the (renamed) driver-side signal
    forwarded: Signal     # the consumer-side signal (keeps the old name)
    control: Signal       # 1-bit activation input port
    mode: str


def _retarget_stmts(stmts: "list[Stmt]", old: Signal, new: Signal) -> None:
    """Rewrite assignment targets ``old`` -> ``new`` in place.

    Statement constructors validate widths only at construction, so an
    in-place retarget to a narrower/wider signal would silently create
    the post-construction mismatch ``repro.lint`` hunts for -- reject
    it here instead.
    """
    if new.width != old.width:
        raise WidthError(
            f"cannot retarget {old.name} ({old.width} bits) to "
            f"{new.name} ({new.width} bits)"
        )
    for stmt in walk_stmts(stmts):
        if isinstance(stmt, (Assign, SliceAssign)) and stmt.target is old:
            stmt.target = new


def insert_saboteur(
    module: Module,
    target: Signal,
    *,
    mode: str = "delay",
    control_name: "str | None" = None,
) -> Saboteur:
    """Insert a serial saboteur on ``target`` (in place).

    The original drivers are re-pointed at a new ``<name>__sab_in``
    signal; ``target`` itself becomes the saboteur's output so all
    consumers transparently read the (possibly corrupted) forwarded
    value.  A new 1-bit input port controls activation.
    """
    if mode not in _MODES:
        raise ValueError(f"unknown saboteur mode {mode!r}; have {_MODES}")

    driver_side = Signal(f"{target.name}__sab_in", target.width)
    found_driver = False

    def visit(mod: Module) -> None:
        nonlocal found_driver
        for proc in mod.processes:
            if isinstance(proc, (SyncProcess, CombProcess)):
                from repro.rtl.ir import written_signals

                if target in written_signals(proc.stmts):
                    _retarget_stmts(proc.stmts, target, driver_side)
                    found_driver = True
                if isinstance(proc, SyncProcess) and proc.reset_stmts:
                    if target in written_signals(proc.reset_stmts):
                        _retarget_stmts(proc.reset_stmts, target, driver_side)
                        found_driver = True
        for _, child in mod.submodules:
            visit(child)

    visit(module)
    if not found_driver:
        raise ValueError(
            f"signal {target.name!r} has no IR driver to sabotage"
        )
    module.adopt(driver_side)
    control = module.input(
        control_name or f"{target.name}__sab_en"
    )

    state: dict = {}

    def saboteur_fn(ctx) -> None:
        incoming = ctx.read(driver_side)
        active = ctx.read(control)
        engaged = not active.unk and active.value == 1
        if not engaged:
            forwarded = incoming
        elif mode == "stuck_x":
            forwarded = LV.all_x(target.width)
        elif mode == "invert":
            forwarded = ~incoming
        else:  # delay: previous value
            forwarded = ctx.state.get("prev", incoming)
        ctx.write(target, forwarded)
        ctx.state["prev"] = incoming

    module.native(
        NativeProcess(
            f"{target.name}__saboteur",
            "comb",
            saboteur_fn,
            sensitivity=[driver_side, control],
            reads=[driver_side, control],
            writes=[target],
            meta={"saboteur": mode},
        )
    )
    return Saboteur(
        original=driver_side,
        forwarded=target,
        control=control,
        mode=mode,
    )
