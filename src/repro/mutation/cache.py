"""Content-addressed campaign result cache (incremental re-verification).

The paper's methodology is iterative: the same IPs are re-verified
after every sensor-insertion or netlist change, yet a mutant's verdict
is a pure function of a small set of inputs.  This module captures
that function's domain as a **content-addressed key** so re-running a
campaign (or a whole cross-IP suite) replays previously-computed
:class:`~repro.mutation.analysis.MutantOutcome`s instantly and only
executes mutants invalidated by a *real* change.

Every TLM entry is keyed by the five components the verdict actually
depends on:

1. the **structural fingerprint** of the mutant-injected generated
   model (:func:`model_fingerprint`) -- the generated source with the
   ``MUTANTS`` table masked out, so editing one mutant spec does not
   invalidate its siblings' entries;
2. the **stimuli hash** (:func:`stimuli_hash`) and the **golden-trace
   hash** (:func:`golden_trace_hash`) -- the reference the mutant is
   judged against;
3. the **mutant spec** itself (kind, target signal, HF tick, monitored
   register) -- positional index is deliberately *not* part of the key
   (reordering the table must not invalidate), and cached outcomes are
   re-indexed on replay;
4. the **sensor type**;
5. the **judgement parameters** (the recovery bit, the Counter tap
   order).

RTL-validation entries are keyed analogously via
:func:`rtl_fingerprint` (emitted VHDL + back-annotated nominal delays
+ clocking) and :func:`rtl_entry_key`.  The kernel execution mode
(``compiled`` / ``interpreted``) is deliberately **excluded** from RTL
keys: the two modes are lockstep-equivalent by construction (see
:mod:`repro.rtl.compile` and ``tests/test_compiled_kernel.py``), so a
mode switch replays instead of re-executing.

The **golden trace** itself is cached too (:func:`golden_entry_key`):
it is a pure function of (golden-model structural fingerprint, stimuli
hash, sensor type, recovery bit), so a warm
:func:`~repro.mutation.campaign.prepare_campaign` replays it and skips
the per-campaign golden simulation entirely.  Whether the trace was
replayed or simulated is surfaced as
:attr:`~repro.mutation.analysis.MutationReport.golden_cache_hit` and
by :func:`repro.reporting.mutation_summary_pairs`.

Storage is one JSON object per entry under
``<root>/objects/<key[:2]>/<key>.json`` with atomic writes
(temp-file + ``os.replace``), so concurrent campaigns sharing a cache
directory never observe torn entries.  ``ResultCache(None)`` keeps the
store in memory -- same semantics, no filesystem.  One
:class:`ResultCache` instance may be shared by many threads (the
campaign service stores every job's verdicts in one cache): lookups
hit the filesystem or the GIL-protected dict directly and the hit/miss
counters are guarded by a lock.

Housekeeping is explicit, never implicit: entries are immutable and
correct forever, so nothing is ever evicted behind the user's back --
:meth:`ResultCache.stats` reports the entry count, byte footprint and
per-IP breakdown (the ``repro cache stats`` CLI and the service's
``/healthz`` endpoint), and :meth:`ResultCache.prune` garbage-collects
by age and/or byte budget (``repro cache prune``).

Determinism note: replayed outcomes are field-for-field identical to
freshly-executed ones (covered by ``tests/test_cache.py``), so a
cached report equals an uncached report on every scored field.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading

from ..faults import fault_point
from ..obs import REGISTRY, metadata_wall_clock, trace_span

__all__ = [
    "CACHE_SCHEMA",
    "ResultCache",
    "decode_golden_trace",
    "decode_outcome",
    "decode_rtl_outcome",
    "encode_golden_trace",
    "encode_outcome",
    "encode_rtl_outcome",
    "golden_entry_key",
    "golden_trace_hash",
    "model_fingerprint",
    "mutant_entry_key",
    "rtl_entry_key",
    "rtl_fingerprint",
    "shard_entry_keys",
    "stimuli_hash",
]

#: Bump to orphan every existing entry (schema is part of every key).
CACHE_SCHEMA = 1


def _digest(parts) -> str:
    """SHA-256 over a ``repr``-canonicalised tuple of key components."""
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Key components
# ---------------------------------------------------------------------------

_MUTANT_TABLE_PREFIX = "MUTANTS ="


def model_fingerprint(gen) -> str:
    """Structural fingerprint of a generated TLM model.

    Hashes the generated source with the ``MUTANTS`` table literal
    masked out (plus the class name, data-type variant and scheduler
    kind).  The mutant table is the *only* generated line that changes
    when a mutant spec is edited, so masking it gives per-mutant
    invalidation: the edited spec misses (its spec is part of the
    entry key), its siblings still hit.  Any other source change --
    new sensor, different LUT thresholds, different tap order --
    changes the fingerprint and invalidates every entry, as it must.
    """
    lines = [
        "<MUTANTS>" if line.lstrip().startswith(_MUTANT_TABLE_PREFIX)
        else line
        for line in gen.source.splitlines()
    ]
    return _digest(
        (gen.class_name, gen.variant, gen.scheduler_kind, "\n".join(lines))
    )


def stimuli_hash(stimuli) -> str:
    """Digest of a stimulus sequence (``name -> int`` vectors per
    cycle).  Key order inside a vector is canonicalised away; vector
    *sequence* order is significant."""
    return _digest(tuple(tuple(sorted(vec.items())) for vec in stimuli))


def golden_trace_hash(golden) -> str:
    """Digest of a :class:`~repro.mutation.analysis.GoldenTrace`.

    The golden trace already folds together the golden model, the
    stimuli, the sensor type and the recovery bit, so hashing it
    captures "the reference this mutant was judged against" in one
    component.
    """
    return _digest((
        golden.functional_ports,
        tuple(tuple(sorted(outs.items())) for outs in golden.full),
    ))


def _spec_key(spec) -> tuple:
    return (spec.kind, spec.target, spec.hf_tick, spec.register)


def mutant_entry_key(
    model_fp: str,
    stim_hash: str,
    golden_hash: str,
    sensor_type: str,
    spec,
    *,
    recovery: bool,
    tap_order=(),
) -> str:
    """Entry key for one TLM mutant verdict.

    The mutant's positional index is deliberately excluded: it does
    not influence the verdict (``MUTANTS[index]`` lookups read only
    the spec tuple), and replayed outcomes are re-indexed by the
    caller.
    """
    return _digest((
        "tlm",
        CACHE_SCHEMA,
        model_fp,
        stim_hash,
        golden_hash,
        sensor_type,
        _spec_key(spec),
        bool(recovery),
        tuple(tap_order),
    ))


def golden_entry_key(
    model_fp: str,
    stim_hash: str,
    sensor_type: str,
    *,
    recovery: bool,
) -> str:
    """Entry key for one memoised golden trace.

    The golden stream is a pure function of the *golden* model's
    structural fingerprint, the stimuli and the judgement inputs that
    shape the reference run (sensor type selects the recovery poke;
    the recovery bit is driven into Razor models) -- never of any
    mutant, so one entry serves every campaign against that reference.
    """
    return _digest((
        "golden",
        CACHE_SCHEMA,
        model_fp,
        stim_hash,
        sensor_type,
        bool(recovery),
    ))


def rtl_fingerprint(augmented) -> str:
    """Structural fingerprint of an augmented RTL design.

    Combines the emitted VHDL (the full structural rendering,
    including sensor-bank instances) with everything the simulator
    back-annotates outside the VHDL text: per-endpoint nominal delays,
    the main clock period, the HF ratio and -- for Counter banks --
    the per-tap LUT thresholds and CPS bit choices.
    """
    from repro.rtl import emit_vhdl

    taps = []
    for tap in augmented.bank.taps:
        entry = [tap.register.name, tap.endpoint.name, tap.nominal_delay_ps]
        if augmented.sensor_type == "counter":
            entry += [tap.lut_threshold, tap.cps_index]
        taps.append(tuple(entry))
    return _digest((
        "rtl",
        emit_vhdl(augmented.module),
        augmented.sensor_type,
        augmented.main_period_ps,
        augmented.hf_ratio,
        tuple(sorted(taps)),
    ))


def rtl_entry_key(
    rtl_fp: str,
    stim_hash: str,
    cycles: int,
    recovery_value: int,
    spec,
) -> str:
    """Entry key for one RTL-validation mutant verdict."""
    return _digest((
        "rtl",
        CACHE_SCHEMA,
        rtl_fp,
        stim_hash,
        int(cycles),
        int(recovery_value),
        _spec_key(spec),
    ))


def shard_entry_keys(shard) -> "dict[int, str]":
    """Per-mutant entry keys recomputed from a shard's own contents:
    ``{mutant index -> key}`` for every index the shard covers.

    A :class:`~repro.mutation.campaign.CampaignShard` carries every
    key component (injected model, stimuli, golden trace, sensor type,
    judgement parameters), so any holder of the shard -- the
    coordinator about to dispatch it, a remote worker about to execute
    it -- derives exactly the keys
    :func:`~repro.mutation.campaign.prepare_campaign` derived, and a
    shared cache deduplicates across the whole fleet.
    """
    model_fp = model_fingerprint(shard.injected)
    stim_hash = stimuli_hash(shard.stimuli)
    golden_hash = golden_trace_hash(shard.golden)
    specs = shard.injected.mutants
    return {
        index: mutant_entry_key(
            model_fp,
            stim_hash,
            golden_hash,
            shard.sensor_type,
            specs[index],
            recovery=shard.recovery,
            tap_order=shard.tap_order,
        )
        for index in shard.indices
    }


# ---------------------------------------------------------------------------
# Outcome (de)serialisation
# ---------------------------------------------------------------------------

def encode_outcome(outcome) -> dict:
    """JSON payload for a :class:`MutantOutcome` (all verdict fields;
    the positional index is stored for debugging but rewritten on
    replay)."""
    return {
        "index": outcome.index,
        "kind": outcome.kind,
        "target": outcome.target,
        "register": outcome.register,
        "hf_tick": outcome.hf_tick,
        "killed": outcome.killed,
        "detected": outcome.detected,
        "error_risen": outcome.error_risen,
        "corrected": outcome.corrected,
        "meas_val": outcome.meas_val,
        "first_divergence": outcome.first_divergence,
        "timed_out": outcome.timed_out,
    }


def decode_outcome(payload: dict, index: int):
    """Rebuild a :class:`MutantOutcome` from a cache payload, re-indexed
    to the mutant's *current* position in the table."""
    from .analysis import MutantOutcome

    return MutantOutcome(
        index=index,
        kind=payload["kind"],
        target=payload["target"],
        register=payload["register"],
        hf_tick=payload["hf_tick"],
        killed=payload["killed"],
        detected=payload["detected"],
        error_risen=payload["error_risen"],
        corrected=payload["corrected"],
        meas_val=payload["meas_val"],
        first_divergence=payload["first_divergence"],
        timed_out=payload["timed_out"],
    )


def encode_golden_trace(golden, ip: "str | None" = None) -> dict:
    """JSON payload for a :class:`~repro.mutation.analysis.GoldenTrace`
    (the ``ip`` tag feeds the per-IP cache statistics only)."""
    payload = {
        "entry": "golden",
        "functional_ports": list(golden.functional_ports),
        "full": [dict(outs) for outs in golden.full],
    }
    if ip is not None:
        payload["ip"] = ip
    return payload


def decode_golden_trace(payload: dict):
    """Rebuild a :class:`~repro.mutation.analysis.GoldenTrace` from a
    cache payload.  The rebuilt trace is content-identical to the
    simulated one, so :func:`golden_trace_hash` -- a component of every
    mutant entry key -- digests to the same value either way."""
    from .analysis import GoldenTrace, _functional

    functional_ports = tuple(payload["functional_ports"])
    full = tuple(dict(outs) for outs in payload["full"])
    return GoldenTrace(
        functional_ports=functional_ports,
        full=full,
        functional=tuple(
            _functional(outs, functional_ports) for outs in full
        ),
    )


def encode_rtl_outcome(outcome) -> dict:
    """JSON payload for an :class:`RtlMutantOutcome`."""
    spec = outcome.spec
    return {
        "index": outcome.index,
        "spec": {
            "kind": spec.kind,
            "target": spec.target,
            "hf_tick": spec.hf_tick,
            "register": spec.register,
        },
        "error_risen": outcome.error_risen,
        "meas_val": outcome.meas_val,
    }


def decode_rtl_outcome(payload: dict, index: int):
    """Rebuild an :class:`RtlMutantOutcome` from a cache payload."""
    from repro.abstraction.codegen import MutantSpec

    from .rtl_validation import RtlMutantOutcome

    spec = payload["spec"]
    return RtlMutantOutcome(
        spec=MutantSpec(
            kind=spec["kind"],
            target=spec["target"],
            hf_tick=spec["hf_tick"],
            register=spec["register"],
        ),
        error_risen=payload["error_risen"],
        meas_val=payload["meas_val"],
        index=index,
    )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class ResultCache:
    """Persistent, content-addressed store of mutant verdicts.

    Args:
        root: cache directory (created lazily on first write).  Pass
            ``None`` for an in-memory store with identical semantics
            -- useful for tests and for sharing results inside one
            process without touching the filesystem.

    Entries are immutable by construction (the key digests every input
    of the computation), so there is no eviction or coherence
    protocol: a key either resolves to the one correct payload or is
    absent.  Writes are atomic (temp file + ``os.replace``); a torn or
    corrupt file reads as a miss and is rewritten.

    The instance counts its own ``hits`` / ``misses`` cumulatively
    (lock-guarded -- one cache may serve many service job threads);
    per-campaign counts are reported by
    :class:`~repro.mutation.MutationReport.cache_hits` /
    ``cache_misses`` on each report.
    """

    def __init__(self, root: "str | os.PathLike | None" = None) -> None:
        self.root = os.fspath(root) if root is not None else None
        self._mem: "dict[str, dict]" = {}
        #: In-memory entry timestamps, so :meth:`prune` can apply the
        #: same age/budget policy the disk backend reads from mtimes.
        self._times: "dict[str, float]" = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.corrupt_quarantined = 0

    def _path(self, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, "objects", key[:2], key + ".json")

    def _quarantine(self, path: str) -> None:
        """Move a corrupted/truncated entry aside (``<entry>.corrupt``)
        so it reads as a clean miss from now on and a later campaign
        rewrites it, while the evidence survives for forensics.  The
        ``.corrupt`` suffix keeps it invisible to every store walk
        (``__len__`` / ``stats`` / ``prune`` filter on ``.json``)."""
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            pass  # pruned or quarantined concurrently
        with self._lock:
            self.corrupt_quarantined += 1

    def get(self, key: str) -> "dict | None":
        """Payload stored under ``key``, or ``None`` (a miss).  Updates
        the hit/miss counters.  A corrupted or truncated entry (torn
        write survived by a crash, bit rot) is quarantined and counts
        as a miss -- it must never escape as a ``ValueError``
        mid-campaign."""
        with trace_span("cache.get", key=key[:12]):
            if self.root is None:
                payload = self._mem.get(key)
            else:
                path = self._path(key)
                try:
                    with open(path) as handle:
                        payload = json.load(handle)
                except OSError:
                    payload = None
                except ValueError:
                    payload = None
                    self._quarantine(path)
        with self._lock:
            if payload is None:
                self.misses += 1
            else:
                self.hits += 1
        if payload is None:
            REGISTRY.inc("repro_cache_misses_total")
        else:
            REGISTRY.inc("repro_cache_hits_total")
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` (atomic on disk)."""
        corrupt = fault_point("cache.corrupt_entry") is not None
        if self.root is None:
            # The memory backend has no torn writes to simulate; the
            # injected corruption degrades to the entry being lost.
            if corrupt:
                return
            with self._lock:
                self._mem[key] = payload
                # Eviction-age metadata only, never a verdict input.
                self._times[key] = metadata_wall_clock()
            return
        path = self._path(key)
        with trace_span("cache.put", key=key[:12]):
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    text = json.dumps(payload, sort_keys=True)
                    if corrupt:
                        # A torn write: half the JSON, atomically
                        # renamed into place like the real thing.
                        text = text[: max(1, len(text) // 2)]
                    handle.write(text)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def probe(self, keys, decode):
        """Look up a whole campaign's entry keys at once.

        ``decode(payload, index)`` rebuilds the outcome for position
        ``index`` (e.g. :func:`decode_outcome` /
        :func:`decode_rtl_outcome`).  Returns
        ``(cached_outcomes, miss_indices)`` -- the shared probe step
        of :func:`repro.mutation.campaign.prepare_campaign` and
        :func:`repro.mutation.rtl_validation.prepare_rtl_validation`,
        so their hit/miss semantics cannot drift apart.
        """
        cached = []
        miss_indices = []
        for index, key in enumerate(keys):
            payload = self.get(key)
            if payload is None:
                miss_indices.append(index)
            else:
                cached.append(decode(payload, index))
        return cached, miss_indices

    def __len__(self) -> int:
        """Number of stored entries (walks the store)."""
        if self.root is None:
            return len(self._mem)
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return 0
        return sum(
            len([f for f in files if f.endswith(".json")])
            for _, _, files in os.walk(objects)
        )

    # -- housekeeping -----------------------------------------------------

    def _entries(self):
        """``(key, path_or_None, size_bytes, mtime)`` for every stored
        entry, oldest first.  Disk sizes/times come from ``stat`` (no
        payload read); memory sizes are the serialised JSON length, so
        both backends report comparable byte footprints."""
        rows = []
        if self.root is None:
            with self._lock:
                snapshot = [
                    (key, payload, self._times.get(key, 0.0))
                    for key, payload in self._mem.items()
                ]
            for key, payload, when in snapshot:
                size = len(json.dumps(payload, sort_keys=True))
                rows.append((key, None, size, when))
        else:
            objects = os.path.join(self.root, "objects")
            if os.path.isdir(objects):
                for dirpath, _, files in os.walk(objects):
                    for name in files:
                        if not name.endswith(".json"):
                            continue
                        path = os.path.join(dirpath, name)
                        try:
                            st = os.stat(path)
                        except OSError:
                            continue  # pruned concurrently
                        rows.append(
                            (name[:-5], path, st.st_size, st.st_mtime)
                        )
        rows.sort(key=lambda r: (r[3], r[0]))
        return rows

    def _entry_ip(self, key: str, path: "str | None") -> str:
        """The ``ip`` tag of one entry (``"(untagged)"`` for entries
        written before tagging existed, or by ad-hoc campaigns)."""
        if path is None:
            payload = self._mem.get(key) or {}
        else:
            try:
                with open(path) as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                payload = {}
        return payload.get("ip") or "(untagged)"

    def stats(self) -> dict:
        """Store-wide statistics: entry count, byte footprint and the
        per-IP breakdown.  Shared by ``repro cache stats`` and the
        service's ``/healthz`` endpoint."""
        per_ip: "dict[str, dict]" = {}
        entries = 0
        total_bytes = 0
        for key, path, size, _ in self._entries():
            entries += 1
            total_bytes += size
            bucket = per_ip.setdefault(
                self._entry_ip(key, path), {"entries": 0, "bytes": 0}
            )
            bucket["entries"] += 1
            bucket["bytes"] += size
        return {
            "backend": "memory" if self.root is None else "disk",
            "root": self.root,
            "entries": entries,
            "bytes": total_bytes,
            "per_ip": per_ip,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_quarantined": self.corrupt_quarantined,
        }

    def _remove(self, key: str, path: "str | None",
                *, newer_than: "float | None" = None) -> bool:
        """Delete one entry; returns whether anything was deleted.

        ``newer_than`` is the prune scan-start guard: an entry whose
        write time is at or after it is left alone (it was written --
        or re-written by a concurrent campaign -- after the scan
        decided its fate, so the scan's age/size data for it is
        stale).  An entry that vanished since the scan (pruned by a
        concurrent process) reports ``False`` instead of raising.
        """
        if path is None:
            with self._lock:
                if key not in self._mem:
                    return False  # vanished mid-scan
                if newer_than is not None and \
                        self._times.get(key, 0.0) >= newer_than:
                    return False  # re-written after the scan started
                self._mem.pop(key, None)
                self._times.pop(key, None)
            return True
        try:
            if newer_than is not None and \
                    os.stat(path).st_mtime >= newer_than:
                return False  # re-written after the scan started
            os.unlink(path)
        except OSError:
            return False  # vanished mid-scan
        return True

    def prune(
        self,
        *,
        max_bytes: "int | None" = None,
        older_than_s: "float | None" = None,
    ) -> dict:
        """Garbage-collect the store.

        ``older_than_s`` removes every entry last written more than
        that many seconds ago; ``max_bytes`` then evicts the *oldest*
        remaining entries until the store fits the budget (entries are
        immutable and re-creatable, so oldest-first is safe -- a
        pruned verdict simply re-executes on its next campaign).
        Returns removed/kept entry and byte counts.

        Pruning is safe against concurrent writers and other pruners:
        entries that vanish between the scan and the delete are
        skipped (not errors), and no entry written at or after the
        scan start is ever deleted -- each candidate's write time is
        re-checked immediately before removal, so a verdict a live
        campaign just stored cannot be swept out from under it by a
        prune that scanned stale metadata.
        """
        # GC age accounting against file mtimes -- never a verdict
        # input.
        scan_start = metadata_wall_clock()
        cutoff = (
            scan_start - older_than_s if older_than_s is not None else None
        )
        removed_entries = removed_bytes = 0
        survivors = []
        for key, path, size, mtime in self._entries():
            if cutoff is not None and mtime < cutoff and \
                    self._remove(key, path, newer_than=scan_start):
                removed_entries += 1
                removed_bytes += size
            else:
                survivors.append((key, path, size))
        if max_bytes is not None:
            kept_bytes = sum(size for _, _, size in survivors)
            remaining = []
            for key, path, size in survivors:   # oldest first
                if kept_bytes > max_bytes and \
                        self._remove(key, path, newer_than=scan_start):
                    removed_entries += 1
                    removed_bytes += size
                    kept_bytes -= size
                else:
                    remaining.append((key, path, size))
            survivors = remaining
        return {
            "removed_entries": removed_entries,
            "removed_bytes": removed_bytes,
            "kept_entries": len(survivors),
            "kept_bytes": sum(size for _, _, size in survivors),
        }
