"""Content-addressed campaign result cache (incremental re-verification).

The paper's methodology is iterative: the same IPs are re-verified
after every sensor-insertion or netlist change, yet a mutant's verdict
is a pure function of a small set of inputs.  This module captures
that function's domain as a **content-addressed key** so re-running a
campaign (or a whole cross-IP suite) replays previously-computed
:class:`~repro.mutation.analysis.MutantOutcome`s instantly and only
executes mutants invalidated by a *real* change.

Every TLM entry is keyed by the five components the verdict actually
depends on:

1. the **structural fingerprint** of the mutant-injected generated
   model (:func:`model_fingerprint`) -- the generated source with the
   ``MUTANTS`` table masked out, so editing one mutant spec does not
   invalidate its siblings' entries;
2. the **stimuli hash** (:func:`stimuli_hash`) and the **golden-trace
   hash** (:func:`golden_trace_hash`) -- the reference the mutant is
   judged against;
3. the **mutant spec** itself (kind, target signal, HF tick, monitored
   register) -- positional index is deliberately *not* part of the key
   (reordering the table must not invalidate), and cached outcomes are
   re-indexed on replay;
4. the **sensor type**;
5. the **judgement parameters** (the recovery bit, the Counter tap
   order).

RTL-validation entries are keyed analogously via
:func:`rtl_fingerprint` (emitted VHDL + back-annotated nominal delays
+ clocking) and :func:`rtl_entry_key`.  The kernel execution mode
(``compiled`` / ``interpreted``) is deliberately **excluded** from RTL
keys: the two modes are lockstep-equivalent by construction (see
:mod:`repro.rtl.compile` and ``tests/test_compiled_kernel.py``), so a
mode switch replays instead of re-executing.

Storage is one JSON object per entry under
``<root>/objects/<key[:2]>/<key>.json`` with atomic writes
(temp-file + ``os.replace``), so concurrent campaigns sharing a cache
directory never observe torn entries.  ``ResultCache(None)`` keeps the
store in memory -- same semantics, no filesystem.

Determinism note: replayed outcomes are field-for-field identical to
freshly-executed ones (covered by ``tests/test_cache.py``), so a
cached report equals an uncached report on every scored field.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

__all__ = [
    "CACHE_SCHEMA",
    "ResultCache",
    "decode_outcome",
    "decode_rtl_outcome",
    "encode_outcome",
    "encode_rtl_outcome",
    "golden_trace_hash",
    "model_fingerprint",
    "mutant_entry_key",
    "rtl_entry_key",
    "rtl_fingerprint",
    "stimuli_hash",
]

#: Bump to orphan every existing entry (schema is part of every key).
CACHE_SCHEMA = 1


def _digest(parts) -> str:
    """SHA-256 over a ``repr``-canonicalised tuple of key components."""
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Key components
# ---------------------------------------------------------------------------

_MUTANT_TABLE_PREFIX = "MUTANTS ="


def model_fingerprint(gen) -> str:
    """Structural fingerprint of a generated TLM model.

    Hashes the generated source with the ``MUTANTS`` table literal
    masked out (plus the class name, data-type variant and scheduler
    kind).  The mutant table is the *only* generated line that changes
    when a mutant spec is edited, so masking it gives per-mutant
    invalidation: the edited spec misses (its spec is part of the
    entry key), its siblings still hit.  Any other source change --
    new sensor, different LUT thresholds, different tap order --
    changes the fingerprint and invalidates every entry, as it must.
    """
    lines = [
        "<MUTANTS>" if line.lstrip().startswith(_MUTANT_TABLE_PREFIX)
        else line
        for line in gen.source.splitlines()
    ]
    return _digest(
        (gen.class_name, gen.variant, gen.scheduler_kind, "\n".join(lines))
    )


def stimuli_hash(stimuli) -> str:
    """Digest of a stimulus sequence (``name -> int`` vectors per
    cycle).  Key order inside a vector is canonicalised away; vector
    *sequence* order is significant."""
    return _digest(tuple(tuple(sorted(vec.items())) for vec in stimuli))


def golden_trace_hash(golden) -> str:
    """Digest of a :class:`~repro.mutation.analysis.GoldenTrace`.

    The golden trace already folds together the golden model, the
    stimuli, the sensor type and the recovery bit, so hashing it
    captures "the reference this mutant was judged against" in one
    component.
    """
    return _digest((
        golden.functional_ports,
        tuple(tuple(sorted(outs.items())) for outs in golden.full),
    ))


def _spec_key(spec) -> tuple:
    return (spec.kind, spec.target, spec.hf_tick, spec.register)


def mutant_entry_key(
    model_fp: str,
    stim_hash: str,
    golden_hash: str,
    sensor_type: str,
    spec,
    *,
    recovery: bool,
    tap_order=(),
) -> str:
    """Entry key for one TLM mutant verdict.

    The mutant's positional index is deliberately excluded: it does
    not influence the verdict (``MUTANTS[index]`` lookups read only
    the spec tuple), and replayed outcomes are re-indexed by the
    caller.
    """
    return _digest((
        "tlm",
        CACHE_SCHEMA,
        model_fp,
        stim_hash,
        golden_hash,
        sensor_type,
        _spec_key(spec),
        bool(recovery),
        tuple(tap_order),
    ))


def rtl_fingerprint(augmented) -> str:
    """Structural fingerprint of an augmented RTL design.

    Combines the emitted VHDL (the full structural rendering,
    including sensor-bank instances) with everything the simulator
    back-annotates outside the VHDL text: per-endpoint nominal delays,
    the main clock period, the HF ratio and -- for Counter banks --
    the per-tap LUT thresholds and CPS bit choices.
    """
    from repro.rtl import emit_vhdl

    taps = []
    for tap in augmented.bank.taps:
        entry = [tap.register.name, tap.endpoint.name, tap.nominal_delay_ps]
        if augmented.sensor_type == "counter":
            entry += [tap.lut_threshold, tap.cps_index]
        taps.append(tuple(entry))
    return _digest((
        "rtl",
        emit_vhdl(augmented.module),
        augmented.sensor_type,
        augmented.main_period_ps,
        augmented.hf_ratio,
        tuple(sorted(taps)),
    ))


def rtl_entry_key(
    rtl_fp: str,
    stim_hash: str,
    cycles: int,
    recovery_value: int,
    spec,
) -> str:
    """Entry key for one RTL-validation mutant verdict."""
    return _digest((
        "rtl",
        CACHE_SCHEMA,
        rtl_fp,
        stim_hash,
        int(cycles),
        int(recovery_value),
        _spec_key(spec),
    ))


# ---------------------------------------------------------------------------
# Outcome (de)serialisation
# ---------------------------------------------------------------------------

def encode_outcome(outcome) -> dict:
    """JSON payload for a :class:`MutantOutcome` (all verdict fields;
    the positional index is stored for debugging but rewritten on
    replay)."""
    return {
        "index": outcome.index,
        "kind": outcome.kind,
        "target": outcome.target,
        "register": outcome.register,
        "hf_tick": outcome.hf_tick,
        "killed": outcome.killed,
        "detected": outcome.detected,
        "error_risen": outcome.error_risen,
        "corrected": outcome.corrected,
        "meas_val": outcome.meas_val,
        "first_divergence": outcome.first_divergence,
        "timed_out": outcome.timed_out,
    }


def decode_outcome(payload: dict, index: int):
    """Rebuild a :class:`MutantOutcome` from a cache payload, re-indexed
    to the mutant's *current* position in the table."""
    from .analysis import MutantOutcome

    return MutantOutcome(
        index=index,
        kind=payload["kind"],
        target=payload["target"],
        register=payload["register"],
        hf_tick=payload["hf_tick"],
        killed=payload["killed"],
        detected=payload["detected"],
        error_risen=payload["error_risen"],
        corrected=payload["corrected"],
        meas_val=payload["meas_val"],
        first_divergence=payload["first_divergence"],
        timed_out=payload["timed_out"],
    )


def encode_rtl_outcome(outcome) -> dict:
    """JSON payload for an :class:`RtlMutantOutcome`."""
    spec = outcome.spec
    return {
        "index": outcome.index,
        "spec": {
            "kind": spec.kind,
            "target": spec.target,
            "hf_tick": spec.hf_tick,
            "register": spec.register,
        },
        "error_risen": outcome.error_risen,
        "meas_val": outcome.meas_val,
    }


def decode_rtl_outcome(payload: dict, index: int):
    """Rebuild an :class:`RtlMutantOutcome` from a cache payload."""
    from repro.abstraction.codegen import MutantSpec

    from .rtl_validation import RtlMutantOutcome

    spec = payload["spec"]
    return RtlMutantOutcome(
        spec=MutantSpec(
            kind=spec["kind"],
            target=spec["target"],
            hf_tick=spec["hf_tick"],
            register=spec["register"],
        ),
        error_risen=payload["error_risen"],
        meas_val=payload["meas_val"],
        index=index,
    )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class ResultCache:
    """Persistent, content-addressed store of mutant verdicts.

    Args:
        root: cache directory (created lazily on first write).  Pass
            ``None`` for an in-memory store with identical semantics
            -- useful for tests and for sharing results inside one
            process without touching the filesystem.

    Entries are immutable by construction (the key digests every input
    of the computation), so there is no eviction or coherence
    protocol: a key either resolves to the one correct payload or is
    absent.  Writes are atomic (temp file + ``os.replace``); a torn or
    corrupt file reads as a miss and is rewritten.

    The instance counts its own ``hits`` / ``misses`` cumulatively;
    per-campaign counts are reported by
    :class:`~repro.mutation.MutationReport.cache_hits` /
    ``cache_misses`` on each report.
    """

    def __init__(self, root: "str | os.PathLike | None" = None) -> None:
        self.root = os.fspath(root) if root is not None else None
        self._mem: "dict[str, dict]" = {}
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, "objects", key[:2], key + ".json")

    def get(self, key: str) -> "dict | None":
        """Payload stored under ``key``, or ``None`` (a miss).  Updates
        the hit/miss counters."""
        if self.root is None:
            payload = self._mem.get(key)
        else:
            try:
                with open(self._path(key)) as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                payload = None
        if payload is None:
            self.misses += 1
        else:
            self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` (atomic on disk)."""
        if self.root is None:
            self._mem[key] = payload
            return
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def probe(self, keys, decode):
        """Look up a whole campaign's entry keys at once.

        ``decode(payload, index)`` rebuilds the outcome for position
        ``index`` (e.g. :func:`decode_outcome` /
        :func:`decode_rtl_outcome`).  Returns
        ``(cached_outcomes, miss_indices)`` -- the shared probe step
        of :func:`repro.mutation.campaign.prepare_campaign` and
        :func:`repro.mutation.rtl_validation.prepare_rtl_validation`,
        so their hit/miss semantics cannot drift apart.
        """
        cached = []
        miss_indices = []
        for index, key in enumerate(keys):
            payload = self.get(key)
            if payload is None:
                miss_indices.append(index)
            else:
                cached.append(decode(payload, index))
        return cached, miss_indices

    def __len__(self) -> int:
        """Number of stored entries (walks the store)."""
        if self.root is None:
            return len(self._mem)
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return 0
        return sum(
            len([f for f in files if f.endswith(".json")])
            for _, _, files in os.walk(objects)
        )
