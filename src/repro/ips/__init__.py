"""Case-study IPs and their registry.

Each case study exposes a *factory* (fresh module per call -- sensor
insertion mutates the tree in place) plus its testbench stimulus and
operating point.  :data:`CASE_STUDIES` is the registry the end-to-end
flow and the benchmark harness iterate over; the entries correspond
one-to-one to the rows of the paper's Tables 1-5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dsp import DSP_FCLK_GHZ, DSP_PERIOD_PS, DSP_VDD, build_dsp, flow_stimulus
from .filter import (
    FILTER_FCLK_GHZ,
    FILTER_PERIOD_PS,
    FILTER_VDD,
    build_filter,
    pdm_stimulus,
)
from .plasma import (
    PLASMA_FCLK_GHZ,
    PLASMA_PERIOD_PS,
    PLASMA_VDD,
    build_plasma,
    fibonacci_program,
    plasma_stimulus,
)

__all__ = ["IpSpec", "CASE_STUDIES", "case_study", "rebuild_recipe"]


@dataclass(frozen=True)
class IpSpec:
    """One case study: factory, operating point, testbench."""

    name: str
    title: str
    factory: "callable"            # () -> (Module, clk)
    stimulus: "callable"           # (n) -> list[dict[str, int]]
    clock_period_ps: int
    vdd: float
    fclk_ghz: float
    #: slack threshold (ps) used for critical-path binning; chosen per
    #: IP so the monitored-path count is a realistic fraction of the
    #: register endpoints, as in the paper's Table 2.
    slack_threshold_ps: float
    #: testbench length (cycles) needed to stimulate every monitored
    #: endpoint at least a few times (the filter decimates by 32, so
    #: its output registers move only every 32 cycles).
    mutation_cycles: int = 64
    description: str = ""


def _plasma_factory():
    return build_plasma(fibonacci_program())


CASE_STUDIES: "dict[str, IpSpec]" = {
    "plasma": IpSpec(
        name="plasma",
        title="Plasma (MIPS R3000A subset)",
        factory=_plasma_factory,
        stimulus=plasma_stimulus,
        clock_period_ps=PLASMA_PERIOD_PS,
        vdd=PLASMA_VDD,
        fclk_ghz=PLASMA_FCLK_GHZ,
        slack_threshold_ps=4300.0,
        # long enough for the Fibonacci program to reach its halt store,
        # so the 'halted' register endpoint toggles under the testbench
        mutation_cycles=110,
        description="open-source MIPS I core running a Fibonacci workload",
    ),
    "dsp": IpSpec(
        name="dsp",
        title="Heart-rate DSP",
        factory=build_dsp,
        stimulus=flow_stimulus,
        clock_period_ps=DSP_PERIOD_PS,
        vdd=DSP_VDD,
        fclk_ghz=DSP_FCLK_GHZ,
        slack_threshold_ps=300.0,
        mutation_cycles=72,
        description="blood-flow filtering and pulse detection pipeline",
    ),
    "filter": IpSpec(
        name="filter",
        title="MEMS decimation filter",
        factory=build_filter,
        stimulus=pdm_stimulus,
        clock_period_ps=FILTER_PERIOD_PS,
        vdd=FILTER_VDD,
        fclk_ghz=FILTER_FCLK_GHZ,
        slack_threshold_ps=830.0,
        mutation_cycles=384,
        description="PDM-to-PCM decimation chain of a smart microphone",
    ),
}


def case_study(name: str) -> IpSpec:
    try:
        return CASE_STUDIES[name]
    except KeyError:
        raise KeyError(
            f"unknown case study {name!r}; have {sorted(CASE_STUDIES)}"
        ) from None


def rebuild_recipe(spec: IpSpec) -> "str | None":
    """The registry name of ``spec`` iff it *is* the registered case
    study (identity, not name equality): the eligibility rule for
    worker processes reconstructing the spec's augmentation from its
    name alone (see :mod:`repro.mutation.rtl_validation`).  An ad-hoc
    or modified spec returns ``None``, keeping its shards inline."""
    return spec.name if CASE_STUDIES.get(spec.name) is spec else None
