"""Heart-rate detection DSP (case study 2, paper Table 1).

The paper's DSP is the digital subsystem of a laser-Doppler blood-flow
imager: digital filters and integrators extracting the pulse rate from
the flow waveform.  This implementation follows the classic
Pan-Tompkins-style pipeline used by such front ends:

``sample -> band-pass FIR -> derivative -> squaring ->
moving-window integrator -> adaptive-threshold peak detector ->
inter-beat-interval counter -> rate register``

Operating point (Table 1): 1.05 V / 2 GHz.  The datapath is modest in
width but deep in registers, which is what makes its multiplier/MAC
stages the STA-critical paths.
"""

from __future__ import annotations

from repro.rtl import (
    Assign,
    If,
    Module,
    const,
    mux,
    resize,
    sar,
)

__all__ = ["build_dsp", "DSP_PERIOD_PS", "DSP_VDD", "DSP_FCLK_GHZ"]

DSP_PERIOD_PS = 500  # 2 GHz
DSP_VDD = 1.05
DSP_FCLK_GHZ = 2.0

SAMPLE_WIDTH = 12
#: Band-pass FIR (8 taps): passes the pulsatile band, rejects DC.
BP_COEFFS = [-2, -1, 5, 12, 12, 5, -1, -2]
#: Moving-window integrator length (power of two for cheap division).
MWI_LEN = 8
#: Refractory period after a detected beat, in samples.
REFRACTORY = 12


def build_dsp() -> "tuple[Module, object]":
    """Construct a fresh heart-rate DSP instance."""
    m = Module("dsp_ip")
    clk = m.input("clk")
    sample_in = m.input("sample_in", SAMPLE_WIDTH)
    sample_valid = m.input("sample_valid")
    beat = m.output("beat")
    rate = m.output("rate", 8)
    energy_out = m.output("energy", 16)

    w = 16  # internal width

    # ---- band-pass FIR --------------------------------------------------
    taps = []
    previous = sample_in
    shift_stmts = []
    for i in range(len(BP_COEFFS)):
        tap = m.signal(f"bp_tap{i}", SAMPLE_WIDTH)
        shift_stmts.append(Assign(tap, previous))
        taps.append(tap)
        previous = tap
    m.sync("bp_taps_p", clk, [If(sample_valid.eq(1), shift_stmts)])

    acc = None
    for tap, coeff in zip(taps, BP_COEFFS):
        term = resize(tap, w, signed=True) * const(coeff, w)
        acc = term if acc is None else acc + term
    bp_mac = m.signal("bp_mac", w)
    m.comb("bp_mac_p", [Assign(bp_mac, acc)])
    bp_out = m.signal("bp_out", w)
    m.sync("bp_out_p", clk, [
        If(sample_valid.eq(1), [Assign(bp_out, sar(bp_mac, 4))]),
    ])

    # ---- derivative ------------------------------------------------------
    prev_bp = m.signal("deriv_prev", w)
    deriv = m.signal("deriv", w)
    m.sync("deriv_p", clk, [
        If(sample_valid.eq(1), [
            Assign(deriv, bp_out - prev_bp),
            Assign(prev_bp, bp_out),
        ]),
    ])

    # ---- squaring (energy) -----------------------------------------------
    squared = m.signal("squared", w)
    m.sync("square_p", clk, [
        If(sample_valid.eq(1), [Assign(squared, deriv * deriv)]),
    ])

    # ---- moving-window integrator ------------------------------------------
    window = []
    previous = squared
    window_stmts = []
    for i in range(MWI_LEN):
        slot = m.signal(f"mwi{i}", w)
        window_stmts.append(Assign(slot, previous))
        window.append(slot)
        previous = slot
    m.sync("mwi_shift_p", clk, [If(sample_valid.eq(1), window_stmts)])

    mwi_sum = None
    for slot in window:
        mwi_sum = slot if mwi_sum is None else mwi_sum + slot
    energy = m.signal("energy_r", w)
    m.sync("mwi_sum_p", clk, [
        If(sample_valid.eq(1), [Assign(energy, mwi_sum >> 3)]),
    ])
    m.comb("drive_energy", [Assign(energy_out, energy)])

    # ---- adaptive threshold + peak detection --------------------------------
    threshold = m.signal("threshold", w, init=200)
    refractory = m.signal("refractory", 5)
    beat_r = m.signal("beat_r")
    m.sync("detect_p", clk, [
        Assign(beat_r, 0),
        If(sample_valid.eq(1), [
            If(refractory.eq(0), [
                If(energy.gt(threshold), [
                    Assign(beat_r, 1),
                    Assign(refractory, const(REFRACTORY, 5)),
                    # Threshold climbs toward the detected peak:
                    # thr += (energy - thr) / 4
                    Assign(
                        threshold,
                        threshold + resize(
                            sar(energy - threshold, 2), w
                        ),
                    ),
                ]),
            ], [
                Assign(refractory, refractory - const(1, 5)),
                # Slow exponential decay keeps sensitivity.
                Assign(threshold, threshold - resize(sar(threshold, 6), w)),
            ]),
        ]),
    ])
    m.comb("drive_beat", [Assign(beat, beat_r)])

    # ---- inter-beat interval -> rate -----------------------------------------
    ibi_count = m.signal("ibi_count", 10)
    rate_r = m.signal("rate_r", 8)
    m.sync("rate_p", clk, [
        If(sample_valid.eq(1), [
            If(beat_r.eq(1), [
                Assign(rate_r, resize(ibi_count, 8)),
                Assign(ibi_count, 0),
            ], [
                If(ibi_count.ne(1023), [
                    Assign(ibi_count, ibi_count + const(1, 10)),
                ]),
            ]),
        ]),
    ])
    m.comb("drive_rate", [Assign(rate, rate_r)])
    return m, clk
