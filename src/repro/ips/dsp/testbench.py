"""Testbench for the heart-rate DSP: synthetic blood-flow waveforms.

Laser-Doppler flowmetry produces a quasi-periodic pulsatile waveform:
a sharp systolic upstroke, a dicrotic notch, baseline wander and
speckle noise.  The generator reproduces those features so the
detector pipeline (band-pass, derivative, energy, adaptive threshold)
is exercised exactly as the paper's DSP would be in its system.
"""

from __future__ import annotations

import math
import random

__all__ = ["flow_stimulus", "flow_wave", "BEAT_PERIOD_SAMPLES"]

#: Nominal pulse period in samples (the rate register should converge
#: near this value).
BEAT_PERIOD_SAMPLES = 24


def flow_wave(n: int, *, seed: int = 23) -> "list[int]":
    """``n`` samples of a synthetic blood-flow signal (unsigned,
    12-bit midscale-centred)."""
    rng = random.Random(seed)
    samples = []
    phase = 0.0
    for i in range(n):
        phase += 1.0 / BEAT_PERIOD_SAMPLES
        cycle_pos = phase - int(phase)
        # Systolic peak: fast rise, slower fall.
        if cycle_pos < 0.18:
            pulse = math.sin(cycle_pos / 0.18 * math.pi / 2)
        elif cycle_pos < 0.5:
            pulse = math.cos((cycle_pos - 0.18) / 0.32 * math.pi / 2)
        elif cycle_pos < 0.62:
            # Dicrotic notch bump.
            pulse = 0.18 * math.sin((cycle_pos - 0.5) / 0.12 * math.pi)
        else:
            pulse = 0.0
        wander = 0.06 * math.sin(2 * math.pi * i / 311.0)
        noise = 0.03 * (rng.random() * 2 - 1)
        value = 0.55 * pulse + wander + noise
        samples.append(int(2048 + max(-1.0, min(1.0, value)) * 1024) & 0xFFF)
    return samples


def flow_stimulus(n: int, *, seed: int = 23) -> "list[dict[str, int]]":
    """``n`` cycles of DSP input (one valid sample per cycle)."""
    return [
        {"sample_in": value, "sample_valid": 1}
        for value in flow_wave(n, seed=seed)
    ]
