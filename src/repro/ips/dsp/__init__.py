"""Heart-rate detection DSP case study."""

from .testbench import BEAT_PERIOD_SAMPLES, flow_stimulus, flow_wave
from .top import DSP_FCLK_GHZ, DSP_PERIOD_PS, DSP_VDD, build_dsp

__all__ = [
    "BEAT_PERIOD_SAMPLES",
    "flow_stimulus",
    "flow_wave",
    "DSP_FCLK_GHZ",
    "DSP_PERIOD_PS",
    "DSP_VDD",
    "build_dsp",
]
