"""Plasma: a MIPS I subset CPU (case study 1, paper Table 1).

A from-scratch implementation of the MIPS R3000A subset the Plasma
core supports, organised the way the original VHDL is: separate
decode, ALU, shifter, next-PC and memory-control processes around a
register file and instruction/data memories.

Microarchitecture: single-cycle fetch/execute (state registers: PC,
trace/performance registers, MMIO registers).  Deviations from the
real Plasma, documented for the reproduction: no branch/load delay
slots, no multiply/divide unit, word-only memory accesses, and a
compact 256-word Harvard memory pair -- none of which the verification
methodology is sensitive to (it needs a control-dominated IP with a
real ISA, which this is).

Memory map (byte addresses):
``0x000-0x3FF`` data RAM; ``0x400`` debug/result register (SW);
``0x404`` halt trigger (SW); ``0x408`` external input port (LW).

Operating point (Table 1): 1.05 V / 0.2 GHz.
"""

from __future__ import annotations

from repro.rtl import (
    Assign,
    ArrayWrite,
    Case,
    If,
    Module,
    array_read,
    cat,
    const,
    mux,
    sar,
    sign_extend,
    zero_extend,
)

__all__ = ["build_plasma", "PLASMA_PERIOD_PS", "PLASMA_VDD", "PLASMA_FCLK_GHZ"]

PLASMA_PERIOD_PS = 5000  # 0.2 GHz
PLASMA_VDD = 1.05
PLASMA_FCLK_GHZ = 0.2

IMEM_WORDS = 256
DMEM_WORDS = 256

# Opcodes / functs used by the decoder.
_OP_RTYPE = 0x00
_OP_J = 0x02
_OP_JAL = 0x03
_OP_BEQ = 0x04
_OP_BNE = 0x05
_OP_ADDI = 0x08
_OP_ADDIU = 0x09
_OP_SLTI = 0x0A
_OP_SLTIU = 0x0B
_OP_ANDI = 0x0C
_OP_ORI = 0x0D
_OP_XORI = 0x0E
_OP_LUI = 0x0F
_OP_LW = 0x23
_OP_SW = 0x2B

_F_SLL = 0x00
_F_SRL = 0x02
_F_SRA = 0x03
_F_JR = 0x08
_F_ADD = 0x20
_F_ADDU = 0x21
_F_SUB = 0x22
_F_SUBU = 0x23
_F_AND = 0x24
_F_OR = 0x25
_F_XOR = 0x26
_F_NOR = 0x27
_F_SLT = 0x2A
_F_SLTU = 0x2B


def build_plasma(program: "list[int] | None" = None) -> "tuple[Module, object]":
    """Construct a fresh Plasma instance with ``program`` preloaded."""
    program = list(program or [])
    if len(program) > IMEM_WORDS:
        raise ValueError("program does not fit in instruction memory")

    m = Module("plasma_ip")
    clk = m.input("clk")
    ext_in = m.input("ext_in", 32)
    debug_out_o = m.output("debug_out", 32)
    pc_out = m.output("pc_out", 32)
    halted_o = m.output("halted_o")
    instret_o = m.output("instret_o", 32)

    imem = m.array("imem", IMEM_WORDS, 32, init=program)
    dmem = m.array("dmem", DMEM_WORDS, 32)
    regfile = m.array("regfile", 32, 32)

    # ---- architectural / trace state -----------------------------------
    pc = m.signal("pc", 32)
    halted = m.signal("halted")
    debug_out = m.signal("debug_out_r", 32)
    instret = m.signal("instret", 32)
    alu_trace = m.signal("alu_trace", 32)
    branch_count = m.signal("branch_count", 32)
    load_count = m.signal("load_count", 32)

    # ---- fetch / field extraction ----------------------------------------
    instr = m.signal("instr", 32)
    m.comb("p_fetch", [Assign(instr, array_read(imem, pc[9:2]))])

    opcode = m.signal("opcode", 6)
    rs = m.signal("rs", 5)
    rt = m.signal("rt", 5)
    rd = m.signal("rd", 5)
    shamt = m.signal("shamt", 5)
    funct = m.signal("funct", 6)
    imm16 = m.signal("imm16", 16)
    m.comb("p_fields", [
        Assign(opcode, instr[31:26]),
        Assign(rs, instr[25:21]),
        Assign(rt, instr[20:16]),
        Assign(rd, instr[15:11]),
        Assign(shamt, instr[10:6]),
        Assign(funct, instr[5:0]),
        Assign(imm16, instr[15:0]),
    ])

    # ---- register file read (with $0 hard-wired to zero) ------------------
    rs_val = m.signal("rs_val", 32)
    rt_val = m.signal("rt_val", 32)
    m.comb("p_regread", [
        Assign(rs_val, mux(rs.eq(0), const(0, 32), array_read(regfile, rs))),
        Assign(rt_val, mux(rt.eq(0), const(0, 32), array_read(regfile, rt))),
    ])

    imm_se = m.signal("imm_se", 32)
    imm_ze = m.signal("imm_ze", 32)
    m.comb("p_imm", [
        Assign(imm_se, sign_extend(imm16, 32)),
        Assign(imm_ze, zero_extend(imm16, 32)),
    ])

    # ---- control decode -----------------------------------------------------
    reg_write = m.signal("reg_write")
    dest = m.signal("dest", 5)
    mem_read = m.signal("mem_read")
    mem_write = m.signal("mem_write")
    is_branch = m.signal("is_branch")
    is_jump = m.signal("is_jump")
    is_jr = m.signal("is_jr")
    is_link = m.signal("is_link")
    m.comb("p_control", [
        Assign(reg_write, 0),
        Assign(dest, rt),
        Assign(mem_read, 0),
        Assign(mem_write, 0),
        Assign(is_branch, 0),
        Assign(is_jump, 0),
        Assign(is_jr, 0),
        Assign(is_link, 0),
        Case(opcode, [
            (_OP_RTYPE, [
                If(funct.eq(_F_JR), [Assign(is_jr, 1)], [
                    Assign(reg_write, 1),
                    Assign(dest, rd),
                ]),
            ]),
            (_OP_J, [Assign(is_jump, 1)]),
            (_OP_JAL, [
                Assign(is_jump, 1),
                Assign(is_link, 1),
                Assign(reg_write, 1),
                Assign(dest, const(31, 5)),
            ]),
            (_OP_BEQ, [Assign(is_branch, 1)]),
            (_OP_BNE, [Assign(is_branch, 1)]),
            (_OP_LW, [
                Assign(mem_read, 1),
                Assign(reg_write, 1),
            ]),
            (_OP_SW, [Assign(mem_write, 1)]),
        ], default=[
            # Remaining I-type ALU ops write rt.
            Assign(reg_write, 1),
        ]),
    ])

    # ---- ALU ---------------------------------------------------------------
    alu_out = m.signal("alu_out", 32)
    slt_u = zero_extend(rs_val.lt(rt_val), 32)
    slt_s = zero_extend(rs_val.lt_s(rt_val), 32)
    m.comb("p_alu", [
        Assign(alu_out, 0),
        Case(opcode, [
            (_OP_RTYPE, [
                Case(funct, [
                    (_F_SLL, [Assign(alu_out, rt_val << shamt)]),
                    (_F_SRL, [Assign(alu_out, rt_val >> shamt)]),
                    (_F_SRA, [Assign(alu_out, sar(rt_val, shamt))]),
                    (_F_ADD, [Assign(alu_out, rs_val + rt_val)]),
                    (_F_ADDU, [Assign(alu_out, rs_val + rt_val)]),
                    (_F_SUB, [Assign(alu_out, rs_val - rt_val)]),
                    (_F_SUBU, [Assign(alu_out, rs_val - rt_val)]),
                    (_F_AND, [Assign(alu_out, rs_val & rt_val)]),
                    (_F_OR, [Assign(alu_out, rs_val | rt_val)]),
                    (_F_XOR, [Assign(alu_out, rs_val ^ rt_val)]),
                    (_F_NOR, [Assign(alu_out, ~(rs_val | rt_val))]),
                    (_F_SLT, [Assign(alu_out, slt_s)]),
                    (_F_SLTU, [Assign(alu_out, slt_u)]),
                ]),
            ]),
            (_OP_ADDI, [Assign(alu_out, rs_val + imm_se)]),
            (_OP_ADDIU, [Assign(alu_out, rs_val + imm_se)]),
            (_OP_SLTI, [Assign(alu_out, zero_extend(rs_val.lt_s(imm_se), 32))]),
            (_OP_SLTIU, [Assign(alu_out, zero_extend(rs_val.lt(imm_se), 32))]),
            (_OP_ANDI, [Assign(alu_out, rs_val & imm_ze)]),
            (_OP_ORI, [Assign(alu_out, rs_val | imm_ze)]),
            (_OP_XORI, [Assign(alu_out, rs_val ^ imm_ze)]),
            (_OP_LUI, [Assign(alu_out, cat(imm16, const(0, 16)))]),
            (_OP_LW, [Assign(alu_out, rs_val + imm_se)]),
            (_OP_SW, [Assign(alu_out, rs_val + imm_se)]),
        ]),
    ])

    # ---- next PC -------------------------------------------------------------
    pc4 = m.signal("pc4", 32)
    branch_taken = m.signal("branch_taken")
    next_pc = m.signal("next_pc", 32)
    branch_offset = cat(imm_se[29:0], const(0, 2))
    jump_target = cat(pc4[31:28], instr[25:0], const(0, 2))
    m.comb("p_pc4", [Assign(pc4, pc + const(4, 32))])
    m.comb("p_branch", [
        Assign(
            branch_taken,
            (opcode.eq(_OP_BEQ) & rs_val.eq(rt_val))
            | (opcode.eq(_OP_BNE) & rs_val.ne(rt_val)),
        ),
    ])
    m.comb("p_nextpc", [
        Assign(
            next_pc,
            mux(is_jump, jump_target,
                mux(is_jr, rs_val,
                    mux(is_branch & branch_taken,
                        pc4 + branch_offset, pc4))),
        ),
    ])

    # ---- data memory / MMIO ----------------------------------------------------
    mem_addr = alu_out
    is_mmio = m.signal("is_mmio")
    load_val = m.signal("load_val", 32)
    m.comb("p_mmio", [Assign(is_mmio, mem_addr[10])])
    m.comb("p_load", [
        Assign(
            load_val,
            mux(is_mmio, ext_in, array_read(dmem, mem_addr[9:2])),
        ),
    ])

    # ---- writeback value ----------------------------------------------------------
    wb_val = m.signal("wb_val", 32)
    m.comb("p_wb", [
        Assign(
            wb_val,
            mux(is_link, pc4, mux(mem_read, load_val, alu_out)),
        ),
    ])

    # ---- synchronous state update ----------------------------------------------------
    m.sync("p_state", clk, [
        If(halted.eq(0), [
            Assign(pc, next_pc),
            Assign(instret, instret + const(1, 32)),
            Assign(alu_trace, alu_out),
            If(is_branch & branch_taken, [
                Assign(branch_count, branch_count + const(1, 32)),
            ]),
            If(mem_read.eq(1), [
                Assign(load_count, load_count + const(1, 32)),
            ]),
            If(mem_write & is_mmio, [
                If(mem_addr[4:2].eq(0), [Assign(debug_out, rt_val)]),
                If(mem_addr[4:2].eq(1), [Assign(halted, 1)]),
            ]),
        ]),
    ])
    m.sync("p_regfile", clk, [
        If(halted.eq(0) & reg_write & dest.ne(0), [
            ArrayWrite(regfile, dest, wb_val),
        ]),
    ])
    m.sync("p_dmem", clk, [
        If(halted.eq(0) & mem_write & is_mmio.eq(0), [
            ArrayWrite(dmem, mem_addr[9:2], rt_val),
        ]),
    ])

    # ---- outputs ------------------------------------------------------------------------
    m.comb("p_out", [
        Assign(debug_out_o, debug_out),
        Assign(pc_out, pc),
        Assign(halted_o, halted),
        Assign(instret_o, instret),
    ])
    return m, clk
