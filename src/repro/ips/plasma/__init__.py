"""Plasma MIPS I subset CPU case study."""

from .asm import AsmError, REGISTERS, assemble
from .cpu import (
    PLASMA_FCLK_GHZ,
    PLASMA_PERIOD_PS,
    PLASMA_VDD,
    build_plasma,
)
from .programs import (
    CHECKSUM_EXPECTED,
    FIB_EXPECTED,
    SORT_EXPECTED,
    checksum_program,
    fibonacci_program,
    sort_program,
)
from .testbench import plasma_stimulus

__all__ = [
    "AsmError",
    "REGISTERS",
    "assemble",
    "PLASMA_FCLK_GHZ",
    "PLASMA_PERIOD_PS",
    "PLASMA_VDD",
    "build_plasma",
    "CHECKSUM_EXPECTED",
    "FIB_EXPECTED",
    "SORT_EXPECTED",
    "checksum_program",
    "fibonacci_program",
    "sort_program",
    "plasma_stimulus",
]
