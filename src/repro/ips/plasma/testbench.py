"""Testbench stimulus for the Plasma core.

The CPU's activity is driven by its program, not by its pins: the
Fibonacci workload keeps the PC, ALU and memory paths toggling every
cycle.  The external input port still gets a pseudo-random pattern so
LW-from-MMIO paths are exercised when a program uses them.
"""

from __future__ import annotations

import random

__all__ = ["plasma_stimulus"]


def plasma_stimulus(n: int, *, seed: int = 5) -> "list[dict[str, int]]":
    rng = random.Random(seed)
    return [{"ext_in": rng.randrange(1 << 32)} for _ in range(n)]
