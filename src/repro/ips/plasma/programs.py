"""Testbench programs for the Plasma core.

Three small but real MIPS programs, each ending with a store of its
result to the debug register (``0x400``) and a halt (``0x404``).  The
Fibonacci program is the default verification workload: it loops,
branches, loads and stores, keeping the control and datapath processes
-- and therefore the monitored critical paths -- busy every cycle.
"""

from __future__ import annotations

from .asm import assemble

__all__ = [
    "fibonacci_program",
    "checksum_program",
    "sort_program",
    "FIB_EXPECTED",
    "CHECKSUM_EXPECTED",
    "SORT_EXPECTED",
]

DEBUG_ADDR = 0x400
HALT_ADDR = 0x404
EXTIN_ADDR = 0x408


def fibonacci_program(n: int = 12) -> "list[int]":
    """Iterative Fibonacci; leaves fib(n) in the debug register and
    streams every intermediate value through it on the way."""
    return assemble(f"""
        li   $t0, 0          # fib(i)
        li   $t1, 1          # fib(i+1)
        li   $t2, {n}        # remaining iterations
        li   $t3, {DEBUG_ADDR}
    loop:
        beq  $t2, $zero, done
        addu $t4, $t0, $t1
        move $t0, $t1
        move $t1, $t4
        sw   $t0, 0($t3)     # publish the running value
        addiu $t2, $t2, -1
        j    loop
    done:
        sw   $t0, 0($t3)
        sw   $zero, 4($t3)   # halt
    hang:
        j    hang
    """)


def _fib(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


FIB_EXPECTED = _fib(12)


def checksum_program() -> "list[int]":
    """Writes a small table to RAM, then reads it back accumulating a
    rotate-xor checksum (exercises LW/SW and logical ops)."""
    return assemble(f"""
        li   $t0, 0          # address
        li   $t1, 17         # value seed
        li   $t2, 8          # table length
    fill:
        beq  $t2, $zero, summ
        sw   $t1, 0($t0)
        addiu $t0, $t0, 4
        addiu $t1, $t1, 29
        addiu $t2, $t2, -1
        j    fill
    summ:
        li   $t0, 0
        li   $t2, 8
        li   $t5, 0          # checksum
    acc:
        beq  $t2, $zero, done
        lw   $t3, 0($t0)
        sll  $t4, $t5, 1
        srl  $t5, $t5, 31
        or   $t5, $t4, $t5   # rotate left 1
        xor  $t5, $t5, $t3
        addiu $t0, $t0, 4
        addiu $t2, $t2, -1
        j    acc
    done:
        li   $t6, {DEBUG_ADDR}
        sw   $t5, 0($t6)
        sw   $zero, 4($t6)   # halt
    hang:
        j    hang
    """)


def _checksum_expected() -> int:
    table = []
    value = 17
    for _ in range(8):
        table.append(value & 0xFFFFFFFF)
        value += 29
    acc = 0
    for word in table:
        acc = (((acc << 1) & 0xFFFFFFFF) | (acc >> 31)) ^ word
    return acc & 0xFFFFFFFF


CHECKSUM_EXPECTED = _checksum_expected()


def sort_program() -> "list[int]":
    """Bubble-sorts a 6-element array in RAM and publishes the median
    element (exercises nested loops and signed comparison)."""
    values = [9, 3, 17, 1, 12, 5]
    stores = "\n".join(
        f"        li $t1, {value}\n        sw $t1, {4 * i}($zero)"
        for i, value in enumerate(values)
    )
    n = len(values)
    return assemble(f"""
{stores}
        li   $s0, {n - 1}    # outer remaining
    outer:
        beq  $s0, $zero, publish
        li   $t0, 0          # byte index
        move $s1, $s0
    inner:
        beq  $s1, $zero, outer_dec
        lw   $t2, 0($t0)
        lw   $t3, 4($t0)
        slt  $t4, $t3, $t2
        beq  $t4, $zero, no_swap
        sw   $t3, 0($t0)
        sw   $t2, 4($t0)
    no_swap:
        addiu $t0, $t0, 4
        addiu $s1, $s1, -1
        j    inner
    outer_dec:
        addiu $s0, $s0, -1
        j    outer
    publish:
        lw   $t5, {4 * (n // 2)}($zero)
        li   $t6, {DEBUG_ADDR}
        sw   $t5, 0($t6)
        sw   $zero, 4($t6)
    hang:
        j    hang
    """)


SORT_EXPECTED = sorted([9, 3, 17, 1, 12, 5])[3]
