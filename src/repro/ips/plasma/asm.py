"""A small MIPS I assembler for Plasma testbench programs.

Supports the instruction subset the CPU implements, labels, numeric
immediates (decimal / hex), register names (``$0``/``$zero`` ...
``$ra``) and a few pseudo-instructions (``li``, ``move``, ``nop``).

Deviation from MIPS I: the CPU has **no branch/load delay slots** (a
documented simplification -- the paper's Plasma core hides its delay
slot from software too), so the assembler emits straight-line code.
"""

from __future__ import annotations

import re

__all__ = ["assemble", "AsmError", "REGISTERS"]


class AsmError(ValueError):
    """Raised on malformed assembly input."""


_REG_NAMES = (
    "zero at v0 v1 a0 a1 a2 a3 "
    "t0 t1 t2 t3 t4 t5 t6 t7 "
    "s0 s1 s2 s3 s4 s5 s6 s7 "
    "t8 t9 k0 k1 gp sp fp ra"
).split()

REGISTERS = {f"${name}": i for i, name in enumerate(_REG_NAMES)}
REGISTERS.update({f"${i}": i for i in range(32)})

_R_FUNCT = {
    "sll": 0x00, "srl": 0x02, "sra": 0x03, "jr": 0x08,
    "add": 0x20, "addu": 0x21, "sub": 0x22, "subu": 0x23,
    "and": 0x24, "or": 0x25, "xor": 0x26, "nor": 0x27,
    "slt": 0x2A, "sltu": 0x2B,
}
_I_OPCODE = {
    "addi": 0x08, "addiu": 0x09, "slti": 0x0A, "sltiu": 0x0B,
    "andi": 0x0C, "ori": 0x0D, "xori": 0x0E, "lui": 0x0F,
    "lw": 0x23, "sw": 0x2B, "beq": 0x04, "bne": 0x05,
}
_J_OPCODE = {"j": 0x02, "jal": 0x03}

_MEM_RE = re.compile(r"^(-?\w+)\((\$\w+)\)$")


def _reg(token: str) -> int:
    try:
        return REGISTERS[token.strip()]
    except KeyError:
        raise AsmError(f"unknown register {token!r}") from None


def _imm(token: str, bits: int, *, signed: bool = True) -> int:
    token = token.strip()
    try:
        value = int(token, 0)
    except ValueError:
        raise AsmError(f"bad immediate {token!r}") from None
    low = -(1 << (bits - 1)) if signed else 0
    high = (1 << bits) - 1
    if not (low <= value <= high):
        raise AsmError(f"immediate {value} out of {bits}-bit range")
    return value & ((1 << bits) - 1)


def _split_operands(rest: str) -> "list[str]":
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


def assemble(source: str, *, base_address: int = 0) -> "list[int]":
    """Assemble to a list of 32-bit instruction words."""
    # Pass 1: labels.
    labels: dict[str, int] = {}
    statements: list[tuple[str, list[str], int]] = []
    for raw_line in source.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        while ":" in line:
            label, line = line.split(":", 1)
            label = label.strip()
            if not label.isidentifier():
                raise AsmError(f"bad label {label!r}")
            if label in labels:
                raise AsmError(f"duplicate label {label!r}")
            labels[label] = base_address + 4 * len(statements)
            line = line.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        statements.append((mnemonic, operands, len(statements)))

    # Pass 2: encode.
    words: list[int] = []
    for mnemonic, ops, index in statements:
        pc = base_address + 4 * index
        words.extend(_encode(mnemonic, ops, pc, labels))
    return words


def _resolve(token: str, labels: "dict[str, int]") -> int:
    token = token.strip()
    if token in labels:
        return labels[token]
    try:
        return int(token, 0)
    except ValueError:
        raise AsmError(f"undefined label or bad value {token!r}") from None


def _encode(mnemonic, ops, pc, labels) -> "list[int]":
    if mnemonic == "nop":
        return [0]
    if mnemonic == "move":
        if len(ops) != 2:
            raise AsmError("move needs 2 operands")
        return _encode("addu", [ops[0], ops[1], "$zero"], pc, labels)
    if mnemonic == "li":
        if len(ops) != 2:
            raise AsmError("li needs 2 operands")
        value = _resolve(ops[1], labels) & 0xFFFFFFFF
        if value <= 0x7FFF or value >= 0xFFFF8000:
            return _encode(
                "addiu", [ops[0], "$zero", str(_signed32(value))], pc, labels
            )
        upper = (value >> 16) & 0xFFFF
        lower = value & 0xFFFF
        out = _encode("lui", [ops[0], str(upper)], pc, labels)
        if lower:
            out += _encode(
                "ori", [ops[0], ops[0], str(lower)], pc + 4, labels
            )
        return out

    if mnemonic in _R_FUNCT:
        funct = _R_FUNCT[mnemonic]
        if mnemonic in ("sll", "srl", "sra"):
            rd, rt, sh = ops
            return [_r(0, _reg(rt), _reg(rd), _imm(sh, 5, signed=False), funct)]
        if mnemonic == "jr":
            (rs,) = ops
            return [(_reg(rs) << 21) | funct]
        rd, rs, rt = ops
        return [_r(_reg(rs), _reg(rt), _reg(rd), 0, funct)]

    if mnemonic in _J_OPCODE:
        (target,) = ops
        address = _resolve(target, labels)
        return [(_J_OPCODE[mnemonic] << 26) | ((address >> 2) & 0x3FFFFFF)]

    if mnemonic in _I_OPCODE:
        opcode = _I_OPCODE[mnemonic]
        if mnemonic == "lui":
            rt, imm = ops
            return [_i(opcode, 0, _reg(rt), _imm(imm, 16, signed=False))]
        if mnemonic in ("lw", "sw"):
            rt, mem = ops
            match = _MEM_RE.match(mem.replace(" ", ""))
            if not match:
                raise AsmError(f"bad memory operand {mem!r}")
            offset, base = match.groups()
            return [_i(opcode, _reg(base), _reg(rt), _imm(offset, 16))]
        if mnemonic in ("beq", "bne"):
            rs, rt, target = ops
            address = _resolve(target, labels)
            offset = (address - (pc + 4)) >> 2
            return [_i(opcode, _reg(rs), _reg(rt), offset & 0xFFFF)]
        rt, rs, imm = ops
        signed = mnemonic not in ("andi", "ori", "xori")
        return [_i(opcode, _reg(rs), _reg(rt), _imm(imm, 16, signed=signed))]

    raise AsmError(f"unknown mnemonic {mnemonic!r}")


def _r(rs, rt, rd, shamt, funct) -> int:
    return (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct


def _i(opcode, rs, rt, imm) -> int:
    return (opcode << 26) | (rs << 21) | (rt << 16) | (imm & 0xFFFF)


def _signed32(value: int) -> int:
    return value - (1 << 32) if value >= (1 << 31) else value
