"""MEMS-microphone decimation filter case study."""

from .cic import CIC_DECIMATION, CIC_ORDER, CIC_WIDTH, add_cic
from .fir import add_fir
from .testbench import acoustic_wave, pdm_stimulus
from .top import (
    FILTER_FCLK_GHZ,
    FILTER_PERIOD_PS,
    FILTER_VDD,
    build_filter,
)

__all__ = [
    "CIC_DECIMATION",
    "CIC_ORDER",
    "CIC_WIDTH",
    "add_cic",
    "add_fir",
    "acoustic_wave",
    "pdm_stimulus",
    "FILTER_FCLK_GHZ",
    "FILTER_PERIOD_PS",
    "FILTER_VDD",
    "build_filter",
]
