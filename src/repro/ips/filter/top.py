"""MEMS-microphone decimation filter (case study 3, paper Table 1).

Chain: 1-bit PDM input -> 3rd-order CIC decimator (/16) ->
compensation FIR (droop correction) -> half-band FIR (/2) -> 16-bit
PCM output.  Total decimation 32.

The paper's Filter IP was produced with Matlab HDL Coder from exactly
this kind of chain; structure and process granularity here follow the
same one-process-per-stage style.  Operating point (Table 1):
1.05 V / 1 GHz.
"""

from __future__ import annotations

from repro.rtl import Assign, If, Module, const, resize

from .cic import CIC_WIDTH, add_cic
from .fir import add_fir

__all__ = [
    "build_filter",
    "FILTER_PERIOD_PS",
    "FILTER_VDD",
    "FILTER_FCLK_GHZ",
]

FILTER_PERIOD_PS = 1000  # 1 GHz
FILTER_VDD = 1.05
FILTER_FCLK_GHZ = 1.0

#: Compensation FIR: mild inverse-sinc shape.
COMP_COEFFS = [-1, 4, 26, 4, -1]
#: Half-band decimator: zeros at odd taps except the centre.
HALFBAND_COEFFS = [-3, 0, 19, 32, 19, 0, -3]

PCM_WIDTH = 16


def build_filter() -> "tuple[Module, object]":
    """Construct a fresh decimation-filter IP.

    Returns ``(module, clk)``; every call builds an independent
    instance (required because sensor insertion mutates the tree).
    """
    m = Module("filter_ip")
    clk = m.input("clk")
    pdm_in = m.input("pdm_in")
    pcm_out = m.output("pcm_out", PCM_WIDTH)
    pcm_valid = m.output("pcm_valid")
    peak_hold = m.output("peak_hold", PCM_WIDTH)

    cic_out, cic_valid = add_cic(m, clk, pdm_in)

    comp_out, comp_valid = add_fir(
        m, clk, cic_out, cic_valid, COMP_COEFFS,
        prefix="comp", out_width=PCM_WIDTH, shift=5,
    )

    # Half-band stage consumes every other compensation sample.
    hb_toggle = m.signal("hb_toggle")
    hb_strobe = m.signal("hb_strobe")
    m.sync("hb_toggle_p", clk, [
        If(comp_valid.eq(1), [Assign(hb_toggle, ~hb_toggle)]),
        Assign(hb_strobe, comp_valid & hb_toggle),
    ])
    hb_out, hb_valid = add_fir(
        m, clk, comp_out, hb_strobe, HALFBAND_COEFFS,
        prefix="hb", out_width=PCM_WIDTH, shift=6,
    )

    m.comb("drive_out", [Assign(pcm_out, hb_out)])
    m.comb("drive_valid", [Assign(pcm_valid, hb_valid)])

    # Peak-hold register: a small post-processing feature microphones
    # expose for AGC; also a useful observable register endpoint.
    peak = m.signal("peak", PCM_WIDTH)
    m.sync("peak_p", clk, [
        If(hb_valid.eq(1) & hb_out.gt_s(peak), [Assign(peak, hb_out)]),
    ])
    m.comb("drive_peak", [Assign(peak_hold, peak)])
    return m, clk
