"""Testbench for the decimation filter: PDM stimulus generation.

A first-order sigma-delta modulator (in Python) converts a synthetic
acoustic waveform -- a sine plus a weaker harmonic and a little noise
-- into the 1-bit PDM stream a MEMS microphone would produce.  This is
the "testbench shipped with the IP" that the mutation analysis relies
on; the dense PDM transitions keep every monitored path well
stimulated.
"""

from __future__ import annotations

import math
import random

__all__ = ["pdm_stimulus", "acoustic_wave"]


def acoustic_wave(n: int, *, seed: int = 11) -> "list[float]":
    """Synthetic microphone signal in [-1, 1]: fundamental + harmonic
    + low-level noise."""
    rng = random.Random(seed)
    samples = []
    for i in range(n):
        t = i / 64.0
        value = (
            0.6 * math.sin(2 * math.pi * t / 8.0)
            + 0.25 * math.sin(2 * math.pi * t / 3.0 + 0.7)
            + 0.05 * (rng.random() * 2 - 1)
        )
        samples.append(max(-0.95, min(0.95, value)))
    return samples


def pdm_stimulus(n: int, *, seed: int = 11) -> "list[dict[str, int]]":
    """``n`` cycles of 1-bit PDM input (first-order sigma-delta)."""
    wave = acoustic_wave(n, seed=seed)
    integrator = 0.0
    stream = []
    for value in wave:
        integrator += value - (1.0 if integrator > 0 else -1.0)
        bit = 1 if integrator > 0 else 0
        stream.append({"pdm_in": bit})
    return stream
