"""Generic strobed FIR section used by the decimation chain and DSP.

A direct-form FIR: a shift register advanced on the input strobe and
a combinational multiply-accumulate tree.  Coefficients are small
signed constants (the usual HDL-Coder fixed-point style), applied with
full-width products and a final truncation.
"""

from __future__ import annotations

from repro.rtl import (
    Assign,
    If,
    Module,
    Signal,
    const,
    resize,
    sar,
)

__all__ = ["add_fir"]


def add_fir(
    m: Module,
    clk: Signal,
    sample_in: Signal,
    strobe_in: Signal,
    coefficients: "list[int]",
    *,
    prefix: str,
    out_width: int,
    shift: int = 0,
) -> "tuple[Signal, Signal]":
    """Attach a strobed FIR to ``m``.

    ``coefficients`` are signed integers applied oldest-tap-last.  The
    accumulated sum is arithmetically shifted right by ``shift`` and
    truncated to ``out_width``.  Returns ``(out, out_valid)``.
    """
    in_w = sample_in.width
    acc_w = out_width + 8  # headroom for coefficient growth

    # Tap shift register, advanced on the strobe.
    taps: list[Signal] = []
    previous = sample_in
    shift_stmts = []
    for i in range(len(coefficients)):
        tap = m.signal(f"{prefix}_tap{i}", in_w)
        shift_stmts.append(Assign(tap, previous))
        taps.append(tap)
        previous = tap
    m.sync(f"{prefix}_taps_p", clk, [
        If(strobe_in.eq(1), shift_stmts),
    ])

    # Multiply-accumulate tree (combinational).
    acc = None
    for i, (tap, coeff) in enumerate(zip(taps, coefficients)):
        extended = resize(tap, acc_w, signed=True)
        term = extended * const(coeff, acc_w)
        acc = term if acc is None else acc + term
    mac = m.signal(f"{prefix}_mac", acc_w)
    m.comb(f"{prefix}_mac_p", [Assign(mac, acc)])

    # Output register: scale and truncate on the strobe.
    out = m.signal(f"{prefix}_out", out_width)
    valid = m.signal(f"{prefix}_valid")
    scaled = resize(sar(mac, shift), out_width) if shift else resize(
        mac, out_width
    )
    m.sync(f"{prefix}_out_p", clk, [
        If(strobe_in.eq(1), [Assign(out, scaled)]),
        Assign(valid, strobe_in),
    ])
    return out, valid
