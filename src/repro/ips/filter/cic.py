"""CIC (cascaded integrator-comb) decimator.

The front end of a MEMS-microphone decimation chain: a third-order
CIC filter converting the 1-bit PDM stream to multi-bit samples at a
16x lower rate.  Integrators run at the input rate; a decimation
counter strobes the comb section, whose differentiators run on the
decimated grid.

The structure intentionally mirrors what Matlab HDL Coder emits for a
``dsp.CICDecimator``: one synchronous process per integrator stage,
one per comb stage, and a small strobe generator.
"""

from __future__ import annotations

from repro.rtl import Assign, If, Module, Signal, const, mux

__all__ = ["add_cic", "CIC_ORDER", "CIC_DECIMATION", "CIC_WIDTH"]

CIC_ORDER = 3
CIC_DECIMATION = 16

#: Internal width: input 1 bit + order * log2(decimation) bit growth.
CIC_WIDTH = 1 + CIC_ORDER * 4  # 13 bits


def add_cic(
    m: Module,
    clk: Signal,
    pdm_in: Signal,
    *,
    prefix: str = "cic",
) -> "tuple[Signal, Signal]":
    """Attach the CIC stages to ``m``.

    Returns ``(sample_out, sample_valid)``: a ``CIC_WIDTH``-bit output
    and a 1-cycle strobe at the decimated rate.
    """
    w = CIC_WIDTH
    # Map the PDM bit to +1/-1 two's complement over the full width.
    pdm_signed = m.signal(f"{prefix}_pdm_signed", w)
    m.comb(f"{prefix}_code", [
        Assign(
            pdm_signed,
            mux(pdm_in.eq(1), const(1, w), const((1 << w) - 1, w)),
        ),
    ])

    # Integrator cascade (input rate).
    stage_in = pdm_signed
    integrators = []
    for i in range(CIC_ORDER):
        acc = m.signal(f"{prefix}_int{i}", w)
        m.sync(f"{prefix}_int{i}_p", clk, [Assign(acc, acc + stage_in)])
        integrators.append(acc)
        stage_in = acc

    # Decimation strobe.
    count = m.signal(f"{prefix}_count", 4)
    strobe = m.signal(f"{prefix}_strobe")
    m.sync(f"{prefix}_count_p", clk, [
        Assign(count, count + const(1, 4)),
        If(count.eq(CIC_DECIMATION - 1), [
            Assign(strobe, 1),
        ], [
            Assign(strobe, 0),
        ]),
    ])

    # Comb cascade (decimated rate, gated by the strobe).
    comb_in = integrators[-1]
    for i in range(CIC_ORDER):
        delay = m.signal(f"{prefix}_dly{i}", w)
        diff = m.signal(f"{prefix}_comb{i}", w)
        m.sync(f"{prefix}_comb{i}_p", clk, [
            If(strobe.eq(1), [
                Assign(diff, comb_in - delay),
                Assign(delay, comb_in),
            ]),
        ])
        comb_in = diff

    valid = m.signal(f"{prefix}_valid")
    m.sync(f"{prefix}_valid_p", clk, [Assign(valid, strobe)])
    return comb_in, valid
