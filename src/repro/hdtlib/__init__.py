"""HDTLib: efficient HDL-oriented data types (paper Section 5.3).

The paper speeds up abstracted TLM models by replacing SystemC data
types with HDTLib, which

* maps vectors onto statically allocated machine words,
* implements operations on whole words instead of single bits,
* uses Karnaugh-map plane equations rather than per-bit lookup tables,
* optionally folds multi-valued logic (``X``/``Z``) to ``0``, trading
  accuracy for speed at TLM.

This package reproduces that library:

``ops``
    Free functions on plain Python ints -- the fastest layer, inlined
    by the optimised TLM code generator.
``BitVec2``
    Two-valued vector: one packed word plus a width.
``LogicVec4``
    Four-valued vector: two packed planes (value/unknown) with
    word-parallel Karnaugh equations.
``LogicVal``
    A single four-valued scalar.
``UInt`` / ``SInt``
    Thin fixed-width integer wrappers.
``convert``
    Lossy and lossless conversions between the RTL four-valued types
    and the two-valued TLM types (X/Z -> 0 folding).
"""

from . import ops
from .bitvec import BitVec2
from .logicvec import LogicVal, LogicVec4
from .integers import SInt, UInt
from .convert import (
    bitvec_from_lv,
    int_from_lv,
    logicvec_from_lv,
    lv_from_bitvec,
    lv_from_int,
    lv_from_logicvec,
)

__all__ = [
    "ops",
    "BitVec2",
    "LogicVal",
    "LogicVec4",
    "UInt",
    "SInt",
    "bitvec_from_lv",
    "int_from_lv",
    "logicvec_from_lv",
    "lv_from_bitvec",
    "lv_from_int",
    "lv_from_logicvec",
]
