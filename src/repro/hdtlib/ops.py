"""Word-level primitives on plain integers.

These free functions are the hot layer of HDTLib: every operation is a
handful of native integer instructions.  The optimised TLM code
generator emits calls to (or inline equivalents of) these, which is
where the Table 4 speedup over the SystemC-style types comes from.

All functions take and return unsigned integers already confined to
``width`` bits; ``mask`` is the only helper that needs the width
explicitly at runtime.
"""

from __future__ import annotations

__all__ = [
    "mask",
    "add", "sub", "mul", "neg",
    "and_", "or_", "xor", "not_",
    "shl", "shr", "sar",
    "eq", "ne", "lt", "le", "gt", "ge",
    "lt_s", "le_s", "gt_s", "ge_s",
    "to_signed",
    "red_and", "red_or", "red_xor",
    "slice_", "concat", "replace_slice",
    "mux",
]


def mask(width: int) -> int:
    """All-ones mask for ``width`` bits."""
    return (1 << width) - 1


def to_signed(a: int, width: int) -> int:
    """Interpret ``a`` as a two's-complement ``width``-bit value."""
    return a - (1 << width) if a >> (width - 1) else a


# -- arithmetic ---------------------------------------------------------

def add(a: int, b: int, width: int) -> int:
    return (a + b) & mask(width)


def sub(a: int, b: int, width: int) -> int:
    return (a - b) & mask(width)


def mul(a: int, b: int, width: int) -> int:
    return (a * b) & mask(width)


def neg(a: int, width: int) -> int:
    return (-a) & mask(width)


# -- bitwise ------------------------------------------------------------

def and_(a: int, b: int) -> int:
    return a & b


def or_(a: int, b: int) -> int:
    return a | b


def xor(a: int, b: int) -> int:
    return a ^ b


def not_(a: int, width: int) -> int:
    return a ^ mask(width)


# -- shifts ---------------------------------------------------------------

def shl(a: int, n: int, width: int) -> int:
    if n >= width:
        return 0
    return (a << n) & mask(width)


def shr(a: int, n: int, width: int) -> int:
    return a >> n


def sar(a: int, n: int, width: int) -> int:
    if n >= width:
        n = width - 1
    if a >> (width - 1):
        m = mask(width)
        return ((a >> n) | (m >> (width - n) << (width - n))) & m
    return a >> n


# -- comparisons (return 0/1) ----------------------------------------------

def eq(a: int, b: int) -> int:
    return 1 if a == b else 0


def ne(a: int, b: int) -> int:
    return 1 if a != b else 0


def lt(a: int, b: int) -> int:
    return 1 if a < b else 0


def le(a: int, b: int) -> int:
    return 1 if a <= b else 0


def gt(a: int, b: int) -> int:
    return 1 if a > b else 0


def ge(a: int, b: int) -> int:
    return 1 if a >= b else 0


def lt_s(a: int, b: int, width: int) -> int:
    return 1 if to_signed(a, width) < to_signed(b, width) else 0


def le_s(a: int, b: int, width: int) -> int:
    return 1 if to_signed(a, width) <= to_signed(b, width) else 0


def gt_s(a: int, b: int, width: int) -> int:
    return 1 if to_signed(a, width) > to_signed(b, width) else 0


def ge_s(a: int, b: int, width: int) -> int:
    return 1 if to_signed(a, width) >= to_signed(b, width) else 0


# -- reductions ---------------------------------------------------------------

def red_and(a: int, width: int) -> int:
    return 1 if a == mask(width) else 0


def red_or(a: int, width: int) -> int:
    return 1 if a else 0


def red_xor(a: int, width: int) -> int:
    return bin(a).count("1") & 1


# -- structure ------------------------------------------------------------------

def slice_(a: int, hi: int, lo: int) -> int:
    return (a >> lo) & mask(hi - lo + 1)


def concat(parts: "list[tuple[int, int]]") -> int:
    """Concatenate ``(value, width)`` pairs, most significant first."""
    out = 0
    for value, width in parts:
        out = (out << width) | (value & mask(width))
    return out


def replace_slice(base: int, hi: int, lo: int, part: int) -> int:
    hole = mask(hi - lo + 1) << lo
    return (base & ~hole) | ((part << lo) & hole)


def mux(sel: int, a: int, b: int) -> int:
    return a if sel else b
