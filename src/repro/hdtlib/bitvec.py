"""Two-valued bit vector packed into one machine word.

The HDTLib counterpart of ``sc_bv``: a single integer plus a width.
Every operation is word-parallel.  Unlike
:class:`repro.sctypes.bit_vector.ScBitVector` there is no per-bit
storage anywhere.
"""

from __future__ import annotations

from . import ops

__all__ = ["BitVec2"]


class BitVec2:
    """Immutable word-packed two-valued vector."""

    __slots__ = ("width", "value")

    def __init__(self, width: int, value: int = 0) -> None:
        if width <= 0:
            raise ValueError("BitVec2 width must be positive")
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "value", value & ops.mask(width))

    def __setattr__(self, name, value):
        raise AttributeError("BitVec2 is immutable")

    # -- inspection ----------------------------------------------------

    def to_int(self) -> int:
        return self.value

    def to_int_signed(self) -> int:
        return ops.to_signed(self.value, self.width)

    def bit(self, i: int) -> int:
        if not 0 <= i < self.width:
            raise IndexError(f"bit {i} out of range")
        return (self.value >> i) & 1

    def __str__(self) -> str:
        return format(self.value, f"0{self.width}b")

    def __repr__(self) -> str:
        return f"BitVec2({self.width}, 0b{self})"

    def __eq__(self, other) -> bool:
        if isinstance(other, BitVec2):
            return self.width == other.width and self.value == other.value
        if isinstance(other, int):
            return self.value == other & ops.mask(self.width)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.width, self.value))

    def _chk(self, other: "BitVec2") -> None:
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")

    # -- operations (all single-word) -----------------------------------

    def __and__(self, other: "BitVec2") -> "BitVec2":
        self._chk(other)
        return BitVec2(self.width, self.value & other.value)

    def __or__(self, other: "BitVec2") -> "BitVec2":
        self._chk(other)
        return BitVec2(self.width, self.value | other.value)

    def __xor__(self, other: "BitVec2") -> "BitVec2":
        self._chk(other)
        return BitVec2(self.width, self.value ^ other.value)

    def __invert__(self) -> "BitVec2":
        return BitVec2(self.width, ops.not_(self.value, self.width))

    def __add__(self, other: "BitVec2") -> "BitVec2":
        self._chk(other)
        return BitVec2(self.width, self.value + other.value)

    def __sub__(self, other: "BitVec2") -> "BitVec2":
        self._chk(other)
        return BitVec2(self.width, self.value - other.value)

    def __mul__(self, other: "BitVec2") -> "BitVec2":
        self._chk(other)
        return BitVec2(self.width, self.value * other.value)

    def shl(self, n: int) -> "BitVec2":
        return BitVec2(self.width, ops.shl(self.value, n, self.width))

    def shr(self, n: int) -> "BitVec2":
        return BitVec2(self.width, ops.shr(self.value, n, self.width))

    def sar(self, n: int) -> "BitVec2":
        return BitVec2(self.width, ops.sar(self.value, n, self.width))

    def slice(self, hi: int, lo: int) -> "BitVec2":
        if not (0 <= lo <= hi < self.width):
            raise IndexError(f"slice [{hi}:{lo}] out of range")
        return BitVec2(hi - lo + 1, ops.slice_(self.value, hi, lo))

    def concat(self, other: "BitVec2") -> "BitVec2":
        return BitVec2(
            self.width + other.width,
            (self.value << other.width) | other.value,
        )

    def resize(self, width: int, signed: bool = False) -> "BitVec2":
        if width <= self.width:
            return BitVec2(width, self.value)
        if signed and self.value >> (self.width - 1):
            extra = ops.mask(width - self.width) << self.width
            return BitVec2(width, self.value | extra)
        return BitVec2(width, self.value)
