"""Four-valued logic vector packed into two machine words.

The HDTLib flagship type: two planes (``value``/``unk``) instead of a
per-bit array, with all bitwise operators expressed as word-parallel
Karnaugh equations over the planes.  ``Z`` is accepted on input and
immediately normalised to ``X`` (HDTLib maps the rarely-exercised
states away for speed; the residual accuracy loss is the one the paper
accepts at TLM).
"""

from __future__ import annotations

from . import ops

__all__ = ["LogicVec4", "LogicVal"]


class LogicVal:
    """A single four-valued scalar backed by two plane bits."""

    __slots__ = ("value", "unk")

    def __init__(self, char: str = "0") -> None:
        table = {"0": (0, 0), "1": (1, 0), "X": (0, 1), "Z": (0, 1)}
        try:
            self.value, self.unk = table[char.upper()]
        except KeyError:
            raise ValueError(f"bad logic char {char!r}") from None

    @property
    def is_known(self) -> bool:
        return not self.unk

    def __str__(self) -> str:
        if self.unk:
            return "X"
        return "1" if self.value else "0"

    def __eq__(self, other) -> bool:
        if isinstance(other, LogicVal):
            return (self.value, self.unk) == (other.value, other.unk)
        if isinstance(other, int):
            return not self.unk and self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.unk))


class LogicVec4:
    """Immutable two-plane four-valued vector (``Z`` folded to ``X``)."""

    __slots__ = ("width", "value", "unk")

    def __init__(self, width: int, value: int = 0, unk: int = 0) -> None:
        if width <= 0:
            raise ValueError("LogicVec4 width must be positive")
        m = ops.mask(width)
        unk &= m
        object.__setattr__(self, "width", width)
        # Normalise: unknown bits carry value 0 (Z folds into X).
        object.__setattr__(self, "value", value & m & ~unk)
        object.__setattr__(self, "unk", unk)

    def __setattr__(self, name, value):
        raise AttributeError("LogicVec4 is immutable")

    @staticmethod
    def from_str(text: str) -> "LogicVec4":
        value = 0
        unk = 0
        for char in text:
            value <<= 1
            unk <<= 1
            c = char.upper()
            if c == "1":
                value |= 1
            elif c in ("X", "Z"):
                unk |= 1
            elif c != "0":
                raise ValueError(f"bad logic char {char!r}")
        return LogicVec4(len(text), value, unk)

    # -- inspection ------------------------------------------------------

    @property
    def is_fully_defined(self) -> bool:
        return self.unk == 0

    def to_int(self) -> int:
        """X -> 0 folding, by design (HDTLib's accuracy/speed trade)."""
        return self.value

    def __str__(self) -> str:
        out = []
        for i in reversed(range(self.width)):
            if (self.unk >> i) & 1:
                out.append("X")
            else:
                out.append("1" if (self.value >> i) & 1 else "0")
        return "".join(out)

    def __repr__(self) -> str:
        return f"LogicVec4('{self}')"

    def __eq__(self, other) -> bool:
        if isinstance(other, LogicVec4):
            return (
                self.width == other.width
                and self.value == other.value
                and self.unk == other.unk
            )
        if isinstance(other, int):
            return self.unk == 0 and self.value == other & ops.mask(self.width)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.width, self.value, self.unk))

    def _chk(self, other: "LogicVec4") -> None:
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")

    # -- bitwise: Karnaugh plane equations ---------------------------------
    #
    # With planes (v, u), a bit is 1 iff v=1,u=0; 0 iff v=0,u=0; X iff u=1.
    # AND:  out is 0 if either input is a hard 0; 1 if both hard 1; else X.
    # The equations below compute the result planes in O(words).

    def __and__(self, other: "LogicVec4") -> "LogicVec4":
        self._chk(other)
        m = ops.mask(self.width)
        hard0 = (~self.value & ~self.unk) | (~other.value & ~other.unk)
        one = self.value & other.value
        unk = ~(hard0 | one) & m
        return LogicVec4(self.width, one, unk)

    def __or__(self, other: "LogicVec4") -> "LogicVec4":
        self._chk(other)
        m = ops.mask(self.width)
        one = self.value | other.value
        hard0 = (~self.value & ~self.unk) & (~other.value & ~other.unk)
        unk = ~(one | hard0) & m
        return LogicVec4(self.width, one, unk)

    def __xor__(self, other: "LogicVec4") -> "LogicVec4":
        self._chk(other)
        unk = self.unk | other.unk
        one = (self.value ^ other.value) & ~unk
        return LogicVec4(self.width, one, unk)

    def __invert__(self) -> "LogicVec4":
        m = ops.mask(self.width)
        return LogicVec4(self.width, ~self.value & ~self.unk & m, self.unk)

    # -- arithmetic (contaminating) -----------------------------------------

    def _arith(self, other: "LogicVec4", fn) -> "LogicVec4":
        self._chk(other)
        if self.unk | other.unk:
            return LogicVec4(self.width, 0, ops.mask(self.width))
        return LogicVec4(self.width, fn(self.value, other.value), 0)

    def __add__(self, other: "LogicVec4") -> "LogicVec4":
        return self._arith(other, lambda a, b: a + b)

    def __sub__(self, other: "LogicVec4") -> "LogicVec4":
        return self._arith(other, lambda a, b: a - b)

    def __mul__(self, other: "LogicVec4") -> "LogicVec4":
        return self._arith(other, lambda a, b: a * b)

    # -- shifts ----------------------------------------------------------------

    def shl(self, n: int) -> "LogicVec4":
        return LogicVec4(self.width, self.value << n, self.unk << n)

    def shr(self, n: int) -> "LogicVec4":
        return LogicVec4(self.width, self.value >> n, self.unk >> n)

    # -- structure --------------------------------------------------------------

    def slice(self, hi: int, lo: int) -> "LogicVec4":
        if not (0 <= lo <= hi < self.width):
            raise IndexError(f"slice [{hi}:{lo}] out of range")
        w = hi - lo + 1
        return LogicVec4(w, self.value >> lo, self.unk >> lo)

    def concat(self, other: "LogicVec4") -> "LogicVec4":
        return LogicVec4(
            self.width + other.width,
            (self.value << other.width) | other.value,
            (self.unk << other.width) | other.unk,
        )
