"""Fixed-width integer wrappers (HDTLib's signed/unsigned classes).

Minimal wrappers over plain ints: the constructor masks once and all
operators delegate to native integer arithmetic.
"""

from __future__ import annotations

from . import ops

__all__ = ["UInt", "SInt"]


class UInt:
    """Unsigned fixed-width integer; wraps on overflow."""

    __slots__ = ("width", "value")

    def __init__(self, width: int, value: int = 0) -> None:
        self.width = width
        self.value = value & ops.mask(width)

    def __add__(self, other) -> "UInt":
        return UInt(self.width, self.value + int(other))

    def __sub__(self, other) -> "UInt":
        return UInt(self.width, self.value - int(other))

    def __mul__(self, other) -> "UInt":
        return UInt(self.width, self.value * int(other))

    def __int__(self) -> int:
        return self.value

    def __eq__(self, other) -> bool:
        if isinstance(other, UInt):
            return self.width == other.width and self.value == other.value
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    def __lt__(self, other) -> bool:
        return self.value < int(other)

    def __le__(self, other) -> bool:
        return self.value <= int(other)

    def __hash__(self) -> int:
        return hash((self.width, self.value))

    def __repr__(self) -> str:
        return f"UInt({self.width}, {self.value})"


class SInt(UInt):
    """Signed fixed-width integer (two's complement storage)."""

    __slots__ = ()

    def __int__(self) -> int:
        return ops.to_signed(self.value, self.width)

    def __lt__(self, other) -> bool:
        return int(self) < int(other)

    def __le__(self, other) -> bool:
        return int(self) <= int(other)

    def __repr__(self) -> str:
        return f"SInt({self.width}, {int(self)})"
