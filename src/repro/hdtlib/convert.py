"""Conversions between the four-valued RTL types and TLM types.

The data-type abstraction step of the paper (Section 5.3) replaces
multi-valued logic with two-valued logic, mapping ``X``/``Z`` to ``0``.
These helpers implement that fold (``int_from_lv``, ``bitvec_from_lv``)
as well as the lossless round-trips used in tests.
"""

from __future__ import annotations

from repro.rtl.types import LV

from .bitvec import BitVec2
from .logicvec import LogicVec4

__all__ = [
    "int_from_lv",
    "bitvec_from_lv",
    "logicvec_from_lv",
    "lv_from_int",
    "lv_from_bitvec",
    "lv_from_logicvec",
]


def int_from_lv(lv: LV) -> int:
    """Fold a four-valued RTL vector to a plain int (X/Z -> 0)."""
    return lv.value & ~lv.unk


def bitvec_from_lv(lv: LV) -> BitVec2:
    """Fold to a word-packed two-valued vector (X/Z -> 0)."""
    return BitVec2(lv.width, int_from_lv(lv))


def logicvec_from_lv(lv: LV) -> LogicVec4:
    """Convert preserving unknowns (Z folds to X)."""
    return LogicVec4(lv.width, lv.value, lv.unk)


def lv_from_int(width: int, value: int) -> LV:
    return LV.from_int(width, value)


def lv_from_bitvec(bv: BitVec2) -> LV:
    return LV.from_int(bv.width, bv.value)


def lv_from_logicvec(v: LogicVec4) -> LV:
    return LV(v.width, v.value, v.unk)
