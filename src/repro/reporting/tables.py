"""Table formatting shared by the benchmark harness and examples.

Produces aligned ASCII tables in the layout of the paper's Tables 1-5
so benchmark output can be compared against the publication row by
row, plus the shared mutation-campaign summary
(:func:`mutation_summary_pairs`) that surfaces the timed-out-run
exclusion applied by the score accounting.
"""

from __future__ import annotations

__all__ = ["format_table", "format_kv", "mutation_summary_pairs"]


def _cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n.a."
        if abs(value) >= 100:
            return f"{value:,.1f}"
        return f"{value:.2f}"
    if value is None:
        return "n.a."
    return str(value)


def format_table(
    headers: "list[str]",
    rows: "list[list]",
    *,
    title: "str | None" = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def mutation_summary_pairs(report) -> "list[tuple[str, object]]":
    """Key/value rows summarising a
    :class:`repro.mutation.MutationReport` for CLI output.

    Every aggregate percentage excludes timed-out (stall-budget-
    truncated) runs -- they are neither kills nor survivors -- so when
    a campaign has timeouts the summary states both the judged and the
    raw mutant counts instead of silently reporting a score over a
    shrunken population.

    When the campaign ran against a result cache
    (:class:`repro.mutation.ResultCache`), a ``result cache`` row
    states how many verdicts were replayed versus executed, and a
    ``golden trace`` row whether the reference simulation itself was
    replayed (fingerprint-keyed golden caching) or simulated fresh.
    """
    timed_out = report.timed_out_count
    if timed_out:
        mutants = f"{report.effective_total} judged / {report.total} total"
    else:
        mutants = report.total
    pairs: "list[tuple[str, object]]" = [
        ("mutants", mutants),
        ("killed", f"{report.killed_pct:.1f}%"),
        ("corrected", f"{report.corrected_pct:.1f}%"
         if report.corrected_pct is not None else "n.a."),
        ("errors risen", f"{report.risen_pct:.1f}%"),
    ]
    if timed_out:
        pairs.append((
            "timed out (excluded from score)",
            f"{timed_out} of {report.total}",
        ))
    if getattr(report, "cache_hits", None) is not None:
        pairs.append((
            "result cache",
            f"{report.cache_hits} hits / {report.cache_misses} misses",
        ))
    golden_hit = getattr(report, "golden_cache_hit", None)
    if golden_hit is not None:
        pairs.append((
            "golden trace",
            "replayed from cache" if golden_hit else "simulated (stored)",
        ))
    if getattr(report, "pruned_equivalent", None) is not None:
        pairs.append((
            "static prune",
            f"{report.pruned_equivalent} equivalent / "
            f"{report.pruned_duplicate} duplicate (not simulated)",
        ))
    return pairs


def format_kv(pairs: "list[tuple[str, object]]", *, indent: int = 2) -> str:
    """Aligned key/value block for summaries."""
    if not pairs:
        return ""
    width = max(len(k) for k, _ in pairs)
    pad = " " * indent
    return "\n".join(
        f"{pad}{k.ljust(width)} : {_cell(v)}" for k, v in pairs
    )
