"""Report formatting utilities."""

from .tables import format_kv, format_table

__all__ = ["format_kv", "format_table"]
