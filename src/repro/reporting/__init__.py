"""Report formatting utilities."""

from .tables import format_kv, format_table, mutation_summary_pairs

__all__ = ["format_kv", "format_table", "mutation_summary_pairs"]
