"""Stimuli generation and sensor monitoring."""

from .generators import (
    Lfsr,
    lfsr_vectors,
    mixed_vectors,
    ramp_vectors,
    random_vectors,
    walking_ones_vectors,
)
from .monitor import SensorActivity, TlmSensorMonitor

__all__ = [
    "Lfsr",
    "lfsr_vectors",
    "mixed_vectors",
    "ramp_vectors",
    "random_vectors",
    "walking_ones_vectors",
    "SensorActivity",
    "TlmSensorMonitor",
]
