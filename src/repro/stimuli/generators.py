"""Stimuli generation (the "automatic stimuli generator" of Fig. 3).

The mutation analysis normally reuses the testbench shipped with the
IP (Section 7).  When no testbench is available -- or when its
coverage of the monitored paths is insufficient -- these generators
provide standard alternatives:

* uniform random vectors,
* LFSR-based pseudo-random vectors (the hardware-friendly classic),
* directed ramps/walking patterns for datapath stressing,
* a toggling mixer that guarantees every input bit changes.
"""

from __future__ import annotations

import random

__all__ = [
    "Lfsr",
    "random_vectors",
    "lfsr_vectors",
    "ramp_vectors",
    "walking_ones_vectors",
    "mixed_vectors",
]


class Lfsr:
    """Galois LFSR over 32 bits (taps of the x^32 maximal polynomial)."""

    TAPS = 0xA3000000

    def __init__(self, seed: int = 0xACE1) -> None:
        if not seed:
            raise ValueError("LFSR seed must be non-zero")
        self.state = seed & 0xFFFFFFFF

    def next(self, bits: int) -> int:
        out = 0
        for _ in range(bits):
            lsb = self.state & 1
            self.state >>= 1
            if lsb:
                self.state ^= self.TAPS
            out = (out << 1) | lsb
        return out


def _port_list(ports: "dict[str, int]") -> "list[tuple[str, int]]":
    return sorted(ports.items())


def random_vectors(
    ports: "dict[str, int]", n: int, *, seed: int = 1
) -> "list[dict[str, int]]":
    """Uniform random value per port per cycle."""
    rng = random.Random(seed)
    return [
        {name: rng.randrange(1 << width) for name, width in _port_list(ports)}
        for _ in range(n)
    ]


def lfsr_vectors(
    ports: "dict[str, int]", n: int, *, seed: int = 0xACE1
) -> "list[dict[str, int]]":
    """Pseudo-random vectors from a shared LFSR stream."""
    lfsr = Lfsr(seed)
    return [
        {name: lfsr.next(width) for name, width in _port_list(ports)}
        for _ in range(n)
    ]


def ramp_vectors(ports: "dict[str, int]", n: int) -> "list[dict[str, int]]":
    """Monotonic ramps (wrapping) on every port."""
    return [
        {
            name: (i * 3 + 1) & ((1 << width) - 1)
            for name, width in _port_list(ports)
        }
        for i in range(n)
    ]


def walking_ones_vectors(
    ports: "dict[str, int]", n: int
) -> "list[dict[str, int]]":
    """A single one bit walking through each port (toggles every bit)."""
    return [
        {
            name: 1 << (i % width)
            for name, width in _port_list(ports)
        }
        for i in range(n)
    ]


def mixed_vectors(
    ports: "dict[str, int]", n: int, *, seed: int = 1
) -> "list[dict[str, int]]":
    """Random vectors interleaved with walking-ones so every input bit
    is guaranteed to toggle within each window of four cycles."""
    rand = random_vectors(ports, n, seed=seed)
    walk = walking_ones_vectors(ports, n)
    return [
        walk[i] if i % 4 == 3 else rand[i]
        for i in range(n)
    ]
