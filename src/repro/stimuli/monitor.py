"""Sensor monitor (the "sensor monitor" half of Fig. 3's driver).

Watches the sensor-related ports of a running model (TLM) or
simulation (RTL) and accumulates an activity summary: error pulses,
per-sensor measurement histograms, stall counts.  The end-to-end flow
attaches one to every campaign run so benchmark reports can state not
just percentages but what the sensors actually saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SensorActivity", "TlmSensorMonitor"]


@dataclass
class SensorActivity:
    """Accumulated sensor observations over a run."""

    cycles: int = 0
    error_pulses: int = 0
    stall_cycles: int = 0
    metric_ok_low_cycles: int = 0
    meas_histogram: "dict[int, int]" = field(default_factory=dict)

    def record_meas(self, value: int) -> None:
        if value:
            self.meas_histogram[value] = self.meas_histogram.get(value, 0) + 1

    @property
    def saw_errors(self) -> bool:
        return self.error_pulses > 0 or self.metric_ok_low_cycles > 0


class TlmSensorMonitor:
    """Wraps a generated TLM model; forwards cycles, records activity."""

    def __init__(self, model) -> None:
        self.model = model
        self.activity = SensorActivity()

    def cycle(self, inputs: "dict[str, int]") -> "dict[str, int]":
        outs = self.model.b_transport(inputs)
        activity = self.activity
        activity.cycles += 1
        if outs.get("razor_err", 0):
            activity.error_pulses += 1
        if outs.get("razor_stall", 0):
            activity.stall_cycles += 1
        if outs.get("metric_ok", 1) == 0:
            activity.metric_ok_low_cycles += 1
        meas_bus = outs.get("meas_val")
        if meas_bus:
            while meas_bus:
                activity.record_meas(meas_bus & 0xFF)
                meas_bus >>= 8
        return outs
