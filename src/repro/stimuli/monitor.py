"""Sensor monitor (the "sensor monitor" half of Fig. 3's driver).

Watches the sensor-related ports of a running model (TLM) or
simulation (RTL) and accumulates an activity summary: error pulses,
per-sensor (per-lane) measurement histograms, stall counts.  The
end-to-end flow attaches one to every campaign run so benchmark
reports can state not just percentages but what the sensors actually
saw.

The ``meas_val`` bus packs one 8-bit measurement lane per Counter
sensor (lane *i* belongs to ``COUNTER_TAP_ORDER[i]``).  The monitor
unpacks a **fixed** lane count derived from the model -- shifting only
while the bus is non-zero would skip zero-valued lanes that sit below
a non-zero one and lose which sensor produced each value, conflating
every sensor into one histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SensorActivity", "TlmSensorMonitor"]


@dataclass
class SensorActivity:
    """Accumulated sensor observations over a run."""

    cycles: int = 0
    error_pulses: int = 0
    stall_cycles: int = 0
    metric_ok_low_cycles: int = 0
    #: lane index -> {measured value -> occurrence count}; lane *i* is
    #: the i-th 8-bit field of ``meas_val`` (the i-th Counter sensor).
    meas_histogram: "dict[int, dict[int, int]]" = field(default_factory=dict)

    def record_meas(self, lane: int, value: int) -> None:
        if value:
            hist = self.meas_histogram.setdefault(lane, {})
            hist[value] = hist.get(value, 0) + 1

    @property
    def saw_errors(self) -> bool:
        return self.error_pulses > 0 or self.metric_ok_low_cycles > 0


def _lane_count(model) -> int:
    """Number of 8-bit measurement lanes in the model's ``meas_val``.

    Prefers the generated model's ``COUNTER_TAP_ORDER`` (one lane per
    Counter sensor); falls back to the declared ``meas_val`` port
    width.  Models without a measurement bus have zero lanes.
    """
    taps = getattr(model, "COUNTER_TAP_ORDER", None)
    if taps:
        return len(taps)
    ports = getattr(model, "PORTS_OUT", None) or {}
    try:
        width = dict(ports).get("meas_val", 0)
    except (TypeError, ValueError):
        width = 0
    return (int(width) + 7) // 8 if width else 0


class TlmSensorMonitor:
    """Wraps a generated TLM model; forwards cycles, records activity.

    ``lanes`` overrides the measurement-lane count inferred from the
    model (``COUNTER_TAP_ORDER`` length, else ``meas_val`` width / 8).
    """

    def __init__(self, model, lanes: "int | None" = None) -> None:
        self.model = model
        self.lanes = _lane_count(model) if lanes is None else lanes
        self.tap_order = tuple(getattr(model, "COUNTER_TAP_ORDER", ()))
        self.activity = SensorActivity()

    def cycle(self, inputs: "dict[str, int]") -> "dict[str, int]":
        outs = self.model.b_transport(inputs)
        activity = self.activity
        activity.cycles += 1
        if outs.get("razor_err", 0):
            activity.error_pulses += 1
        if outs.get("razor_stall", 0):
            activity.stall_cycles += 1
        if outs.get("metric_ok", 1) == 0:
            activity.metric_ok_low_cycles += 1
        meas_bus = outs.get("meas_val")
        if meas_bus is not None and self.lanes:
            for lane in range(self.lanes):
                activity.record_meas(lane, (meas_bus >> (8 * lane)) & 0xFF)
        return outs
