"""Endpoint extraction: expose the D input of monitored flip-flops.

Both sensors observe the combinational value *arriving* at a critical
path endpoint.  In the source RTL that value is an anonymous
expression inside a synchronous process, so the insertion strategy
(paper Section 4.2: "the RTL signal corresponding to the target
endpoint is connected to a newly created instance of the delay sensor
component, possibly through an intermediate variable") first rewrites
the design:

* for each monitored register ``q``, derive its next-state expression
  and materialise it as an explicit combinational signal ``q__d``;
* replace the register's assignments with the single statement
  ``q <= q__d``.

The transform is semantics-preserving (the next-state fold already
accounts for enables/branches by feeding back the old value), and the
new ``q__d`` signal is exactly where STA's nominal path delay is
back-annotated and where delay faults are injected.
"""

from __future__ import annotations

from repro.rtl.ir import Assign, Module, Signal, SyncProcess
from repro.rtl.nextstate import drop_assignments_to, next_state_exprs

__all__ = ["extract_endpoint_signals", "InsertionError"]


class InsertionError(RuntimeError):
    """Raised when sensor insertion preconditions fail."""


def extract_endpoint_signals(
    module: Module,
    monitored_registers: "list[Signal]",
) -> "dict[Signal, Signal]":
    """Materialise ``q__d`` for each monitored register (in place).

    Returns a map ``register -> endpoint signal``.  The endpoint signal
    is driven by a new combinational process and consumed by the
    register's rewritten synchronous process.
    """
    owners: dict[int, tuple[SyncProcess, Module]] = {}

    def find_owner(mod: Module) -> None:
        for proc in mod.processes:
            if isinstance(proc, SyncProcess):
                for reg in next_state_exprs(proc):
                    owners[id(reg)] = (proc, mod)
        for _, child in mod.submodules:
            find_owner(child)

    find_owner(module)

    endpoint_of: dict[Signal, Signal] = {}
    for reg in monitored_registers:
        if id(reg) not in owners:
            raise InsertionError(
                f"register {reg.name!r} is not driven by a synchronous "
                f"process in module {module.name!r}"
            )
        proc, owner_mod = owners[id(reg)]
        next_expr = next_state_exprs(proc)[reg]

        endpoint = Signal(f"{reg.name}__d", reg.width)
        owner_mod.adopt(endpoint)
        owner_mod.comb(f"{reg.name}__d_p", [Assign(endpoint, next_expr)])

        proc.stmts = drop_assignments_to(proc.stmts, reg)
        proc.stmts.append(Assign(reg, endpoint))
        endpoint_of[reg] = endpoint
    return endpoint_of
