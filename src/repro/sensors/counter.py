"""The Counter-based delay monitor (paper Section 4.1.2).

Each monitored endpoint gets a quantitative delay measurement instead
of Razor's binary detection:

* a counter clocked by the **high-frequency clock** ``HF_CLK`` (whose
  period is ``1/ratio`` of the main clock) counts periods elapsed
  since the launching main-clock rising edge;
* all transitions of the monitored *current path signal* (CPS) inside
  the **observability window** (one main-clock period here) are
  captured: register ``R1`` stores the count at the last rising
  transition, ``R2`` at the last falling transition;
* when the window closes, the count of the last transition, selected
  by the latched CPS value, becomes ``MEAS_VAL``; a look-up-table
  threshold comparison drives ``OUT_OK`` (1 = timing constraint met).

The CPS is a single critical bit extracted from the (multi-bit)
endpoint signal -- the paper's "intermediate variable used to extract
single critical bits".  Because the whole endpoint word commits with
one (delayed) transport event, *any* bit of it carries the full path
delay; what matters for observability is how often the chosen bit
toggles under the testbench.  The default extraction is therefore the
LSB (the most frequently toggling bit of typical datapath words);
``cps_bit`` selects another index or ``"parity"`` for a reduction-XOR
detector.

Measured value: a transition arriving ``d`` ps after the launching
edge is captured at the first HF rising edge at or after the arrival,
so ``MEAS_VAL == ceil(d / T_HF)`` -- resolution of one HF period and
maximum error of half a period, as the paper states.

``MEAS_VAL`` / ``OUT_OK`` update with the paper's three-cycle
measurement latency (measure window, transfer, output-stable cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtl.build import red_xor
from repro.rtl.ir import Assign, Concat, Module, NativeProcess, Signal

__all__ = [
    "CounterTap",
    "CounterBank",
    "attach_counter_bank",
    "HF_RATIO_DEFAULT",
    "LUT_THRESHOLD_DEFAULT",
    "MEASUREMENT_LATENCY_CYCLES",
]

#: Counter area for 10 paths / 8-bit measurement is ~352 NAND2 in the
#: paper; per-path share used for area accounting.
COUNTER_AREA_NAND2_PER_PATH = 35.2
COUNTER_FF_BITS_PER_PATH = 18  # count share + R1 + R2 + latches (8b meas)

#: HF cycles per main-clock cycle (paper Fig. 8 wraps 10 HF cycles
#: into one TLM transaction).
HF_RATIO_DEFAULT = 10

#: Measurement resolution in bits (MEAS_VAL width; paper uses 8).
MEAS_WIDTH = 8

#: Global LUT threshold in HF periods (paper Section 8.5: delays above
#: 8 HF periods are notified as errors, below are tolerated).
LUT_THRESHOLD_DEFAULT = 8

#: Output latency in main-clock cycles (paper Section 4.1.2).
MEASUREMENT_LATENCY_CYCLES = 3


@dataclass(frozen=True)
class CounterTap:
    """One monitored endpoint with its measurement plumbing."""

    register: Signal
    endpoint: Signal        # q__d (multi-bit arrival signal)
    cps: Signal             # extracted single critical bit
    meas_val: Signal        # per-sensor 8-bit measurement output
    out_ok: Signal          # per-sensor threshold check
    nominal_delay_ps: int
    lut_threshold: int
    cps_index: "int | str" = 0  # bit index, or "parity"


@dataclass
class CounterBank:
    """All Counter-based monitors of one augmented IP."""

    module: Module
    clock: Signal
    hf_clock: Signal
    hf_ratio: int
    taps: "list[CounterTap]" = field(default_factory=list)
    metric_ok: "Signal | None" = None
    meas_bus: "Signal | None" = None  # concatenation of all MEAS_VALs

    def configure_simulation(self, sim) -> None:
        """Back-annotate nominal path delays on all endpoints."""
        for tap in self.taps:
            sim.set_transport_delay(tap.endpoint, tap.nominal_delay_ps)

    def tap_for(self, register_name: str) -> CounterTap:
        for tap in self.taps:
            if tap.register.name == register_name:
                return tap
        raise KeyError(register_name)


def attach_counter_bank(
    module: Module,
    clock: Signal,
    hf_clock: Signal,
    monitored: "list[tuple[Signal, Signal, int]]",
    *,
    main_period_ps: int,
    hf_ratio: int = HF_RATIO_DEFAULT,
    lut_threshold: int = LUT_THRESHOLD_DEFAULT,
    cps_bit: "int | str" = 0,
    cps_bits: "dict[str, int | str] | None" = None,
) -> CounterBank:
    """Attach Counter-based monitors to pre-extracted endpoints.

    ``monitored`` holds ``(register, endpoint_signal,
    nominal_delay_ps)`` triples.  Adds per-sensor CPS extraction combs,
    one native HF-clocked measurement process (which also closes the
    observability window at main-edge boundaries, detected by count
    wrap-around), and the ``meas_val``/``metric_ok`` top-level ports.
    """
    bank = CounterBank(
        module=module, clock=clock, hf_clock=hf_clock, hf_ratio=hf_ratio
    )

    cps_extractors: dict[int, object] = {}
    cps_bits = cps_bits or {}
    for register, endpoint, nominal in monitored:
        cps = module.signal(f"{register.name}__cps")
        chosen = cps_bits.get(register.name, cps_bit)
        if chosen == "parity":
            extraction = red_xor(endpoint)

            def extract(lv, _w=endpoint.width):
                return bin(lv.to_int_or(0)).count("1") & 1
        else:
            chosen = min(int(chosen), endpoint.width - 1)
            extraction = endpoint[chosen]

            def extract(lv, _i=chosen):
                return (lv.to_int_or(0) >> _i) & 1
        module.comb(
            f"{register.name}__cps_p", [Assign(cps, extraction)]
        )
        meas = module.signal(f"{register.name}__meas", MEAS_WIDTH)
        ok = module.signal(f"{register.name}__ok", init=1)
        tap = CounterTap(
            register=register,
            endpoint=endpoint,
            cps=cps,
            meas_val=meas,
            out_ok=ok,
            nominal_delay_ps=nominal,
            lut_threshold=lut_threshold,
            cps_index=chosen,
        )
        bank.taps.append(tap)
        cps_extractors[id(tap)] = extract

    taps = list(bank.taps)
    ratio = hf_ratio
    meas_cap = (1 << MEAS_WIDTH) - 1
    latency_slots = MEASUREMENT_LATENCY_CYCLES - 1

    def measure_fn(ctx) -> None:
        """Runs at every HF rising edge.

        The CPS bit is sampled straight off the endpoint signal (the
        kernel applies delayed commits before edge processes run, so
        an arrival ``d`` ps after the launching edge is visible at the
        first HF tick >= d and recorded with count ``ceil(d/T_HF)``).
        HF ticks coinciding with main-clock rising edges close the
        observability window: the last-transition count is selected by
        the latched CPS value (R1 for rising, R2 for falling), pushed
        through the three-cycle latency pipeline, compared against the
        LUT threshold, and the window state cleared.
        """
        state = ctx.state
        if not state:
            state["count"] = 0
            state["taps"] = {
                id(t): {"prev": None, "r1": 0, "r2": 0, "seen": False}
                for t in taps
            }
            state["pipe"] = {
                id(t): [0] * latency_slots for t in taps
            }

        state["count"] += 1
        count = state["count"]
        for tap in taps:
            ts = state["taps"][id(tap)]
            cur = cps_extractors[id(tap)](ctx.read(tap.endpoint))
            prev = ts["prev"]
            if prev is not None and cur != prev:
                if cur == 1:
                    ts["r1"] = count
                else:
                    ts["r2"] = count
                ts["seen"] = True
            ts["prev"] = cur

        if ctx.now % main_period_ps == 0:
            # Window boundary: emit this window's measurement and reopen.
            for tap in taps:
                ts = state["taps"][id(tap)]
                if ts["seen"]:
                    meas = ts["r1"] if ts["prev"] == 1 else ts["r2"]
                else:
                    meas = 0
                queue = state["pipe"][id(tap)]
                queue.append(min(meas, meas_cap))
                out = queue.pop(0)
                ctx.write(tap.meas_val, out)
                ctx.write(
                    tap.out_ok,
                    1 if (out == 0 or out <= tap.lut_threshold) else 0,
                )
                ts["r1"] = 0
                ts["r2"] = 0
                ts["seen"] = False
            state["count"] = 0

    module.native(
        NativeProcess(
            "counter_bank",
            "sync",
            measure_fn,
            clock=hf_clock,
            edge="rise",
            reads=[t.endpoint for t in taps] + [t.cps for t in taps],
            writes=[t.meas_val for t in taps] + [t.out_ok for t in taps],
            meta={
                "sensor": "counter",
                "hf_ratio": ratio,
                "area_nand2": COUNTER_AREA_NAND2_PER_PATH * len(taps),
                "ff_bits": COUNTER_FF_BITS_PER_PATH * len(taps),
                "vhdl_template": "counter",
                "instances": [
                    {
                        "clock": clock.name,
                        "hf_clock": hf_clock.name,
                        "meas": t.meas_val.name,
                        "ok": t.out_ok.name,
                    }
                    for t in taps
                ],
            },
        )
    )

    # ------------------------------------------------------------------
    # Top-level ports: aggregated METRIC_OK, concatenated MEAS bus.
    # ------------------------------------------------------------------

    bank.metric_ok = module.output("metric_ok")
    bank.meas_bus = module.output(
        "meas_val", MEAS_WIDTH * max(1, len(taps))
    )
    if taps:
        ok_bits = [t.out_ok for t in taps]
        all_ok = ok_bits[0]
        for bit in ok_bits[1:]:
            all_ok = all_ok & bit
        module.comb("counter_metric_ok", [Assign(bank.metric_ok, all_ok)])
        meas_parts = [t.meas_val for t in reversed(taps)]
        bus = meas_parts[0] if len(meas_parts) == 1 else Concat(*meas_parts)
        module.comb("counter_meas_bus", [Assign(bank.meas_bus, bus)])
    else:
        module.comb("counter_metric_ok", [Assign(bank.metric_ok, 1)])
        module.comb("counter_meas_bus", [Assign(bank.meas_bus, 0)])
    return bank
