"""Automatic sensor insertion at critical path endpoints (Section 4.2).

Given an IP and the critical-path bin produced by STA, this pass:

1. materialises each monitored register's D input as an explicit
   endpoint signal (:mod:`repro.sensors.endpoints`);
2. back-annotates the STA nominal path delay on that signal (applied
   to the simulator at configuration time) -- clamped into the window
   each sensor type requires:

   * **Razor**: ``(0.6 T, T)`` -- critical paths consume most of the
     period, and the lower clamp models the min-path padding real
     Razor deployments need so the shadow latch never captures
     next-cycle data;
   * **Counter**: ``(0.3 T, 0.7 T)`` -- the counter-augmented IP is
     operated with nominal arrivals comfortably inside the
     observability window so the LUT threshold (8 HF periods by
     default) flags only genuine degradation;

3. instantiates the sensor bank and the new top-level ports
   (``metric_ok`` plus ``razor_err``/``razor_r`` or ``meas_val`` and
   the ``hf_clk`` input).

The transform happens **in place**: callers that need a pristine IP
for golden comparisons must construct a fresh instance from its
factory (all case-study IPs are factory functions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtl.ir import Module, Signal
from repro.rtl.kernel import Simulation
from repro.sta.critical import CriticalPathReport, MonitoredPath

# (calibration uses the event-driven kernel on the endpoint-extracted,
# sensor-free design)

from .counter import (
    HF_RATIO_DEFAULT,
    LUT_THRESHOLD_DEFAULT,
    CounterBank,
    attach_counter_bank,
)
from .endpoints import InsertionError, extract_endpoint_signals
from .razor import RazorBank, attach_razor_bank

__all__ = ["AugmentedIP", "insert_sensors", "InsertionError"]


@dataclass
class AugmentedIP:
    """An IP augmented with delay sensors, ready to simulate."""

    module: Module
    sensor_type: str                  # "razor" or "counter"
    clock: Signal
    main_period_ps: int
    monitored: "list[MonitoredPath]"
    endpoint_of: "dict[Signal, Signal]"
    nominal_delay_of: "dict[Signal, int]"  # endpoint signal -> ps
    bank: "RazorBank | CounterBank"
    hf_clock: "Signal | None" = None
    hf_ratio: int = HF_RATIO_DEFAULT

    @property
    def sensor_count(self) -> int:
        return len(self.monitored)

    def clocks(self) -> "dict[Signal, int]":
        """Clock map for :class:`~repro.rtl.kernel.Simulation`."""
        clock_map = {self.clock: self.main_period_ps}
        if self.hf_clock is not None:
            clock_map[self.hf_clock] = self.main_period_ps // self.hf_ratio
        return clock_map

    def make_simulation(self, **kw) -> Simulation:
        """A simulator with back-annotated nominal path delays."""
        sim = Simulation(self.module, self.clocks(), **kw)
        self.bank.configure_simulation(sim)
        return sim

    def endpoint_for(self, register_name: str) -> Signal:
        for reg, endpoint in self.endpoint_of.items():
            if reg.name == register_name:
                return endpoint
        raise KeyError(register_name)

    def hf_period_ps(self) -> int:
        return self.main_period_ps // self.hf_ratio


def _razor_nominal(path: MonitoredPath, period: int) -> int:
    low = int(0.6 * period) + 1
    high = period - 1
    return max(low, min(int(path.arrival_ps), high))


def _counter_nominal(path: MonitoredPath, period: int) -> int:
    low = int(0.3 * period)
    high = int(0.7 * period)
    return max(low, min(int(path.arrival_ps), high))


def calibrate_cps_bits(
    module: Module,
    clocks: "dict[Signal, int]",
    endpoints: "dict[Signal, Signal]",
    stimuli: "list[dict[str, int]]",
    *,
    exec_mode: str = "compiled",
) -> "dict[str, int | str]":
    """Select each endpoint's critical bit from testbench activity.

    The Counter sensor observes a *single extracted bit* of the
    arriving word (paper Section 4.2: "an intermediate variable used
    to extract single critical bits").  A bit that never toggles under
    the testbench makes the sensor blind -- and such bits are real:
    CIC difference values, for instance, have structurally constant
    LSBs.  This calibration simulates the endpoint-extracted (but not
    yet sensor-attached) design under the shipped testbench, counts
    per-bit toggles of every endpoint, and picks the most active bit
    (falling back to the parity detector when nothing toggles).
    """
    sim = Simulation(module, clocks, exec_mode=exec_mode)
    inputs = {p.name: p for p in module.inputs()}
    watched = list(endpoints.items())
    toggles: dict[int, list[int]] = {
        id(ep): [0] * ep.width for _, ep in watched
    }
    previous: dict[int, int] = {
        id(ep): sim.peek_int(ep) for _, ep in watched
    }
    for vec in stimuli:
        sim.cycle({inputs[k]: v for k, v in vec.items() if k in inputs})
        for _, ep in watched:
            cur = sim.peek_int(ep)
            diff = cur ^ previous[id(ep)]
            previous[id(ep)] = cur
            if diff:
                counts = toggles[id(ep)]
                for bit in range(ep.width):
                    if (diff >> bit) & 1:
                        counts[bit] += 1
    chosen: dict[str, int | str] = {}
    for register, ep in watched:
        counts = toggles[id(ep)]
        best = max(range(ep.width), key=counts.__getitem__)
        chosen[register.name] = best if counts[best] else "parity"
    return chosen


def insert_sensors(
    module: Module,
    clock: Signal,
    critical: CriticalPathReport,
    *,
    sensor_type: str = "razor",
    hf_ratio: int = HF_RATIO_DEFAULT,
    lut_threshold: int = LUT_THRESHOLD_DEFAULT,
    calibration_stimuli: "list[dict[str, int]] | None" = None,
    exec_mode: str = "compiled",
) -> AugmentedIP:
    """Insert one sensor per critical path endpoint (in place).

    For Counter sensors, ``calibration_stimuli`` (normally the IP's
    own testbench) drives the CPS-bit selection; without it the LSB is
    used.  ``exec_mode`` selects the RTL kernel mode of the
    calibration simulation, so a flow forced to the reference
    interpreter stays interpreted end to end.
    """
    if sensor_type not in ("razor", "counter"):
        raise InsertionError(f"unknown sensor type {sensor_type!r}")
    period = critical.clock_period_ps
    if sensor_type == "counter":
        if period % hf_ratio:
            raise InsertionError(
                f"main period {period} not divisible by HF ratio {hf_ratio}"
            )
        if (period // hf_ratio) % 2:
            raise InsertionError(
                "HF period must be even (kernel clock constraint); "
                f"got {period // hf_ratio}"
            )

    registers = [p.endpoint for p in critical.monitored]
    endpoint_of = extract_endpoint_signals(module, registers)

    nominal_fn = _razor_nominal if sensor_type == "razor" else _counter_nominal
    triples = []
    nominal_delay_of: dict[Signal, int] = {}
    for path in critical.monitored:
        endpoint = endpoint_of[path.endpoint]
        nominal = nominal_fn(path, period)
        nominal_delay_of[endpoint] = nominal
        triples.append((path.endpoint, endpoint, nominal))

    if sensor_type == "razor":
        bank = attach_razor_bank(module, clock, triples)
        hf_clock = None
    else:
        cps_bits = None
        if calibration_stimuli:
            cps_bits = calibrate_cps_bits(
                module,
                {clock: period},
                endpoint_of,
                calibration_stimuli,
                exec_mode=exec_mode,
            )
        hf_clock = module.input("hf_clk")
        bank = attach_counter_bank(
            module,
            clock,
            hf_clock,
            triples,
            main_period_ps=period,
            hf_ratio=hf_ratio,
            lut_threshold=lut_threshold,
            cps_bits=cps_bits,
        )

    return AugmentedIP(
        module=module,
        sensor_type=sensor_type,
        clock=clock,
        main_period_ps=period,
        monitored=list(critical.monitored),
        endpoint_of=endpoint_of,
        nominal_delay_of=nominal_delay_of,
        bank=bank,
        hf_clock=hf_clock,
        hf_ratio=hf_ratio,
    )
