"""Embedded timing monitors: Razor, Counter-based, and insertion."""

from .counter import (
    HF_RATIO_DEFAULT,
    LUT_THRESHOLD_DEFAULT,
    MEASUREMENT_LATENCY_CYCLES,
    CounterBank,
    CounterTap,
    attach_counter_bank,
)
from .endpoints import InsertionError, extract_endpoint_signals
from .insertion import AugmentedIP, insert_sensors
from .razor import RazorBank, RazorTap, attach_razor_bank

__all__ = [
    "HF_RATIO_DEFAULT",
    "LUT_THRESHOLD_DEFAULT",
    "MEASUREMENT_LATENCY_CYCLES",
    "CounterBank",
    "CounterTap",
    "attach_counter_bank",
    "InsertionError",
    "extract_endpoint_signals",
    "AugmentedIP",
    "insert_sensors",
    "RazorBank",
    "RazorTap",
    "attach_razor_bank",
]
