"""The modified Razor flip-flop (paper Section 4.1.1).

Each monitored register ``q`` is replaced by a Razor sensor:

* the **main FF** keeps the original synchronous behaviour
  (``q <= q__d`` at the rising edge);
* a **shadow latch** samples the same D input half a clock period
  later (the delayed-clock negative level of the paper, realised here
  as a falling-edge sample);
* an XOR of main and shadow drives the per-sensor **error output E**;
* when the recovery input ``R`` is high, a detected mismatch writes
  the shadow value back into the main FF and asserts a one-cycle
  **pipeline stall**, reproducing the paper's "normal operating mode
  delayed by one cycle" recovery strategy.

Timing correctness relies on two constraints the insertion pass
enforces:

* the monitored path's nominal (back-annotated) delay exceeds half the
  clock period, so the shadow latch never captures next-cycle data --
  the *short-path* constraint of real Razor deployments;
* arrivals between the rising edge and the following falling edge
  (the Razor detection window) reach the shadow latch but miss the
  main FF, which is precisely the situation the delay mutants create.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtl.build import b_not, red_or
from repro.rtl.ir import (
    Assign,
    Concat,
    If,
    Module,
    NativeProcess,
    Signal,
    SyncProcess,
)
from repro.rtl.types import LV

__all__ = ["RazorTap", "RazorBank", "attach_razor_bank"]

#: Area of one modified Razor FF in NAND2 equivalents ("about one
#: standard FF" per the paper: FF + shadow latch + XOR + mux).
RAZOR_AREA_NAND2 = 14.0
RAZOR_FF_BITS = 2  # main bit is counted with the IP; shadow + E here


@dataclass(frozen=True)
class RazorTap:
    """One monitored endpoint: register, its D signal and its E flag."""

    register: Signal
    endpoint: Signal  # q__d
    error: Signal     # per-sensor E output
    nominal_delay_ps: int


@dataclass
class RazorBank:
    """All Razor sensors of one augmented IP plus shared controls."""

    module: Module
    clock: Signal
    taps: "list[RazorTap]" = field(default_factory=list)
    recovery: "Signal | None" = None   # R input port
    stall: "Signal | None" = None      # pipeline-hold signal
    metric_ok: "Signal | None" = None  # top-level METRIC_OK output
    error_bus: "Signal | None" = None  # concatenated E bits

    def error_signals(self) -> "list[Signal]":
        return [t.error for t in self.taps]

    def configure_simulation(self, sim) -> None:
        """Back-annotate nominal path delays on all endpoints."""
        for tap in self.taps:
            sim.set_transport_delay(tap.endpoint, tap.nominal_delay_ps)


def _gate_sync_processes_with_stall(module: Module, stall: Signal) -> None:
    """Wrap every synchronous IR process body in ``if stall = '0'``.

    This is the architectural recovery hook: during the stall cycle all
    pipeline state holds, giving the late data time to arrive (the
    paper's "interrupting the normal pipeline operation")."""

    def visit(mod: Module) -> None:
        for proc in mod.processes:
            if isinstance(proc, SyncProcess):
                proc.stmts = [If(stall.eq(0), proc.stmts)]
        for _, child in mod.submodules:
            visit(child)

    visit(module)


def attach_razor_bank(
    module: Module,
    clock: Signal,
    monitored: "list[tuple[Signal, Signal, int]]",
) -> RazorBank:
    """Attach Razor sensors to pre-extracted endpoints (in place).

    ``monitored`` is a list of ``(register, endpoint_signal,
    nominal_delay_ps)`` triples.  Adds to the module: an ``razor_r``
    input (recovery enable), per-sensor error signals, a
    ``razor_err`` output bus, a ``metric_ok`` output and the internal
    ``razor_stall`` hold signal.
    """
    bank = RazorBank(module=module, clock=clock)
    bank.recovery = module.input("razor_r")
    # The stall is exported: real Razor deployments feed it to upstream
    # pipeline control, and the verification driver uses it to hold the
    # stimulus during recovery cycles.
    bank.stall = module.output("razor_stall")

    # Stall gating must wrap the *original* processes before any other
    # additions; sensors themselves are native processes and unaffected.
    _gate_sync_processes_with_stall(module, bank.stall)

    for register, endpoint, nominal in monitored:
        error = module.signal(f"{register.name}__razor_e")
        bank.taps.append(
            RazorTap(
                register=register,
                endpoint=endpoint,
                error=error,
                nominal_delay_ps=nominal,
            )
        )

    taps = list(bank.taps)
    recovery = bank.recovery
    stall = bank.stall

    def razor_fall_fn(ctx) -> None:
        """Shadow-latch sampling and compare, on the falling edge.

        After a recovery event the comparison is masked for one cycle
        (``cooldown``): the recovery write re-launches the monitored
        combinational cone mid-cycle, so the very next shadow sample
        would compare against freshly relaunched data.  Real Razor
        deployments re-arm error detection after the restore cycle for
        the same reason.
        """
        state = ctx.state
        if state.get("cooldown", 0):
            state["cooldown"] -= 1
            for tap in taps:
                ctx.write(tap.error, 0)
            ctx.write(stall, 0)
            return
        any_mismatch = False
        recover = ctx.read(recovery)
        recovery_on = not recover.unk and recover.value == 1
        for tap in taps:
            shadow = ctx.read(tap.endpoint)
            main = ctx.read(tap.register)
            diff = main ^ shadow
            mismatch = diff.reduce_or()
            ctx.write(tap.error, mismatch)
            is_error = not mismatch.unk and mismatch.value == 1
            if is_error:
                any_mismatch = True
                if recovery_on:
                    ctx.write(tap.register, shadow)
        if any_mismatch and recovery_on:
            ctx.write(stall, 1)
            state["cooldown"] = 1
        else:
            ctx.write(stall, 0)

    reads = (
        [t.endpoint for t in taps]
        + [t.register for t in taps]
        + [recovery]
    )
    writes = [t.error for t in taps] + [t.register for t in taps] + [stall]
    module.native(
        NativeProcess(
            "razor_bank",
            "sync",
            razor_fall_fn,
            clock=clock,
            edge="fall",
            reads=reads,
            writes=writes,
            meta={
                "sensor": "razor",
                "area_nand2": RAZOR_AREA_NAND2 * len(taps),
                "ff_bits": RAZOR_FF_BITS * len(taps),
                "vhdl_template": "razor",
                "instances": [
                    {
                        "clock": clock.name,
                        "d": t.endpoint.name,
                        "q": t.register.name,
                        "e": t.error.name,
                        "r": recovery.name,
                    }
                    for t in taps
                ],
            },
        )
    )

    # METRIC_OK / error bus aggregation (combinational IR).
    bank.error_bus = module.output("razor_err", max(1, len(taps)))
    bank.metric_ok = module.output("metric_ok")
    if taps:
        errors = [t.error for t in taps]
        bus_expr = errors[0] if len(errors) == 1 else Concat(
            *reversed(errors)
        )
        module.comb("razor_err_bus", [Assign(bank.error_bus, bus_expr)])
        module.comb(
            "razor_metric_ok",
            [Assign(bank.metric_ok, b_not(red_or(bank.error_bus)))],
        )
    else:
        module.comb("razor_metric_ok", [Assign(bank.metric_ok, 1)])
    return bank
